//! The CLA object-file database up close — reproduces the paper's Figure 4
//! sketch for its example file `a.c`, then demonstrates demand loading and
//! the load-and-throw-away accounting.
//!
//! ```sh
//! cargo run --example object_file
//! ```

use cla::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The example source of Figure 4.
    let src = "int x, y, z, *p, *q;
void f(void) {
    x = y;
    x = z;
    *p = z;
    p = q;
    q = &y;
    x = *p;
}
";
    let unit = compile_source(src, "a.c", &LowerOptions::default())?;
    let bytes = write_object(&unit);
    println!(
        "object file: {} bytes for {} assignments\n",
        bytes.len(),
        unit.assigns.len()
    );

    let db = Database::open(bytes)?;
    println!("{}", dump(&db));

    // Demand loading: solve and show what was actually read.
    db.reset_load_stats();
    let (pts, stats) = solve_database(&db, SolveOptions::default());
    let ls = db.load_stats();
    println!("== demand loading during points-to analysis ==");
    println!("  assignments in file: {}", ls.assigns_in_file);
    println!("  assignments loaded:  {}", ls.assigns_loaded);
    println!("  block fetches:       {}", ls.block_fetches);
    println!("  complex in core:     {}", stats.complex_in_core);
    println!("  passes:              {}", stats.passes);

    println!("\n== resulting points-to sets ==");
    for name in ["p", "q", "x"] {
        for &obj in db.targets(name) {
            let set: Vec<String> = pts
                .points_to(obj)
                .iter()
                .map(|&t| db.object(t).name.clone())
                .collect();
            println!("  pts({name}) = {{{}}}", set.join(", "));
        }
    }

    // As in the paper's walkthrough: q = &y seeds the analysis, p = q is
    // loaded from q's block, and p ends up pointing to y.
    let p = db.targets("p")[0];
    let y = db.targets("y")[0];
    assert!(pts.may_point_to(p, y));
    println!("\nok: p may point to y, exactly as the paper's Section 4 walkthrough derives");
    Ok(())
}
