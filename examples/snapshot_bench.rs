//! Cold vs warm start through a persistent snapshot, at benchmark scale.
//!
//! ```sh
//! cargo run --release --example snapshot_bench -- nethack 1.0
//! ```
//!
//! Generates a workload calibrated to one of the paper's Table 2 rows and
//! measures the two ways an analysis server can become query-ready:
//!
//! * **cold** — no snapshot: compile every source, link, and solve
//!   (exactly what `analyze` does on first contact with a program);
//! * **warm** — a valid snapshot exists: hash the linked object to check
//!   provenance, load the sealed graph and symbol table from the
//!   `.clasnap`, answer the first query. No compiler, no solver.
//!
//! The warm graph must answer every points-to query identically to the
//! fresh solve, and must be at least 10x faster to reach than the cold
//! path — that is the point of the subsystem, so the example fails if
//! either property regresses. Results land in `target/BENCH_snapshot.json`.

use cla::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "nethack".to_string());
    let scale: f64 = args
        .next()
        .map_or(1.0, |s| s.parse().expect("scale must be a number"));
    let out_path = args
        .next()
        .unwrap_or_else(|| "target/BENCH_snapshot.json".to_string());

    let spec = by_name(&name).unwrap_or_else(|| {
        eprintln!(
            "unknown benchmark `{name}`; available: {}",
            PAPER_BENCHMARKS
                .iter()
                .map(|b| b.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    });

    println!("generating `{name}` at scale {scale} ...");
    let workload = generate(
        spec,
        &GenOptions {
            scale,
            files: 8,
            ..Default::default()
        },
    );
    let mut fs = MemoryFs::new();
    for (p, c) in &workload.files {
        fs.add(p.clone(), c.clone());
    }
    let files: Vec<String> = workload
        .source_files()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let refs: Vec<&str> = files.iter().map(String::as_str).collect();
    println!(
        "  {} files, {} lines, {} bytes",
        files.len(),
        workload.total_lines(),
        workload.total_bytes()
    );

    let work_dir = std::env::temp_dir().join(format!("cla-snap-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work_dir);
    std::fs::create_dir_all(&work_dir)?;
    let object_path = work_dir.join("prog.clao");
    let snap_path = work_dir.join(cla::snap::SNAPSHOT_FILE);

    // ---- cold: sources -> solved graph (and persist object + snapshot) --
    let t0 = Instant::now();
    let analysis = analyze(&fs, &refs, &PipelineOptions::default())?;
    let cold_secs = t0.elapsed().as_secs_f64();
    let r = &analysis.report;
    println!(
        "cold start: {:>8.1} ms  (compile {:.1} ms, link {:.1} ms, solve {:.1} ms)",
        cold_secs * 1e3,
        r.compile_time.as_secs_f64() * 1e3,
        r.link_time.as_secs_f64() * 1e3,
        r.solve_time.as_secs_f64() * 1e3,
    );

    let db = &analysis.database;
    let object_bytes = cla::cladb::write_object(&db.to_unit()?);
    std::fs::write(&object_path, &object_bytes)?;
    let opts = SolveOptions::default();
    let sealed_cold = cla::core::Warm::from_database(db, opts).seal();
    let object_names: Vec<String> = db.objects().iter().map(|o| o.name.clone()).collect();
    let prov = cla::serve::object_provenance(
        &object_path.display().to_string(),
        cla::cladb::fnv64(&object_bytes),
        opts,
    );
    let t0 = Instant::now();
    let snapshot_bytes = cla::snap::save_snapshot(&snap_path, &prov, &sealed_cold, &object_names)?;
    let save_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("snapshot: {snapshot_bytes} bytes written in {save_ms:.1} ms");

    // ---- warm: snapshot -> query-ready graph ----------------------------
    // What a restarted server does: re-hash the object it is asked to
    // serve, check it against the snapshot's provenance, then load the
    // sealed graph and symbol table straight from disk.
    let t0 = Instant::now();
    let current = std::fs::read(&object_path)?;
    let expect = cla::serve::object_provenance(
        &object_path.display().to_string(),
        cla::cladb::fnv64(&current),
        opts,
    );
    let snap = cla::snap::Snapshot::open(&snap_path)?;
    assert_eq!(snap.provenance(), &expect, "stale snapshot");
    let sealed_warm = snap.load_sealed()?;
    let warm_names = snap.names()?;
    let warm_secs = t0.elapsed().as_secs_f64();
    println!(
        "warm start: {:>8.1} ms  (provenance check + snapshot load)",
        warm_secs * 1e3
    );

    // ---- observational exactness ----------------------------------------
    assert_eq!(warm_names, object_names, "symbol table differs");
    let mut first_query_us = 0.0;
    let mut checked = 0usize;
    for o in (0..object_names.len() as u32).map(cla::ir::ObjId) {
        let t0 = Instant::now();
        let warm_set = sealed_warm.points_to(o);
        if checked == 0 {
            first_query_us = t0.elapsed().as_secs_f64() * 1e6;
        }
        assert_eq!(
            warm_set,
            sealed_cold.points_to(o),
            "pts({}) differs across the round trip",
            object_names[o.0 as usize]
        );
        assert_eq!(
            warm_set,
            analysis.points_to.points_to(o),
            "pts({}) differs from the pipeline solve",
            object_names[o.0 as usize]
        );
        checked += 1;
    }
    let speedup = cold_secs / warm_secs;
    println!(
        "checked {checked} points-to sets: identical; first query {first_query_us:.1} us; \
         warm speedup {speedup:.0}x"
    );

    let json = format!(
        "{{\n  \"benchmark\": \"{name}\",\n  \"scale\": {scale},\n  \"files\": {},\n  \
         \"source_bytes\": {},\n  \"objects\": {},\n  \"cold_ms\": {:.3},\n  \
         \"warm_ms\": {:.3},\n  \"speedup\": {:.1},\n  \"snapshot_bytes\": {snapshot_bytes},\n  \
         \"save_ms\": {save_ms:.3},\n  \"first_query_us\": {first_query_us:.1}\n}}\n",
        files.len(),
        workload.total_bytes(),
        object_names.len(),
        cold_secs * 1e3,
        warm_secs * 1e3,
        speedup,
    );
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(&out_path, json)?;
    println!("wrote {out_path}");

    let _ = std::fs::remove_dir_all(&work_dir);
    assert!(
        speedup >= 10.0,
        "warm start only {speedup:.1}x faster than cold — below the 10x floor"
    );
    Ok(())
}
