//! Multi-tenant hub throughput and tail latency, at benchmark scale.
//!
//! ```sh
//! cargo run --release --example hub_bench -- target/BENCH_hub.json
//! ```
//!
//! Stands up one `cla-hub` over TCP with twelve named sessions — each an
//! independently generated codebase calibrated to a paper Table 2 row —
//! behind an LRU with room for only six resident graphs, then drives it
//! with 64 concurrent clients while mutator threads race forced reloads
//! against the evictions and snapshot rehydrations the capacity squeeze
//! causes. Every reply must be a correct answer for its session (or a
//! typed busy refusal); the run reports aggregate throughput and the
//! client-observed p50/p99, and fails if any reply is wrong or the tail
//! blows past a generous ceiling. Results land in `target/BENCH_hub.json`
//! for the `bench-diff` regression gate.

use cla::hub::{Hub, HubOptions, SessionSource, SessionSpec};
use cla::prelude::*;
use cla::serve::json::{obj, Value};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Instant;

const SESSIONS: usize = 12;
const CAPACITY: usize = 6;
const CLIENTS: usize = 64;
const REQUESTS_PER_CLIENT: usize = 50;
const MUTATORS: usize = 2;
const RELOADS_PER_MUTATOR: usize = 10;
const P99_CEILING_SECS: f64 = 2.0;

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/BENCH_hub.json".to_string());

    let work_dir = std::env::temp_dir().join(format!("cla-hub-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work_dir);
    std::fs::create_dir_all(&work_dir)?;

    // ---- twelve codebases, one per session ------------------------------
    // Each tenant is a distinct generated program (different seed) plus a
    // probe file with session-suffixed names, so a misrouted query fails
    // as an unknown variable instead of silently looking plausible.
    let spec = by_name("nethack").expect("nethack profile");
    let mut source_bytes = 0usize;
    let mut session_files: Vec<Vec<String>> = Vec::new();
    for i in 0..SESSIONS {
        let dir = work_dir.join(format!("src-{i}"));
        std::fs::create_dir_all(&dir)?;
        let w = generate(
            spec,
            &GenOptions {
                scale: 0.05,
                files: 3,
                seed: 100 + i as u64,
                ..Default::default()
            },
        );
        let mut files = Vec::new();
        for (p, c) in &w.files {
            let path = dir.join(p);
            std::fs::write(&path, c)?;
            source_bytes += c.len();
        }
        for p in w.source_files() {
            files.push(dir.join(p).to_string_lossy().into_owned());
        }
        let probe = dir.join(format!("probe_s{i}.c"));
        std::fs::write(
            &probe,
            format!("int x_s{i}; int *p_s{i};\nvoid probe_s{i}(void) {{ p_s{i} = &x_s{i}; }}\n"),
        )?;
        files.push(probe.to_string_lossy().into_owned());
        session_files.push(files);
    }

    // ---- open the hub ---------------------------------------------------
    let hub = Arc::new(Hub::new(HubOptions {
        capacity: CAPACITY,
        max_inflight: 64,
        rebuild_slots: 2,
        ..HubOptions::default()
    }));
    let t0 = Instant::now();
    for (i, files) in session_files.iter().enumerate() {
        let snap = work_dir.join(format!("snap-{i}"));
        std::fs::create_dir_all(&snap)?;
        hub.open(
            &format!("s{i}"),
            SessionSpec {
                source: SessionSource::Files {
                    fs: Arc::new(OsFs),
                    files: files.clone(),
                    pp: PpOptions::default(),
                    lower: LowerOptions::default(),
                    lenient: false,
                },
                solve: SolveOptions::default(),
                snapshot_dir: Some(snap),
                jobs: 1,
            },
        )
        .map_err(|e| format!("open s{i}: {e}"))?;
    }
    let open_secs = t0.elapsed().as_secs_f64();
    println!(
        "opened {SESSIONS} sessions ({source_bytes} source bytes) in {:.1} ms, capacity {CAPACITY}",
        open_secs * 1e3
    );

    let handle = cla::hub::hub_serve(Arc::clone(&hub), "127.0.0.1:0")?;
    let addr = handle.addr().to_string();

    // ---- drive it -------------------------------------------------------
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let busy = AtomicU64::new(0);
    let wrong: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for m in 0..MUTATORS {
            let addr = addr.clone();
            scope.spawn(move || {
                let mut client = Client::connect(&Endpoint::Tcp(addr)).unwrap();
                let mut rng = 0x9e3779b97f4a7c15u64.wrapping_add(m as u64);
                for _ in 0..RELOADS_PER_MUTATOR {
                    let i = (lcg(&mut rng) as usize) % SESSIONS;
                    let _ = client.request(&obj([
                        ("cmd", "reload".into()),
                        ("session", format!("s{i}").into()),
                        ("force", true.into()),
                    ]));
                }
            });
        }
        for c in 0..CLIENTS {
            let addr = addr.clone();
            let (latencies, busy, wrong) = (&latencies, &busy, &wrong);
            scope.spawn(move || {
                let mut client = Client::connect(&Endpoint::Tcp(addr)).unwrap();
                let mut rng = 0x243f6a8885a308d3u64.wrapping_add(c as u64);
                let mut local = Vec::with_capacity(REQUESTS_PER_CLIENT);
                for r in 0..REQUESTS_PER_CLIENT {
                    let i = if r == 0 {
                        c % SESSIONS
                    } else {
                        (lcg(&mut rng) as usize) % SESSIONS
                    };
                    let req = obj([
                        ("cmd", "points-to".into()),
                        ("session", format!("s{i}").into()),
                        ("var", format!("p_s{i}").into()),
                    ]);
                    let t = Instant::now();
                    let reply = client.request(&req).expect("hub reply");
                    local.push(t.elapsed().as_micros() as u64);
                    if reply.get("ok").and_then(Value::as_bool) == Some(true) {
                        let hits = reply
                            .get("targets")
                            .and_then(Value::as_arr)
                            .map(|t| t.len())
                            .unwrap_or(0);
                        if hits != 1 {
                            wrong
                                .lock()
                                .unwrap()
                                .push(format!("s{i}: {hits} targets for p_s{i}"));
                        }
                    } else if reply.get("busy").and_then(Value::as_bool) == Some(true) {
                        busy.fetch_add(1, Relaxed);
                    } else {
                        wrong
                            .lock()
                            .unwrap()
                            .push(format!("s{i}: error reply {}", reply.encode()));
                    }
                }
                latencies.lock().unwrap().extend(local);
            });
        }
    });
    let wall_secs = t0.elapsed().as_secs_f64();
    handle.stop();

    // ---- report ---------------------------------------------------------
    let wrong = wrong.into_inner().unwrap();
    assert!(
        wrong.is_empty(),
        "wrong answers: {:?}",
        &wrong[..wrong.len().min(5)]
    );
    let mut lat = latencies.into_inner().unwrap();
    lat.sort_unstable();
    let total = lat.len();
    let pct = |p: usize| lat[(total * p / 100).saturating_sub(1).min(total - 1)];
    let (p50_us, p90_us, p99_us) = (pct(50), pct(90), pct(99));
    let throughput = total as f64 / wall_secs;
    let busy = busy.load(Relaxed);
    let (evictions, rehydrations) = (0..SESSIONS)
        .map(|i| hub.tenant_counters(&format!("s{i}")))
        .fold((0u64, 0u64), |(e, r), t| {
            (e + t.evictions, r + t.rehydrations)
        });

    println!(
        "{total} requests from {CLIENTS} clients across {SESSIONS} sessions in {:.2} s \
         ({throughput:.0} req/s)",
        wall_secs
    );
    println!(
        "latency p50 {p50_us} us, p90 {p90_us} us, p99 {p99_us} us; \
         {busy} busy refusals, {evictions} evictions, {rehydrations} rehydrations"
    );
    assert!(
        evictions > 0 && rehydrations > 0,
        "the capacity squeeze never exercised eviction/rehydration"
    );
    let p99_secs = p99_us as f64 / 1e6;
    assert!(
        p99_secs < P99_CEILING_SECS,
        "p99 {p99_secs:.3}s blew the {P99_CEILING_SECS}s ceiling"
    );

    let json = format!(
        "{{\n  \"sessions\": {SESSIONS},\n  \"capacity\": {CAPACITY},\n  \
         \"clients\": {CLIENTS},\n  \"requests\": {total},\n  \
         \"source_bytes\": {source_bytes},\n  \"throughput_rps\": {throughput:.0},\n  \
         \"busy_refusals\": {busy},\n  \"evictions\": {evictions},\n  \
         \"rehydrations\": {rehydrations},\n  \"open_secs\": {open_secs:.3},\n  \
         \"wall_secs\": {wall_secs:.3},\n  \"p50_secs\": {:.6},\n  \
         \"p90_secs\": {:.6},\n  \"p99_secs\": {p99_secs:.6}\n}}\n",
        p50_us as f64 / 1e6,
        p90_us as f64 / 1e6,
    );
    if let Some(parent) = Path::new(&out_path).parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(&out_path, &json)?;
    println!("wrote {out_path}");

    let _ = std::fs::remove_dir_all(&work_dir);
    Ok(())
}
