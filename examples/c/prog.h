/* Shared declarations for the bundled example program. */

struct node {
    struct node *next;
    int *payload;
};

extern struct node *head;
extern int *latest;

void push(int *value);
int *top(void);
