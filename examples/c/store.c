/* A tiny intrusive stack: `push` threads nodes through `head`. */

#include "prog.h"

struct node *head;
struct node slots[8];
int slot_count;

void push(int *value) {
    struct node *n;
    n = &slots[0];
    n->payload = value;
    n->next = head;
    head = n;
}

int *top(void) {
    if (head)
        return head->payload;
    return 0;
}
