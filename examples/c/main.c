/* Entry point: pushes two globals and reads one back through the stack. */

#include "prog.h"

int first, second;
int *latest;

int main(void) {
    push(&first);
    push(&second);
    latest = top();
    return *latest;
}
