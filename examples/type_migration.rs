//! Type migration with the dependence analysis — the paper's motivating
//! Lucent scenario (Section 2): "change the type of this object from
//! `short` to `int`; what else must change?"
//!
//! Reproduces the paper's Figure 1 example and demonstrates chain
//! rendering, prioritization, and non-target pruning.
//!
//! ```sh
//! cargo run --example type_migration
//! ```

use cla::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 1 of the paper, verbatim.
    let mut fs = MemoryFs::new();
    fs.add(
        "eg1.c",
        "short target;
struct S { short x; short y; };
short u, *v, w;
struct S s, t;
void f(void) {
  v = &w;
  u = target;
  *v = u;
  s.x = w;
}
",
    );

    let analysis = analyze(&fs, &["eg1.c"], &PipelineOptions::default())?;
    let dep = DependenceAnalysis::new(&analysis.database, &analysis.points_to);

    println!("== dependents of `target` (Figure 1) ==");
    let report = dep
        .analyze("target", &DependOptions::default())
        .expect("target exists");
    print!("{}", dep.render_report(&report));

    // A second scenario: strong vs weak chains and non-targets.
    let mut fs2 = MemoryFs::new();
    fs2.add(
        "app.c",
        "short sensor_reading;
short calibrated, scaled, logged, display_code;
short *out_port;
void process(void) {
    calibrated = sensor_reading + 10;  /* strong: + preserves range */
    scaled = sensor_reading >> 2;      /* weak: shift changes range  */
    logged = calibrated;
    out_port = &display_code;
    *out_port = logged;
    display_code = !sensor_reading;    /* none: no dependence at all */
}
",
    );
    let analysis2 = analyze(&fs2, &["app.c"], &PipelineOptions::default())?;
    let dep2 = DependenceAnalysis::new(&analysis2.database, &analysis2.points_to);

    println!("\n== dependents of `sensor_reading`, prioritized ==");
    let report2 = dep2
        .analyze("sensor_reading", &DependOptions::default())
        .expect("sensor_reading exists");
    print!("{}", dep2.render_report(&report2));

    println!("\n== same query with `logged` declared a non-target ==");
    let pruned = dep2
        .analyze(
            "sensor_reading",
            &DependOptions {
                non_targets: vec!["logged".to_string()],
            },
        )
        .expect("sensor_reading exists");
    print!("{}", dep2.render_report(&pruned));

    // The paper's claims about Figure 1 hold:
    let names: Vec<String> = report
        .dependents()
        .iter()
        .map(|d| analysis.database.object(d.obj).name.clone())
        .collect();
    assert!(names.contains(&"u".to_string()));
    assert!(names.contains(&"w".to_string()));
    assert!(names.contains(&"S.x".to_string()));
    println!("\nok: u, w and S.x are dependents of target, as in the paper");
    Ok(())
}
