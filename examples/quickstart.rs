//! Quickstart: run the whole compile-link-analyze pipeline over a small
//! multi-file program and inspect points-to sets.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cla::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three separately compiled files sharing globals, a struct type, a
    // heap allocation and an indirect call.
    let mut fs = MemoryFs::new();
    fs.add(
        "list.h",
        "#ifndef LIST_H
#define LIST_H
struct node { struct node *next; int *payload; };
extern struct node *head;
int *pick(int *a);
#endif
",
    );
    fs.add(
        "list.c",
        r#"#include "list.h"
void *malloc(unsigned long);
struct node *head;
int shared;
void push(int *value) {
    struct node *n = malloc(sizeof(struct node));
    n->next = head;
    n->payload = value;
    head = n;
}
"#,
    );
    fs.add(
        "pick.c",
        r#"#include "list.h"
int *pick(int *a) { return a; }
int *(*chooser)(int *) = pick;
"#,
    );
    fs.add(
        "main.c",
        r#"#include "list.h"
extern int shared;
extern int *(*chooser)(int *);
int local_target;
int *cursor;
int main(void) {
    push(&shared);
    push(&local_target);
    cursor = head->payload;
    cursor = chooser(cursor);
    return 0;
}
"#,
    );

    let analysis = analyze(
        &fs,
        &["list.c", "pick.c", "main.c"],
        &PipelineOptions::default(),
    )?;
    let db = &analysis.database;

    println!("== points-to sets ==");
    for name in ["head", "cursor", "node.payload", "chooser"] {
        for &obj in db.targets(name) {
            let set: Vec<String> = analysis
                .points_to
                .points_to(obj)
                .iter()
                .map(|&t| db.object(t).name.clone())
                .collect();
            println!("  pts({name}) = {{{}}}", set.join(", "));
        }
    }

    let r = &analysis.report;
    println!("\n== pipeline report ==");
    println!("  files compiled:      {}", r.files);
    println!("  source bytes:        {}", r.source_bytes);
    println!("  program variables:   {}", r.program_variables);
    println!(
        "  assignments:         {} (copy {}, addr {}, store {}, load {}, *=* {})",
        r.assign_counts.total(),
        r.assign_counts.copy,
        r.assign_counts.addr,
        r.assign_counts.store,
        r.assign_counts.load,
        r.assign_counts.store_load
    );
    println!("  object file bytes:   {}", r.object_size);
    println!("  pointer variables:   {}", r.pointer_variables);
    println!("  points-to relations: {}", r.relations);
    println!(
        "  assignments loaded:  {} of {} in file ({} in core)",
        r.load_stats.assigns_loaded,
        r.load_stats.assigns_in_file,
        r.assigns_in_core()
    );
    println!(
        "  times: compile {:?}, link {:?}, analyze {:?}",
        r.compile_time, r.link_time, r.solve_time
    );

    // Sanity: cursor may point at both pushed targets through the heap.
    let cursor = db.targets("cursor")[0];
    let shared = db.targets("shared")[0];
    let local = db.targets("local_target")[0];
    assert!(analysis.points_to.may_point_to(cursor, shared));
    assert!(analysis.points_to.may_point_to(cursor, local));
    println!("\nok: cursor may point to shared and local_target");
    Ok(())
}
