//! The paper's headline, end to end: generate a million-line C codebase,
//! then cold compile → link → analyze it and report the rate.
//!
//! ```sh
//! cargo run --release --example million_bench                        # full size
//! cargo run --release --example million_bench -- profiles/ci-small.toml
//! ```
//!
//! The tree comes from `cla-genc` (deterministic for the profile's seed)
//! and is written to a temp directory so the compile phase reads real
//! files, like the paper's `cc -fcla` runs. Phase times are taken from the
//! pipeline [`Report`], whose durations come from the same `cla-obs` spans
//! that produce `--trace` output — a recorded trace of this run can never
//! disagree with the JSON (`tests/obs_trace.rs` holds that equality).
//!
//! Environment knobs:
//!
//! * `MILLION_JOBS` — compile pool size (default 0 = one thread per CPU).
//! * `MILLION_CEILING_SECS` — when set, fail if the cold pipeline
//!   (compile + link + solve, generation excluded) takes longer. CI sets
//!   a generous ceiling; unset locally, the bench only reports.
//! * `MILLION_HISTORY` — history file to append this run to (default
//!   `benchmarks/BENCH_history.jsonl`; set empty to skip).
//!
//! Results land in `target/BENCH_million.json` (override with a second
//! positional argument), and every run appends one line — timestamp, git
//! rev, phase times, peak RSS — to the append-only history file, which
//! `cla-tool bench-diff --history` shares.

use cla::prelude::*;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .map(|v| v.parse().unwrap_or_else(|_| panic!("bad {name}: {v}")))
        .unwrap_or(default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    cla::prof::init();
    let mut args = std::env::args().skip(1);
    let profile_path = args
        .next()
        .unwrap_or_else(|| "profiles/million.toml".to_string());
    let out_path = args
        .next()
        .unwrap_or_else(|| "target/BENCH_million.json".to_string());
    let jobs = env_usize("MILLION_JOBS", 0);
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    let profile = cla::genc::Profile::load(std::path::Path::new(&profile_path))?;
    let work_dir = std::env::temp_dir().join(format!("cla-million-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work_dir);

    println!(
        "generating `{}`: {} lines over {} files ...",
        profile.name, profile.total_loc, profile.files
    );
    let t0 = Instant::now();
    let gen = generate_to_dir(&profile, profile.seed, &work_dir)?;
    let gen_secs = t0.elapsed().as_secs_f64();
    println!(
        "  {} loc, {} files, {:.1} MB, {} functions in {:.2}s (tree hash {:016x})",
        gen.loc,
        gen.files,
        gen.bytes as f64 / 1e6,
        gen.functions,
        gen_secs,
        gen.tree_hash
    );

    let mut files: Vec<String> = (0..profile.files)
        .map(|i| {
            work_dir
                .join(cla::genc::file_name(&profile, i))
                .display()
                .to_string()
        })
        .collect();
    files.sort();
    let refs: Vec<&str> = files.iter().map(String::as_str).collect();

    // ---- the cold pipeline: compile + stream-link + solve ---------------
    let opts = PipelineOptions {
        parallel_compile: true,
        jobs,
        ..Default::default()
    };
    let t0 = Instant::now();
    let analysis = analyze(&OsFs, &refs, &opts)?;
    let wall_secs = t0.elapsed().as_secs_f64();
    let r = &analysis.report;
    let lines_per_sec = gen.loc as f64 / wall_secs;
    println!(
        "cold pipeline: {:.2}s  (compile {:.2}s, link {:.2}s, solve {:.2}s) — {:.0} lines/s",
        wall_secs,
        r.compile_time.as_secs_f64(),
        r.link_time.as_secs_f64(),
        r.solve_time.as_secs_f64(),
        lines_per_sec
    );
    println!(
        "  jobs={} cores={} peak-buffered-units={} peak-rss={:.0} MB",
        r.jobs,
        cores,
        r.peak_buffered_units,
        r.peak_rss_bytes as f64 / 1e6
    );
    println!(
        "  variables={} assigns={} pointer-vars={} relations={} passes={}",
        r.program_variables,
        r.assign_counts.total(),
        r.pointer_variables,
        r.relations,
        r.solve_stats.passes
    );
    if !r.slowest_files.is_empty() {
        println!("  slowest files:");
        for (file, dur) in r.slowest_files.iter().take(5) {
            let base = file.rsplit('/').next().unwrap_or(file);
            println!("    {:>8.3}s  {base}", dur.as_secs_f64());
        }
    }

    // ---- observational sanity -------------------------------------------
    // The solver must have reached a fixpoint on a non-trivial program and
    // the demand loader must have pulled a sane fraction of the database.
    assert!(r.solve_stats.passes >= 1, "solver never ran a pass");
    assert!(
        r.program_variables > profile.files * 10,
        "suspiciously few variables: {}",
        r.program_variables
    );
    assert!(r.pointer_variables > 0 && r.relations > 0, "empty solution");
    assert!(
        r.load_stats.assigns_loaded <= r.load_stats.assigns_in_file,
        "loader accounting is broken"
    );
    // Streaming link: the reorder buffer must stay bounded by the pool,
    // never approaching the file count (that would mean the old
    // collect-then-link behavior snuck back in).
    assert!(
        r.peak_buffered_units <= (2 * r.jobs).max(1),
        "reorder buffer held {} units for {} jobs",
        r.peak_buffered_units,
        r.jobs
    );
    // Spot-check flow the generator guarantees: some shared global pointer
    // ends up pointing at something.
    let gp_with_targets = (0..64)
        .filter_map(|k| {
            analysis
                .database
                .targets(&format!("gp{k}"))
                .first()
                .copied()
        })
        .filter(|&o| !analysis.points_to.points_to(o).is_empty())
        .count();
    assert!(gp_with_targets > 0, "no gp* global points anywhere");

    let json = format!(
        "{{\n  \"profile\": \"{}\",\n  \"seed\": {},\n  \"loc\": {},\n  \"files\": {},\n  \
         \"source_bytes\": {},\n  \"functions\": {},\n  \"tree_hash\": \"{:016x}\",\n  \
         \"gen_secs\": {gen_secs:.3},\n  \"wall_secs\": {wall_secs:.3},\n  \
         \"lines_per_sec\": {lines_per_sec:.0},\n  \"compile_secs\": {:.3},\n  \
         \"link_secs\": {:.3},\n  \"solve_secs\": {:.3},\n  \"jobs\": {},\n  \
         \"cores\": {cores},\n  \"peak_buffered_units\": {},\n  \"peak_rss_bytes\": {},\n  \
         \"variables\": {},\n  \"assignments\": {},\n  \"pointer_variables\": {},\n  \
         \"relations\": {},\n  \"object_bytes\": {}\n}}\n",
        profile.name,
        gen.seed,
        gen.loc,
        gen.files,
        gen.bytes,
        gen.functions,
        gen.tree_hash,
        r.compile_time.as_secs_f64(),
        r.link_time.as_secs_f64(),
        r.solve_time.as_secs_f64(),
        r.jobs,
        r.peak_buffered_units,
        r.peak_rss_bytes,
        r.program_variables,
        r.assign_counts.total(),
        r.pointer_variables,
        r.relations,
        r.object_size,
    );
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(&out_path, json)?;
    println!("wrote {out_path}");

    // Append-only perf ledger: one line per run, so regressions have a
    // timeline and `cla-tool bench-diff` has something to archive against.
    let history_path = std::env::var("MILLION_HISTORY")
        .unwrap_or_else(|_| "benchmarks/BENCH_history.jsonl".to_string());
    if !history_path.is_empty() {
        let entry = cla::prof::history::HistoryEntry {
            timestamp_secs: cla::prof::history::unix_now(),
            git_rev: cla::prof::history::git_rev(),
            label: profile.name.clone(),
            phases: vec![
                ("gen_secs".to_string(), gen_secs),
                ("wall_secs".to_string(), wall_secs),
                ("compile_secs".to_string(), r.compile_time.as_secs_f64()),
                ("link_secs".to_string(), r.link_time.as_secs_f64()),
                ("solve_secs".to_string(), r.solve_time.as_secs_f64()),
            ],
            peak_rss_bytes: r.peak_rss_bytes,
        };
        cla::prof::history::append(std::path::Path::new(&history_path), &entry)?;
        println!("appended run to {history_path}");
    }

    let _ = std::fs::remove_dir_all(&work_dir);
    if let Ok(ceiling) = std::env::var("MILLION_CEILING_SECS") {
        let ceiling: f64 = ceiling.parse()?;
        assert!(
            wall_secs <= ceiling,
            "cold pipeline took {wall_secs:.2}s — above the {ceiling:.0}s ceiling"
        );
    }
    Ok(())
}
