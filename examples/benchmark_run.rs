//! Run the full pipeline over a synthetic benchmark calibrated to one of
//! the paper's Table 2 rows, and print a Table 3-style result line.
//!
//! ```sh
//! cargo run --release --example benchmark_run -- gimp 0.1
//! ```
//!
//! The first argument picks the benchmark (default `nethack`), the second
//! the scale factor (default 0.1 = 10% of the paper's size).

use cla::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "nethack".to_string());
    let scale: f64 = args
        .next()
        .map_or(0.1, |s| s.parse().expect("scale must be a number"));

    let Some(spec) = by_name(&name) else {
        eprintln!(
            "unknown benchmark `{name}`; available: {}",
            PAPER_BENCHMARKS
                .iter()
                .map(|b| b.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    };

    println!("generating `{name}` at scale {scale} ...");
    let workload = generate(
        spec,
        &GenOptions {
            scale,
            ..Default::default()
        },
    );
    println!(
        "  {} files, {} lines, {} bytes",
        workload.source_files().len(),
        workload.total_lines(),
        workload.total_bytes()
    );

    let mut fs = MemoryFs::new();
    for (p, c) in &workload.files {
        fs.add(p.clone(), c.clone());
    }
    let sources = workload.source_files();

    let opts = PipelineOptions {
        parallel_compile: true,
        ..Default::default()
    };
    let analysis = analyze(&fs, &sources, &opts)?;
    let r = &analysis.report;

    println!("\n== Table 2-style characteristics (generated vs paper x scale) ==");
    let sc = |v: u32| (f64::from(v) * scale).round() as usize;
    println!(
        "  variables:  {:>8}  (paper x scale: {})",
        r.program_variables,
        sc(spec.variables)
    );
    println!(
        "  x = y    :  {:>8}  ({})",
        r.assign_counts.copy,
        sc(spec.copy)
    );
    println!(
        "  x = &y   :  {:>8}  ({})",
        r.assign_counts.addr,
        sc(spec.addr)
    );
    println!(
        "  *x = y   :  {:>8}  ({})",
        r.assign_counts.store,
        sc(spec.store)
    );
    println!(
        "  *x = *y  :  {:>8}  ({})",
        r.assign_counts.store_load,
        sc(spec.store_load)
    );
    println!(
        "  x = *y   :  {:>8}  ({})",
        r.assign_counts.load,
        sc(spec.load)
    );
    println!("  object size: {} bytes", r.object_size);

    println!("\n== Table 3-style results ==");
    println!("  pointer variables:   {}", r.pointer_variables);
    println!("  points-to relations: {}", r.relations);
    println!("  compile time:        {:?}", r.compile_time);
    println!("  link time:           {:?}", r.link_time);
    println!("  analysis time:       {:?}", r.solve_time);
    println!(
        "  assignments in core: {}   loaded: {}   in file: {}",
        r.assigns_in_core(),
        r.load_stats.assigns_loaded,
        r.load_stats.assigns_in_file
    );
    println!(
        "  solver: {} passes, {} edges, {} unifications, ~{} KiB",
        r.solve_stats.passes,
        r.solve_stats.edges_added,
        r.solve_stats.unifications,
        r.solve_stats.approx_bytes / 1024
    );
    Ok(())
}
