//! Frontend torture tests: awkward-but-legal C through the preprocessor,
//! parser, and (where meaningful) the whole analysis.

use cla::cfront::{parse_source, MemoryFs, PpOptions};
use cla::prelude::*;

fn parses(src: &str) {
    parse_source(src, "torture.c").unwrap_or_else(|e| panic!("{e}\n---\n{src}"));
}

fn analyzes(src: &str) -> cla::core::pipeline::Analysis {
    let mut fs = MemoryFs::new();
    fs.add("t.c", src);
    analyze(&fs, &["t.c"], &PipelineOptions::default()).expect("pipeline")
}

#[test]
fn declarator_zoo() {
    parses("int (*f(int, char *))(double);"); // fn returning fn-ptr
    parses("int (*(*g)(void))[4];"); // ptr to fn returning ptr to array
    parses("char *(*(*h[3])(void))[5];"); // array of ptr to fn ...
    parses("int (*const cp)(void);"); // qualified fn pointer (const skipped)
    parses("unsigned long long int big;");
    parses("short int si; long int li; signed char sc;");
    parses("int a[] = {1, 2, 3};"); // unsized array with initializer
    parses("struct { int x; } anon_var;");
    parses("union { int i; char c[4]; } u;");
    parses("typedef int pair_t[2]; pair_t coords;");
    parses("int matrix[2][3][4];");
    parses("void v(int (*cb)(void), int n);");
}

#[test]
fn statement_zoo() {
    parses(
        "void f(int n) {
            switch (n) {
            case 0:
            case 1: n++; break;
            case 2: { int local = n; n = local; } break;
            default: n--;
            }
            do { n--; } while (n > 0);
            for (;;) { if (n) break; else continue; }
        restart:
            if (n < 0) goto restart;
        }",
    );
    parses("void g(void) { ; ; ; {} {{}} }");
    parses("int h(void) { return (1, 2, 3); }");
}

#[test]
fn expression_zoo() {
    parses("int a = sizeof(struct Q { int z; });"); // struct def in sizeof...
    parses("int b = 1 ? 2 : 3 ? 4 : 5;");
    parses("int c = (int)(char)(long)0;");
    parses("unsigned d = ~0u >> 1;");
    parses("int e[4]; int *p = &e[1 + 2];");
    parses("void f(void) { int x; x = x = x; }");
    parses("char s1[] = \"a\" \"b\" \"c\";");
    parses("int neg = - - -1;");
}

#[test]
fn typedef_torture() {
    parses("typedef int T; typedef T U; typedef U V; V v;");
    parses("typedef struct S S; struct S { S *self; }; S s;");
    parses("typedef int (*op_t)(int, int); op_t ops[4];");
    // Shadowing: T is a typedef at file scope, a variable inside f.
    parses("typedef int T; void f(void) { int T; T = 3; }");
    // A typedef used after a storage-class keyword.
    parses("typedef long word; extern word w; static word w2;");
}

#[test]
fn preprocessor_torture() {
    let mut fs = MemoryFs::new();
    fs.add(
        "t.c",
        r#"
#define CAT(a, b) a ## b
#define XCAT(a, b) CAT(a, b)
#define PREFIX var
int XCAT(PREFIX, 1);
#define STR(x) #x
#define XSTR(x) STR(x)
const char *version = XSTR(CAT(2, 0));
#define TWICE(x) ((x) + (x))
#define THRICE(x) (TWICE(x) + (x))
int nine = THRICE(3);
#if defined(PREFIX) && !defined(NOPE) && (1 + 1 == 2)
int guarded;
#endif
#ifdef NOPE
syntax error here does not matter
#endif
"#,
    );
    let parsed = cla::cfront::parse_file(&fs, "t.c", &PpOptions::default()).unwrap();
    let names: Vec<String> = parsed
        .tu
        .items
        .iter()
        .filter_map(|i| match i {
            cla::cfront::ast::ExternalDecl::Declaration(d) => {
                d.items.first().map(|x| x.name.clone())
            }
            cla::cfront::ast::ExternalDecl::Function(f) => Some(f.name.clone()),
        })
        .collect();
    assert!(names.contains(&"var1".to_string()), "{names:?}");
    assert!(names.contains(&"guarded".to_string()), "{names:?}");
    assert!(names.contains(&"nine".to_string()), "{names:?}");
}

#[test]
fn analysis_through_awkward_constructs() {
    // Pointer flow through the conditional operator, comma, casts, and a
    // do-while.
    let a = analyzes(
        "int x, y;
         int *p, *q, *r;
         void f(int cond) {
             p = cond ? &x : &y;
             q = (p, p);
             r = (int *)(void *)p;
             do { r = q; } while (cond);
         }",
    );
    let x = a.database.targets("x")[0];
    let y = a.database.targets("y")[0];
    for name in ["p", "q", "r"] {
        let o = a.database.targets(name)[0];
        assert!(a.points_to.may_point_to(o, x), "{name} -> x");
        assert!(a.points_to.may_point_to(o, y), "{name} -> y");
    }
}

#[test]
fn analysis_through_self_referential_structs() {
    let a = analyzes(
        "struct node { struct node *next; int *val; };
         struct node n1, n2, n3;
         int a, b;
         int *out;
         void f(void) {
             n1.next = &n2;
             n2.next = &n3;
             n1.val = &a;
             n3.val = &b;
             out = n1.next->next->val;
         }",
    );
    // Field-based: node.val is one object holding {a, b}.
    let out = a.database.targets("out")[0];
    assert!(a.points_to.may_point_to(out, a.database.targets("a")[0]));
    assert!(a.points_to.may_point_to(out, a.database.targets("b")[0]));
}

#[test]
fn function_pointer_zoo() {
    let a = analyzes(
        "int t1, t2;
         int *ret1(void) { return &t1; }
         int *ret2(void) { return &t2; }
         int *(*table[2])(void) = { ret1, ret2 };
         typedef int *(*getter)(void);
         getter alias;
         int *r1, *r2, *r3;
         void f(int i) {
             r1 = table[i]();
             alias = table[0];
             r2 = alias();
             r3 = (*alias)();
         }",
    );
    let t1 = a.database.targets("t1")[0];
    let t2 = a.database.targets("t2")[0];
    for name in ["r1", "r2", "r3"] {
        let o = a.database.targets(name)[0];
        assert!(a.points_to.may_point_to(o, t1), "{name} -> t1");
        assert!(a.points_to.may_point_to(o, t2), "{name} -> t2");
    }
}

#[test]
fn kr_functions_analyze() {
    let a = analyzes(
        "int target;
         int *pass(p) int *p; { return p; }
         int *got;
         void main_() { got = pass(&target); }",
    );
    let got = a.database.targets("got")[0];
    let target = a.database.targets("target")[0];
    assert!(a.points_to.may_point_to(got, target));
}

#[test]
fn gnu_flavored_code() {
    parses("__extension__ typedef unsigned long size_t_;");
    parses("int f(void) __attribute__((noreturn));");
    parses("static __inline__ int g(void) { return 0; }");
    parses("int x __attribute__((aligned(16)));");
}

#[test]
fn enum_and_bitfield_interactions() {
    let a = analyzes(
        "enum mode { OFF, SLOW = 5, FAST };
         struct flags { unsigned m : 3; unsigned rest : 29; };
         struct flags fl;
         int store;
         int *p;
         void f(void) {
             fl.m = FAST;
             store = fl.m;
             p = &store;
         }",
    );
    let p = a.database.targets("p")[0];
    assert!(a.points_to.may_point_to(p, a.database.targets("store")[0]));
}

#[test]
fn deep_nesting_does_not_overflow() {
    // Deep expression nesting exercises the recursive-descent parser: up to
    // the nesting limit it parses; beyond it, it reports a clean error
    // instead of overflowing the stack (even in debug builds).
    let mut expr = String::from("x");
    for _ in 0..50 {
        expr = format!("({expr} + 1)");
    }
    parses(&format!("int x; void f(void) {{ x = {expr}; }}"));

    let mut deep = String::from("x");
    for _ in 0..5000 {
        deep = format!("({deep})");
    }
    let err =
        cla::cfront::parse_source(&format!("int x; void f(void) {{ x = {deep}; }}"), "deep.c")
            .unwrap_err();
    assert!(format!("{err}").contains("nested too deeply"), "{err}");

    let stars = "*".repeat(5000);
    let err = cla::cfront::parse_source(&format!("int {stars}p;"), "stars.c").unwrap_err();
    assert!(format!("{err}").contains("nested too deeply"), "{err}");

    let mut chain = String::new();
    for i in 0..300 {
        chain.push_str(&format!("int v{i};\n"));
    }
    for i in 1..300 {
        chain.push_str(&format!("void f{i}(void); "));
    }
    parses(&chain);
}

#[test]
fn long_copy_chain_analyzes_iteratively() {
    // A 2,000-element pointer copy chain: a recursive getLvals would
    // overflow the stack; ours is iterative.
    let n = 2000;
    let mut src = String::from("int base;\n");
    for i in 0..n {
        src.push_str(&format!("int *p{i};\n"));
    }
    src.push_str("void f(void) {\n");
    src.push_str("p0 = &base;\n");
    for i in 1..n {
        src.push_str(&format!("p{i} = p{};\n", i - 1));
    }
    src.push_str("}\n");
    let a = analyzes(&src);
    let last = a.database.targets(&format!("p{}", n - 1))[0];
    let base = a.database.targets("base")[0];
    assert!(a.points_to.may_point_to(last, base));
}
