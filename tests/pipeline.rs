//! Cross-crate integration tests of the full compile-link-analyze pipeline.

use cla::prelude::*;
use cla_depend::{DependOptions, DependenceAnalysis};

fn fs_of(files: &[(&str, &str)]) -> MemoryFs {
    let mut fs = MemoryFs::new();
    for (p, c) in files {
        fs.add(*p, *c);
    }
    fs
}

fn obj(a: &cla::core::pipeline::Analysis, name: &str) -> ObjId {
    *a.database
        .targets(name)
        .first()
        .unwrap_or_else(|| panic!("no object named {name}"))
}

/// Pointer flow across five separately compiled files, through a header,
/// a heap cell, a function pointer table, and back.
#[test]
fn multi_file_flow() {
    let fs = fs_of(&[
        (
            "api.h",
            "#ifndef API_H
#define API_H
struct box { int *contents; };
extern struct box shared_box;
int *fetch(void);
void stash(int *v);
typedef int *(*getter)(void);
extern getter current_getter;
#endif
",
        ),
        (
            "box.c",
            r#"#include "api.h"
struct box shared_box;
void stash(int *v) { shared_box.contents = v; }
"#,
        ),
        (
            "fetch.c",
            r#"#include "api.h"
int *fetch(void) { return shared_box.contents; }
getter current_getter = fetch;
"#,
        ),
        (
            "heap.c",
            r#"#include "api.h"
void *malloc(unsigned long);
int **cell;
void init_cell(void) { cell = malloc(sizeof(int *)); }
void put(int *v) { *cell = v; }
int *get(void) { return *cell; }
"#,
        ),
        (
            "main.c",
            r#"#include "api.h"
extern int **cell;
void init_cell(void);
void put(int *v);
int *get(void);
int secret;
int *via_box, *via_heap, *via_fp;
int main(void) {
    init_cell();
    stash(&secret);
    put(&secret);
    via_box = fetch();
    via_heap = get();
    via_fp = current_getter();
    return 0;
}
"#,
        ),
    ]);
    let a = analyze(
        &fs,
        &["box.c", "fetch.c", "heap.c", "main.c"],
        &PipelineOptions {
            parallel_compile: true,
            ..Default::default()
        },
    )
    .expect("pipeline");
    let secret = obj(&a, "secret");
    for name in ["via_box", "via_heap", "via_fp"] {
        assert!(
            a.points_to.may_point_to(obj(&a, name), secret),
            "{name} should reach secret"
        );
    }
    // Only secret's *address* flows, never its value: the dependence
    // report exists (the name resolves) but lists no dependents.
    let dep = DependenceAnalysis::new(&a.database, &a.points_to);
    let report = dep.analyze("secret", &DependOptions::default()).unwrap();
    assert!(
        report.dependents().is_empty(),
        "secret's value never flows (only its address): {:?}",
        report.dependents()
    );
}

/// The same analysis run twice is deterministic.
#[test]
fn deterministic_pipeline() {
    let fs = fs_of(&[(
        "a.c",
        "int x, y, *p, *q, **pp;
         void f(void) { p = &x; q = &y; pp = &p; *pp = q; p = *pp; }",
    )]);
    let a1 = analyze(&fs, &["a.c"], &PipelineOptions::default()).unwrap();
    let a2 = analyze(&fs, &["a.c"], &PipelineOptions::default()).unwrap();
    assert_eq!(a1.points_to, a2.points_to);
    assert_eq!(a1.report.assign_counts, a2.report.assign_counts);
    assert_eq!(a1.report.object_size, a2.report.object_size);
}

/// Static functions and variables with the same name in different files
/// stay separate; globals unify.
#[test]
fn linkage_rules() {
    let fs = fs_of(&[
        (
            "a.c",
            "static int hidden; int exposed;
             int *pa; void fa(void) { pa = &hidden; }",
        ),
        (
            "b.c",
            "static int hidden; extern int exposed;
             int *pb; void fb(void) { pb = &hidden; }",
        ),
    ]);
    let a = analyze(&fs, &["a.c", "b.c"], &PipelineOptions::default()).unwrap();
    // Two hidden objects, one exposed.
    assert_eq!(a.database.targets("hidden").len(), 2);
    assert_eq!(a.database.targets("exposed").len(), 1);
    // pa and pb point to *different* hidden objects.
    let pa = obj(&a, "pa");
    let pb = obj(&a, "pb");
    let pa_t = a.points_to.points_to(pa);
    let pb_t = a.points_to.points_to(pb);
    assert_eq!(pa_t.len(), 1);
    assert_eq!(pb_t.len(), 1);
    assert_ne!(pa_t[0], pb_t[0]);
}

/// Field-based unification of struct fields across translation units.
#[test]
fn fields_unify_across_units() {
    let fs = fs_of(&[
        (
            "t.h",
            "#ifndef T_H\n#define T_H\nstruct pair { int *first; int *second; };\n#endif\n",
        ),
        (
            "w.c",
            "#include \"t.h\"\nstruct pair w_pair; int w_val;\nvoid w(void) { w_pair.first = &w_val; }\n",
        ),
        (
            "r.c",
            "#include \"t.h\"\nstruct pair r_pair; int *r_out;\nvoid r(void) { r_out = r_pair.first; }\n",
        ),
    ]);
    let a = analyze(&fs, &["w.c", "r.c"], &PipelineOptions::default()).unwrap();
    // Field-based: the write through w_pair is visible through r_pair.
    assert!(a.points_to.may_point_to(obj(&a, "r_out"), obj(&a, "w_val")));
    // And second stays clean.
    assert_eq!(a.database.targets("pair.first").len(), 1);
}

/// Macros, conditional compilation, and include chains survive the whole
/// pipeline.
#[test]
fn preprocessor_integration() {
    let fs = fs_of(&[
        (
            "cfg.h",
            "#define FEATURE 1
#if FEATURE
#define ALIAS(dst, src) dst = src
#else
#define ALIAS(dst, src)
#endif
",
        ),
        (
            "m.c",
            r#"#include "cfg.h"
int from, *to;
void f(void) {
    ALIAS(to, &from);
}
"#,
        ),
    ]);
    let a = analyze(&fs, &["m.c"], &PipelineOptions::default()).unwrap();
    assert!(a.points_to.may_point_to(obj(&a, "to"), obj(&a, "from")));
}

/// The dependence tool works against the linked, demand-loaded database.
#[test]
fn dependence_over_linked_database() {
    let fs = fs_of(&[
        (
            "a.c",
            "short source; short mid; void fa(void) { mid = source; }",
        ),
        (
            "b.c",
            "extern short mid; short sink; void fb(void) { sink = mid >> 1; }",
        ),
    ]);
    let a = analyze(&fs, &["a.c", "b.c"], &PipelineOptions::default()).unwrap();
    let dep = DependenceAnalysis::new(&a.database, &a.points_to);
    let report = dep.analyze("source", &DependOptions::default()).unwrap();
    let by_name: Vec<(String, Strength)> = report
        .dependents()
        .iter()
        .map(|d| (a.database.object(d.obj).name.clone(), d.cost.strength()))
        .collect();
    assert!(
        by_name.contains(&("mid".to_string(), Strength::Strong)),
        "{by_name:?}"
    );
    assert!(
        by_name.contains(&("sink".to_string(), Strength::Weak)),
        "{by_name:?}"
    );
}

/// A workload-generated program survives the entire pipeline and all three
/// solvers agree on it.
#[test]
fn generated_workload_end_to_end() {
    let spec = by_name("burlap").unwrap();
    let w = generate(
        spec,
        &GenOptions {
            scale: 0.03,
            files: 4,
            ..Default::default()
        },
    );
    let mut fs = MemoryFs::new();
    for (p, c) in &w.files {
        fs.add(p.clone(), c.clone());
    }
    let sources = w.source_files();
    let a = analyze(&fs, &sources, &PipelineOptions::default()).expect("pipeline");
    assert!(a.report.relations > 0);
    // Demand loading never exceeds the file and keeps complex in core.
    assert!(a.report.load_stats.assigns_loaded <= a.report.load_stats.assigns_in_file);
    // Cross-check against the in-memory worklist solver.
    let program = a.database.to_unit().unwrap();
    let wl = cla::core::worklist::solve(&program);
    assert_eq!(a.points_to, wl, "demand-loaded pre-transitive vs worklist");
}

/// A global function pointer called indirectly from two different units:
/// both units' argument flows must reach the callee (regression: the linker
/// used to merge the per-unit indirect signatures, dropping one side).
#[test]
fn indirect_calls_from_multiple_units() {
    let fs = fs_of(&[
        (
            "a.c",
            "int *(*handler)(int *);
             int xa; int *ra;
             void ca(void) { ra = handler(&xa); }",
        ),
        (
            "b.c",
            "extern int *(*handler)(int *);
             int xb; int *rb;
             void cb(void) { rb = handler(&xb); }",
        ),
        (
            "c.c",
            "int kept; int *keep;
             int *id(int *v) { keep = v ? *v : kept; return v; }
             extern int *(*handler)(int *);
             void init(void) { handler = id; }",
        ),
    ]);
    let a = analyze(&fs, &["a.c", "b.c", "c.c"], &PipelineOptions::default()).unwrap();
    let xa = obj(&a, "xa");
    let xb = obj(&a, "xb");
    // Both call sites' results see both argument sources (context
    // insensitivity through the shared identity callee), and crucially
    // neither unit's flow is dropped.
    for r in ["ra", "rb"] {
        let ro = obj(&a, r);
        assert!(a.points_to.may_point_to(ro, xa), "{r} must reach xa");
        assert!(a.points_to.may_point_to(ro, xb), "{r} must reach xb");
    }
}

/// Errors in any file abort the pipeline with a located error.
#[test]
fn error_reporting() {
    let fs = fs_of(&[("ok.c", "int x;"), ("bad.c", "int x = ;")]);
    let err = analyze(&fs, &["ok.c", "bad.c"], &PipelineOptions::default()).unwrap_err();
    match &err {
        PipelineError::Frontend(e) => assert_eq!(e.loc().line, 1),
        other => panic!("expected a frontend error, got {other}"),
    }
    let msg = format!("{err}");
    assert!(msg.contains("parse error"), "{msg}");
}
