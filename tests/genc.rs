//! Conformance tests for the shipped generator profiles: each profile in
//! `profiles/` must parse, and the tree the generator emits for it must
//! actually exhibit the declared shape — measured LOC, pointer density, and
//! indirect-call rate within tolerance — and be byte-identical for the same
//! seed. The generator steers emission with the same line classifier the
//! measurer uses, so these are checks on the emitted text itself, not on
//! the generator's intentions.

use cla::prelude::*;
use std::path::{Path, PathBuf};

fn shipped(name: &str) -> Profile {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("profiles/{name}.toml"));
    Profile::load(&path).unwrap_or_else(|e| panic!("profiles/{name}.toml: {e}"))
}

fn temp_tree(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cla-genc-conform-{tag}-{}", std::process::id()))
}

/// Generates `profile` at its own seed and asserts the measured tree sits
/// within tolerance of every declared rate.
fn assert_conforms(profile: &Profile) {
    let dir = temp_tree(&profile.name);
    let _ = std::fs::remove_dir_all(&dir);
    let report = generate_to_dir(profile, profile.seed, &dir).unwrap();
    let m = measure_tree(&dir).unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(m.files, profile.files + 1, "files on disk (+1 header)");
    assert_eq!(m.loc, report.loc, "measurer and generator disagree on LOC");
    assert!(
        m.loc >= profile.total_loc,
        "generated {} loc, below the declared floor {}",
        m.loc,
        profile.total_loc
    );
    assert!(
        (m.loc as f64) < profile.total_loc as f64 * 1.03,
        "generated {} loc, more than 3% over the {} target",
        m.loc,
        profile.total_loc
    );
    assert!(
        (m.pointer_density() - profile.pointer_density).abs() < 0.05,
        "pointer density {:.3} vs declared {:.3}",
        m.pointer_density(),
        profile.pointer_density
    );
    assert!(
        (m.indirect_call_rate() - profile.indirect_call_rate).abs() < 0.02,
        "indirect-call rate {:.3} vs declared {:.3}",
        m.indirect_call_rate(),
        profile.indirect_call_rate
    );
    assert!(
        (m.call_fanout() - profile.call_fanout).abs() < 0.75,
        "call fanout {:.2} vs declared {:.2}",
        m.call_fanout(),
        profile.call_fanout
    );
}

#[test]
fn shipped_profiles_parse_and_validate() {
    let small = shipped("ci-small");
    assert_eq!(small.name, "ci_small");
    assert!(
        small.total_loc <= 20_000,
        "ci-small must stay PR-gate sized"
    );

    let million = shipped("million");
    assert_eq!(million.name, "million");
    assert!(
        million.total_loc >= 1_000_000,
        "the headline profile must declare at least a million lines"
    );
    assert!(
        million.files >= 300,
        "the headline profile must span hundreds of files"
    );
}

#[test]
fn ci_small_tree_conforms_to_its_profile() {
    assert_conforms(&shipped("ci-small"));
}

#[test]
fn same_seed_and_profile_give_a_byte_identical_tree() {
    let profile = shipped("ci-small");
    let collect = |seed: u64| {
        let mut files: Vec<(String, String)> = Vec::new();
        let report = generate_with(&profile, seed, &mut |name, text| {
            files.push((name.to_owned(), text.to_owned()));
            Ok(())
        })
        .unwrap();
        (report, files)
    };
    let (r1, f1) = collect(profile.seed);
    let (r2, f2) = collect(profile.seed);
    assert_eq!(r1.tree_hash, r2.tree_hash);
    assert_eq!(f1, f2, "same seed produced different file contents");

    let (r3, f3) = collect(profile.seed + 1);
    assert_ne!(r1.tree_hash, r3.tree_hash, "seed does not reach the output");
    assert_ne!(f1, f3);
}

/// The full headline conformance run: generates the actual million-line
/// tree and measures it. Several seconds of work, so it is ignored in the
/// PR gate; the CI `million` job runs it (and the end-to-end bench) in
/// release mode.
#[test]
#[ignore = "full million-line generation; run by the CI million job"]
fn million_tree_conforms_to_its_profile() {
    assert_conforms(&shipped("million"));
}
