//! Multi-tenant hub integration tests: session routing and isolation over
//! TCP, lifecycle commands, LRU eviction with snapshot-backed rehydration
//! and monotonic epochs, typed busy refusals, per-tenant metrics, and the
//! acceptance stress test — hundreds of concurrent clients across a dozen
//! sessions racing reloads and evictions, every answer checked against its
//! session's per-epoch oracle.

use cla::hub::{dispatch, hub_serve, Hub, HubOptions, SessionSource, SessionSpec};
use cla::obs::parse_exposition;
use cla::prelude::*;
use cla::serve::json::{obj, Value};
use std::collections::{BTreeSet, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU8, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// A test directory that cleans up after itself even on panic.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("cla-hub-it-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// An in-memory tenant source compiled from one literal source file.
fn mem_source(src: &str) -> SessionSource {
    let mut fs = MemoryFs::new();
    fs.add("a.c", src);
    SessionSource::Files {
        fs: Arc::new(fs),
        files: vec!["a.c".to_string()],
        pp: PpOptions::default(),
        lower: LowerOptions::default(),
        lenient: false,
    }
}

fn spec(source: SessionSource, snapshot_dir: Option<PathBuf>) -> SessionSpec {
    SessionSpec {
        source,
        solve: SolveOptions::default(),
        snapshot_dir,
        jobs: 1,
    }
}

/// The two on-disk versions of session `i`'s program. Variable names are
/// suffixed with the session index, so an answer routed to the wrong
/// session fails loudly (unknown variable) instead of silently matching.
fn version_source(i: usize, version: u8) -> String {
    let target = if version == 0 { "x" } else { "y" };
    format!(
        "int x_s{i}; int y_s{i}; int *p_s{i};\n\
         void f_s{i}(void) {{ p_s{i} = &{target}_s{i}; }}\n"
    )
}

/// Atomically (re)writes session `i`'s source so a concurrent rebuild
/// reads the old or the new program, never a torn file.
fn write_version(dir: &Path, i: usize, version: u8) -> PathBuf {
    let path = dir.join(format!("s{i}.c"));
    cla::cladb::atomic_write_bytes(&path, version_source(i, version).as_bytes()).unwrap();
    path
}

fn disk_source(path: &Path) -> SessionSource {
    SessionSource::Files {
        fs: Arc::new(OsFs),
        files: vec![path.to_string_lossy().into_owned()],
        pp: PpOptions::default(),
        lower: LowerOptions::default(),
        lenient: false,
    }
}

fn ask(client: &mut Client, req: &Value) -> Value {
    client.request(req).expect("hub reply")
}

fn target_names(reply: &Value) -> BTreeSet<String> {
    reply
        .get("targets")
        .and_then(Value::as_arr)
        .expect("targets array")
        .iter()
        .map(|t| t.get("name").and_then(Value::as_str).unwrap().to_string())
        .collect()
}

fn points_to(session: &str, var: &str) -> Value {
    obj([
        ("cmd", "points-to".into()),
        ("session", session.into()),
        ("var", var.into()),
    ])
}

/// Two sessions that use the *same* variable names with different
/// bindings: routing by the `session` field is the only thing that can
/// tell them apart.
#[test]
fn sessions_are_isolated_by_name() {
    let hub = Arc::new(Hub::new(HubOptions::default()));
    hub.open(
        "iso-a",
        spec(
            mem_source("int x; int y; int *p; void f(void) { p = &x; }"),
            None,
        ),
    )
    .unwrap();
    hub.open(
        "iso-b",
        spec(
            mem_source("int x; int y; int *p; void f(void) { p = &y; }"),
            None,
        ),
    )
    .unwrap();

    let handle = hub_serve(Arc::clone(&hub), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(&Endpoint::Tcp(handle.addr().to_string())).unwrap();

    let a = ask(&mut client, &points_to("iso-a", "p"));
    assert_eq!(a.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(a.get("session").and_then(Value::as_str), Some("iso-a"));
    assert_eq!(target_names(&a), BTreeSet::from(["x".to_string()]));

    let b = ask(&mut client, &points_to("iso-b", "p"));
    assert_eq!(target_names(&b), BTreeSet::from(["y".to_string()]));

    // Tenant commands without a session are refused, not guessed.
    let missing = ask(
        &mut client,
        &obj([("cmd", "points-to".into()), ("var", "p".into())]),
    );
    assert_eq!(missing.get("ok").and_then(Value::as_bool), Some(false));

    // Unknown sessions get a typed error that echoes the name.
    let unknown = ask(&mut client, &points_to("nope", "p"));
    assert_eq!(unknown.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(unknown.get("session").and_then(Value::as_str), Some("nope"));

    handle.stop();
}

/// The full wire lifecycle: `open` a session from on-disk sources, query
/// it, list it, `close` it, and observe the typed error afterwards.
#[test]
fn lifecycle_over_the_wire() {
    let dir = TempDir::new("lifecycle");
    let src = write_version(dir.path(), 7, 0);

    let hub = Arc::new(Hub::new(HubOptions::default()));
    let handle = hub_serve(Arc::clone(&hub), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(&Endpoint::Tcp(handle.addr().to_string())).unwrap();

    let opened = ask(
        &mut client,
        &obj([
            ("cmd", "open".into()),
            ("session", "wire".into()),
            (
                "files",
                Value::Arr(vec![src.to_string_lossy().into_owned().into()]),
            ),
        ]),
    );
    assert_eq!(
        opened.get("ok").and_then(Value::as_bool),
        Some(true),
        "{opened:?}"
    );
    assert_eq!(opened.get("epoch").and_then(Value::as_u64), Some(0));

    // Bad names are rejected before anything is built.
    let bad = ask(
        &mut client,
        &obj([("cmd", "open".into()), ("session", "no spaces".into())]),
    );
    assert_eq!(bad.get("ok").and_then(Value::as_bool), Some(false));

    // Opening the same name twice is a typed duplicate error.
    let dup = ask(
        &mut client,
        &obj([
            ("cmd", "open".into()),
            ("session", "wire".into()),
            (
                "files",
                Value::Arr(vec![src.to_string_lossy().into_owned().into()]),
            ),
        ]),
    );
    assert_eq!(dup.get("ok").and_then(Value::as_bool), Some(false));

    let answer = ask(&mut client, &points_to("wire", "p_s7"));
    assert_eq!(target_names(&answer), BTreeSet::from(["x_s7".to_string()]));

    let listing = ask(&mut client, &obj([("cmd", "sessions".into())]));
    assert_eq!(listing.get("ok").and_then(Value::as_bool), Some(true));
    let sessions = listing.get("sessions").and_then(Value::as_arr).unwrap();
    assert!(sessions.iter().any(|s| {
        s.get("session").and_then(Value::as_str) == Some("wire")
            && s.get("state").and_then(Value::as_str) == Some("resident")
    }));

    let closed = ask(
        &mut client,
        &obj([("cmd", "close".into()), ("session", "wire".into())]),
    );
    assert_eq!(closed.get("ok").and_then(Value::as_bool), Some(true));
    let gone = ask(&mut client, &points_to("wire", "p_s7"));
    assert_eq!(gone.get("ok").and_then(Value::as_bool), Some(false));

    handle.stop();
}

/// With capacity 1 and three tenants, every switch evicts the previous
/// tenant; returning to an evicted one rehydrates it from its snapshot
/// with a *higher* epoch, and the answers survive the round trip.
#[test]
fn eviction_rehydrates_from_snapshot_with_monotonic_epochs() {
    let dir = TempDir::new("evict");
    let hub = Arc::new(Hub::new(HubOptions {
        capacity: 1,
        ..HubOptions::default()
    }));
    for i in 0..3usize {
        let src = write_version(dir.path(), i, 0);
        let snap = dir.path().join(format!("snap-{i}"));
        std::fs::create_dir_all(&snap).unwrap();
        hub.open(&format!("ev{i}"), spec(disk_source(&src), Some(snap)))
            .unwrap();
    }
    // Opening ev1 and ev2 (capacity 1) must have evicted predecessors.
    assert!(
        hub.sessions().iter().any(|s| s.state == "evicted"),
        "capacity 1 with 3 tenants must leave evicted sessions"
    );

    let handle = hub_serve(Arc::clone(&hub), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(&Endpoint::Tcp(handle.addr().to_string())).unwrap();

    // Cycle through the tenants a few times; each revisit is a
    // rehydration and must answer correctly at a strictly higher epoch.
    let mut last_epoch: HashMap<usize, u64> = HashMap::new();
    for round in 0..3 {
        for i in 0..3usize {
            let reply = ask(
                &mut client,
                &points_to(&format!("ev{i}"), &format!("p_s{i}")),
            );
            assert_eq!(
                reply.get("ok").and_then(Value::as_bool),
                Some(true),
                "round {round}: {reply:?}"
            );
            assert_eq!(target_names(&reply), BTreeSet::from([format!("x_s{i}")]));
            let epoch = reply.get("epoch").and_then(Value::as_u64).unwrap();
            if let Some(prev) = last_epoch.insert(i, epoch) {
                assert!(
                    epoch > prev,
                    "ev{i}: epoch must grow across rehydration ({prev} -> {epoch})"
                );
            }
        }
    }
    let counters = hub.tenant_counters("ev0");
    assert!(counters.evictions >= 1, "ev0 was never evicted");
    assert!(counters.rehydrations >= 1, "ev0 was never rehydrated");

    // Rehydration came from the snapshot store, not a cold re-solve.
    let health = ask(
        &mut client,
        &obj([("cmd", "health".into()), ("session", "ev0".into())]),
    );
    assert_eq!(
        health.get("snapshot_loaded").and_then(Value::as_bool),
        Some(true),
        "rehydration must warm-start from the snapshot: {health:?}"
    );

    handle.stop();
}

/// A tenant at its in-flight cap refuses immediately with a typed `busy`
/// reply instead of queueing the connection thread.
#[test]
fn busy_refusal_is_typed_and_immediate() {
    let hub = Arc::new(Hub::new(HubOptions {
        max_inflight: 1,
        ..HubOptions::default()
    }));
    hub.open(
        "busy",
        spec(mem_source("int x; int *p; void f(void) { p = &x; }"), None),
    )
    .unwrap();

    let (entered_tx, entered_rx) = std::sync::mpsc::channel::<()>();
    let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
    let holder = {
        let hub = Arc::clone(&hub);
        std::thread::spawn(move || {
            hub.with_session("busy", |_, _| {
                entered_tx.send(()).unwrap();
                release_rx.recv().unwrap();
            })
            .unwrap();
        })
    };
    entered_rx.recv().unwrap();

    // The slot is occupied: the wire reply is an immediate typed refusal.
    let reply = dispatch(
        &hub,
        "{\"cmd\":\"points-to\",\"var\":\"p\",\"session\":\"busy\"}",
    );
    assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(reply.get("busy").and_then(Value::as_bool), Some(true));
    assert_eq!(reply.get("session").and_then(Value::as_str), Some("busy"));

    release_tx.send(()).unwrap();
    holder.join().unwrap();

    // Once the in-flight request drains, the same query succeeds.
    let reply = dispatch(
        &hub,
        "{\"cmd\":\"points-to\",\"var\":\"p\",\"session\":\"busy\"}",
    );
    assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(true));
}

/// The acceptance stress test: 12 named sessions behind an LRU of 6, over
/// 100 concurrent TCP clients, with mutator threads racing source flips
/// and forced reloads against evictions and rehydrations. Every answer is
/// checked against the session's per-epoch oracle: within one (session,
/// epoch) pair all clients must see the same binding, and the binding
/// must always be one of the two legal program versions. Client-observed
/// p99 stays under a fixed bound and the per-tenant counters and
/// percentiles show up in the Prometheus exposition.
#[test]
fn stress_many_clients_many_sessions_racing_reloads_and_evictions() {
    const SESSIONS: usize = 12;
    const CAPACITY: usize = 6;
    const CLIENTS: usize = 100;
    const REQUESTS_PER_CLIENT: usize = 20;
    const MUTATORS: usize = 2;
    const FLIPS_PER_MUTATOR: usize = 30;
    const P99_BOUND_US: u64 = 2_000_000;

    let dir = TempDir::new("stress");
    let hub = Arc::new(Hub::new(HubOptions {
        capacity: CAPACITY,
        max_inflight: 64,
        rebuild_slots: 2,
        ..HubOptions::default()
    }));
    let mut sources = Vec::new();
    for i in 0..SESSIONS {
        let src = write_version(dir.path(), i, 0);
        let snap = dir.path().join(format!("snap-{i}"));
        std::fs::create_dir_all(&snap).unwrap();
        hub.open(&format!("s{i}"), spec(disk_source(&src), Some(snap)))
            .unwrap();
        sources.push(src);
    }
    let handle = hub_serve(Arc::clone(&hub), "127.0.0.1:0").unwrap();
    let addr = handle.addr().to_string();

    // The oracle: the first answer observed at a (session, epoch) pins the
    // binding; every later answer at the same pair must agree, and the
    // binding must be one of the two versions that were ever on disk.
    type Oracle = Mutex<HashMap<(usize, u64), BTreeSet<String>>>;
    let oracle: Arc<Oracle> = Arc::new(Mutex::new(HashMap::new()));
    let errors: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let latencies: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let versions: Arc<Vec<AtomicU8>> = Arc::new((0..SESSIONS).map(|_| AtomicU8::new(0)).collect());

    // A tiny deterministic LCG stands in for a rand dependency.
    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    let check = |reply: &Value, session: usize| -> Result<(), String> {
        if reply.get("ok").and_then(Value::as_bool) != Some(true) {
            // A typed busy refusal is legal backpressure; anything else
            // (unknown variable, build failure, missing session) is a bug.
            if reply.get("busy").and_then(Value::as_bool) == Some(true) {
                return Ok(());
            }
            return Err(format!("s{session}: error reply {:?}", reply.encode()));
        }
        let epoch = reply
            .get("epoch")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("s{session}: reply without epoch"))?;
        let names = target_names(reply);
        let legal_a = BTreeSet::from([format!("x_s{session}")]);
        let legal_b = BTreeSet::from([format!("y_s{session}")]);
        if names != legal_a && names != legal_b {
            return Err(format!("s{session}@{epoch}: impossible binding {names:?}"));
        }
        let mut oracle = oracle.lock().unwrap();
        match oracle.get(&(session, epoch)) {
            Some(pinned) if *pinned != names => Err(format!(
                "s{session}@{epoch}: answer flapped within one epoch: {pinned:?} vs {names:?}"
            )),
            Some(_) => Ok(()),
            None => {
                oracle.insert((session, epoch), names);
                Ok(())
            }
        }
    };

    std::thread::scope(|scope| {
        // Mutator threads: flip a session's program on disk (atomically),
        // then force a reload through the wire — racing the LRU, other
        // mutators, and every query thread.
        for m in 0..MUTATORS {
            let addr = addr.clone();
            let dir = dir.path().to_path_buf();
            let versions = Arc::clone(&versions);
            let errors = Arc::clone(&errors);
            scope.spawn(move || {
                let mut client = Client::connect(&Endpoint::Tcp(addr)).unwrap();
                let mut rng = 0x9e3779b97f4a7c15u64.wrapping_add(m as u64);
                for _ in 0..FLIPS_PER_MUTATOR {
                    let i = (lcg(&mut rng) as usize) % SESSIONS;
                    let v = versions[i].fetch_xor(1, SeqCst) ^ 1;
                    write_version(&dir, i, v);
                    let reply = client
                        .request(&obj([
                            ("cmd", "reload".into()),
                            ("session", format!("s{i}").into()),
                            ("force", true.into()),
                        ]))
                        .expect("reload reply");
                    if reply.get("ok").and_then(Value::as_bool) != Some(true)
                        && reply.get("busy").and_then(Value::as_bool) != Some(true)
                    {
                        errors.lock().unwrap().push(format!(
                            "mutator {m}: reload s{i} failed: {}",
                            reply.encode()
                        ));
                    }
                }
            });
        }

        for c in 0..CLIENTS {
            let addr = addr.clone();
            let errors = Arc::clone(&errors);
            let latencies = Arc::clone(&latencies);
            let check = &check;
            scope.spawn(move || {
                let mut client = Client::connect(&Endpoint::Tcp(addr)).unwrap();
                let mut rng = 0x243f6a8885a308d3u64.wrapping_add(c as u64);
                let mut local = Vec::with_capacity(REQUESTS_PER_CLIENT);
                for r in 0..REQUESTS_PER_CLIENT {
                    // First request pins this client's "home" session so all
                    // twelve tenants see traffic; later picks are random.
                    let i = if r == 0 {
                        c % SESSIONS
                    } else {
                        (lcg(&mut rng) as usize) % SESSIONS
                    };
                    let t0 = std::time::Instant::now();
                    let reply = client
                        .request(&points_to(&format!("s{i}"), &format!("p_s{i}")))
                        .expect("query reply");
                    local.push(t0.elapsed().as_micros() as u64);
                    if let Err(e) = check(&reply, i) {
                        errors.lock().unwrap().push(e);
                    }
                }
                latencies.lock().unwrap().extend(local);
            });
        }
    });

    let errors = errors.lock().unwrap();
    assert!(
        errors.is_empty(),
        "oracle violations: {:#?}",
        &errors[..errors.len().min(10)]
    );

    let mut lat = latencies.lock().unwrap().clone();
    assert_eq!(lat.len(), CLIENTS * REQUESTS_PER_CLIENT);
    lat.sort_unstable();
    let p99 = lat[(lat.len() * 99) / 100 - 1];
    assert!(
        p99 < P99_BOUND_US,
        "client-observed p99 {p99}us exceeds {P99_BOUND_US}us"
    );

    // The LRU actually churned: with 12 tenants behind 6 slots, evictions
    // and snapshot rehydrations are structural, not incidental.
    let totals: Vec<_> = (0..SESSIONS)
        .map(|i| hub.tenant_counters(&format!("s{i}")))
        .collect();
    let evictions: u64 = totals.iter().map(|t| t.evictions).sum();
    let rehydrations: u64 = totals.iter().map(|t| t.rehydrations).sum();
    assert!(evictions > 0, "no tenant was ever evicted");
    assert!(rehydrations > 0, "no tenant was ever rehydrated");
    assert!(
        totals.iter().all(|t| t.requests > 0),
        "every tenant must have seen traffic"
    );

    // Per-tenant counters and latency percentiles are in the exposition.
    let metrics = dispatch(&hub, "{\"cmd\":\"metrics\"}");
    let text = metrics.get("metrics").and_then(Value::as_str).unwrap();
    let samples = parse_exposition(text).expect("exposition must parse");
    for i in 0..SESSIONS {
        let session = format!("s{i}");
        let labeled = |name: &str| {
            samples.iter().find(|s| {
                s.name == name
                    && s.labels
                        .iter()
                        .any(|(k, v)| k == "session" && *v == session)
            })
        };
        let requests = labeled("cla_hub_requests_total")
            .unwrap_or_else(|| panic!("no per-tenant request counter for {session}"));
        assert!(requests.value > 0.0);
        assert!(
            labeled("cla_hub_latency_p99_us").is_some(),
            "no per-tenant p99 gauge for {session}"
        );
        assert!(
            labeled("cla_hub_latency_us_count").is_some(),
            "no per-tenant latency histogram for {session}"
        );
    }

    handle.stop();
}
