//! Integration tests for the observability layer: a full pipeline run must
//! emit a well-formed trace with spans from every layer (frontend, object
//! database, solver), and the Chrome JSONL writer's on-disk format must
//! parse line by line with balanced begin/end events.
//!
//! The trace sink is process-global, so everything that installs a sink
//! lives in this single test function — parallel test threads must not
//! fight over it.

use cla::obs::{self, MemorySink, Phase};
use cla::prelude::*;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

fn sample_fs() -> MemoryFs {
    let mut fs = MemoryFs::new();
    fs.add(
        "a.c",
        "int x, y; int *p, **pp; void fa(void) { p = &x; pp = &p; *pp = &y; }",
    );
    fs.add("b.c", "extern int *p; int *q; void fb(void) { q = p; }");
    fs
}

#[test]
fn pipeline_trace_is_balanced_and_layers_all_appear() {
    let obs = obs::global();

    // --- In-memory sink: inspect events structurally. ---
    let sink = Arc::new(MemorySink::new());
    obs.set_trace_sink(Some(sink.clone()));
    let fs = sample_fs();
    let analysis = analyze(&fs, &["a.c", "b.c"], &PipelineOptions::default()).unwrap();
    obs.set_trace_sink(None);
    let events = sink.take();
    assert!(!events.is_empty(), "tracing produced no events");

    // Every B has a matching E on the same thread, properly nested.
    let mut open: HashMap<u64, Vec<String>> = HashMap::new();
    for ev in &events {
        match ev.ph {
            Phase::Begin => open.entry(ev.tid).or_default().push(ev.name.clone()),
            Phase::End => {
                let top = open.entry(ev.tid).or_default().pop();
                assert_eq!(top.as_deref(), Some(ev.name.as_str()), "mismatched E");
            }
            _ => {}
        }
    }
    assert!(open.values().all(Vec::is_empty), "unclosed spans: {open:?}");

    // One run crosses every layer: pipeline phases, frontend, database,
    // solver. (The serve category is exercised in tests/serve.rs.)
    let cats: BTreeSet<&str> = events.iter().map(|e| e.cat).collect();
    for cat in ["pipeline", "front", "db", "solve"] {
        assert!(cats.contains(cat), "no `{cat}` spans in {cats:?}");
    }

    // Satellite 1: the Report's phase times come from the same spans the
    // trace records, so each pipeline span's duration matches the Report.
    let dur_of = |name: &str| {
        let b = events
            .iter()
            .find(|e| e.name == name && matches!(e.ph, Phase::Begin))
            .unwrap();
        let e = events
            .iter()
            .find(|e| e.name == name && matches!(e.ph, Phase::End))
            .unwrap();
        e.ts_us - b.ts_us
    };
    let r = &analysis.report;
    for (name, reported) in [
        ("pipeline.compile", r.compile_time),
        ("pipeline.link", r.link_time),
        ("pipeline.solve", r.solve_time),
    ] {
        let traced = dur_of(name);
        let reported_us = reported.as_micros() as u64;
        // The two figures are reads of the same span a few instructions
        // apart; a generous slack keeps loaded CI machines from flaking.
        assert!(
            traced.abs_diff(reported_us) <= 250,
            "`{name}`: trace says {traced}us, Report says {reported_us}us"
        );
    }

    // Per-pass solver spans carry the Figure 5 delta fields.
    let pass = events
        .iter()
        .find(|e| e.name == "solve.pass" && matches!(e.ph, Phase::End))
        .expect("no solve.pass span");
    let keys: BTreeSet<&str> = pass.args.iter().map(|(k, _)| *k).collect();
    for key in [
        "getlvals_calls",
        "cache_hits",
        "unifications",
        "edges_added",
    ] {
        assert!(keys.contains(key), "solve.pass missing `{key}`: {keys:?}");
    }

    // The global registry now holds demand-load and solver counters.
    let text = obs.prometheus_text();
    let samples = obs::parse_exposition(&text).unwrap();
    let value_of = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing `{name}` in exposition"))
            .value
    };
    assert!(value_of("cla_db_assigns_loaded_total") >= 1.0);
    assert!(value_of("cla_solve_passes_total") >= 1.0);
    assert!(value_of("cla_front_files_total") >= 2.0);

    // --- Chrome JSONL writer: the on-disk streaming format. ---
    let path = std::env::temp_dir().join(format!("cla-obs-it-{}.json", std::process::id()));
    let writer = obs::ChromeTraceWriter::create(&path).unwrap();
    obs.set_trace_sink(Some(Arc::new(writer)));
    let fs = sample_fs();
    let _ = analyze(&fs, &["a.c", "b.c"], &PipelineOptions::default()).unwrap();
    obs.set_trace_sink(None);

    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines = text.lines();
    assert_eq!(lines.next(), Some("["), "streaming array header");
    let mut balance: HashMap<u64, i64> = HashMap::new();
    let mut parsed = 0usize;
    for line in lines {
        let line = line.trim_end_matches(',');
        if line.is_empty() {
            continue;
        }
        let v = cla::serve::json::parse(line)
            .unwrap_or_else(|e| panic!("unparseable trace line {line:?}: {e}"));
        use cla::serve::json::Value;
        let ph = v.get("ph").and_then(Value::as_str).unwrap();
        let tid = v.get("tid").and_then(Value::as_u64).unwrap();
        *balance.entry(tid).or_default() += match ph {
            "B" => 1,
            "E" => -1,
            _ => 0,
        };
        parsed += 1;
    }
    assert!(parsed > 5, "only {parsed} events in the file");
    assert!(
        balance.values().all(|&n| n == 0),
        "unbalanced B/E per tid: {balance:?}"
    );
    let _ = std::fs::remove_file(&path);
}
