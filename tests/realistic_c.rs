//! A realistic miniature C program — a linked list, an intrusive hash
//! table, a callback registry, and an arena allocator — pushed through the
//! whole pipeline, with precise assertions about the points-to facts and
//! dependence results.

use cla::prelude::*;
use cla_depend::{DependOptions, DependenceAnalysis};

const LIST_H: &str = r#"
#ifndef LIST_H
#define LIST_H
struct list_node {
    struct list_node *next;
    void *payload;
};
struct list {
    struct list_node *head;
    int length;
};
void list_push(struct list *l, void *payload);
void *list_top(struct list *l);
#endif
"#;

const LIST_C: &str = r#"
#include "list.h"
void *arena_alloc(unsigned long n);

void list_push(struct list *l, void *payload) {
    struct list_node *n = arena_alloc(sizeof(struct list_node));
    n->next = l->head;
    n->payload = payload;
    l->head = n;
    l->length = l->length + 1;
}

void *list_top(struct list *l) {
    if (l->head)
        return l->head->payload;
    return 0;
}
"#;

const HASH_H: &str = r#"
#ifndef HASH_H
#define HASH_H
struct hash_entry {
    struct hash_entry *chain;
    const char *key;
    int *value;
};
#define NBUCKETS 64
struct hash_table {
    struct hash_entry *buckets[NBUCKETS];
    unsigned count;
};
void hash_put(struct hash_table *t, const char *key, int *value);
int *hash_get(struct hash_table *t, const char *key);
#endif
"#;

const HASH_C: &str = r#"
#include "hash.h"
void *arena_alloc(unsigned long n);

static unsigned hash_string(const char *s) {
    unsigned h = 5381;
    while (*s) {
        h = (h << 5) + h + (unsigned)*s;
        s++;
    }
    return h;
}

void hash_put(struct hash_table *t, const char *key, int *value) {
    unsigned b = hash_string(key) % NBUCKETS;
    struct hash_entry *e = arena_alloc(sizeof(struct hash_entry));
    e->chain = t->buckets[b];
    e->key = key;
    e->value = value;
    t->buckets[b] = e;
    t->count++;
}

int *hash_get(struct hash_table *t, const char *key) {
    unsigned b = hash_string(key) % NBUCKETS;
    struct hash_entry *e;
    for (e = t->buckets[b]; e; e = e->chain) {
        if (e->key == key)
            return e->value;
    }
    return 0;
}
"#;

const ARENA_C: &str = r#"
static char arena[1 << 16];
static unsigned long arena_used;

void *arena_alloc(unsigned long n) {
    void *p = &arena[arena_used];
    arena_used += n;
    return p;
}
"#;

const MAIN_C: &str = r#"
#include "list.h"
#include "hash.h"

typedef void (*event_handler)(int *);

static event_handler handlers[8];
static int handler_count;

void register_handler(event_handler h) {
    handlers[handler_count++] = h;
}

void fire_all(int *arg) {
    int i;
    for (i = 0; i < handler_count; i++)
        handlers[i](arg);
}

int observed_value;
int *last_seen;
void observe(int *v) { last_seen = v; observed_value = *v; }

struct list work_queue;
struct hash_table config;
int threshold;
short raw_reading;
short scaled_reading;

int main(void) {
    hash_put(&config, "threshold", &threshold);
    list_push(&work_queue, hash_get(&config, "threshold"));
    register_handler(observe);
    fire_all(list_top(&work_queue));
    scaled_reading = raw_reading + 1;
    return 0;
}
"#;

fn build() -> cla::core::pipeline::Analysis {
    let mut fs = MemoryFs::new();
    fs.add("list.h", LIST_H);
    fs.add("hash.h", HASH_H);
    fs.add("list.c", LIST_C);
    fs.add("hash.c", HASH_C);
    fs.add("arena.c", ARENA_C);
    fs.add("main.c", MAIN_C);
    analyze(
        &fs,
        &["list.c", "hash.c", "arena.c", "main.c"],
        &PipelineOptions {
            parallel_compile: true,
            ..Default::default()
        },
    )
    .expect("pipeline")
}

fn obj(a: &cla::core::pipeline::Analysis, name: &str) -> ObjId {
    *a.database
        .targets(name)
        .first()
        .unwrap_or_else(|| panic!("no object named {name}"))
}

#[test]
fn pointer_facts() {
    let a = build();
    let threshold = obj(&a, "threshold");

    // &threshold went into the hash table's value field...
    let value_field = obj(&a, "hash_entry.value");
    assert!(a.points_to.may_point_to(value_field, threshold));

    // ... came back out of hash_get, through the list payload ...
    let payload = obj(&a, "list_node.payload");
    assert!(a.points_to.may_point_to(payload, threshold));

    // ... and reached the observer through the function-pointer table.
    let last_seen = obj(&a, "last_seen");
    assert!(
        a.points_to.may_point_to(last_seen, threshold),
        "threshold must flow through hash -> list -> indirect call"
    );

    // The handler table points at observe.
    let handlers = obj(&a, "handlers");
    let observe = obj(&a, "observe");
    assert!(a.points_to.may_point_to(handlers, observe));

    // List nodes live in the arena allocation site.
    let head = obj(&a, "list.head");
    let site: Vec<String> = a
        .points_to
        .points_to(head)
        .iter()
        .map(|&t| a.database.object(t).name.clone())
        .collect();
    assert!(
        site.iter().any(|s| s.starts_with("heap@") || s == "arena"),
        "list head points at the arena allocation: {site:?}"
    );
}

#[test]
fn dependence_facts() {
    let a = build();
    let dep = DependenceAnalysis::new(&a.database, &a.points_to);

    // Changing raw_reading's type requires changing scaled_reading (strong,
    // through +).
    let report = dep
        .analyze("raw_reading", &DependOptions::default())
        .unwrap();
    let names: Vec<String> = report
        .dependents()
        .iter()
        .map(|d| a.database.object(d.obj).name.clone())
        .collect();
    assert!(names.contains(&"scaled_reading".to_string()), "{names:?}");

    // threshold's *value* flows to observed_value via *v in the handler.
    let report = dep.analyze("threshold", &DependOptions::default()).unwrap();
    let names: Vec<String> = report
        .dependents()
        .iter()
        .map(|d| a.database.object(d.obj).name.clone())
        .collect();
    assert!(
        names.contains(&"observed_value".to_string()),
        "threshold -> *v -> observed_value: {names:?}"
    );
}

#[test]
fn solver_agreement_on_realistic_code() {
    let a = build();
    let program = a.database.to_unit().unwrap();
    let wl = cla::core::worklist::solve(&program);
    assert_eq!(a.points_to, wl, "pre-transitive (demand) vs worklist");
    let bv = cla::core::bitvector::solve(&program);
    assert_eq!(a.points_to, bv, "pre-transitive vs bit-vector");
    let st = cla::core::steensgaard::solve(&program);
    assert!(a.points_to.subsumed_by(&st));
}

#[test]
fn preprocessor_handled_the_real_constructs() {
    let a = build();
    // NBUCKETS macro expanded into the array size; include guards worked
    // (hash.h parsed once per unit); the static hash function stayed local.
    assert_eq!(a.database.targets("hash_string").len(), 1);
    let r = &a.report;
    assert!(r.files == 4);
    assert!(r.assign_counts.total() > 40);
}
