//! Link determinism: the same compiled units in the same order must
//! produce byte-identical object files (so content-addressed caching and
//! snapshot provenance hashing are stable), and a permuted unit order must
//! still produce a semantically equivalent database — every by-name
//! points-to answer identical, even though internal ids may differ.

use cla::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

const SOURCES: [(&str, &str); 3] = [
    (
        "a.c",
        "int x, y; int *p; int **pp; void fa(void) { p = &x; pp = &p; *pp = &y; }",
    ),
    (
        "b.c",
        "extern int *p; int *q; int w; void fb(void) { q = p; *q = w; }",
    ),
    (
        "c.c",
        "extern int *q; int *t; int u; void fc(int *arg) { t = arg; } void fd(void) { fc(q); fc(&u); }",
    ),
];

fn compile_units() -> Vec<CompiledUnit> {
    SOURCES
        .iter()
        .map(|(name, text)| compile_source(text, name, &LowerOptions::default()).unwrap())
        .collect()
}

/// By-name points-to map: variable name → set of pointee names, unioned
/// over same-named objects. Names survive permutation; ids do not.
fn answers_by_name(bytes: Vec<u8>) -> BTreeMap<String, BTreeSet<String>> {
    let db = Database::open(bytes).unwrap();
    let (pts, _) = solve_database(&db, SolveOptions::default());
    let mut out: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (id, obj) in db.objects().iter().enumerate() {
        let entry = out.entry(obj.name.clone()).or_default();
        for &t in pts.points_to(ObjId(id as u32)) {
            entry.insert(db.object(t).name.clone());
        }
    }
    out
}

#[test]
fn same_units_same_order_link_byte_identically() {
    let units = compile_units();
    let (prog_a, _) = link(&units, "a.out");
    let (prog_b, _) = link(&units, "a.out");
    let bytes_a = write_object(&prog_a);
    let bytes_b = write_object(&prog_b);
    assert_eq!(
        bytes_a, bytes_b,
        "relinking identical inputs changed the output bytes"
    );
}

#[test]
fn recompiling_from_scratch_is_also_byte_identical() {
    // The full compile + link + write path must be reproducible, not just
    // the linker: cache keys and snapshot provenance both hash these bytes.
    let (a, _) = link(&compile_units(), "a.out");
    let (b, _) = link(&compile_units(), "a.out");
    assert_eq!(write_object(&a), write_object(&b));
}

#[test]
fn permuted_unit_order_gives_a_semantically_equal_database() {
    let units = compile_units();
    let (forward, _) = link(&units, "a.out");
    let forward_bytes = write_object(&forward);

    let permutations: [[usize; 3]; 3] = [[2, 1, 0], [1, 2, 0], [2, 0, 1]];
    let baseline = answers_by_name(forward_bytes);
    assert!(
        baseline.values().any(|s| !s.is_empty()),
        "baseline program must have nonempty points-to sets"
    );
    for perm in permutations {
        let shuffled: Vec<CompiledUnit> = perm.iter().map(|&i| units[i].clone()).collect();
        let (prog, stats) = link(&shuffled, "a.out");
        let answers = answers_by_name(write_object(&prog));
        assert_eq!(
            baseline, answers,
            "unit order {perm:?} changed observable points-to behavior"
        );
        assert_eq!(stats.units, 3);
    }
}
