//! Link determinism: the same compiled units in the same order must
//! produce byte-identical object files (so content-addressed caching and
//! snapshot provenance hashing are stable), and a permuted unit order must
//! still produce a semantically equivalent database — every by-name
//! points-to answer identical, even though internal ids may differ.

use cla::cladb::StreamLinker;
use cla::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

const SOURCES: [(&str, &str); 3] = [
    (
        "a.c",
        "int x, y; int *p; int **pp; void fa(void) { p = &x; pp = &p; *pp = &y; }",
    ),
    (
        "b.c",
        "extern int *p; int *q; int w; void fb(void) { q = p; *q = w; }",
    ),
    (
        "c.c",
        "extern int *q; int *t; int u; void fc(int *arg) { t = arg; } void fd(void) { fc(q); fc(&u); }",
    ),
];

fn compile_units() -> Vec<CompiledUnit> {
    SOURCES
        .iter()
        .map(|(name, text)| compile_source(text, name, &LowerOptions::default()).unwrap())
        .collect()
}

/// By-name points-to map: variable name → set of pointee names, unioned
/// over same-named objects. Names survive permutation; ids do not.
fn answers_by_name(bytes: Vec<u8>) -> BTreeMap<String, BTreeSet<String>> {
    let db = Database::open(bytes).unwrap();
    let (pts, _) = solve_database(&db, SolveOptions::default());
    let mut out: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (id, obj) in db.objects().iter().enumerate() {
        let entry = out.entry(obj.name.clone()).or_default();
        for &t in pts.points_to(ObjId(id as u32)) {
            entry.insert(db.object(t).name.clone());
        }
    }
    out
}

#[test]
fn same_units_same_order_link_byte_identically() {
    let units = compile_units();
    let (prog_a, _) = link(&units, "a.out");
    let (prog_b, _) = link(&units, "a.out");
    let bytes_a = write_object(&prog_a);
    let bytes_b = write_object(&prog_b);
    assert_eq!(
        bytes_a, bytes_b,
        "relinking identical inputs changed the output bytes"
    );
}

#[test]
fn recompiling_from_scratch_is_also_byte_identical() {
    // The full compile + link + write path must be reproducible, not just
    // the linker: cache keys and snapshot provenance both hash these bytes.
    let (a, _) = link(&compile_units(), "a.out");
    let (b, _) = link(&compile_units(), "a.out");
    assert_eq!(write_object(&a), write_object(&b));
}

#[test]
fn stream_link_is_byte_identical_for_every_arrival_order() {
    // A parallel compile pool finishes units in whatever order the scheduler
    // picks. The stream linker must absorb any completion order and still
    // produce the bytes of a serial in-order link: completion order is
    // allowed to change the buffered window, never the output.
    let units = compile_units();
    let (serial, serial_stats) = link(&units, "a.out");
    let serial_bytes = write_object(&serial);

    let arrivals: [[usize; 3]; 6] = [
        [0, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ];
    for order in arrivals {
        let mut stream = StreamLinker::new("a.out");
        for &i in &order {
            stream.push(i, units[i].clone());
        }
        assert_eq!(
            stream.folded(),
            units.len(),
            "order {order:?} left units buffered"
        );
        let peak = stream.peak_buffered();
        assert!(
            (1..=units.len()).contains(&peak),
            "order {order:?}: implausible reorder-buffer peak {peak}"
        );
        let (prog, stats) = stream.finish();
        assert_eq!(
            write_object(&prog),
            serial_bytes,
            "arrival order {order:?} leaked into the linked bytes"
        );
        assert_eq!(stats, serial_stats);
    }

    // The boundary cases of the buffered window: in-order arrival never
    // holds more than the unit in hand; fully reversed arrival holds all.
    let mut in_order = StreamLinker::new("a.out");
    let mut reversed = StreamLinker::new("a.out");
    for i in 0..units.len() {
        in_order.push(i, units[i].clone());
        reversed.push(units.len() - 1 - i, units[units.len() - 1 - i].clone());
    }
    assert_eq!(in_order.peak_buffered(), 1);
    assert_eq!(reversed.peak_buffered(), units.len());
}

#[test]
fn parallel_and_serial_compile_link_byte_identically() {
    // End to end through the pipeline: a generated multi-file tree compiled
    // with a worker pool must link to the byte-identical database a serial
    // compile produces, at any pool size.
    let profile = cla::genc::Profile::parse(
        "name = \"det\"\ntotal_loc = 2400\nfiles = 6\nindirect_call_rate = 0.05\n",
    )
    .unwrap();
    let mut fs = MemoryFs::new();
    generate_with(&profile, 7, &mut |name, text| {
        fs.add(name.to_owned(), text.to_owned());
        Ok(())
    })
    .unwrap();
    let files: Vec<String> = (0..profile.files)
        .map(|i| cla::genc::file_name(&profile, i))
        .collect();
    let refs: Vec<&str> = files.iter().map(String::as_str).collect();

    let serial = analyze(&fs, &refs, &PipelineOptions::default()).unwrap();
    let serial_bytes = write_object(&serial.database.to_unit().unwrap());
    assert_eq!(serial.report.jobs, 1);

    for jobs in [2, 4] {
        let opts = PipelineOptions {
            parallel_compile: true,
            jobs,
            ..Default::default()
        };
        let parallel = analyze(&fs, &refs, &opts).unwrap();
        assert_eq!(
            write_object(&parallel.database.to_unit().unwrap()),
            serial_bytes,
            "jobs={jobs} changed the linked database bytes"
        );
        // Streaming link: the reorder buffer stays bounded by the pool's
        // backpressure window, never approaching the file count.
        assert!(
            parallel.report.peak_buffered_units <= (2 * parallel.report.jobs).max(1),
            "jobs={jobs}: buffered {} units",
            parallel.report.peak_buffered_units
        );
    }
}

#[test]
fn permuted_unit_order_gives_a_semantically_equal_database() {
    let units = compile_units();
    let (forward, _) = link(&units, "a.out");
    let forward_bytes = write_object(&forward);

    let permutations: [[usize; 3]; 3] = [[2, 1, 0], [1, 2, 0], [2, 0, 1]];
    let baseline = answers_by_name(forward_bytes);
    assert!(
        baseline.values().any(|s| !s.is_empty()),
        "baseline program must have nonempty points-to sets"
    );
    for perm in permutations {
        let shuffled: Vec<CompiledUnit> = perm.iter().map(|&i| units[i].clone()).collect();
        let (prog, stats) = link(&shuffled, "a.out");
        let answers = answers_by_name(write_object(&prog));
        assert_eq!(
            baseline, answers,
            "unit order {perm:?} changed observable points-to behavior"
        );
        assert_eq!(stats.units, 3);
    }
}
