//! Fault-injection tests over a real multi-section object file: every
//! corruption the deterministic harness can produce must surface as a typed
//! `DbError` or decode to exactly the pristine data — never a panic, never
//! a silently wrong answer.

use cla::cladb::fault::{
    bit_flip_round, section_shuffle_round, truncation_sweep, with_quiet_panics, FuzzReport, Oracle,
};
use cla::prelude::*;
use std::path::Path;

/// Compiles and links `examples/c/` (two translation units, a shared
/// header, function calls across files) into real object bytes — the same
/// program the CLI smoke tests use, so the file exercises every section
/// kind the writer emits.
fn example_object_bytes() -> Vec<u8> {
    let examples = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/c");
    let pp = PpOptions {
        include_dirs: vec![examples.to_string_lossy().into_owned()],
        ..PpOptions::default()
    };
    let units: Vec<CompiledUnit> = ["main.c", "store.c"]
        .iter()
        .map(|f| {
            let path = examples.join(f).to_string_lossy().into_owned();
            compile_file(&OsFs, &path, &pp, &LowerOptions::default())
                .unwrap()
                .0
        })
        .collect();
    let (program, _) = link(&units, "a.out");
    write_object(&program)
}

#[test]
fn truncation_at_every_byte_offset_is_rejected_or_consistent() {
    let bytes = example_object_bytes();
    assert!(bytes.len() > 200, "example object suspiciously small");
    let oracle = Oracle::new(&bytes).expect("pristine example must decode");
    let mut report = FuzzReport::default();
    with_quiet_panics(|| truncation_sweep(&bytes, &oracle, &mut report));
    assert_eq!(report.exercised as usize, bytes.len(), "one cut per offset");
    assert!(report.ok(), "truncation sweep found holes:\n{report}");
    // Every strict prefix is missing bytes, so none may decode identically;
    // the harness must have rejected each one.
    assert_eq!(report.rejected, report.exercised, "{report}");
}

#[test]
fn seeded_bit_flips_never_panic_or_return_wrong_data() {
    let bytes = example_object_bytes();
    let oracle = Oracle::new(&bytes).expect("pristine example must decode");
    let mut report = FuzzReport::default();
    with_quiet_panics(|| bit_flip_round(&bytes, &oracle, 1, 300, &mut report));
    assert_eq!(report.exercised, 300);
    assert!(report.ok(), "bit-flip round found holes:\n{report}");
    assert!(
        report.rejected > 0,
        "no flip was ever rejected — the checksums cannot be wired in"
    );
}

#[test]
fn section_table_shuffles_are_caught_even_with_a_fixed_header_checksum() {
    let bytes = example_object_bytes();
    let oracle = Oracle::new(&bytes).expect("pristine example must decode");
    let mut report = FuzzReport::default();
    with_quiet_panics(|| section_shuffle_round(&bytes, &oracle, 7, 100, &mut report));
    assert_eq!(report.exercised, 100, "example must have >= 2 sections");
    assert!(report.ok(), "section shuffle found holes:\n{report}");
    // Odd iterations recompute the header checksum, so only the id-tagged
    // per-section checksums can reject them; none may slip through as
    // identical (swapped entries always move real bytes).
    assert_eq!(report.rejected, report.exercised, "{report}");
}

#[test]
fn fuzz_battery_is_deterministic_across_runs() {
    let bytes = example_object_bytes();
    let a = cla::cladb::fault::run_fuzz(&bytes, 42, 50).unwrap();
    let b = cla::cladb::fault::run_fuzz(&bytes, 42, 50).unwrap();
    assert!(a.ok() && b.ok(), "a:\n{a}\nb:\n{b}");
    assert_eq!(a.exercised, b.exercised);
    assert_eq!(a.rejected, b.rejected);
    assert_eq!(a.identical, b.identical);
}
