//! Every concrete code example in the paper, run end-to-end through the
//! full compile-link-analyze pipeline.

use cla::prelude::*;
use cla_depend::{DependOptions, DependenceAnalysis};

fn run_single(src: &str) -> cla::core::pipeline::Analysis {
    let mut fs = MemoryFs::new();
    fs.add("paper.c", src);
    analyze(&fs, &["paper.c"], &PipelineOptions::default()).expect("pipeline")
}

fn obj(a: &cla::core::pipeline::Analysis, name: &str) -> ObjId {
    *a.database
        .targets(name)
        .first()
        .unwrap_or_else(|| panic!("no object named {name}"))
}

/// Section 2's introductory fragment: changing the type of x.
#[test]
fn section2_type_change_example() {
    let a = run_single(
        "short x, y, z, *p, v, w;
         void f(void) {
           y = x;
           z = y + 1;
           p = &v;
           *p = z;
           w = 1;
         }",
    );
    let dep = DependenceAnalysis::new(&a.database, &a.points_to);
    let report = dep.analyze("x", &DependOptions::default()).unwrap();
    let names: Vec<&str> = report
        .dependents()
        .iter()
        .map(|d| a.database.object(d.obj).name.as_str())
        .collect();
    // "we may also have to change the types of y, z, v ... but we do not
    // need to change the type of w."
    assert!(names.contains(&"y"));
    assert!(names.contains(&"z"));
    assert!(names.contains(&"v"));
    assert!(!names.contains(&"w"));
}

/// Figure 1: the struct fragment and its dependence results.
#[test]
fn figure1_dependence() {
    let a = run_single(
        "short target;
struct S { short x; short y; };
short u, *v, w;
struct S s, t;
void f(void) {
  v = &w;
  u = target;
  *v = u;
  s.x = w;
}",
    );
    let dep = DependenceAnalysis::new(&a.database, &a.points_to);
    let report = dep.analyze("target", &DependOptions::default()).unwrap();
    let names: Vec<String> = report
        .dependents()
        .iter()
        .map(|d| a.database.object(d.obj).name.clone())
        .collect();
    assert_eq!(names.len(), 3, "exactly u, w, S.x: {names:?}");
    for expected in ["u", "w", "S.x"] {
        assert!(names.contains(&expected.to_string()), "{names:?}");
    }
    // Chain for w renders in the paper's format.
    let w = obj(&a, "w");
    let chain = dep.render_chain(&report, w);
    assert!(chain.contains("w/short"), "{chain}");
    assert!(chain.contains("-> u/short"), "{chain}");
    assert!(chain.contains("-> target/short"), "{chain}");
    assert!(chain.contains("where target/short <paper.c:1>"), "{chain}");
}

/// Figure 3: derive y -> &x.
#[test]
fn figure3_derivation() {
    let a = run_single("int x, *y;\nint **z;\nvoid f(void) { z = &y; *z = &x; }");
    assert!(a.points_to.may_point_to(obj(&a, "z"), obj(&a, "y")));
    assert!(a.points_to.may_point_to(obj(&a, "y"), obj(&a, "x")));
}

/// Section 3's field-based vs field-independent example: the paper's
/// field-based analysis determines that only p and r can point to z.
#[test]
fn section3_field_example_field_based() {
    let src = "struct S { int *x; int *y; } A, B;
int z;
void main_(void) {
  int *p, *q, *r, *s;
  A.x = &z;
  p = A.x;
  q = A.y;
  r = B.x;
  s = B.y;
}";
    let a = run_single(src);
    let z = obj(&a, "z");
    assert!(
        a.points_to.may_point_to(obj(&a, "p"), z),
        "p gets &z in both approaches"
    );
    assert!(
        a.points_to.may_point_to(obj(&a, "r"), z),
        "field-based: r gets &z"
    );
    assert!(
        !a.points_to.may_point_to(obj(&a, "q"), z),
        "field-based: q does not"
    );
    assert!(
        !a.points_to.may_point_to(obj(&a, "s"), z),
        "in neither approach does s get &z"
    );
}

/// ... and field-independent: only p and q.
#[test]
fn section3_field_example_field_independent() {
    let src = "struct S { int *x; int *y; } A, B;
int z;
void main_(void) {
  int *p, *q, *r, *s;
  A.x = &z;
  p = A.x;
  q = A.y;
  r = B.x;
  s = B.y;
}";
    let mut fs = MemoryFs::new();
    fs.add("paper.c", src);
    let opts = PipelineOptions {
        lower: LowerOptions::default().field_independent(),
        ..Default::default()
    };
    let a = analyze(&fs, &["paper.c"], &opts).expect("pipeline");
    let z = obj(&a, "z");
    assert!(
        a.points_to.may_point_to(obj(&a, "p"), z),
        "p gets &z in both approaches"
    );
    assert!(
        a.points_to.may_point_to(obj(&a, "q"), z),
        "field-independent: q gets &z"
    );
    assert!(
        !a.points_to.may_point_to(obj(&a, "r"), z),
        "field-independent: r does not"
    );
    assert!(
        !a.points_to.may_point_to(obj(&a, "s"), z),
        "in neither approach does s get &z"
    );
}

/// Figure 4's example file: the paper's Section 4 walkthrough ("in the end,
/// we find that both x and y depend on z").
#[test]
fn figure4_walkthrough() {
    let a = run_single(
        "int x, y, z, *p, *q;
void f(void) {
  x = y;
  x = z;
  *p = z;
  p = q;
  q = &y;
  x = *p;
}",
    );
    // Points-to: q = &y seeds; p = q gives p -> y.
    assert!(a.points_to.may_point_to(obj(&a, "p"), obj(&a, "y")));
    // Dependence from z: x directly, y through *p.
    let dep = DependenceAnalysis::new(&a.database, &a.points_to);
    let report = dep.analyze("z", &DependOptions::default()).unwrap();
    let names: Vec<String> = report
        .dependents()
        .iter()
        .map(|d| a.database.object(d.obj).name.clone())
        .collect();
    assert!(names.contains(&"x".to_string()), "{names:?}");
    assert!(names.contains(&"y".to_string()), "{names:?}");
}

/// Section 4's function naming scheme: `int f(x, y) { ... return z; }`
/// gives `x = f1, y = f2, fret = z`, and `w = f(e1, e2)` gives `f1 = e1,
/// f2 = e2, w = fret`.
#[test]
fn section4_function_naming() {
    let a = run_single(
        "int e1, e2, w;
         int f(int x, int y) { int z; z = x + y; return z; }
         void main_(void) { w = f(e1, e2); }",
    );
    let dep = DependenceAnalysis::new(&a.database, &a.points_to);
    // Values flow e1 -> x -> z -> f$ret -> w.
    let report = dep.analyze("e1", &DependOptions::default()).unwrap();
    let names: Vec<String> = report
        .dependents()
        .iter()
        .map(|d| a.database.object(d.obj).name.clone())
        .collect();
    assert!(names.contains(&"x".to_string()), "{names:?}");
    assert!(names.contains(&"z".to_string()), "{names:?}");
    assert!(names.contains(&"w".to_string()), "{names:?}");
}

/// Section 4's indirect-call linking: `(*f)(x, y)` with `g` in pts(f) adds
/// `g1 = f1, g2 = f2, fret = gret`.
#[test]
fn section4_indirect_calls() {
    let a = run_single(
        "int sink1, sink2;
         int *g(int *a, int *b) { sink1 = 0; return a; }
         int *(*f)(int *, int *);
         int *r; int x, y;
         void main_(void) { f = g; r = (*f)(&x, &y); }",
    );
    assert!(a.points_to.may_point_to(obj(&a, "f"), obj(&a, "g")));
    assert!(a.points_to.may_point_to(obj(&a, "r"), obj(&a, "x")));
    assert!(!a.points_to.may_point_to(obj(&a, "r"), obj(&a, "y")));
}
