//! Differential testing at scale: generated benchmark programs (multiple
//! profiles and seeds) are solved by every Andersen implementation and the
//! results are compared exactly; Steensgaard is checked for
//! over-approximation. This is the heaviest correctness gate in the suite —
//! real multi-file programs, through the preprocessor, parser, lowering,
//! linker, object file, and all four solvers.

use cla::core::{bitvector, steensgaard, worklist};
use cla::prelude::*;

fn check(spec_name: &str, seed: u64, scale: f64) {
    let spec = by_name(spec_name).unwrap();
    let w = generate(
        spec,
        &GenOptions {
            scale,
            files: 4,
            seed,
            ..Default::default()
        },
    );
    let mut fs = MemoryFs::new();
    for (p, c) in &w.files {
        fs.add(p.clone(), c.clone());
    }
    let names: Vec<String> = w.source_files().iter().map(|s| s.to_string()).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let analysis = analyze(
        &fs,
        &refs,
        &PipelineOptions {
            parallel_compile: true,
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| panic!("{spec_name} seed={seed}: {e}"));
    let program = analysis.database.to_unit().unwrap();

    let wl = worklist::solve(&program);
    assert_eq!(
        analysis.points_to, wl,
        "{spec_name} seed={seed}: demand pre-transitive vs worklist"
    );
    let bv = bitvector::solve(&program);
    assert_eq!(
        analysis.points_to, bv,
        "{spec_name} seed={seed}: vs bit-vector"
    );
    let st = steensgaard::solve(&program);
    assert!(
        analysis.points_to.subsumed_by(&st),
        "{spec_name} seed={seed}: Steensgaard must over-approximate"
    );

    // Ablation configurations agree too.
    for (cache, cycle) in [(true, false), (false, true), (false, false)] {
        let (alt, _) = solve_unit(
            &program,
            SolveOptions {
                cache,
                cycle_elim: cycle,
            },
        );
        assert_eq!(
            analysis.points_to, alt,
            "{spec_name} seed={seed}: ablation cache={cache} cycle={cycle}"
        );
    }
}

#[test]
fn sparse_profile_agrees() {
    for seed in [1, 7, 42] {
        check("nethack", seed, 0.05);
    }
}

#[test]
fn moderate_profile_agrees() {
    for seed in [3, 11] {
        check("burlap", seed, 0.04);
    }
}

#[test]
fn join_heavy_profile_agrees() {
    check("emacs", 5, 0.02);
}

#[test]
fn struct_heavy_profile_agrees_in_both_field_models() {
    let spec = by_name("vortex").unwrap();
    for field_independent in [false, true] {
        let w = generate(
            spec,
            &GenOptions {
                scale: 0.03,
                files: 3,
                ..Default::default()
            },
        );
        let mut fs = MemoryFs::new();
        for (p, c) in &w.files {
            fs.add(p.clone(), c.clone());
        }
        let names: Vec<String> = w.source_files().iter().map(|s| s.to_string()).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let lower = if field_independent {
            LowerOptions::default().field_independent()
        } else {
            LowerOptions::default()
        };
        let analysis = analyze(
            &fs,
            &refs,
            &PipelineOptions {
                lower,
                ..Default::default()
            },
        )
        .unwrap();
        let program = analysis.database.to_unit().unwrap();
        let wl = worklist::solve(&program);
        assert_eq!(
            analysis.points_to, wl,
            "field_independent={field_independent}: solvers disagree"
        );
    }
}
