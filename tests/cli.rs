//! End-to-end tests of the `cla-tool` command-line driver, run against the
//! real binary with real files on disk.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn tool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cla-tool"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cla-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write(dir: &Path, name: &str, contents: &str) -> String {
    let p = dir.join(name);
    std::fs::write(&p, contents).unwrap();
    p.to_string_lossy().into_owned()
}

fn run(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("tool runs");
    assert!(
        out.status.success(),
        "tool failed: {}\nstdout: {}\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

#[test]
fn compile_solve_depend_roundtrip() {
    let dir = tmpdir("roundtrip");
    let a = write(
        &dir,
        "a.c",
        "int shared; int *p;\nvoid fa(void) { p = &shared; }\n",
    );
    let b = write(
        &dir,
        "b.c",
        "extern int *p; int *q; short src, dst;\nvoid fb(void) { q = p; dst = src; }\n",
    );
    let obj = dir.join("prog.clao").to_string_lossy().into_owned();

    run(tool().args(["compile", &a, &b, "-o", &obj]));
    assert!(std::fs::metadata(&obj).unwrap().len() > 100);

    // Dump shows the Figure 4 sections.
    let out = run(tool().args(["dump", &obj]));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("static section"), "{text}");
    assert!(text.contains("dynamic section"), "{text}");
    assert!(text.contains("p = &shared"), "{text}");

    // Solve prints the points-to set of q.
    let out = run(tool().args(["solve", &obj, "--print", "q"]));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("pts(q) = {shared}"), "{text}");
    assert!(text.contains("pointer-variables=2"), "{text}");

    // All four solvers run.
    for solver in ["pretransitive", "worklist", "steensgaard", "bitvector"] {
        let out = run(tool().args(["solve", &obj, "--solver", solver]));
        let text = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(text.contains(&format!("solver={solver}")), "{text}");
    }

    // Dependence query, flat and as a chain tree.
    let out = run(tool().args(["depend", &obj, "--target", "src"]));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("dst/short"), "{text}");
    let out = run(tool().args(["depend", &obj, "--target", "src", "--tree"]));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.lines().any(|l| l.starts_with("src/short")), "{text}");
    assert!(text.lines().any(|l| l.starts_with("  dst/short")), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compile_with_includes_and_defines() {
    let dir = tmpdir("includes");
    std::fs::create_dir_all(dir.join("inc")).unwrap();
    write(&dir, "inc/cfg.h", "#define WIDTH TYPE\n");
    let m = write(
        &dir,
        "m.c",
        "#include <cfg.h>\nWIDTH x; WIDTH *ptr;\nvoid f(void) { ptr = &x; }\n",
    );
    let obj = dir.join("m.clao").to_string_lossy().into_owned();
    let inc = dir.join("inc").to_string_lossy().into_owned();
    run(tool().args(["compile", &m, "-o", &obj, "-I", &inc, "-D", "TYPE=long"]));
    let out = run(tool().args(["solve", &obj, "--print", "ptr"]));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("pts(ptr) = {x}"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ctx_transform() {
    let dir = tmpdir("ctx");
    let src = write(
        &dir,
        "c.c",
        "int x, y;
int *id(int *a) { return a; }
int *r1, *r2;
void main_(void) {
  r1 = id(&x);
  r2 = id(&y);
}
",
    );
    let obj = dir.join("c.clao").to_string_lossy().into_owned();
    let dup = dir.join("dup.clao").to_string_lossy().into_owned();
    run(tool().args(["compile", &src, "-o", &obj]));

    // Context-insensitive: r1 sees both.
    let out = run(tool().args(["solve", &obj, "--print", "r1"]));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("pts(r1) = {x, y}"), "{text}");

    // After duplication: r1 sees only x.
    run(tool().args(["ctx", &obj, "-k", "2", "-o", &dup]));
    let out = run(tool().args(["solve", &dup, "--print", "r1", "r2"]));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("pts(r1) = {x}"), "{text}");
    assert!(text.contains("pts(r2) = {y}"), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// The observability surface: `analyze --trace --metrics` over the bundled
/// example program yields a validating trace and Prometheus text carrying
/// counters from every layer.
#[test]
fn analyze_records_trace_and_metrics() {
    let dir = tmpdir("obs");
    let examples = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/c");
    let main_c = examples.join("main.c").to_string_lossy().into_owned();
    let store_c = examples.join("store.c").to_string_lossy().into_owned();
    let inc = examples.to_string_lossy().into_owned();
    let trace = dir.join("trace.json").to_string_lossy().into_owned();

    let out = run(tool().args([
        "analyze",
        &main_c,
        &store_c,
        "-I",
        &inc,
        "--trace",
        &trace,
        "--metrics",
        "--print",
        "latest",
    ]));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("pts(latest) = {first, second}"), "{text}");
    // Prometheus text follows the report: layer counters are all present.
    for metric in [
        "cla_front_files_total 2",
        "cla_db_assigns_loaded_total",
        "cla_db_section_bytes_written_total{section=",
        "cla_solve_passes_total",
    ] {
        assert!(text.contains(metric), "missing `{metric}` in:\n{text}");
    }

    // The recorded trace passes the bundled validator...
    let out = run(tool().args(["trace-validate", &trace]));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.starts_with("trace OK:"), "{text}");

    // ...and is the streaming Chrome format: `[` header, JSONL events.
    let raw = std::fs::read_to_string(&trace).unwrap();
    assert!(raw.starts_with("[\n"), "not a streaming trace array");
    assert!(raw.contains("\"ph\":\"B\"") && raw.contains("\"ph\":\"E\""));

    // A corrupted trace makes the validator exit non-zero.
    let bad = write(
        &dir,
        "bad.json",
        "[\n{\"name\":\"x\",\"ph\":\"E\",\"ts\":1,\"tid\":0},\n",
    );
    let out = tool().args(["trace-validate", &bad]).output().unwrap();
    assert!(
        !out.status.success(),
        "validator accepted an orphan E event"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The fault-injection battery runs from the CLI over both a compiled
/// `.clao` and raw C sources, finds no integrity holes, and is seeded —
/// two runs with the same seed print identical reports.
#[test]
fn db_fuzz_smoke_over_example_sources() {
    let dir = tmpdir("fuzz");
    let examples = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/c");
    let main_c = examples.join("main.c").to_string_lossy().into_owned();
    let store_c = examples.join("store.c").to_string_lossy().into_owned();
    let inc = examples.to_string_lossy().into_owned();

    // From C sources, compiled and linked in-memory.
    let out = run(tool().args([
        "db-fuzz", &main_c, &store_c, "-I", &inc, "--iters", "50", "--seed", "1",
    ]));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        text.contains("0 wrong, 0 panicked"),
        "fuzz report reported holes:\n{text}"
    );

    // From a .clao on disk; same seed twice gives byte-identical reports.
    let obj = dir.join("fuzz.clao").to_string_lossy().into_owned();
    run(tool().args(["compile", &main_c, &store_c, "-I", &inc, "-o", &obj]));
    let a = run(tool().args(["db-fuzz", &obj, "--iters", "40", "--seed", "7"]));
    let b = run(tool().args(["db-fuzz", &obj, "--iters", "40", "--seed", "7"]));
    assert_eq!(a.stdout, b.stdout, "db-fuzz is not deterministic");

    // A pristine input that does not decode is a hard error, not a report.
    let bad = write(&dir, "bad.clao", "this is not an object file");
    let out = tool()
        .args(["db-fuzz", &bad, "--iters", "1"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "db-fuzz accepted a garbage oracle");

    let _ = std::fs::remove_dir_all(&dir);
}

/// `--profile` runs the sampling profiler over the whole command: the
/// collapsed-stack file is written, the per-span table lands on stderr, and
/// a combined `--trace` + `--profile` run still validates (sample events
/// ride in the same streaming trace).
#[test]
fn analyze_with_profile_writes_collapsed_stacks() {
    let dir = tmpdir("prof");
    // A source big enough that compilation takes many sampler ticks even in
    // debug builds.
    let mut src = String::new();
    for i in 0..1500 {
        src.push_str(&format!(
            "int x{i}; int *p{i}; void f{i}(void) {{ p{i} = &x{i}; }}\n"
        ));
    }
    let big = write(&dir, "big.c", &src);
    let collapsed = dir.join("prof.collapsed").to_string_lossy().into_owned();
    let trace = dir.join("prof_trace.json").to_string_lossy().into_owned();

    let out = run(tool().args(["analyze", &big, "--profile", &collapsed, "--trace", &trace]));
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        err.contains("profile:"),
        "no profile summary on stderr: {err}"
    );
    assert!(err.contains("span"), "no span table on stderr: {err}");

    // Collapsed format: `name(;name)* weight` per line, flamegraph.pl-ready.
    let text = std::fs::read_to_string(&collapsed).unwrap();
    assert!(!text.is_empty(), "empty collapsed profile");
    for line in text.lines() {
        let (stack, weight) = line.rsplit_once(' ').expect("stack + weight");
        assert!(!stack.is_empty(), "bad line: {line}");
        weight
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("bad weight: {line}"));
    }
    assert!(
        text.lines()
            .any(|l| l.starts_with("pipeline.compile") || l.starts_with("compile_file")),
        "no compile attribution in:\n{text}"
    );

    // The trace recorded alongside the profiler still validates, and the
    // validator counts its sample events.
    let out = run(tool().args(["trace-validate", &trace]));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("profiler samples"), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// `bench-diff` is the perf-regression gate: identical reports pass, an
/// inflated phase fails naming the phase, and `--history` appends one
/// JSONL line per invocation.
#[test]
fn bench_diff_gates_on_phase_regressions() {
    let dir = tmpdir("benchdiff");
    let old = write(
        &dir,
        "old.json",
        r#"{"profile":"smoke","compile_secs":4.0,"link_secs":1.0,"solve_secs":0.5,"peak_rss_bytes":1000000}"#,
    );

    // Same file twice: zero regressions, exit 0.
    let out = run(tool().args(["bench-diff", &old, &old, "--ceiling", "15"]));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("bench-diff OK"), "{text}");

    // One phase 20% slower: nonzero exit, and the message names the phase.
    let new = write(
        &dir,
        "new.json",
        r#"{"profile":"smoke","compile_secs":4.8,"link_secs":1.0,"solve_secs":0.5,"peak_rss_bytes":1000000}"#,
    );
    let history = dir.join("hist.jsonl").to_string_lossy().into_owned();
    let out = tool()
        .args([
            "bench-diff",
            &old,
            &new,
            "--ceiling",
            "15",
            "--history",
            &history,
        ])
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "20% compile regression passed the gate"
    );
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("compile_secs"), "regression unnamed: {err}");
    assert!(!err.contains("link_secs"), "steady phase blamed: {err}");

    // The same slowdown clears a 25% ceiling.
    run(tool().args([
        "bench-diff",
        &old,
        &new,
        "--ceiling",
        "25",
        "--history",
        &history,
    ]));

    // Both runs appended to the ledger, regression or not.
    let hist = std::fs::read_to_string(&history).unwrap();
    assert_eq!(hist.lines().count(), 2, "history: {hist}");
    for line in hist.lines() {
        assert!(line.contains(r#""label":"smoke""#), "history: {line}");
        assert!(line.contains("compile_secs"), "history: {line}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn errors_exit_nonzero() {
    let out = tool().args(["dump", "/nonexistent.clao"]).output().unwrap();
    assert!(!out.status.success());
    let out = tool().args(["bogus-subcommand"]).output().unwrap();
    assert!(!out.status.success());
    let out = tool().args(["solve"]).output().unwrap();
    assert!(!out.status.success());
}
