//! End-to-end tests of the `cla-tool` command-line driver, run against the
//! real binary with real files on disk.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn tool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cla-tool"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cla-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write(dir: &Path, name: &str, contents: &str) -> String {
    let p = dir.join(name);
    std::fs::write(&p, contents).unwrap();
    p.to_string_lossy().into_owned()
}

fn run(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("tool runs");
    assert!(
        out.status.success(),
        "tool failed: {}\nstdout: {}\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

#[test]
fn compile_solve_depend_roundtrip() {
    let dir = tmpdir("roundtrip");
    let a = write(
        &dir,
        "a.c",
        "int shared; int *p;\nvoid fa(void) { p = &shared; }\n",
    );
    let b = write(
        &dir,
        "b.c",
        "extern int *p; int *q; short src, dst;\nvoid fb(void) { q = p; dst = src; }\n",
    );
    let obj = dir.join("prog.clao").to_string_lossy().into_owned();

    run(tool().args(["compile", &a, &b, "-o", &obj]));
    assert!(std::fs::metadata(&obj).unwrap().len() > 100);

    // Dump shows the Figure 4 sections.
    let out = run(tool().args(["dump", &obj]));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("static section"), "{text}");
    assert!(text.contains("dynamic section"), "{text}");
    assert!(text.contains("p = &shared"), "{text}");

    // Solve prints the points-to set of q.
    let out = run(tool().args(["solve", &obj, "--print", "q"]));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("pts(q) = {shared}"), "{text}");
    assert!(text.contains("pointer-variables=2"), "{text}");

    // All four solvers run.
    for solver in ["pretransitive", "worklist", "steensgaard", "bitvector"] {
        let out = run(tool().args(["solve", &obj, "--solver", solver]));
        let text = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(text.contains(&format!("solver={solver}")), "{text}");
    }

    // Dependence query, flat and as a chain tree.
    let out = run(tool().args(["depend", &obj, "--target", "src"]));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("dst/short"), "{text}");
    let out = run(tool().args(["depend", &obj, "--target", "src", "--tree"]));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.lines().any(|l| l.starts_with("src/short")), "{text}");
    assert!(text.lines().any(|l| l.starts_with("  dst/short")), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compile_with_includes_and_defines() {
    let dir = tmpdir("includes");
    std::fs::create_dir_all(dir.join("inc")).unwrap();
    write(&dir, "inc/cfg.h", "#define WIDTH TYPE\n");
    let m = write(
        &dir,
        "m.c",
        "#include <cfg.h>\nWIDTH x; WIDTH *ptr;\nvoid f(void) { ptr = &x; }\n",
    );
    let obj = dir.join("m.clao").to_string_lossy().into_owned();
    let inc = dir.join("inc").to_string_lossy().into_owned();
    run(tool().args(["compile", &m, "-o", &obj, "-I", &inc, "-D", "TYPE=long"]));
    let out = run(tool().args(["solve", &obj, "--print", "ptr"]));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("pts(ptr) = {x}"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ctx_transform() {
    let dir = tmpdir("ctx");
    let src = write(
        &dir,
        "c.c",
        "int x, y;
int *id(int *a) { return a; }
int *r1, *r2;
void main_(void) {
  r1 = id(&x);
  r2 = id(&y);
}
",
    );
    let obj = dir.join("c.clao").to_string_lossy().into_owned();
    let dup = dir.join("dup.clao").to_string_lossy().into_owned();
    run(tool().args(["compile", &src, "-o", &obj]));

    // Context-insensitive: r1 sees both.
    let out = run(tool().args(["solve", &obj, "--print", "r1"]));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("pts(r1) = {x, y}"), "{text}");

    // After duplication: r1 sees only x.
    run(tool().args(["ctx", &obj, "-k", "2", "-o", &dup]));
    let out = run(tool().args(["solve", &dup, "--print", "r1", "r2"]));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("pts(r1) = {x}"), "{text}");
    assert!(text.contains("pts(r2) = {y}"), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn errors_exit_nonzero() {
    let out = tool().args(["dump", "/nonexistent.clao"]).output().unwrap();
    assert!(!out.status.success());
    let out = tool().args(["bogus-subcommand"]).output().unwrap();
    assert!(!out.status.success());
    let out = tool().args(["solve"]).output().unwrap();
    assert!(!out.status.success());
}
