//! Cross-cutting property tests: linker order-independence, dependence
//! monotonicity, and analysis determinism over generated workloads.

use cla::core::pipeline::{analyze, PipelineOptions};
use cla::prelude::*;
use cla::workload::SplitMix64;
use cla_depend::{DependOptions, DependenceAnalysis};
use std::collections::BTreeMap;

/// Builds N small files with cross-references; returns (fs, names).
fn gen_files(parts: &[(u8, u8)]) -> (MemoryFs, Vec<String>) {
    let n = parts.len();
    let mut fs = MemoryFs::new();
    let mut names = Vec::new();
    // A shared header declaring one global pointer/int pair per file.
    let mut header = String::new();
    for i in 0..n {
        header.push_str(&format!("extern int g{i}; extern int *gp{i};\n"));
    }
    fs.add("shared.h", header);
    for (i, (a, b)) in parts.iter().enumerate() {
        let t1 = (*a as usize) % n;
        let t2 = (*b as usize) % n;
        let src = format!(
            "#include \"shared.h\"\nint g{i}; int *gp{i};\nvoid f{i}(void) {{\n  gp{i} = &g{t1};\n  gp{i} = gp{t2};\n}}\n"
        );
        let name = format!("part{i}.c");
        fs.add(name.clone(), src);
        names.push(name);
    }
    (fs, names)
}

/// Name-keyed view of the points-to relation (object ids vary with link
/// order; names do not).
fn named_relation(a: &cla::core::pipeline::Analysis) -> BTreeMap<String, Vec<String>> {
    let db = &a.database;
    let mut out = BTreeMap::new();
    for (i, o) in db.objects().iter().enumerate() {
        let set: Vec<String> = a
            .points_to
            .points_to(cla::ir::ObjId(i as u32))
            .iter()
            .map(|&t| db.object(t).name.clone())
            .collect();
        if !set.is_empty() {
            let mut set = set;
            set.sort();
            out.entry(o.name.clone()).or_insert(set);
        }
    }
    out
}

/// Linking the same units in any order yields the same analysis.
#[test]
fn link_order_is_irrelevant() {
    let mut rng = SplitMix64::seed_from_u64(0x1a2b_3c4d);
    for _case in 0..24 {
        let nparts = rng.random_range(2..6usize);
        let parts: Vec<(u8, u8)> = (0..nparts)
            .map(|_| {
                (
                    rng.random_range(0..8u32) as u8,
                    rng.random_range(0..8u32) as u8,
                )
            })
            .collect();
        let seed = rng.random_range(0..1000u64);
        let (fs, names) = gen_files(&parts);
        let fwd: Vec<&str> = names.iter().map(String::as_str).collect();
        let mut rev = fwd.clone();
        rev.reverse();
        // A deterministic shuffle driven by the seed.
        let mut shuffled = fwd.clone();
        let k = shuffled.len();
        for i in 0..k {
            shuffled.swap(i, ((seed as usize) + i * 7) % k);
        }
        let a1 = analyze(&fs, &fwd, &PipelineOptions::default()).unwrap();
        let a2 = analyze(&fs, &rev, &PipelineOptions::default()).unwrap();
        let a3 = analyze(&fs, &shuffled, &PipelineOptions::default()).unwrap();
        assert_eq!(named_relation(&a1), named_relation(&a2), "parts {parts:?}");
        assert_eq!(named_relation(&a1), named_relation(&a3), "parts {parts:?}");
    }
}

/// Adding non-targets can only shrink the dependent set and never improve
/// any surviving chain's cost.
#[test]
fn non_targets_are_monotone() {
    let mut fs = MemoryFs::new();
    fs.add(
        "m.c",
        "int t;
         int a, b, c, d, e;
         void f(void) {
           a = t;
           b = a;
           c = b * 2;
           d = t >> 1;
           e = d + c;
         }",
    );
    let an = analyze(&fs, &["m.c"], &PipelineOptions::default()).unwrap();
    let dep = DependenceAnalysis::new(&an.database, &an.points_to);
    let base = dep.analyze("t", &DependOptions::default()).unwrap();
    let base_costs: BTreeMap<String, _> = base
        .dependents()
        .iter()
        .map(|d| (an.database.object(d.obj).name.clone(), d.cost))
        .collect();

    for blocked in ["a", "b", "c", "d", "e"] {
        let pruned = dep
            .analyze(
                "t",
                &DependOptions {
                    non_targets: vec![blocked.to_string()],
                },
            )
            .unwrap();
        for d in pruned.dependents() {
            let name = an.database.object(d.obj).name.clone();
            assert_ne!(name, blocked, "blocked object must not appear");
            let base_cost = base_costs
                .get(&name)
                .unwrap_or_else(|| panic!("{name} appeared only after pruning"));
            assert!(
                d.cost >= *base_cost,
                "pruning improved {name}: {:?} < {:?}",
                d.cost,
                base_cost
            );
        }
    }
}

/// Field-based and field-independent agree on programs without structs.
#[test]
fn field_models_agree_without_structs() {
    let src = "int x, y; int *p, *q, **pp;
               void f(void) { p = &x; q = &y; pp = &p; *pp = q; p = *pp; }";
    let mut fs = MemoryFs::new();
    fs.add("m.c", src);
    let fb = analyze(&fs, &["m.c"], &PipelineOptions::default()).unwrap();
    let fi = analyze(
        &fs,
        &["m.c"],
        &PipelineOptions {
            lower: LowerOptions::default().field_independent(),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(named_relation(&fb), named_relation(&fi));
}

/// The workload generator + pipeline is deterministic end to end.
#[test]
fn workload_pipeline_deterministic() {
    let spec = by_name("povray").unwrap();
    let run = || {
        let w = generate(
            spec,
            &GenOptions {
                scale: 0.02,
                files: 3,
                ..Default::default()
            },
        );
        let mut fs = MemoryFs::new();
        for (p, c) in &w.files {
            fs.add(p.clone(), c.clone());
        }
        let names: Vec<String> = w.source_files().iter().map(|s| s.to_string()).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let a = analyze(&fs, &refs, &PipelineOptions::default()).unwrap();
        (
            a.report.relations,
            a.report.pointer_variables,
            a.report.object_size,
        )
    };
    assert_eq!(run(), run());
}
