//! Fault-injection tests over the snapshot format: every corruption the
//! deterministic harness can produce — truncation at each byte offset,
//! seeded bit flips, section-table shuffles — must surface as a typed
//! `SnapError` or decode to exactly the pristine graph, never a panic and
//! never a silently different answer.

use cla::cladb::fault::{with_quiet_panics, FuzzReport};
use cla::prelude::*;
use cla::snap::fault::{
    bit_flip_round, run_snap_fuzz, section_shuffle_round, truncation_sweep, SnapOracle,
};

/// Builds real snapshot bytes from a generated multi-file workload: solve,
/// seal, encode. Exercises every snapshot section including shared sets.
fn example_snapshot_bytes() -> Vec<u8> {
    let spec = by_name("nethack").unwrap();
    let w = generate(
        spec,
        &GenOptions {
            scale: 0.02,
            files: 2,
            seed: 5,
            ..Default::default()
        },
    );
    let mut fs = MemoryFs::new();
    for (p, c) in &w.files {
        fs.add(p.clone(), c.clone());
    }
    let names: Vec<String> = w.source_files().iter().map(|s| s.to_string()).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let analysis = analyze(&fs, &refs, &PipelineOptions::default()).unwrap();
    let db = &analysis.database;

    let opts = SolveOptions::default();
    let sealed = cla::core::Warm::from_database(db, opts).seal();
    let object_names: Vec<String> = db.objects().iter().map(|o| o.name.clone()).collect();
    let prov = cla::serve::object_provenance("fuzz-oracle", 0x1234_5678, opts);
    cla::snap::encode_snapshot(&prov, &sealed, &object_names)
}

#[test]
fn snapshot_truncation_at_every_offset_is_rejected() {
    let bytes = example_snapshot_bytes();
    assert!(bytes.len() > 300, "example snapshot suspiciously small");
    let oracle = SnapOracle::new(&bytes).expect("pristine snapshot must decode");
    let mut report = FuzzReport::default();
    with_quiet_panics(|| truncation_sweep(&bytes, &oracle, &mut report));
    assert_eq!(report.exercised as usize, bytes.len(), "one cut per offset");
    assert!(report.ok(), "truncation sweep found holes:\n{report}");
    // A strict prefix always loses bytes a full load needs, so every cut
    // must be rejected with a typed error.
    assert_eq!(report.rejected, report.exercised, "{report}");
}

#[test]
fn snapshot_bit_flips_never_panic_or_change_the_graph() {
    let bytes = example_snapshot_bytes();
    let oracle = SnapOracle::new(&bytes).expect("pristine snapshot must decode");
    let mut report = FuzzReport::default();
    with_quiet_panics(|| bit_flip_round(&bytes, &oracle, 3, 400, &mut report));
    assert_eq!(report.exercised, 400);
    assert!(report.ok(), "bit-flip round found holes:\n{report}");
    assert!(
        report.rejected > 0,
        "no flip was ever rejected — the checksums cannot be wired in"
    );
}

#[test]
fn snapshot_section_shuffles_are_caught() {
    let bytes = example_snapshot_bytes();
    let oracle = SnapOracle::new(&bytes).expect("pristine snapshot must decode");
    let mut report = FuzzReport::default();
    with_quiet_panics(|| section_shuffle_round(&bytes, &oracle, 9, 100, &mut report));
    assert_eq!(report.exercised, 100);
    assert!(report.ok(), "section shuffle found holes:\n{report}");
    // Half the shuffles recompute the header checksum, so only the
    // id-tagged per-section checksums stand between a swapped table and a
    // scrambled graph.
    assert_eq!(report.rejected, report.exercised, "{report}");
}

#[test]
fn snap_fuzz_battery_is_deterministic_and_clean() {
    let bytes = example_snapshot_bytes();
    let a = run_snap_fuzz(&bytes, 42, 100).unwrap();
    let b = run_snap_fuzz(&bytes, 42, 100).unwrap();
    assert!(a.ok() && b.ok(), "a:\n{a}\nb:\n{b}");
    assert_eq!(a.exercised, b.exercised);
    assert_eq!(a.rejected, b.rejected);
    assert_eq!(a.identical, b.identical);
    assert!(
        a.exercised > bytes.len() as u64,
        "battery must cover truncation plus flips plus shuffles"
    );
}
