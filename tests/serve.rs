//! Integration tests for the query server: the socket protocol must give
//! the same answers as a batch `solve_database` run, stay consistent under
//! concurrent clients, and track source edits through `reload`.

use cla::prelude::*;
use cla::serve::json::{obj, parse, Value};
use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Write as _};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const FILE_A: &str = r"
    int x, y, z;
    int *p, *r;
    int **pp;
    void fa(void) {
        p = &x;
        r = &y;
        pp = &p;
        *pp = &z;
    }
";

const FILE_B: &str = r"
    extern int **pp;
    extern int *r;
    int *q, *s;
    int w;
    void fb(void) {
        q = *pp;
        s = r;
        *q = w;
    }
";

const FILE_C: &str = r"
    extern int *q;
    int *t;
    int u;
    void fc(int *arg) { t = arg; }
    void fd(void) { fc(q); fc(&u); }
";

/// Writes the sources into a fresh temp directory; returns absolute paths.
fn write_sources(tag: &str, files: &[(&str, &str)]) -> (PathBuf, Vec<String>) {
    let dir = std::env::temp_dir().join(format!("cla-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let paths = files
        .iter()
        .map(|(name, text)| {
            let p = dir.join(name);
            std::fs::write(&p, text).unwrap();
            p.to_string_lossy().into_owned()
        })
        .collect();
    (dir, paths)
}

fn start_server(tag: &str, paths: &[String]) -> cla::serve::ServerHandle {
    let files: Vec<&str> = paths.iter().map(String::as_str).collect();
    let session = Session::from_files(
        &OsFs,
        &files,
        &PpOptions::default(),
        &LowerOptions::default(),
        SolveOptions::default(),
    )
    .unwrap();
    let socket =
        std::env::temp_dir().join(format!("cla-serve-it-{tag}-{}.sock", std::process::id()));
    cla::serve::serve(Arc::new(session), Some(Arc::new(OsFs)), &socket).unwrap()
}

fn ask(stream: &mut UnixStream, req: &Value) -> Value {
    stream
        .write_all(format!("{}\n", req.encode()).as_bytes())
        .unwrap();
    let mut line = String::new();
    BufReader::new(stream.try_clone().unwrap())
        .read_line(&mut line)
        .unwrap();
    parse(line.trim()).unwrap_or_else(|e| panic!("bad reply {line:?}: {e}"))
}

fn points_to_req(var: &str) -> Value {
    obj([("cmd", "points-to".into()), ("var", var.into())])
}

fn target_names(reply: &Value) -> BTreeSet<String> {
    assert_eq!(
        reply.get("ok").and_then(Value::as_bool),
        Some(true),
        "error reply: {}",
        reply.encode()
    );
    reply
        .get("targets")
        .and_then(Value::as_arr)
        .unwrap()
        .iter()
        .map(|t| t.get("name").and_then(Value::as_str).unwrap().to_string())
        .collect()
}

/// The batch oracle: link + solve the same sources in one shot, and union
/// points-to targets per variable *name* (matching the server's semantics).
fn batch_answers(paths: &[String]) -> Vec<(String, BTreeSet<String>)> {
    let units: Vec<CompiledUnit> = paths
        .iter()
        .map(|p| {
            compile_file(&OsFs, p, &PpOptions::default(), &LowerOptions::default())
                .unwrap()
                .0
        })
        .collect();
    let (program, _) = link(&units, "a.out");
    let db = Database::open(write_object(&program)).unwrap();
    let (pts, _) = solve_database(&db, SolveOptions::default());
    let names: BTreeSet<String> = program.objects.iter().map(|o| o.name.clone()).collect();
    names
        .into_iter()
        // Only symbol-indexed names are queryable; internal objects
        // (`fa$ret`, temporaries) are not addressable over the wire.
        .filter(|name| !db.targets(name).is_empty())
        .map(|name| {
            let mut set = BTreeSet::new();
            for &o in db.targets(&name) {
                for &t in pts.points_to(o) {
                    set.insert(db.object(t).name.clone());
                }
            }
            (name, set)
        })
        .collect()
}

#[test]
fn socket_answers_match_batch_for_every_variable() {
    let (dir, paths) = write_sources(
        "batch",
        &[("a.c", FILE_A), ("b.c", FILE_B), ("c.c", FILE_C)],
    );
    let oracle = batch_answers(&paths);
    assert!(
        oracle.iter().any(|(_, set)| !set.is_empty()),
        "oracle is trivial"
    );

    let server = start_server("batch", &paths);
    let mut c = UnixStream::connect(server.path()).unwrap();
    for (name, expected) in &oracle {
        let reply = ask(&mut c, &points_to_req(name));
        assert_eq!(
            &target_names(&reply),
            expected,
            "socket and batch disagree on `{name}`"
        );
    }
    // A second sweep is answered from the result cache.
    for (name, _) in &oracle {
        let reply = ask(&mut c, &points_to_req(name));
        assert_eq!(reply.get("cached").and_then(Value::as_bool), Some(true));
    }
    let stats = server.stop();
    assert!(
        stats.result_cache_hits > 0,
        "repeat queries must hit the cache"
    );
    assert!(stats.queries >= 2 * oracle.len() as u64);
    assert!(stats.p50_micros <= stats.p99_micros);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn eight_concurrent_clients_get_identical_answers() {
    let (dir, paths) = write_sources("conc", &[("a.c", FILE_A), ("b.c", FILE_B), ("c.c", FILE_C)]);
    let oracle = batch_answers(&paths);
    let server = start_server("conc", &paths);
    let path = server.path().to_path_buf();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let path = &path;
                let oracle = &oracle;
                scope.spawn(move || {
                    let mut c = UnixStream::connect(path).unwrap();
                    // Stagger the sweep so threads race on different keys.
                    for round in 0..3 {
                        for (j, (name, expected)) in oracle.iter().enumerate() {
                            if (i + j + round) % 2 == 0 {
                                let reply = ask(&mut c, &points_to_req(name));
                                assert_eq!(
                                    &target_names(&reply),
                                    expected,
                                    "client {i} disagrees on `{name}`"
                                );
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });

    let stats = server.stop();
    assert!(stats.result_cache_hits > 0);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn reload_reflects_source_edits_and_invalidates() {
    let (dir, paths) = write_sources(
        "reload",
        &[
            ("a.c", "int x, y; int *p; void fa(void) { p = &x; }"),
            ("b.c", "extern int *p; int *q; void fb(void) { q = p; }"),
        ],
    );
    let server = start_server("reload", &paths);
    let mut c = UnixStream::connect(server.path()).unwrap();

    let before = target_names(&ask(&mut c, &points_to_req("q")));
    assert_eq!(before, BTreeSet::from(["x".to_string()]));
    // Warm the cache with a second variable so reload has entries to drop.
    let _ = ask(&mut c, &points_to_req("p"));

    // Edit a.c on disk: p now points at y.
    std::fs::write(
        Path::new(&paths[0]),
        "int x, y; int *p; void fa(void) { p = &y; }",
    )
    .unwrap();
    let reply = ask(&mut c, &obj([("cmd", "reload".into())]));
    assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(reply.get("relinked").and_then(Value::as_bool), Some(true));
    let recompiled: Vec<&str> = reply
        .get("recompiled")
        .and_then(Value::as_arr)
        .unwrap()
        .iter()
        .filter_map(Value::as_str)
        .collect();
    assert_eq!(
        recompiled,
        vec![paths[0].as_str()],
        "only the edited file recompiles"
    );
    assert!(reply.get("invalidated").and_then(Value::as_u64).unwrap() >= 2);

    // Stale answers are gone: the same query now reports the new graph,
    // uncached.
    let reply = ask(&mut c, &points_to_req("q"));
    assert_eq!(reply.get("cached").and_then(Value::as_bool), Some(false));
    assert_eq!(target_names(&reply), BTreeSet::from(["y".to_string()]));

    // An untouched tree is a no-op reload that invalidates nothing.
    let reply = ask(&mut c, &obj([("cmd", "reload".into())]));
    assert_eq!(reply.get("relinked").and_then(Value::as_bool), Some(false));
    assert_eq!(reply.get("invalidated").and_then(Value::as_u64), Some(0));
    let reply = ask(&mut c, &points_to_req("q"));
    assert_eq!(reply.get("cached").and_then(Value::as_bool), Some(true));

    let stats = server.stop();
    assert_eq!(
        stats.reloads, 1,
        "the no-op check does not count as a reload"
    );
    let _ = std::fs::remove_dir_all(dir);
}

/// Fully precomputed expected answers for one version of the sources:
/// points-to sets, alias verdicts, and dependents, all keyed by name. Plain
/// data, so the stress test's client threads can check replies against it
/// without sharing a database handle.
struct EpochOracle {
    pts: std::collections::HashMap<String, BTreeSet<String>>,
    alias: std::collections::HashMap<(String, String), bool>,
    depend: std::collections::HashMap<String, BTreeSet<String>>,
}

fn oracle_for(
    paths: &[String],
    names: &[&str],
    pairs: &[(&str, &str)],
    dep_targets: &[&str],
) -> EpochOracle {
    let units: Vec<CompiledUnit> = paths
        .iter()
        .map(|p| {
            compile_file(&OsFs, p, &PpOptions::default(), &LowerOptions::default())
                .unwrap()
                .0
        })
        .collect();
    let (program, _) = link(&units, "a.out");
    let db = Database::open(write_object(&program)).unwrap();
    let (pts, _) = solve_database(&db, SolveOptions::default());
    let set_of = |name: &str| -> BTreeSet<String> {
        let mut set = BTreeSet::new();
        for &o in db.targets(name) {
            for &t in pts.points_to(o) {
                set.insert(db.object(t).name.clone());
            }
        }
        set
    };
    let alias_of = |a: &str, b: &str| -> bool {
        db.targets(a).iter().any(|&oa| {
            db.targets(b).iter().any(|&ob| {
                let sa = pts.points_to(oa);
                pts.points_to(ob)
                    .iter()
                    .any(|t| sa.binary_search(t).is_ok())
            })
        })
    };
    let dep = DependenceAnalysis::new(&db, &pts);
    let depend = dep_targets
        .iter()
        .map(|t| {
            let report = dep.analyze(t, &DependOptions::default()).unwrap();
            let names: BTreeSet<String> = report
                .dependents()
                .iter()
                .map(|d| db.object(d.obj).name.clone())
                .collect();
            (t.to_string(), names)
        })
        .collect();
    EpochOracle {
        pts: names.iter().map(|n| (n.to_string(), set_of(n))).collect(),
        alias: pairs
            .iter()
            .map(|&(a, b)| ((a.to_string(), b.to_string()), alias_of(a, b)))
            .collect(),
        depend,
    }
}

/// The torn-snapshot race test: 8 client threads issue interleaved
/// points-to/alias/depend queries while the main thread keeps editing a.c
/// and reloading. Every reply names the epoch whose sealed snapshot
/// answered it, and must byte-for-byte match the batch `solve_database`
/// oracle for that epoch's sources — a reply mixing two epochs' worlds
/// (or a stale cache entry surviving a swap) fails the comparison.
#[test]
fn stress_concurrent_queries_race_reload_against_epoch_oracle() {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    const A_V0: &str = FILE_A;
    const A_V1: &str = r"
        int x, y, z;
        int *p, *r;
        int **pp;
        void fa(void) {
            p = &y;
            r = &z;
            pp = &p;
            *pp = &x;
        }
    ";
    let names = ["p", "q", "r", "s", "t", "pp"];
    let pairs = [("p", "q"), ("q", "r"), ("s", "t"), ("p", "pp"), ("q", "s")];
    let dep_targets = ["w", "u"];

    let (dir, paths) = write_sources("stress", &[("a.c", A_V0), ("b.c", FILE_B), ("c.c", FILE_C)]);
    let oracles = [oracle_for(&paths, &names, &pairs, &dep_targets), {
        std::fs::write(Path::new(&paths[0]), A_V1).unwrap();
        let o = oracle_for(&paths, &names, &pairs, &dep_targets);
        std::fs::write(Path::new(&paths[0]), A_V0).unwrap();
        o
    }];
    // The two versions must actually disagree, or the test proves nothing.
    assert_ne!(oracles[0].pts["q"], oracles[1].pts["q"]);

    let server = start_server("stress", &paths);
    let path = server.path().to_path_buf();
    let stop = AtomicBool::new(false);
    let checked = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for i in 0..8 {
            let path = &path;
            let oracles = &oracles;
            let stop = &stop;
            let checked = &checked;
            scope.spawn(move || {
                let mut c = UnixStream::connect(path).unwrap();
                let mut iters = 0usize;
                while !stop.load(Ordering::Relaxed) || iters < 50 {
                    let j = i + iters;
                    let epoch_of = |reply: &Value| -> usize {
                        reply.get("epoch").and_then(Value::as_u64).unwrap() as usize
                    };
                    match j % 3 {
                        0 => {
                            let name = names[j % names.len()];
                            let reply = ask(&mut c, &points_to_req(name));
                            let want = &oracles[epoch_of(&reply) % 2].pts[name];
                            assert_eq!(
                                &target_names(&reply),
                                want,
                                "client {i}: torn points-to for `{name}`"
                            );
                        }
                        1 => {
                            let (a, b) = pairs[j % pairs.len()];
                            let reply = ask(
                                &mut c,
                                &obj([("cmd", "alias".into()), ("a", a.into()), ("b", b.into())]),
                            );
                            let want = oracles[epoch_of(&reply) % 2].alias
                                [&(a.to_string(), b.to_string())];
                            assert_eq!(
                                reply.get("alias").and_then(Value::as_bool),
                                Some(want),
                                "client {i}: torn alias for ({a},{b})"
                            );
                        }
                        _ => {
                            let t = dep_targets[j % dep_targets.len()];
                            let reply = ask(
                                &mut c,
                                &obj([("cmd", "depend".into()), ("target", t.into())]),
                            );
                            let got: BTreeSet<String> = reply
                                .get("dependents")
                                .and_then(Value::as_arr)
                                .unwrap()
                                .iter()
                                .filter_map(|d| d.get("name").and_then(Value::as_str))
                                .map(str::to_string)
                                .collect();
                            let want = &oracles[epoch_of(&reply) % 2].depend[t];
                            assert_eq!(&got, want, "client {i}: torn depend for `{t}`");
                        }
                    }
                    iters += 1;
                    checked.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // Main thread: keep flipping a.c and reloading while clients hammer.
        let mut rc = UnixStream::connect(&path).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        for round in 0..6u64 {
            let text = if round % 2 == 0 { A_V1 } else { A_V0 };
            std::fs::write(Path::new(&paths[0]), text).unwrap();
            let reply = ask(&mut rc, &obj([("cmd", "reload".into())]));
            assert_eq!(
                reply.get("relinked").and_then(Value::as_bool),
                Some(true),
                "reload {round} did not relink: {}",
                reply.encode()
            );
            assert_eq!(
                reply.get("epoch").and_then(Value::as_u64),
                Some(round + 1),
                "epochs must advance by one per reload"
            );
            std::thread::sleep(std::time::Duration::from_millis(15));
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert!(
        checked.load(std::sync::atomic::Ordering::Relaxed) >= 400,
        "stress test barely ran"
    );
    let stats = server.stop();
    assert_eq!(stats.reloads, 6);
    assert_eq!(stats.epoch, 6);
    assert!(stats.latency_samples <= stats.latency_capacity);
    let _ = std::fs::remove_dir_all(dir);
}

/// Satellite for the observability PR: the per-command counters exposed in
/// `stats` replies must count each wire command separately and stay
/// monotonic across a `reload` (which swaps the sealed snapshot but must
/// not reset telemetry), and the `metrics` command must return Prometheus
/// text that round-trips through the exposition parser.
#[test]
fn per_command_counters_monotonic_across_reload_and_metrics_parses() {
    let (dir, paths) = write_sources(
        "metrics",
        &[
            ("a.c", "int x, y; int *p; void fa(void) { p = &x; }"),
            ("b.c", "extern int *p; int *q; void fb(void) { q = p; }"),
        ],
    );
    let server = start_server("metrics", &paths);
    let mut c = UnixStream::connect(server.path()).unwrap();

    let snapshot = |c: &mut UnixStream| -> Vec<u64> {
        let reply = ask(c, &obj([("cmd", "stats".into())]));
        assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(true));
        let s = reply.get("stats").unwrap();
        [
            "cmd_points_to",
            "cmd_alias",
            "cmd_depend",
            "cmd_stats",
            "cmd_reload",
        ]
        .iter()
        .map(|k| {
            s.get(k)
                .and_then(Value::as_u64)
                .unwrap_or_else(|| panic!("stats reply missing `{k}`: {}", reply.encode()))
        })
        .collect()
    };

    let _ = ask(&mut c, &points_to_req("q"));
    let _ = ask(
        &mut c,
        &obj([
            ("cmd", "alias".into()),
            ("a", "p".into()),
            ("b", "q".into()),
        ]),
    );
    let _ = ask(
        &mut c,
        &obj([("cmd", "depend".into()), ("target", "x".into())]),
    );
    let before = snapshot(&mut c);
    // One of each query command, plus the stats call counting itself.
    assert_eq!(before, vec![1, 1, 1, 1, 0]);

    // Edit a.c and reload: the snapshot swaps, the counters must not.
    std::fs::write(
        Path::new(&paths[0]),
        "int x, y; int *p; void fa(void) { p = &y; }",
    )
    .unwrap();
    let reply = ask(&mut c, &obj([("cmd", "reload".into())]));
    assert_eq!(reply.get("relinked").and_then(Value::as_bool), Some(true));

    let _ = ask(&mut c, &points_to_req("q"));
    let after = snapshot(&mut c);
    assert!(
        before.iter().zip(&after).all(|(b, a)| a >= b),
        "counters went backwards across reload: {before:?} -> {after:?}"
    );
    assert_eq!(after[0], 2, "second points-to counted after reload");
    assert_eq!(after[3], 2, "second stats counted");
    assert_eq!(after[4], 1, "reload counted");

    // `p90_us` sits between the existing p50/p99 order statistics.
    let reply = ask(&mut c, &obj([("cmd", "stats".into())]));
    let s = reply.get("stats").unwrap();
    let p50 = s.get("p50_us").and_then(Value::as_u64).unwrap();
    let p90 = s.get("p90_us").and_then(Value::as_u64).unwrap();
    let p99 = s.get("p99_us").and_then(Value::as_u64).unwrap();
    assert!(p50 <= p90 && p90 <= p99, "p50={p50} p90={p90} p99={p99}");

    // The metrics command returns Prometheus text exposition: parseable,
    // and carrying both serve-layer histograms and solver counters.
    let m = ask(&mut c, &obj([("cmd", "metrics".into())]));
    assert_eq!(m.get("ok").and_then(Value::as_bool), Some(true));
    let text = m.get("metrics").and_then(Value::as_str).unwrap();
    let samples = cla::obs::parse_exposition(text).unwrap();
    let have = |name: &str| samples.iter().any(|s| s.name == name);
    assert!(
        have("cla_serve_latency_us_bucket"),
        "missing latency buckets"
    );
    assert!(have("cla_serve_latency_us_count"), "missing latency count");
    assert!(
        have("cla_solve_passes_total"),
        "missing solver pass counter"
    );
    assert!(
        samples
            .iter()
            .any(|s| s.name == "cla_serve_latency_us_bucket"
                && s.labels.iter().any(|(k, v)| k == "cmd" && v == "points-to")),
        "latency histogram not labelled per command"
    );
    // The session's p50/p90/p99 order statistics are published as gauges
    // at scrape time, so a Prometheus scrape sees the same tail figures
    // that `stats` reports — no histogram-bucket estimation needed.
    let gauge = |name: &str| -> u64 {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing percentile gauge {name}"))
            .value as u64
    };
    let (g50, g90, g99) = (
        gauge("cla_serve_latency_p50_us"),
        gauge("cla_serve_latency_p90_us"),
        gauge("cla_serve_latency_p99_us"),
    );
    assert!(
        g50 <= g90 && g90 <= g99,
        "exposed percentile gauges out of order: {g50}/{g90}/{g99}"
    );

    server.stop();
    let _ = std::fs::remove_dir_all(dir);
}

/// Tentpole scenario for the fault-tolerance PR: a reload that fails —
/// here because the edited source no longer compiles — must leave the
/// last-good sealed snapshot serving answers, flag the session as
/// degraded, and recover automatically (no operator command) once the
/// fault is fixed and the backoff window has passed.
#[test]
fn degraded_reload_serves_last_good_and_recovers_automatically() {
    let (dir, paths) = write_sources(
        "degraded",
        &[
            ("a.c", "int x, y; int *p; void fa(void) { p = &x; }"),
            ("b.c", "extern int *p; int *q; void fb(void) { q = p; }"),
        ],
    );
    let files: Vec<&str> = paths.iter().map(String::as_str).collect();
    let session = Arc::new(
        Session::from_files(
            &OsFs,
            &files,
            &PpOptions::default(),
            &LowerOptions::default(),
            SolveOptions::default(),
        )
        .unwrap(),
    );
    // Tiny backoff so the automatic retry happens within the test.
    session.set_reload_backoff(
        std::time::Duration::from_millis(10),
        std::time::Duration::from_millis(50),
    );
    let socket = dir.join("degraded.sock");
    let server = cla::serve::serve(Arc::clone(&session), Some(Arc::new(OsFs)), &socket).unwrap();
    let mut c = UnixStream::connect(server.path()).unwrap();

    assert_eq!(
        target_names(&ask(&mut c, &points_to_req("q"))),
        BTreeSet::from(["x".to_string()])
    );
    let h = ask(&mut c, &obj([("cmd", "health".into())]));
    assert_eq!(h.get("health").and_then(Value::as_str), Some("ok"));

    // Break a.c so the recompile fails, then ask for a reload.
    std::fs::write(
        Path::new(&paths[0]),
        "int x; int *p; void fa(void) { p = &x;",
    )
    .unwrap();
    let reply = ask(&mut c, &obj([("cmd", "reload".into())]));
    assert_eq!(
        reply.get("ok").and_then(Value::as_bool),
        Some(false),
        "reload over a broken source must fail: {}",
        reply.encode()
    );

    // The last-good snapshot still answers, and the session says so.
    assert_eq!(
        target_names(&ask(&mut c, &points_to_req("q"))),
        BTreeSet::from(["x".to_string()]),
        "degraded session lost its last-good answers"
    );
    let h = ask(&mut c, &obj([("cmd", "health".into())]));
    assert_eq!(h.get("health").and_then(Value::as_str), Some("degraded"));
    assert!(
        h.get("last_error").and_then(Value::as_str).is_some(),
        "degraded health must carry the error: {}",
        h.encode()
    );
    let s = ask(&mut c, &obj([("cmd", "stats".into())]));
    let stats = s.get("stats").unwrap();
    assert_eq!(stats.get("degraded").and_then(Value::as_bool), Some(true));
    assert!(
        stats
            .get("reload_failures")
            .and_then(Value::as_u64)
            .unwrap()
            >= 1
    );
    assert!(stats.get("last_error").and_then(Value::as_str).is_some());

    // Fix the source (with a different graph, so recovery is observable),
    // wait out the backoff, and let an ordinary query trigger the retry.
    std::fs::write(
        Path::new(&paths[0]),
        "int x, y; int *p; void fa(void) { p = &y; }",
    )
    .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(60));
    let reply = ask(&mut c, &points_to_req("q"));
    assert_eq!(
        target_names(&reply),
        BTreeSet::from(["y".to_string()]),
        "recovered session must serve the fixed sources"
    );
    let h = ask(&mut c, &obj([("cmd", "health".into())]));
    assert_eq!(h.get("health").and_then(Value::as_str), Some("ok"));
    let s = ask(&mut c, &obj([("cmd", "stats".into())]));
    assert_eq!(
        s.get("stats")
            .unwrap()
            .get("degraded")
            .and_then(Value::as_bool),
        Some(false)
    );

    server.stop();
    let _ = std::fs::remove_dir_all(dir);
}

/// The same degraded-mode contract for a session serving a linked `.clao`
/// object directly: a corrupt rewrite is rejected by the checksum layer at
/// reload time, the last-good graph keeps answering, and restoring the
/// file brings the session back with an explicit reload.
#[test]
fn object_backed_session_survives_a_corrupt_rewrite() {
    let (dir, paths) = write_sources(
        "objpath",
        &[
            ("a.c", "int x; int *p; void fa(void) { p = &x; }"),
            ("b.c", "extern int *p; int *q; void fb(void) { q = p; }"),
        ],
    );
    let units: Vec<CompiledUnit> = paths
        .iter()
        .map(|p| {
            compile_file(&OsFs, p, &PpOptions::default(), &LowerOptions::default())
                .unwrap()
                .0
        })
        .collect();
    let (program, _) = link(&units, "a.out");
    let bytes = write_object(&program);
    let obj_path = dir.join("prog.clao");
    std::fs::write(&obj_path, &bytes).unwrap();

    let session = Arc::new(Session::from_object_path(&obj_path, SolveOptions::default()).unwrap());
    let socket = dir.join("objpath.sock");
    let server = cla::serve::serve(Arc::clone(&session), None, &socket).unwrap();
    let mut c = UnixStream::connect(server.path()).unwrap();
    assert_eq!(
        target_names(&ask(&mut c, &points_to_req("q"))),
        BTreeSet::from(["x".to_string()])
    );

    // A torn write: only half the object makes it to disk.
    std::fs::write(&obj_path, &bytes[..bytes.len() / 2]).unwrap();
    let reply = ask(&mut c, &obj([("cmd", "reload".into())]));
    assert_eq!(
        reply.get("ok").and_then(Value::as_bool),
        Some(false),
        "reload of a truncated object must fail: {}",
        reply.encode()
    );
    assert_eq!(
        target_names(&ask(&mut c, &points_to_req("q"))),
        BTreeSet::from(["x".to_string()]),
        "last-good object answers survive the torn rewrite"
    );
    let h = ask(&mut c, &obj([("cmd", "health".into())]));
    assert_eq!(h.get("health").and_then(Value::as_str), Some("degraded"));

    // Restore the file; an explicit reload recovers even though the bytes
    // hash the same as the resident epoch (degraded forces the rebuild).
    std::fs::write(&obj_path, &bytes).unwrap();
    let reply = ask(&mut c, &obj([("cmd", "reload".into())]));
    assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(reply.get("relinked").and_then(Value::as_bool), Some(true));
    assert_eq!(
        target_names(&ask(&mut c, &points_to_req("q"))),
        BTreeSet::from(["x".to_string()])
    );
    let h = ask(&mut c, &obj([("cmd", "health".into())]));
    assert_eq!(h.get("health").and_then(Value::as_str), Some("ok"));

    server.stop();
    let _ = std::fs::remove_dir_all(dir);
}

/// Malformed requests are client mistakes, not attacks: both invalid UTF-8
/// and syntactically bad JSON must draw a typed error reply and leave the
/// connection usable for the next request.
#[test]
fn malformed_requests_get_typed_errors_and_keep_the_connection() {
    let (dir, paths) = write_sources(
        "malformed",
        &[
            ("a.c", "int x; int *p; void fa(void) { p = &x; }"),
            ("b.c", "extern int *p; int *q; void fb(void) { q = p; }"),
        ],
    );
    let server = start_server("malformed", &paths);
    let mut c = UnixStream::connect(server.path()).unwrap();

    // Invalid UTF-8.
    c.write_all(b"\xff\xfe\x80garbage\n").unwrap();
    let mut line = String::new();
    let mut reader = BufReader::new(c.try_clone().unwrap());
    reader.read_line(&mut line).unwrap();
    let v = parse(line.trim()).unwrap();
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(
        v.get("error").and_then(Value::as_str),
        Some("malformed request: invalid utf-8")
    );

    // Bad JSON on the same connection.
    c.write_all(b"{this is not json\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let v = parse(line.trim()).unwrap();
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
    let err = v.get("error").and_then(Value::as_str).unwrap();
    assert!(
        err.starts_with("malformed request:"),
        "unexpected error text: {err}"
    );

    // The connection is still live and answers a real query.
    let reply = ask(&mut c, &points_to_req("q"));
    assert_eq!(
        target_names(&reply),
        BTreeSet::from(["x".to_string()]),
        "connection died after a malformed request"
    );
    server.stop();
    let _ = std::fs::remove_dir_all(dir);
}

/// A query that panics must take down only its own connection: the reply
/// names the failure, the socket closes, and other clients (and the accept
/// loop) keep working.
#[test]
fn query_panic_kills_one_connection_not_the_server() {
    let (dir, paths) = write_sources(
        "panic",
        &[
            ("a.c", "int x; int *p; void fa(void) { p = &x; }"),
            ("b.c", "extern int *p; int *q; void fb(void) { q = p; }"),
        ],
    );
    let files: Vec<&str> = paths.iter().map(String::as_str).collect();
    let session = Session::from_files(
        &OsFs,
        &files,
        &PpOptions::default(),
        &LowerOptions::default(),
        SolveOptions::default(),
    )
    .unwrap();
    let socket = dir.join("panic.sock");
    let server = cla::serve::serve_with(
        Arc::new(session),
        Some(Arc::new(OsFs)),
        &socket,
        cla::serve::ServeOptions {
            enable_test_commands: true,
            ..cla::serve::ServeOptions::default()
        },
    )
    .unwrap();

    let mut victim = UnixStream::connect(server.path()).unwrap();
    let mut bystander = UnixStream::connect(server.path()).unwrap();
    let _ = ask(&mut bystander, &points_to_req("q"));

    let reply = ask(&mut victim, &obj([("cmd", "__test_panic".into())]));
    assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(
        reply.get("error").and_then(Value::as_str),
        Some("internal error: query panicked")
    );
    // The poisoned connection is closed...
    let mut rest = String::new();
    let n = BufReader::new(victim.try_clone().unwrap())
        .read_line(&mut rest)
        .unwrap();
    assert_eq!(n, 0, "victim connection must be closed, got {rest:?}");

    // ...but the bystander and fresh connections still get answers.
    assert_eq!(
        target_names(&ask(&mut bystander, &points_to_req("q"))),
        BTreeSet::from(["x".to_string()])
    );
    let mut fresh = UnixStream::connect(server.path()).unwrap();
    assert_eq!(
        target_names(&ask(&mut fresh, &points_to_req("q"))),
        BTreeSet::from(["x".to_string()])
    );
    server.stop();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn depend_over_socket_matches_in_process() {
    let (dir, paths) = write_sources(
        "depend",
        &[(
            "a.c",
            "short base; int d1, d2; void f(void) { d1 = base; d2 = d1; }",
        )],
    );
    let server = start_server("depend", &paths);
    let mut c = UnixStream::connect(server.path()).unwrap();
    let reply = ask(
        &mut c,
        &obj([("cmd", "depend".into()), ("target", "base".into())]),
    );
    assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(true));
    let names: BTreeSet<&str> = reply
        .get("dependents")
        .and_then(Value::as_arr)
        .unwrap()
        .iter()
        .filter_map(|d| d.get("name").and_then(Value::as_str))
        .collect();
    assert!(
        names.contains("d1") && names.contains("d2"),
        "got {names:?}"
    );
    server.stop();
    let _ = std::fs::remove_dir_all(dir);
}
