//! Property-based cross-solver equivalence.
//!
//! Random constraint systems are generated directly as [`CompiledUnit`]s
//! (arbitrary mixes of the five primitive forms over a small variable set),
//! then solved by:
//!
//! * the deductive oracle (a literal transcription of Figure 2),
//! * the pre-transitive solver in all four ablation configurations,
//! * the pre-transitive solver in demand-loading mode (through a serialized
//!   object file),
//! * the worklist Andersen baseline,
//! * Steensgaard (checked for over-approximation only).

use cla::prelude::*;
use cla::core::{deductive, steensgaard, worklist};
use cla::ir::{ObjectInfo, PrimAssign, SrcLoc};
use proptest::prelude::*;

/// Builds a unit with `nvars` variables and the given raw assignments
/// (kind, dst, src).
fn build_unit(nvars: u32, assigns: &[(u8, u32, u32)]) -> CompiledUnit {
    let mut unit = CompiledUnit::new("prop.c");
    for i in 0..nvars {
        unit.push_object(ObjectInfo::global(
            format!("v{i}"),
            ObjKind::Var,
            "int *",
            SrcLoc::NONE,
        ));
    }
    for &(kind, dst, src) in assigns {
        unit.push_assign(PrimAssign {
            kind: match kind % 5 {
                0 => AssignKind::Copy,
                1 => AssignKind::Addr,
                2 => AssignKind::Store,
                3 => AssignKind::Load,
                _ => AssignKind::StoreLoad,
            },
            dst: cla::ir::ObjId(dst % nvars),
            src: cla::ir::ObjId(src % nvars),
            strength: Strength::Strong,
            op: cla::ir::OpKind::Direct,
            loc: SrcLoc::NONE,
        });
    }
    unit
}

/// Restricts a PointsTo to the first `nvars` real objects (solvers may add
/// internal split nodes beyond them).
fn sets(p: &cla::core::PointsTo, nvars: u32) -> Vec<Vec<cla::ir::ObjId>> {
    (0..nvars)
        .map(|i| p.points_to(cla::ir::ObjId(i)).to_vec())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_solvers_agree(
        nvars in 3u32..10,
        assigns in prop::collection::vec((0u8..5, 0u32..10, 0u32..10), 1..25),
    ) {
        let unit = build_unit(nvars, &assigns);
        let oracle = deductive::solve_oracle(&unit);
        let expected = sets(&oracle, nvars);

        for (cache, cycle) in [(true, true), (true, false), (false, true), (false, false)] {
            let (got, _) = solve_unit(&unit, SolveOptions { cache, cycle_elim: cycle });
            prop_assert_eq!(
                sets(&got, nvars),
                expected.clone(),
                "pre-transitive cache={} cycle={} diverged",
                cache,
                cycle
            );
        }

        let wl = worklist::solve(&unit);
        prop_assert_eq!(sets(&wl, nvars), expected.clone(), "worklist diverged");

        // Demand-loading through a real object file.
        let db = Database::open(write_object(&unit)).unwrap();
        let (dbp, _) = solve_database(&db, SolveOptions::default());
        prop_assert_eq!(sets(&dbp, nvars), expected.clone(), "demand-loaded solve diverged");

        // Steensgaard must over-approximate.
        let st = steensgaard::solve(&unit);
        prop_assert!(oracle.subsumed_by(&st), "Steensgaard under-approximated");
    }

    #[test]
    fn object_file_roundtrip(
        nvars in 1u32..12,
        assigns in prop::collection::vec((0u8..5, 0u32..12, 0u32..12), 0..30),
    ) {
        let unit = build_unit(nvars, &assigns);
        let bytes = write_object(&unit);
        let db = Database::open(bytes).unwrap();
        let back = db.to_unit().unwrap();
        prop_assert_eq!(&back.objects, &unit.objects);
        prop_assert_eq!(back.assign_counts(), unit.assign_counts());
        // Every assignment survives (order may differ between sections).
        let mut a: Vec<_> = unit.assigns.clone();
        let mut b: Vec<_> = back.assigns.clone();
        let key = |x: &PrimAssign| (x.kind as u8, x.dst.0, x.src.0, x.loc.line);
        a.sort_by_key(key);
        b.sort_by_key(key);
        prop_assert_eq!(a, b);
    }
}

/// Source-level property test: random tiny C programs through the whole
/// pipeline agree with the oracle.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pipeline_matches_oracle_on_random_c(
        stmts in prop::collection::vec((0u8..5, 0usize..4, 0usize..4), 1..15),
    ) {
        let vars = ["a", "b", "c", "d"];
        let mut body = String::new();
        for (kind, d, s) in &stmts {
            let (d, s) = (vars[*d], vars[*s]);
            match kind % 5 {
                0 => body.push_str(&format!("{d} = {s};\n")),
                1 => body.push_str(&format!("{d} = (int *) &{s};\n")),
                2 => body.push_str(&format!("*(int **){d} = {s};\n")),
                3 => body.push_str(&format!("{d} = *(int **){s};\n")),
                _ => body.push_str(&format!("*(int **){d} = *(int **){s};\n")),
            }
        }
        let src = format!("int *a, *b, *c, *d;\nvoid f(void) {{\n{body}}}\n");
        let unit = compile_source(&src, "prop.c", &LowerOptions::default()).unwrap();
        let oracle = cla::core::deductive::solve_oracle(&unit);
        let (got, _) = solve_unit(&unit, SolveOptions::default());
        prop_assert_eq!(&got, &oracle, "mismatch on program:\n{}", src);
    }
}
