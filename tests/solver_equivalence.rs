//! Randomized cross-solver equivalence.
//!
//! Random constraint systems are generated directly as [`CompiledUnit`]s
//! (arbitrary mixes of the five primitive forms over a small variable set),
//! then solved by:
//!
//! * the deductive oracle (a literal transcription of Figure 2),
//! * the pre-transitive solver in all four ablation configurations,
//! * the pre-transitive solver in demand-loading mode (through a serialized
//!   object file),
//! * the worklist Andersen baseline,
//! * Steensgaard (checked for over-approximation only).
//!
//! Cases come from a fixed-seed SplitMix64 stream, so every run checks the
//! same corpus and failures reproduce exactly.

use cla::core::{deductive, steensgaard, worklist};
use cla::ir::{ObjectInfo, PrimAssign, SrcLoc};
use cla::prelude::*;
use cla::workload::SplitMix64;

/// Builds a unit with `nvars` variables and the given raw assignments
/// (kind, dst, src).
fn build_unit(nvars: u32, assigns: &[(u8, u32, u32)]) -> CompiledUnit {
    let mut unit = CompiledUnit::new("prop.c");
    for i in 0..nvars {
        unit.push_object(ObjectInfo::global(
            format!("v{i}"),
            ObjKind::Var,
            "int *",
            SrcLoc::NONE,
        ));
    }
    for &(kind, dst, src) in assigns {
        unit.push_assign(PrimAssign {
            kind: match kind % 5 {
                0 => AssignKind::Copy,
                1 => AssignKind::Addr,
                2 => AssignKind::Store,
                3 => AssignKind::Load,
                _ => AssignKind::StoreLoad,
            },
            dst: cla::ir::ObjId(dst % nvars),
            src: cla::ir::ObjId(src % nvars),
            strength: Strength::Strong,
            op: cla::ir::OpKind::Direct,
            loc: SrcLoc::NONE,
        });
    }
    unit
}

/// Restricts a PointsTo to the first `nvars` real objects (solvers may add
/// internal split nodes beyond them).
fn sets(p: &cla::core::PointsTo, nvars: u32) -> Vec<Vec<cla::ir::ObjId>> {
    (0..nvars)
        .map(|i| p.points_to(cla::ir::ObjId(i)).to_vec())
        .collect()
}

fn random_assigns(rng: &mut SplitMix64, count: usize, var_bound: u32) -> Vec<(u8, u32, u32)> {
    (0..count)
        .map(|_| {
            (
                rng.random_range(0..5u32) as u8,
                rng.random_range(0..var_bound),
                rng.random_range(0..var_bound),
            )
        })
        .collect()
}

#[test]
fn all_solvers_agree() {
    let mut rng = SplitMix64::seed_from_u64(0xc1a0_0001);
    for _case in 0..64 {
        let nvars = rng.random_range(3..10u32);
        let nassigns = rng.random_range(1..25usize);
        let assigns = random_assigns(&mut rng, nassigns, 10);
        let unit = build_unit(nvars, &assigns);
        let oracle = deductive::solve_oracle(&unit);
        let expected = sets(&oracle, nvars);

        for (cache, cycle) in [(true, true), (true, false), (false, true), (false, false)] {
            let (got, _) = solve_unit(
                &unit,
                SolveOptions {
                    cache,
                    cycle_elim: cycle,
                },
            );
            assert_eq!(
                sets(&got, nvars),
                expected,
                "pre-transitive cache={cache} cycle={cycle} diverged on {assigns:?}"
            );
        }

        let wl = worklist::solve(&unit);
        assert_eq!(
            sets(&wl, nvars),
            expected,
            "worklist diverged on {assigns:?}"
        );

        // Demand-loading through a real object file.
        let db = Database::open(write_object(&unit)).unwrap();
        let (dbp, _) = solve_database(&db, SolveOptions::default());
        assert_eq!(
            sets(&dbp, nvars),
            expected,
            "demand-loaded solve diverged on {assigns:?}"
        );

        // Steensgaard must over-approximate.
        let st = steensgaard::solve(&unit);
        assert!(
            oracle.subsumed_by(&st),
            "Steensgaard under-approximated on {assigns:?}"
        );
    }
}

#[test]
fn object_file_roundtrip() {
    let mut rng = SplitMix64::seed_from_u64(0xc1a0_0002);
    for _case in 0..64 {
        let nvars = rng.random_range(1..12u32);
        let nassigns = rng.random_range(0..30usize);
        let assigns = random_assigns(&mut rng, nassigns, 12);
        let unit = build_unit(nvars, &assigns);
        let bytes = write_object(&unit);
        let db = Database::open(bytes).unwrap();
        let back = db.to_unit().unwrap();
        assert_eq!(&back.objects, &unit.objects);
        assert_eq!(back.assign_counts(), unit.assign_counts());
        // Every assignment survives (order may differ between sections).
        let mut a: Vec<_> = unit.assigns.clone();
        let mut b: Vec<_> = back.assigns.clone();
        let key = |x: &PrimAssign| (x.kind as u8, x.dst.0, x.src.0, x.loc.line);
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }
}

/// Source-level property: random tiny C programs through the whole
/// pipeline agree with the oracle.
#[test]
fn pipeline_matches_oracle_on_random_c() {
    let mut rng = SplitMix64::seed_from_u64(0xc1a0_0003);
    let vars = ["a", "b", "c", "d"];
    for _case in 0..48 {
        let nstmts = rng.random_range(1..15usize);
        let mut body = String::new();
        for _ in 0..nstmts {
            let kind = rng.random_range(0..5u32) as u8;
            let d = vars[rng.random_range(0..4usize)];
            let s = vars[rng.random_range(0..4usize)];
            match kind % 5 {
                0 => body.push_str(&format!("{d} = {s};\n")),
                1 => body.push_str(&format!("{d} = (int *) &{s};\n")),
                2 => body.push_str(&format!("*(int **){d} = {s};\n")),
                3 => body.push_str(&format!("{d} = *(int **){s};\n")),
                _ => body.push_str(&format!("*(int **){d} = *(int **){s};\n")),
            }
        }
        let src = format!("int *a, *b, *c, *d;\nvoid f(void) {{\n{body}}}\n");
        let unit = compile_source(&src, "prop.c", &LowerOptions::default()).unwrap();
        let oracle = cla::core::deductive::solve_oracle(&unit);
        let (got, _) = solve_unit(&unit, SolveOptions::default());
        assert_eq!(&got, &oracle, "mismatch on program:\n{src}");
    }
}
