//! Persistence integration tests: snapshot round trips must be
//! observationally exact (identical points-to answers, stats, and sharing
//! behavior), provenance mismatches must force a full re-solve, the
//! compile cache must survive corruption by falling back to the compiler,
//! and stale temporaries from crashed writers must be reclaimed on open.

use cla::core::pipeline::CompileCache as _;
use cla::prelude::*;
use std::path::{Path, PathBuf};

/// A test directory that cleans up after itself even on panic.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("cla-snap-it-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Generated multi-file workload sources in a `MemoryFs`.
fn workload_fs(spec_name: &str, scale: f64, seed: u64) -> (MemoryFs, Vec<String>) {
    let spec = by_name(spec_name).unwrap();
    let w = generate(
        spec,
        &GenOptions {
            scale,
            files: 3,
            seed,
            ..Default::default()
        },
    );
    let mut fs = MemoryFs::new();
    for (p, c) in &w.files {
        fs.add(p.clone(), c.clone());
    }
    let names: Vec<String> = w.source_files().iter().map(|s| s.to_string()).collect();
    (fs, names)
}

fn analyze_snapshotted(fs: &MemoryFs, names: &[String], dir: &Path) -> (Analysis, (u64, u64, u64)) {
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let cache = DiskCache::open(&dir.join("cache")).unwrap();
    let store = SnapshotStore::open(dir).unwrap();
    let hooks = AnalyzeHooks {
        compile_cache: Some(&cache),
        snapshots: Some(&store),
    };
    let analysis = analyze_with(fs, &refs, &PipelineOptions::default(), &hooks).unwrap();
    let counters = store.counters();
    (analysis, counters)
}

#[test]
fn workload_round_trip_is_observationally_exact() {
    for spec in ["nethack", "vortex"] {
        let dir = TempDir::new(&format!("roundtrip-{spec}"));
        let (fs, names) = workload_fs(spec, 0.05, 11);

        let (cold, _) = analyze_snapshotted(&fs, &names, dir.path());
        assert!(!cold.report.snapshot_loaded, "{spec}: first run must solve");
        assert_eq!(cold.report.compile_cache_hits, 0, "{spec}");

        let (warm, (loads, _, mismatches)) = analyze_snapshotted(&fs, &names, dir.path());
        assert!(warm.report.snapshot_loaded, "{spec}: second run must load");
        assert_eq!(loads, 1, "{spec}");
        assert_eq!(mismatches, 0, "{spec}");
        assert_eq!(
            warm.report.compile_cache_hits,
            names.len(),
            "{spec}: every file must come from the cache"
        );

        // Observational exactness: the restored graph answers every query
        // exactly like the freshly solved one, and the persisted solver
        // stats match what the solve produced.
        assert_eq!(cold.points_to, warm.points_to, "{spec}: points-to differs");
        assert_eq!(
            cold.report.solve_stats, warm.report.solve_stats,
            "{spec}: solver stats not persisted faithfully"
        );
    }
}

#[test]
fn provenance_mismatch_forces_a_full_resolve() {
    let dir = TempDir::new("provenance");
    let mut fs = MemoryFs::new();
    fs.add("a.c", "int x; int *p; void f(void) { p = &x; }");
    fs.add("b.c", "extern int *p; int *q; void g(void) { q = p; }");
    let names = vec!["a.c".to_string(), "b.c".to_string()];

    let (_, _) = analyze_snapshotted(&fs, &names, dir.path());

    // A semantically meaningful edit changes one input hash: the stored
    // snapshot must be ignored (mismatch counted) and the fresh solve must
    // see the new assignment.
    fs.add(
        "b.c",
        "extern int *p; int x2; int *q; void g(void) { q = p; q = &x2; }",
    );
    let (edited, (_, _, mismatches)) = analyze_snapshotted(&fs, &names, dir.path());
    assert!(!edited.report.snapshot_loaded, "stale snapshot was loaded");
    assert_eq!(mismatches, 1);
    let q = edited.database.targets("q")[0];
    let x2 = edited.database.targets("x2")[0];
    assert!(
        edited.points_to.may_point_to(q, x2),
        "re-solve missed the edit"
    );

    // The refreshed snapshot matches the edited program again.
    let (warm, (_, _, mismatches)) = analyze_snapshotted(&fs, &names, dir.path());
    assert!(warm.report.snapshot_loaded);
    assert_eq!(mismatches, 0);
    assert_eq!(edited.points_to, warm.points_to);
}

#[test]
fn different_solver_options_do_not_share_a_snapshot() {
    let dir = TempDir::new("solver-opts");
    let mut fs = MemoryFs::new();
    fs.add("a.c", "int x; int *p; void f(void) { p = &x; }");
    let refs = ["a.c"];

    let store = SnapshotStore::open(dir.path()).unwrap();
    let hooks = AnalyzeHooks {
        compile_cache: None,
        snapshots: Some(&store),
    };
    let opts = PipelineOptions::default();
    analyze_with(&fs, &refs, &opts, &hooks).unwrap();

    let ablated = PipelineOptions {
        solver: SolveOptions {
            cycle_elim: false,
            ..SolveOptions::default()
        },
        ..PipelineOptions::default()
    };
    let second = analyze_with(&fs, &refs, &ablated, &hooks).unwrap();
    assert!(
        !second.report.snapshot_loaded,
        "snapshot crossed a solver-options boundary"
    );
    let (_, _, mismatches) = store.counters();
    assert_eq!(mismatches, 1);
}

#[test]
fn serve_session_warm_starts_from_the_snapshot_directory() {
    let dir = TempDir::new("serve-warm");
    let src_a = dir.path().join("a.c");
    let src_b = dir.path().join("b.c");
    std::fs::write(
        &src_a,
        "int x; int *p; int **pp; void f(void) { p = &x; pp = &p; }",
    )
    .unwrap();
    std::fs::write(&src_b, "extern int *p; int *q; void g(void) { q = p; }").unwrap();
    let snap_dir = dir.path().join("snap");
    let files = [
        src_a.to_string_lossy().into_owned(),
        src_b.to_string_lossy().into_owned(),
    ];
    let refs: Vec<&str> = files.iter().map(String::as_str).collect();

    let build = |snap: Option<&Path>| {
        Session::from_files_with(
            &OsFs,
            &refs,
            &PpOptions::default(),
            &LowerOptions::default(),
            SolveOptions::default(),
            snap,
        )
        .unwrap()
    };

    let cold = build(Some(&snap_dir));
    assert!(!cold.snapshot_loaded(), "no snapshot existed yet");
    assert!(snap_dir.join(cla::snap::SNAPSHOT_FILE).exists());

    let warm = build(Some(&snap_dir));
    assert!(warm.snapshot_loaded(), "second session must start warm");
    for var in ["p", "q", "pp"] {
        let a = cold.points_to(var).unwrap();
        let b = warm.points_to(var).unwrap();
        let names = |ans: &cla::serve::PointsToAnswer| -> Vec<String> {
            ans.targets.iter().map(|t| t.name.clone()).collect()
        };
        assert_eq!(names(&a), names(&b), "pts({var}) differs across warm start");
    }
    let stats = warm.stats();
    assert!(stats.snapshot_loaded);
    assert_eq!(stats.snapshot_loads, 1);
    assert!(stats.snapshot_provenance.is_some());

    // An edit invalidates the snapshot: the next cold start re-solves and
    // sees the new flow, rather than serving stale warm-start answers.
    std::fs::write(
        &src_b,
        "extern int *p; int y2; int *q; void g(void) { q = &y2; }",
    )
    .unwrap();
    let edited = build(Some(&snap_dir));
    assert!(
        !edited.snapshot_loaded(),
        "stale snapshot reused after edit"
    );
    let pts_q = edited.points_to("q").unwrap();
    let target_names: Vec<&str> = pts_q.targets.iter().map(|t| t.name.as_str()).collect();
    assert_eq!(target_names, ["y2"]);
}

#[test]
fn corrupt_cache_entry_falls_back_to_the_compiler() {
    let dir = TempDir::new("corrupt-cache");
    let mut fs = MemoryFs::new();
    fs.add("a.c", "int x; int *p; void f(void) { p = &x; }");
    fs.add("b.c", "extern int *p; int *q; void g(void) { q = p; }");
    let names = vec!["a.c".to_string(), "b.c".to_string()];

    let (cold, _) = analyze_snapshotted(&fs, &names, dir.path());

    // Flip bytes inside every cached object: the checksummed reader must
    // reject them, and the pipeline must transparently recompile (a miss,
    // never an error) and overwrite the entries with good ones.
    let cache_dir = dir.path().join("cache");
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&cache_dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "clao") {
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xff;
            bytes[mid + 1] ^= 0xff;
            std::fs::write(&path, bytes).unwrap();
            corrupted += 1;
        }
    }
    assert_eq!(corrupted, 2, "expected one cache entry per source file");

    let (recovered, _) = analyze_snapshotted(&fs, &names, dir.path());
    assert_eq!(
        recovered.report.compile_cache_hits, 0,
        "corrupt entries must not count as hits"
    );
    assert_eq!(recovered.report.compile_cache_misses, 2);
    assert_eq!(cold.points_to, recovered.points_to);

    // The recompile overwrote the damaged entries, so the next run hits.
    let (healed, _) = analyze_snapshotted(&fs, &names, dir.path());
    assert_eq!(healed.report.compile_cache_hits, 2);
}

#[test]
fn corrupt_snapshot_file_falls_back_to_a_full_solve() {
    let dir = TempDir::new("corrupt-snap");
    let mut fs = MemoryFs::new();
    fs.add("a.c", "int x; int *p; void f(void) { p = &x; }");
    let names = vec!["a.c".to_string()];

    let (cold, _) = analyze_snapshotted(&fs, &names, dir.path());
    let snap_path = dir.path().join(cla::snap::SNAPSHOT_FILE);
    let mut bytes = std::fs::read(&snap_path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&snap_path, bytes).unwrap();

    let (recovered, (_, _, mismatches)) = analyze_snapshotted(&fs, &names, dir.path());
    assert!(!recovered.report.snapshot_loaded);
    assert_eq!(mismatches, 1, "corruption must count as a mismatch");
    assert_eq!(cold.points_to, recovered.points_to);
}

#[test]
fn stale_temporaries_are_reclaimed_on_open() {
    let dir = TempDir::new("tmp-sweep");
    // A crashed atomic writer leaves `.{name}.tmp.{pid}`; an interrupted
    // legacy writer leaves `{name}.tmp`. Both must be swept. Our own pid's
    // in-flight temporary must be left alone.
    std::fs::write(dir.path().join(".graph.clasnap.tmp.999999"), b"junk").unwrap();
    std::fs::write(dir.path().join("partial.tmp"), b"junk").unwrap();
    let own = format!(".live.tmp.{}", std::process::id());
    std::fs::write(dir.path().join(&own), b"in flight").unwrap();

    let store = SnapshotStore::open(dir.path()).unwrap();
    assert_eq!(store.reclaimed_tmp(), 2);
    assert!(!dir.path().join(".graph.clasnap.tmp.999999").exists());
    assert!(!dir.path().join("partial.tmp").exists());
    assert!(dir.path().join(&own).exists(), "live temporary was swept");

    // Same sweep guards the compile cache directory.
    let cache_dir = dir.path().join("cache");
    std::fs::create_dir_all(&cache_dir).unwrap();
    std::fs::write(cache_dir.join("0123456789abcdef.clao.tmp"), b"junk").unwrap();
    let cache = DiskCache::open(&cache_dir).unwrap();
    assert_eq!(cache.reclaimed_tmp(), 1);
}

#[test]
fn cache_evicts_oldest_entries_past_the_size_cap() {
    let dir = TempDir::new("lru");
    let payload = vec![0xABu8; 1000];
    let cache = DiskCache::with_capacity(dir.path(), 2500).unwrap();
    cache.store(1, &payload);
    cache.store(2, &payload);

    // Age the first two entries so recency ordering is unambiguous.
    for (key, secs) in [(1u64, 1000u64), (2, 2000)] {
        let path = dir.path().join(format!("{key:016x}.clao"));
        let f = std::fs::File::options().append(true).open(&path).unwrap();
        f.set_modified(std::time::UNIX_EPOCH + std::time::Duration::from_secs(secs))
            .unwrap();
    }

    // Third store pushes the total to 3000 > 2500: the oldest entry (key 1)
    // must go, the newer ones must survive.
    cache.store(3, &payload);
    assert!(!dir.path().join(format!("{:016x}.clao", 1)).exists());
    assert!(dir.path().join(format!("{:016x}.clao", 2)).exists());
    assert!(dir.path().join(format!("{:016x}.clao", 3)).exists());

    // A hit refreshes recency: touch key 2, then overflow again — key 3 is
    // now the oldest and must be the one evicted.
    assert!(cache.load(2).is_some());
    let f = std::fs::File::options()
        .append(true)
        .open(dir.path().join(format!("{:016x}.clao", 3)))
        .unwrap();
    f.set_modified(std::time::UNIX_EPOCH + std::time::Duration::from_secs(3000))
        .unwrap();
    cache.store(4, &payload);
    assert!(!dir.path().join(format!("{:016x}.clao", 3)).exists());
    assert!(dir.path().join(format!("{:016x}.clao", 2)).exists());
    assert!(dir.path().join(format!("{:016x}.clao", 4)).exists());

    // Reopening measures the real directory size, not the stale estimate.
    let reopened = DiskCache::with_capacity(dir.path(), 2500).unwrap();
    let (hits, misses) = reopened.counters();
    assert_eq!((hits, misses), (0, 0));
    assert!(reopened.load(4).is_some());
}

/// Many in-process writers racing `atomic_write_bytes` on one destination
/// while a sweeper runs `sweep_stale_tmp` over the same directory: every
/// write must succeed (the sweep must never reclaim an in-flight
/// temporary of this process), the final file must be exactly one
/// writer's payload (never interleaved), and no temporaries may remain.
#[test]
fn concurrent_atomic_writers_and_sweeps_never_corrupt() {
    use cla::cladb::{atomic_write_bytes, sweep_stale_tmp};
    use std::sync::atomic::{AtomicUsize, Ordering};

    let dir = TempDir::new("tmp-race");
    let target = dir.path().join("graph.clasnap");
    const WRITERS: usize = 8;
    const ROUNDS: usize = 30;
    let finished = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let (target, finished) = (&target, &finished);
            scope.spawn(move || {
                // One recognizable byte per writer: a torn or interleaved
                // publish would mix values and fail the uniformity check.
                let payload = vec![w as u8 + 1; 4096];
                for _ in 0..ROUNDS {
                    atomic_write_bytes(target, &payload)
                        .expect("atomic write lost to a name collision or sweep");
                }
                finished.fetch_add(1, Ordering::Relaxed);
            });
        }
        let (dirp, finished) = (dir.path(), &finished);
        scope.spawn(move || {
            // Sweep continuously for the whole time writes are in flight.
            while finished.load(Ordering::Relaxed) < WRITERS {
                sweep_stale_tmp(dirp).unwrap();
                std::thread::yield_now();
            }
        });
    });

    let bytes = std::fs::read(&target).unwrap();
    assert_eq!(bytes.len(), 4096, "published file is not one payload");
    assert!(
        bytes.iter().all(|b| *b == bytes[0]),
        "published file interleaves two writers"
    );
    // After the dust settles a final sweep finds nothing of ours left.
    let leftovers: Vec<_> = std::fs::read_dir(dir.path())
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "stray temporaries: {leftovers:?}");
}

/// Several threads race whole analyze-with-snapshot runs against one
/// shared directory: the first finishers save while the rest load (or
/// re-solve), `SnapshotStore::open`'s stale-temporary sweep runs in the
/// middle of in-flight saves, and the compile cache sees concurrent
/// stores of the same entries. Every run must produce the right answers,
/// and the directory must end in a loadable state.
#[test]
fn concurrent_snapshot_save_and_load_share_a_directory() {
    let dir = TempDir::new("concurrent-store");
    let mut fs = MemoryFs::new();
    fs.add("a.c", "int x; int *p; void f(void) { p = &x; }");
    fs.add("b.c", "extern int *p; int *q; void g(void) { q = p; }");
    let names = vec!["a.c".to_string(), "b.c".to_string()];

    std::thread::scope(|scope| {
        for _ in 0..6 {
            let (fs, names, dir) = (&fs, &names, dir.path());
            scope.spawn(move || {
                for _ in 0..3 {
                    let (analysis, (_, _, _)) = analyze_snapshotted(fs, names, dir);
                    let q = analysis.database.targets("q")[0];
                    let x = analysis.database.targets("x")[0];
                    assert!(
                        analysis.points_to.may_point_to(q, x),
                        "a racing save/load produced wrong answers"
                    );
                }
            });
        }
    });

    // Whoever won the save races, the surviving snapshot is complete and
    // matches the sources: a fresh run loads it with zero mismatches.
    let (warm, (loads, _, mismatches)) = analyze_snapshotted(&fs, &names, dir.path());
    assert!(
        warm.report.snapshot_loaded,
        "final snapshot is not loadable"
    );
    assert_eq!(loads, 1);
    assert_eq!(mismatches, 0);
}
