//! Partial analysis at scale: a generated multi-file tree with ~5% of its
//! files replaced by hostile inputs must quarantine exactly those files and
//! answer every query over the surviving units exactly as a run that never
//! saw the hostile files at all (DESIGN.md §14). This is the soundness
//! contract of quarantine-and-continue: a broken unit can remove answers,
//! but it can never change them.

use cla::core::pipeline::Analysis;
use cla::genc::{file_name, Profile};
use cla::prelude::*;
use std::collections::BTreeSet;

/// Replaces every 20th file (starting at index 5) with hostile bytes,
/// alternating a plain syntax error with a parser-depth budget bomb.
/// Returns the replaced file names, in input order.
fn inject_hostile(fs: &mut MemoryFs, files: &[String]) -> Vec<String> {
    let mut hostile = Vec::new();
    for (i, f) in files.iter().enumerate() {
        if i % 20 != 5 {
            continue;
        }
        let bytes = if hostile.len() % 2 == 0 {
            "int broken( = ;".to_owned()
        } else {
            format!("int deep = {}1{};", "(".repeat(20_000), ")".repeat(20_000))
        };
        fs.add(f.clone(), bytes);
        hostile.push(f.clone());
    }
    hostile
}

/// Every by-name points-to pair in the analysis. Ids differ between runs
/// with different unit sets, so the comparison is at the name level.
fn name_pairs(a: &Analysis) -> BTreeSet<(String, String)> {
    let mut out = BTreeSet::new();
    for (p, targets) in a.points_to.iter() {
        let pname = &a.database.object(p).name;
        for t in targets {
            out.insert((pname.clone(), a.database.object(*t).name.clone()));
        }
    }
    out
}

#[test]
fn hostile_tree_quarantines_exactly_and_matches_clean_subset() {
    // A 40-file generated tree; every 20th file (starting at 5) is replaced
    // with hostile bytes — 2 files, i.e. 5% of the tree. One is a plain
    // syntax error, the other a 20,000-deep expression that must trip the
    // parser depth budget rather than the process stack.
    let profile = Profile::parse(
        "name = \"hostile\"\ntotal_loc = 8000\nfiles = 40\nindirect_call_rate = 0.03\n",
    )
    .unwrap();
    let mut fs = MemoryFs::new();
    generate_with(&profile, 11, &mut |name, text| {
        fs.add(name.to_owned(), text.to_owned());
        Ok(())
    })
    .unwrap();

    let files: Vec<String> = (0..profile.files).map(|i| file_name(&profile, i)).collect();
    let hostile = inject_hostile(&mut fs, &files);
    assert_eq!(hostile.len(), 2, "5% of 40 files");

    // Quarantine-and-continue over the full hostile tree, in parallel.
    let refs: Vec<&str> = files.iter().map(String::as_str).collect();
    let lenient = analyze(
        &fs,
        &refs,
        &PipelineOptions {
            strict: false,
            parallel_compile: true,
            jobs: 4,
            ..Default::default()
        },
    )
    .unwrap();

    // The ledger names exactly the injected files, nothing else, and the
    // deep-nesting file is recorded as a budget overrun, not a plain error.
    let ledger: Vec<&str> = lenient
        .report
        .quarantined
        .iter()
        .map(|q| q.file.as_str())
        .collect();
    assert_eq!(ledger, hostile, "quarantine ledger");
    assert!(lenient.report.is_partial());
    assert!(
        !lenient.report.quarantined[0].reason.is_budget(),
        "syntax error is not a budget overrun"
    );
    assert!(
        lenient.report.quarantined[1].reason.is_budget(),
        "20k-deep nesting is a budget overrun"
    );

    // A run that never saw the hostile files: the gold standard for every
    // answer about the surviving 38 units.
    let clean: Vec<&str> = files
        .iter()
        .filter(|f| !hostile.contains(f))
        .map(String::as_str)
        .collect();
    let subset = analyze(&fs, &clean, &PipelineOptions::default()).unwrap();
    assert!(subset.report.quarantined.is_empty());

    let got = name_pairs(&lenient);
    let want = name_pairs(&subset);
    assert!(!want.is_empty(), "generated tree must produce answers");
    assert_eq!(got, want, "partial answers diverge from the clean subset");
}

/// A compact order-independent fingerprint of the full by-name points-to
/// relation: pair count plus an FNV-1a hash folded over every sorted
/// `name -> target` edge. At a million lines the relation holds ~7M pairs,
/// so the comparison streams instead of materializing two string sets.
fn relation_fingerprint(a: &Analysis) -> (u64, u64) {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let fnv = |mut h: u64, s: &str| {
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h ^ 0xff // terminator so "ab"+"c" != "a"+"bc"
    };
    let mut names: Vec<&str> = a.database.target_names().collect();
    names.sort_unstable();
    names.dedup();
    let mut count = 0u64;
    let mut acc = 0u64;
    for name in names {
        for p in a.database.targets(name) {
            let mut targets: Vec<&str> = a
                .points_to
                .points_to(*p)
                .iter()
                .map(|t| a.database.object(*t).name.as_str())
                .collect();
            targets.sort_unstable();
            targets.dedup();
            for t in targets {
                // Commutative fold: id order within a name may differ
                // between runs, the name-level relation must not.
                acc = acc.wrapping_add(fnv(fnv(FNV_OFFSET, name), t));
                count += 1;
            }
        }
    }
    (count, acc)
}

/// Acceptance run for DESIGN.md §14 at headline scale: the full million
/// profile with 5% hostile files must complete, quarantine exactly the
/// injected files, and answer identically to a clean-subset run. Ignored
/// in the PR gate (two full million-line analyses); the CI `million` job
/// runs it with `--include-ignored`.
#[test]
#[ignore = "million-scale: two full 1M-line analyses; run by the CI million job"]
fn million_profile_with_hostile_files_matches_clean_subset() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("profiles/million.toml");
    let profile = Profile::load(&path).unwrap();
    let mut fs = MemoryFs::new();
    generate_with(&profile, profile.seed, &mut |name, text| {
        fs.add(name.to_owned(), text.to_owned());
        Ok(())
    })
    .unwrap();
    let files: Vec<String> = (0..profile.files).map(|i| file_name(&profile, i)).collect();
    let hostile = inject_hostile(&mut fs, &files);
    assert_eq!(hostile.len(), 16, "5% of the 320-file million tree");

    let refs: Vec<&str> = files.iter().map(String::as_str).collect();
    let lenient = analyze(
        &fs,
        &refs,
        &PipelineOptions {
            strict: false,
            parallel_compile: true,
            ..Default::default()
        },
    )
    .unwrap();
    let ledger: Vec<&str> = lenient
        .report
        .quarantined
        .iter()
        .map(|q| q.file.as_str())
        .collect();
    assert_eq!(ledger, hostile, "quarantine ledger at million scale");

    let clean: Vec<&str> = files
        .iter()
        .filter(|f| !hostile.contains(f))
        .map(String::as_str)
        .collect();
    let subset = analyze(
        &fs,
        &clean,
        &PipelineOptions {
            parallel_compile: true,
            ..Default::default()
        },
    )
    .unwrap();

    let (got_n, got_h) = relation_fingerprint(&lenient);
    let (want_n, want_h) = relation_fingerprint(&subset);
    assert!(want_n > 0, "million tree must produce answers");
    assert_eq!(
        (got_n, got_h),
        (want_n, want_h),
        "million-scale partial answers diverge from the clean subset"
    );
}
