#!/bin/sh
# Full offline verification: formatting, lints, release build, test suite.
# Run from the repository root; fails fast on the first broken step.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q --release --workspace

echo "==> db-fuzz smoke (deterministic fault injection over the bundled example)"
./target/release/cla-tool db-fuzz examples/c/main.c examples/c/store.c \
    -I examples/c --iters 500 --seed 1

echo "==> snapshot fuzz smoke (same battery over the .clasnap format)"
./target/release/cla-tool db-fuzz examples/c/main.c examples/c/store.c \
    -I examples/c --snapshot --iters 500 --seed 1

echo "==> snapshot round trip (nethack profile: warm start >= 10x cold, identical answers)"
cargo run -q --release --example snapshot_bench -- nethack 1.0 \
    "${BENCH_SNAPSHOT_OUT:-target/BENCH_snapshot.json}"

echo "==> genc smoke (generate the ci-small profile, analyze it cold)"
gen_dir="${GENC_SMOKE_DIR:-target/genc-smoke}"
rm -rf "$gen_dir"
./target/release/cla-tool gen profiles/ci-small.toml --out "$gen_dir" --seed 1
./target/release/cla-tool analyze "$gen_dir"/*.c --jobs 0 --print gp0 \
    | grep -q 'pts(gp0) = {'
rm -rf "$gen_dir"

echo "==> trace smoke (analyze the bundled example, validate the trace)"
trace_out="${TRACE_OUT:-target/trace-smoke.json}"
./target/release/cla-tool analyze examples/c/main.c examples/c/store.c \
    -I examples/c --trace "$trace_out" --metrics --print latest \
    | grep -q 'cla_solve_passes_total'
./target/release/cla-tool trace-validate "$trace_out"

echo "verify: OK"
