#!/bin/sh
# Full offline verification: formatting, lints, release build, test suite.
# Run from the repository root; fails fast on the first broken step.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q --release --workspace

echo "==> db-fuzz smoke (deterministic fault injection over the bundled example)"
./target/release/cla-tool db-fuzz examples/c/main.c examples/c/store.c \
    -I examples/c --iters 500 --seed 1

echo "==> snapshot fuzz smoke (same battery over the .clasnap format)"
./target/release/cla-tool db-fuzz examples/c/main.c examples/c/store.c \
    -I examples/c --snapshot --iters 500 --seed 1

echo "==> front-fuzz smoke (hostile C source through the real compile path)"
./target/release/cla-tool front-fuzz examples/c/main.c examples/c/store.c \
    --iters 1000 --seed 1 --deadline-ms 5000

echo "==> snapshot round trip (nethack profile: warm start >= 10x cold, identical answers)"
cargo run -q --release --example snapshot_bench -- nethack 1.0 \
    "${BENCH_SNAPSHOT_OUT:-target/BENCH_snapshot.json}"

echo "==> genc smoke (generate the ci-small profile, analyze it under the profiler)"
gen_dir="${GENC_SMOKE_DIR:-target/genc-smoke}"
prof_out="${PROF_OUT:-target/prof-smoke.collapsed}"
rm -rf "$gen_dir"
./target/release/cla-tool gen profiles/ci-small.toml --out "$gen_dir" --seed 1
./target/release/cla-tool analyze "$gen_dir"/*.c --jobs 0 --print gp0 \
    --profile "$prof_out" \
    | grep -q 'pts(gp0) = {'
test -s "$prof_out" || { echo "empty collapsed profile: $prof_out"; exit 1; }
rm -rf "$gen_dir"

echo "==> trace smoke (analyze the bundled example with the profiler on, validate the trace)"
trace_out="${TRACE_OUT:-target/trace-smoke.json}"
./target/release/cla-tool analyze examples/c/main.c examples/c/store.c \
    -I examples/c --trace "$trace_out" --metrics --print latest \
    --profile target/trace-smoke.collapsed \
    | grep -q 'cla_solve_passes_total'
./target/release/cla-tool trace-validate "$trace_out"

echo "==> count-alloc feature check (counting global allocator compiles and links)"
cargo check -q --release --features count-alloc

echo "==> bench-diff self-check (committed last-good vs itself: zero regressions)"
./target/release/cla-tool bench-diff benchmarks/BENCH_million.json \
    benchmarks/BENCH_million.json --ceiling 15 | grep -q 'bench-diff OK'

echo "verify: OK"
