#!/bin/sh
# Full offline verification: formatting, lints, release build, test suite.
# Run from the repository root; fails fast on the first broken step.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q --release --workspace

echo "verify: OK"
