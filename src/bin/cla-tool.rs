//! `cla-tool` — command-line driver for the CLA analysis system.
//!
//! ```text
//! cla-tool compile a.c b.c -o prog.clao      compile + link to a database
//! cla-tool dump prog.clao                    Figure 4-style object dump
//! cla-tool solve prog.clao [--print p q]     points-to analysis
//! cla-tool depend prog.clao --target x       forward dependence query
//! cla-tool ctx prog.clao -k 4 -o dup.clao    context-duplication transform
//! ```
//!
//! Compile accepts `-I <dir>` include paths, `-D NAME[=VALUE]` defines,
//! `--field-independent`, and `--solver pretransitive|worklist|steensgaard|
//! bitvector` on `solve`.

use cla::prelude::*;
use cla_cladb::transform;
use cla_depend::{DependOptions, DependenceAnalysis};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("compile") => cmd_compile(&args[1..]),
        Some("dump") => cmd_dump(&args[1..]),
        Some("solve") => cmd_solve(&args[1..]),
        Some("depend") => cmd_depend(&args[1..]),
        Some("ctx") => cmd_ctx(&args[1..]),
        Some("help") | None => {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("cla-tool: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  cla-tool compile <src.c>... [-o out.clao] [-I dir] [-D NAME[=V]] [--field-independent]
  cla-tool dump <prog.clao>
  cla-tool solve <prog.clao> [--solver NAME] [--print var...]
  cla-tool depend <prog.clao> --target NAME [--tree] [--non-target NAME]...
  cla-tool ctx <prog.clao> -k N -o out.clao";

/// Splits out flag values of the form `--flag value` / `-f value`.
struct Args<'a> {
    rest: Vec<&'a str>,
}

impl<'a> Args<'a> {
    fn new(args: &'a [String]) -> Self {
        Args { rest: args.iter().map(String::as_str).collect() }
    }

    /// Removes every `flag value` pair, returning the values.
    fn take_values(&mut self, flag: &str) -> Result<Vec<String>, String> {
        let mut out = Vec::new();
        while let Some(pos) = self.rest.iter().position(|a| *a == flag) {
            if pos + 1 >= self.rest.len() {
                return Err(format!("`{flag}` needs a value"));
            }
            out.push(self.rest[pos + 1].to_string());
            self.rest.drain(pos..=pos + 1);
        }
        Ok(out)
    }

    /// Removes a boolean flag; true when present.
    fn take_flag(&mut self, flag: &str) -> bool {
        let before = self.rest.len();
        self.rest.retain(|a| *a != flag);
        self.rest.len() != before
    }

    /// Everything after `marker` (inclusive removal), e.g. `--print a b c`.
    fn take_tail(&mut self, marker: &str) -> Vec<String> {
        if let Some(pos) = self.rest.iter().position(|a| *a == marker) {
            let tail: Vec<String> =
                self.rest.drain(pos..).skip(1).map(str::to_string).collect();
            tail
        } else {
            Vec::new()
        }
    }

    fn positional(self) -> Vec<String> {
        self.rest.into_iter().map(str::to_string).collect()
    }
}

fn load_database(path: &str) -> Result<Database, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    Database::open(bytes.into()).map_err(|e| format!("`{path}`: {e}"))
}

fn cmd_compile(args: &[String]) -> Result<(), String> {
    let mut a = Args::new(args);
    let out = a
        .take_values("-o")?
        .pop()
        .unwrap_or_else(|| "a.clao".to_string());
    let include_dirs = a.take_values("-I")?;
    let defines = a
        .take_values("-D")?
        .into_iter()
        .map(|d| match d.split_once('=') {
            Some((n, v)) => (n.to_string(), v.to_string()),
            None => (d, "1".to_string()),
        })
        .collect();
    let field_independent = a.take_flag("--field-independent");
    let sources = a.positional();
    if sources.is_empty() {
        return Err("no source files".to_string());
    }

    let fs = OsFs;
    let pp = PpOptions { include_dirs, defines, max_include_depth: 0 };
    let lower = if field_independent {
        LowerOptions::default().field_independent()
    } else {
        LowerOptions::default()
    };
    let mut units = Vec::new();
    for src in &sources {
        let (unit, _) = compile_file(&fs, src, &pp, &lower).map_err(|e| e.to_string())?;
        let c = unit.assign_counts();
        eprintln!(
            "compiled {src}: {} objects, {} assignments",
            unit.objects.len(),
            c.total()
        );
        units.push(unit);
    }
    let (program, stats) = link(&units, &out);
    let bytes = write_object(&program);
    std::fs::write(&out, &bytes).map_err(|e| format!("cannot write `{out}`: {e}"))?;
    eprintln!(
        "linked {} units -> {out}: {} objects ({} symbols merged), {} assignments, {} bytes",
        stats.units,
        stats.objects_out,
        stats.symbols_merged,
        stats.assigns,
        bytes.len()
    );
    Ok(())
}

fn cmd_dump(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("dump needs a .clao file")?;
    let db = load_database(path)?;
    print!("{}", dump(&db));
    Ok(())
}

fn cmd_solve(args: &[String]) -> Result<(), String> {
    let mut a = Args::new(args);
    let solver = a
        .take_values("--solver")?
        .pop()
        .unwrap_or_else(|| "pretransitive".to_string());
    let print = a.take_tail("--print");
    let pos = a.positional();
    let path = pos.first().ok_or("solve needs a .clao file")?;
    let db = load_database(path)?;

    let t = std::time::Instant::now();
    let pts = match solver.as_str() {
        "pretransitive" => solve_database(&db, SolveOptions::default()).0,
        "worklist" => cla::core::worklist::solve(&db.to_unit().map_err(|e| e.to_string())?),
        "steensgaard" => {
            cla::core::steensgaard::solve(&db.to_unit().map_err(|e| e.to_string())?)
        }
        "bitvector" => {
            cla::core::bitvector::solve(&db.to_unit().map_err(|e| e.to_string())?)
        }
        other => {
            return Err(format!(
                "unknown solver `{other}` (pretransitive, worklist, steensgaard, bitvector)"
            ))
        }
    };
    let dt = t.elapsed();
    let ls = db.load_stats();
    println!(
        "solver={solver} time={dt:?} pointer-variables={} relations={}",
        pts.pointer_variables(),
        pts.relations()
    );
    println!(
        "assignments: loaded {} of {} in file",
        ls.assigns_loaded, ls.assigns_in_file
    );
    for name in &print {
        let targets = db.targets(name);
        if targets.is_empty() {
            println!("pts({name}) = <no such object>");
        }
        for &o in targets {
            let set: Vec<String> = pts
                .points_to(o)
                .iter()
                .map(|&t| db.object(t).name.clone())
                .collect();
            println!("pts({name}) = {{{}}}", set.join(", "));
        }
    }
    Ok(())
}

fn cmd_depend(args: &[String]) -> Result<(), String> {
    let mut a = Args::new(args);
    let target = a
        .take_values("--target")?
        .pop()
        .ok_or("depend needs --target NAME")?;
    let tree = a.take_flag("--tree");
    let non_targets = a.take_values("--non-target")?;
    let pos = a.positional();
    let path = pos.first().ok_or("depend needs a .clao file")?;
    let db = load_database(path)?;
    let (pts, _) = solve_database(&db, SolveOptions::default());
    let dep = DependenceAnalysis::new(&db, &pts);
    let report = dep
        .analyze(&target, &DependOptions { non_targets })
        .ok_or_else(|| format!("no object named `{target}`"))?;
    println!(
        "{} dependents of `{target}`:",
        report.dependents().len()
    );
    if tree {
        print!("{}", dep.render_tree(&report));
    } else {
        print!("{}", dep.render_report(&report));
    }
    Ok(())
}

fn cmd_ctx(args: &[String]) -> Result<(), String> {
    let mut a = Args::new(args);
    let k: usize = a
        .take_values("-k")?
        .pop()
        .ok_or("ctx needs -k N")?
        .parse()
        .map_err(|_| "-k needs a number")?;
    let out = a.take_values("-o")?.pop().ok_or("ctx needs -o out.clao")?;
    let pos = a.positional();
    let path = pos.first().ok_or("ctx needs a .clao file")?;
    let db = load_database(path)?;
    let unit = db.to_unit().map_err(|e| e.to_string())?;
    let (dup, stats) = transform::duplicate_contexts(&unit, k);
    let bytes = write_object(&dup);
    std::fs::write(&out, &bytes).map_err(|e| format!("cannot write `{out}`: {e}"))?;
    eprintln!(
        "duplicated {} functions ({} sites over up to {k} contexts), +{} objects, +{} assignments -> {out}",
        stats.functions_cloned, stats.sites_distributed, stats.objects_added, stats.assigns_added
    );
    Ok(())
}
