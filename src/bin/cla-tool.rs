//! `cla-tool` — command-line driver for the CLA analysis system.
//!
//! ```text
//! cla-tool compile a.c b.c -o prog.clao      compile + link to a database
//! cla-tool analyze a.c b.c                   full compile-link-analyze run
//! cla-tool gen profiles/million.toml --out m generate a synthetic codebase
//! cla-tool dump prog.clao                    Figure 4-style object dump
//! cla-tool solve prog.clao [--print p q]     points-to analysis
//! cla-tool depend prog.clao --target x       forward dependence query
//! cla-tool ctx prog.clao -k 4 -o dup.clao    context-duplication transform
//! cla-tool serve prog.clao --socket S        long-running query server
//! cla-tool hub app=src lib=lib.clao          multi-tenant TCP hub
//! cla-tool query --socket S points-to p      one query against a server
//! cla-tool query --tcp H:P --session app ... one query against a hub session
//! cla-tool snapshot-save prog.clao -o s.clasnap  solve + persist the graph
//! cla-tool snapshot-info s.clasnap           header/provenance of a snapshot
//! cla-tool db-fuzz a.c b.c --iters 500       fault-inject the object format
//! cla-tool front-fuzz a.c b.c --iters 2000   hostile-input fuzz the frontend
//! cla-tool trace-validate trace.json         check a recorded trace
//! cla-tool bench-diff OLD.json NEW.json      gate on phase-time regressions
//! ```
//!
//! `analyze` and `serve` accept `--snapshot DIR`: analysis results persist
//! to `DIR/graph.clasnap` (plus a content-addressed compile cache under
//! `DIR/cache` for `analyze`), so an unchanged program skips the solver on
//! the next run and starts warm. `db-fuzz --snapshot` points the fault
//! harness at the snapshot format instead of the object format.
//!
//! Compile accepts `-I <dir>` include paths, `-D NAME[=VALUE]` defines,
//! `--field-independent`, and `--solver pretransitive|worklist|steensgaard|
//! bitvector` on `solve`.
//!
//! Three observability flags work with every command: `--trace FILE`
//! records a Chrome `trace_event` JSONL trace (load it in `chrome://tracing`
//! or Perfetto), `--metrics` prints Prometheus text exposition to stdout
//! after the command finishes, and `--profile FILE` runs the in-process
//! sampling profiler for the whole command, writing a collapsed-stack
//! profile to FILE (feed it to `flamegraph.pl` or speedscope) and a
//! per-span self/total time table to stderr.

use cla::prelude::*;
use cla_cladb::transform;
use cla_depend::{DependOptions, DependenceAnalysis};
use std::process::ExitCode;

fn main() -> ExitCode {
    cla::prof::init();
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let (trace_path, want_metrics, profile_path) = match take_obs_flags(&mut args) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("cla-tool: {msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &trace_path {
        match cla::obs::ChromeTraceWriter::create(std::path::Path::new(path)) {
            Ok(w) => cla::obs::global().set_trace_sink(Some(std::sync::Arc::new(w))),
            Err(e) => {
                eprintln!("cla-tool: cannot open trace file `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // The profiler covers the whole command, so the collapsed profile and
    // the span table include compile, link, and solve in one recording.
    let profiler = profile_path
        .as_ref()
        .map(|_| cla::prof::Profiler::start_default());
    let result = match args.first().map(String::as_str) {
        Some("compile") => cmd_compile(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("dump") => cmd_dump(&args[1..]),
        Some("solve") => cmd_solve(&args[1..]),
        Some("depend") => cmd_depend(&args[1..]),
        Some("ctx") => cmd_ctx(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("hub") => cmd_hub(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("snapshot-save") => cmd_snapshot_save(&args[1..]),
        Some("snapshot-info") => cmd_snapshot_info(&args[1..]),
        Some("db-fuzz") => cmd_db_fuzz(&args[1..]),
        Some("front-fuzz") => cmd_front_fuzz(&args[1..]),
        Some("trace-validate") => cmd_trace_validate(&args[1..]),
        Some("bench-diff") => cmd_bench_diff(&args[1..]),
        Some("help") | None => {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    if let (Some(profiler), Some(path)) = (profiler, &profile_path) {
        let profile = profiler.stop();
        if let Err(e) = std::fs::write(path, profile.collapsed()) {
            eprintln!("cla-tool: cannot write profile `{path}`: {e}");
        } else {
            eprintln!(
                "profile: {} samples over {:?} -> {path} (collapsed stacks)",
                profile.samples, profile.wall
            );
        }
        eprint!("{}", profile.render_table());
        let alloc = cla::prof::alloc_snapshot();
        if alloc.enabled {
            eprintln!(
                "alloc: {} bytes in {} allocations, peak live {} bytes",
                alloc.total_bytes, alloc.total_allocs, alloc.peak_live_bytes
            );
            for s in alloc.by_span.iter().take(10) {
                eprintln!(
                    "  {:>14} bytes  {:>10} allocs  peak {:>12}  {}",
                    s.bytes, s.allocs, s.peak_live_bytes, s.span
                );
            }
        }
    }
    cla::obs::global().flush_trace();
    if want_metrics {
        print!("{}", cla::obs::global().prometheus_text());
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("cla-tool: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  cla-tool compile <src.c>... [-o out.clao] [-I dir] [-D NAME[=V]] [--field-independent]
  cla-tool analyze <src.c>... [-I dir] [-D NAME[=V]] [--field-independent] [--parallel] [--jobs N] [--snapshot DIR] [--print var...]
  cla-tool gen <profile.toml> --out DIR [--seed N]
  cla-tool dump <prog.clao>
  cla-tool solve <prog.clao> [--solver NAME] [--print var...]
  cla-tool depend <prog.clao> --target NAME [--tree] [--non-target NAME]...
  cla-tool ctx <prog.clao> -k N -o out.clao
  cla-tool serve <prog.clao> --socket PATH [--snapshot DIR]
  cla-tool serve <src.c>... --socket PATH [-I dir] [-D NAME[=V]] [--field-independent] [--jobs N] [--snapshot DIR] [--lenient]
  cla-tool hub NAME=PATH... [--listen HOST:PORT] [--capacity N] [--max-inflight N] [--rebuild-slots N] [--jobs N] [--lenient] [--snapshot-root DIR] [-I dir] [-D NAME[=V]]
  cla-tool snapshot-save <prog.clao> [-o out.clasnap]
  cla-tool snapshot-info <file.clasnap>
  cla-tool query (--socket PATH | --tcp HOST:PORT [--session NAME]) points-to <var>
  cla-tool query (--socket PATH | --tcp HOST:PORT [--session NAME]) alias <a> <b>
  cla-tool query (--socket PATH | --tcp HOST:PORT [--session NAME]) depend <target> [--non-target NAME]...
  cla-tool query (--socket PATH | --tcp HOST:PORT [--session NAME]) stats|metrics|reload|health|sessions|shutdown [--force]
  cla-tool query (--socket PATH | --tcp HOST:PORT [--session NAME]) profile start|stop|dump [--interval-us N]
  cla-tool db-fuzz <src.c>...|<prog.clao> [--snapshot] [--iters N] [--seed N] [-I dir] [-D NAME[=V]]
  cla-tool front-fuzz <src.c>... [--gen profile.toml] [--iters N] [--seed N] [--deadline-ms N]
  cla-tool trace-validate <trace.json>
  cla-tool bench-diff <OLD.json> <NEW.json> [--ceiling PCT] [--history FILE]
global flags (any command):
  --trace FILE    record a Chrome trace_event JSONL trace to FILE
  --metrics       print Prometheus metrics text to stdout on exit
  --profile FILE  sample the span stack; write a collapsed-stack profile to FILE";

/// Pulls the global observability flags out of the argument list so every
/// subcommand parser sees only its own arguments.
fn take_obs_flags(
    args: &mut Vec<String>,
) -> Result<(Option<String>, bool, Option<String>), String> {
    let mut trace = None;
    while let Some(pos) = args.iter().position(|a| a == "--trace") {
        if pos + 1 >= args.len() {
            return Err("`--trace` needs a file path".to_string());
        }
        trace = Some(args.remove(pos + 1));
        args.remove(pos);
    }
    let mut profile = None;
    while let Some(pos) = args.iter().position(|a| a == "--profile") {
        if pos + 1 >= args.len() {
            return Err("`--profile` needs a file path".to_string());
        }
        profile = Some(args.remove(pos + 1));
        args.remove(pos);
    }
    let before = args.len();
    args.retain(|a| a != "--metrics");
    Ok((trace, args.len() != before, profile))
}

/// Splits out flag values of the form `--flag value` / `-f value`.
struct Args<'a> {
    rest: Vec<&'a str>,
}

impl<'a> Args<'a> {
    fn new(args: &'a [String]) -> Self {
        Args {
            rest: args.iter().map(String::as_str).collect(),
        }
    }

    /// Removes every `flag value` pair, returning the values.
    fn take_values(&mut self, flag: &str) -> Result<Vec<String>, String> {
        let mut out = Vec::new();
        while let Some(pos) = self.rest.iter().position(|a| *a == flag) {
            if pos + 1 >= self.rest.len() {
                return Err(format!("`{flag}` needs a value"));
            }
            out.push(self.rest[pos + 1].to_string());
            self.rest.drain(pos..=pos + 1);
        }
        Ok(out)
    }

    /// Removes a boolean flag; true when present.
    fn take_flag(&mut self, flag: &str) -> bool {
        let before = self.rest.len();
        self.rest.retain(|a| *a != flag);
        self.rest.len() != before
    }

    /// Everything after `marker` (inclusive removal), e.g. `--print a b c`.
    fn take_tail(&mut self, marker: &str) -> Vec<String> {
        if let Some(pos) = self.rest.iter().position(|a| *a == marker) {
            let tail: Vec<String> = self.rest.drain(pos..).skip(1).map(str::to_string).collect();
            tail
        } else {
            Vec::new()
        }
    }

    fn positional(self) -> Vec<String> {
        self.rest.into_iter().map(str::to_string).collect()
    }
}

fn load_database(path: &str) -> Result<Database, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    Database::open(bytes).map_err(|e| format!("`{path}`: {e}"))
}

fn cmd_compile(args: &[String]) -> Result<(), String> {
    let mut a = Args::new(args);
    let out = a
        .take_values("-o")?
        .pop()
        .unwrap_or_else(|| "a.clao".to_string());
    let include_dirs = a.take_values("-I")?;
    let defines = a
        .take_values("-D")?
        .into_iter()
        .map(|d| match d.split_once('=') {
            Some((n, v)) => (n.to_string(), v.to_string()),
            None => (d, "1".to_string()),
        })
        .collect();
    let field_independent = a.take_flag("--field-independent");
    let sources = a.positional();
    if sources.is_empty() {
        return Err("no source files".to_string());
    }

    let fs = OsFs;
    let pp = PpOptions {
        include_dirs,
        defines,
        ..PpOptions::default()
    };
    let lower = if field_independent {
        LowerOptions::default().field_independent()
    } else {
        LowerOptions::default()
    };
    let mut units = Vec::new();
    for src in &sources {
        let (unit, _) = compile_file(&fs, src, &pp, &lower).map_err(|e| e.to_string())?;
        let c = unit.assign_counts();
        eprintln!(
            "compiled {src}: {} objects, {} assignments",
            unit.objects.len(),
            c.total()
        );
        units.push(unit);
    }
    let (program, stats) = link(&units, &out);
    let bytes = write_object(&program);
    // Temp + fsync + rename: an interrupted compile never leaves a
    // half-written .clao for a later phase to load.
    cla_cladb::atomic_write_bytes(std::path::Path::new(&out), &bytes)
        .map_err(|e| format!("cannot write `{out}`: {e}"))?;
    eprintln!(
        "linked {} units -> {out}: {} objects ({} symbols merged), {} assignments, {} bytes",
        stats.units,
        stats.objects_out,
        stats.symbols_merged,
        stats.assigns,
        bytes.len()
    );
    Ok(())
}

/// Runs the full compile-link-analyze pipeline over OS files and prints a
/// Table 2/3-style report. With `--trace`/`--metrics` this is the
/// one-command way to record spans from every layer.
fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let mut a = Args::new(args);
    let include_dirs = a.take_values("-I")?;
    let defines = a
        .take_values("-D")?
        .into_iter()
        .map(|d| match d.split_once('=') {
            Some((n, v)) => (n.to_string(), v.to_string()),
            None => (d, "1".to_string()),
        })
        .collect();
    let field_independent = a.take_flag("--field-independent");
    let mut parallel = a.take_flag("--parallel");
    let jobs: usize = match a.take_values("--jobs")?.pop() {
        Some(v) => {
            let n = v.parse().map_err(|_| "--jobs needs a number")?;
            parallel = true; // asking for a pool size implies a pool
            n
        }
        None => 0,
    };
    let snapshot_dir = a.take_values("--snapshot")?.pop();
    // The CLI default is quarantine-and-continue: a hostile or broken file
    // lands in the quarantine ledger and the analysis covers the rest.
    // `--strict` restores fail-fast (the library default).
    let strict = a.take_flag("--strict");
    let unknown_summaries = a.take_flag("--unknown-summaries");
    let deadline_ms: u64 = match a.take_values("--deadline-ms")?.pop() {
        Some(v) => v.parse().map_err(|_| "--deadline-ms needs a number")?,
        None => 0,
    };
    let print = a.take_tail("--print");
    let sources = a.positional();
    if sources.is_empty() {
        return Err("no source files".to_string());
    }

    let opts = PipelineOptions {
        pp: PpOptions {
            include_dirs,
            defines,
            limits: FrontendLimits {
                deadline_ms,
                ..FrontendLimits::default()
            },
            ..PpOptions::default()
        },
        lower: if field_independent {
            LowerOptions::default().field_independent()
        } else {
            LowerOptions::default()
        },
        solver: SolveOptions::default(),
        parallel_compile: parallel,
        jobs,
        strict,
        unknown_summaries,
    };
    let files: Vec<&str> = sources.iter().map(String::as_str).collect();
    // With `--snapshot DIR` the run persists its results: compiled objects
    // land in a content-addressed cache under DIR/cache, and the sealed
    // graph in DIR/graph.clasnap. An unchanged rerun then skips both the
    // compiler (per unchanged file) and the solver entirely.
    let analysis = match &snapshot_dir {
        None => analyze(&OsFs, &files, &opts).map_err(|e| e.to_string())?,
        Some(dir) => {
            let dir = std::path::Path::new(dir);
            let cache = DiskCache::open(&dir.join("cache"))
                .map_err(|e| format!("cannot open compile cache in `{}`: {e}", dir.display()))?;
            let store = SnapshotStore::open(dir)
                .map_err(|e| format!("cannot open snapshot store `{}`: {e}", dir.display()))?;
            let hooks = AnalyzeHooks {
                compile_cache: Some(&cache),
                snapshots: Some(&store),
            };
            analyze_with(&OsFs, &files, &opts, &hooks).map_err(|e| e.to_string())?
        }
    };
    let r = &analysis.report;
    println!(
        "files={} source-bytes={} variables={} assignments={} object-bytes={}",
        r.files,
        r.source_bytes,
        r.program_variables,
        r.assign_counts.total(),
        r.object_size
    );
    println!(
        "compile={:?} link={:?} solve={:?} jobs={} peak-buffered-units={} peak-rss-bytes={}",
        r.compile_time, r.link_time, r.solve_time, r.jobs, r.peak_buffered_units, r.peak_rss_bytes
    );
    println!(
        "passes={} pointer-variables={} relations={} assigns-loaded={}/{}",
        r.solve_stats.passes,
        r.pointer_variables,
        r.relations,
        r.load_stats.assigns_loaded,
        r.load_stats.assigns_in_file
    );
    if !r.slowest_files.is_empty() {
        let shown: Vec<String> = r
            .slowest_files
            .iter()
            .map(|(f, d)| format!("{f}={:.3}s", d.as_secs_f64()))
            .collect();
        println!("slowest-files: {}", shown.join(" "));
    }
    // The quarantine ledger: one line per failed unit with its typed
    // reason, plus a partial marker so scripts can tell answers below
    // cover only the surviving units.
    if r.is_partial() {
        println!(
            "partial=true quarantined={} unknown-summaries={}",
            r.quarantined.len(),
            r.unknown_summaries
        );
        for q in &r.quarantined {
            println!("quarantined {}: {}", q.file, q.reason);
        }
    }
    if snapshot_dir.is_some() {
        println!(
            "cache-hits={} cache-misses={} snapshot={}",
            r.compile_cache_hits,
            r.compile_cache_misses,
            if r.snapshot_loaded {
                "loaded (solve skipped)"
            } else {
                "written"
            }
        );
    }
    for name in &print {
        let targets = analysis.database.targets(name);
        if targets.is_empty() {
            println!("pts({name}) = <no such object>");
        }
        for &o in targets {
            let set: Vec<String> = analysis
                .points_to
                .points_to(o)
                .iter()
                .map(|&t| analysis.database.object(t).name.clone())
                .collect();
            println!("pts({name}) = {{{}}}", set.join(", "));
        }
    }
    Ok(())
}

/// Generates a synthetic C codebase from a declarative profile
/// (`profiles/*.toml`), streaming one file at a time to the output
/// directory. The tree is a pure function of `(profile, seed)`.
fn cmd_gen(args: &[String]) -> Result<(), String> {
    let mut a = Args::new(args);
    let out = a
        .take_values("--out")?
        .pop()
        .ok_or("`gen` needs `--out DIR`")?;
    let seed = a
        .take_values("--seed")?
        .pop()
        .map(|v| v.parse::<u64>().map_err(|_| format!("bad --seed `{v}`")))
        .transpose()?;
    let positional = a.positional();
    let [profile_path] = positional.as_slice() else {
        return Err("usage: cla-tool gen <profile.toml> --out DIR [--seed N]".to_string());
    };
    let profile =
        cla::genc::Profile::load(std::path::Path::new(profile_path)).map_err(|e| e.to_string())?;
    let seed = seed.unwrap_or(profile.seed);
    let started = std::time::Instant::now();
    let report = cla::genc::generate_to_dir(&profile, seed, std::path::Path::new(&out))
        .map_err(|e| format!("cannot write `{out}`: {e}"))?;
    println!(
        "generated {} ({} files + {}) in {:?}",
        report.name,
        report.files,
        cla::genc::HEADER_NAME,
        started.elapsed()
    );
    println!(
        "loc={} bytes={} functions={} statements={} seed={} tree-hash={:016x}",
        report.loc,
        report.bytes,
        report.functions,
        report.statements,
        report.seed,
        report.tree_hash
    );
    Ok(())
}

/// Validates a `--trace` output file: the streaming `trace_event` array
/// must hold one JSON object per line, every event needs `ph`/`name`/`ts`,
/// `B`/`E` pairs must nest properly per thread, and profiler sample events
/// (`ph:"P"`, emitted when `--trace` and `--profile` run together) must
/// carry their collapsed stack in `args.stack`.
fn cmd_trace_validate(args: &[String]) -> Result<(), String> {
    use cla::serve::json::{parse, Value};
    use std::collections::HashMap;

    let path = args.first().ok_or("trace-validate needs a trace file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let mut events = 0usize;
    let mut spans = 0usize;
    let mut samples = 0usize;
    let mut open: HashMap<u64, Vec<String>> = HashMap::new();
    for (idx, raw) in text.lines().enumerate() {
        // The streaming format is `[` then one event per line with a
        // trailing comma and no closing bracket (so a truncated trace
        // still loads). Strip that framing to get plain JSON objects.
        let line = raw.trim().trim_end_matches(',');
        if line.is_empty() || line == "[" || line == "]" {
            continue;
        }
        let lineno = idx + 1;
        let v = parse(line).map_err(|e| format!("{path}:{lineno}: bad JSON: {e}"))?;
        let ph = v
            .get("ph")
            .and_then(Value::as_str)
            .ok_or(format!("{path}:{lineno}: event missing `ph`"))?;
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or(format!("{path}:{lineno}: event missing `name`"))?;
        if v.get("ts").and_then(Value::as_u64).is_none() {
            return Err(format!("{path}:{lineno}: event missing numeric `ts`"));
        }
        let tid = v.get("tid").and_then(Value::as_u64).unwrap_or(0);
        match ph {
            "B" => open.entry(tid).or_default().push(name.to_string()),
            "E" => match open.entry(tid).or_default().pop() {
                Some(b) if b == name => spans += 1,
                Some(b) => {
                    return Err(format!(
                        "{path}:{lineno}: `E` for `{name}` but innermost open span is `{b}`"
                    ))
                }
                None => {
                    return Err(format!(
                        "{path}:{lineno}: `E` for `{name}` with no open span on tid {tid}"
                    ))
                }
            },
            // Profiler samples: one per sampler tick per live stack. The
            // stack travels in args so flamegraph tooling can rebuild it.
            "P" => {
                if v.get("args")
                    .and_then(|a| a.get("stack"))
                    .and_then(Value::as_str)
                    .is_none()
                {
                    return Err(format!(
                        "{path}:{lineno}: sample event missing `args.stack`"
                    ));
                }
                samples += 1;
            }
            // Instants, counters, and metadata are self-contained.
            "i" | "C" | "M" => {}
            _ => {}
        }
        events += 1;
    }
    if let Some((tid, stack)) = open.iter().find(|(_, s)| !s.is_empty()) {
        return Err(format!("unclosed spans on tid {tid}: {stack:?}"));
    }
    if events == 0 {
        return Err(format!("`{path}` contains no trace events"));
    }
    println!("trace OK: {events} events, {spans} balanced spans, {samples} profiler samples");
    Ok(())
}

/// Diffs two bench JSON reports (the `BENCH_*.json` files written by the
/// benchmark examples) phase by phase. Every numeric key ending in `_secs`
/// is a phase; a phase that slowed down past `--ceiling` percent (and past
/// a small absolute floor, so micro-runs aren't noise-gated) is a
/// regression and the command exits nonzero naming it. `--history FILE`
/// appends the new report to an append-only `BENCH_history.jsonl`.
fn cmd_bench_diff(args: &[String]) -> Result<(), String> {
    use cla::serve::json::{parse, Value};
    use std::collections::BTreeMap;

    let mut a = Args::new(args);
    let ceiling: f64 = a
        .take_values("--ceiling")?
        .pop()
        .unwrap_or_else(|| "15".to_string())
        .parse()
        .map_err(|_| "--ceiling needs a percentage")?;
    let history = a.take_values("--history")?.pop();
    let pos = a.positional();
    let [old_path, new_path] = pos.as_slice() else {
        return Err(
            "usage: cla-tool bench-diff <OLD.json> <NEW.json> [--ceiling PCT] [--history FILE]"
                .to_string(),
        );
    };

    let load = |path: &str| -> Result<Value, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        parse(text.trim()).map_err(|e| format!("`{path}`: bad JSON: {e}"))
    };
    let old_v = load(old_path)?;
    let new_v = load(new_path)?;
    let old = old_v
        .as_obj()
        .ok_or(format!("`{old_path}`: not a JSON object"))?;
    let new = new_v
        .as_obj()
        .ok_or(format!("`{new_path}`: not a JSON object"))?;
    let num = |m: &BTreeMap<String, Value>, k: &str| -> Option<f64> {
        match m.get(k) {
            Some(Value::Num(n)) => Some(*n),
            _ => None,
        }
    };

    let mut phases: Vec<String> = old
        .keys()
        .chain(new.keys())
        .filter(|k| k.ends_with("_secs"))
        .cloned()
        .collect();
    phases.sort();
    phases.dedup();
    if phases.is_empty() {
        return Err("no `*_secs` phase keys found in either report".to_string());
    }

    // Sub-10ms phases jitter by whole multiples of themselves on shared CI
    // runners; the absolute floor keeps them from tripping the gate.
    const ABS_FLOOR_SECS: f64 = 0.01;
    let mut regressions = Vec::new();
    let mut compared = 0usize;
    println!("{:<18} {:>10} {:>10} {:>8}", "phase", "old", "new", "delta");
    for ph in &phases {
        match (num(old, ph), num(new, ph)) {
            (Some(o), Some(n)) => {
                compared += 1;
                let pct = if o > 0.0 { (n - o) / o * 100.0 } else { 0.0 };
                let regressed = n > o * (1.0 + ceiling / 100.0) && n - o > ABS_FLOOR_SECS;
                println!(
                    "{ph:<18} {o:>9.3}s {n:>9.3}s {pct:>+7.1}%{}",
                    if regressed { "  REGRESSION" } else { "" }
                );
                if regressed {
                    regressions.push(format!("{ph} {o:.3}s -> {n:.3}s (+{pct:.1}%)"));
                }
            }
            (None, Some(n)) => println!("{ph:<18} {:>10} {n:>9.3}s    (new)", "-"),
            (Some(o), None) => println!("{ph:<18} {o:>9.3}s {:>10}  (gone)", "-"),
            (None, None) => {}
        }
    }
    if let (Some(o), Some(n)) = (num(old, "peak_rss_bytes"), num(new, "peak_rss_bytes")) {
        let pct = if o > 0.0 { (n - o) / o * 100.0 } else { 0.0 };
        println!(
            "{:<18} {:>9.1}M {:>9.1}M {pct:>+7.1}%  (informational)",
            "peak_rss",
            o / 1e6,
            n / 1e6
        );
    }

    if let Some(hist) = &history {
        let entry = cla::prof::history::HistoryEntry {
            timestamp_secs: cla::prof::history::unix_now(),
            git_rev: cla::prof::history::git_rev(),
            label: new
                .get("profile")
                .and_then(Value::as_str)
                .unwrap_or("bench")
                .to_string(),
            phases: phases
                .iter()
                .filter_map(|p| num(new, p).map(|v| (p.clone(), v)))
                .collect(),
            peak_rss_bytes: num(new, "peak_rss_bytes").unwrap_or(0.0) as u64,
        };
        cla::prof::history::append(std::path::Path::new(hist), &entry)
            .map_err(|e| format!("cannot append history `{hist}`: {e}"))?;
        eprintln!("history: appended `{}` entry to {hist}", entry.label);
    }

    if regressions.is_empty() {
        println!("bench-diff OK: {compared} phases within the {ceiling}% ceiling");
        Ok(())
    } else {
        Err(format!(
            "{} phase regression(s) past the {ceiling}% ceiling:\n  {}",
            regressions.len(),
            regressions.join("\n  ")
        ))
    }
}

fn cmd_dump(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("dump needs a .clao file")?;
    let db = load_database(path)?;
    print!("{}", dump(&db));
    Ok(())
}

fn cmd_solve(args: &[String]) -> Result<(), String> {
    let mut a = Args::new(args);
    let solver = a
        .take_values("--solver")?
        .pop()
        .unwrap_or_else(|| "pretransitive".to_string());
    let print = a.take_tail("--print");
    let pos = a.positional();
    let path = pos.first().ok_or("solve needs a .clao file")?;
    let db = load_database(path)?;

    let t = std::time::Instant::now();
    let pts = match solver.as_str() {
        "pretransitive" => solve_database(&db, SolveOptions::default()).0,
        "worklist" => cla::core::worklist::solve(&db.to_unit().map_err(|e| e.to_string())?),
        "steensgaard" => cla::core::steensgaard::solve(&db.to_unit().map_err(|e| e.to_string())?),
        "bitvector" => cla::core::bitvector::solve(&db.to_unit().map_err(|e| e.to_string())?),
        other => {
            return Err(format!(
                "unknown solver `{other}` (pretransitive, worklist, steensgaard, bitvector)"
            ))
        }
    };
    let dt = t.elapsed();
    let ls = db.load_stats();
    println!(
        "solver={solver} time={dt:?} pointer-variables={} relations={}",
        pts.pointer_variables(),
        pts.relations()
    );
    println!(
        "assignments: loaded {} of {} in file",
        ls.assigns_loaded, ls.assigns_in_file
    );
    for name in &print {
        let targets = db.targets(name);
        if targets.is_empty() {
            println!("pts({name}) = <no such object>");
        }
        for &o in targets {
            let set: Vec<String> = pts
                .points_to(o)
                .iter()
                .map(|&t| db.object(t).name.clone())
                .collect();
            println!("pts({name}) = {{{}}}", set.join(", "));
        }
    }
    Ok(())
}

fn cmd_depend(args: &[String]) -> Result<(), String> {
    let mut a = Args::new(args);
    let target = a
        .take_values("--target")?
        .pop()
        .ok_or("depend needs --target NAME")?;
    let tree = a.take_flag("--tree");
    let non_targets = a.take_values("--non-target")?;
    let pos = a.positional();
    let path = pos.first().ok_or("depend needs a .clao file")?;
    let db = load_database(path)?;
    let (pts, _) = solve_database(&db, SolveOptions::default());
    let dep = DependenceAnalysis::new(&db, &pts);
    let report = dep
        .analyze(&target, &DependOptions { non_targets })
        .ok_or_else(|| format!("no object named `{target}`"))?;
    println!("{} dependents of `{target}`:", report.dependents().len());
    if tree {
        print!("{}", dep.render_tree(&report));
    } else {
        print!("{}", dep.render_report(&report));
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use std::sync::Arc;

    let mut a = Args::new(args);
    let socket = a
        .take_values("--socket")?
        .pop()
        .ok_or("serve needs --socket PATH")?;
    let include_dirs = a.take_values("-I")?;
    let defines = a
        .take_values("-D")?
        .into_iter()
        .map(|d| match d.split_once('=') {
            Some((n, v)) => (n.to_string(), v.to_string()),
            None => (d, "1".to_string()),
        })
        .collect();
    let field_independent = a.take_flag("--field-independent");
    let lenient = a.take_flag("--lenient");
    let jobs: usize = match a.take_values("--jobs")?.pop() {
        Some(v) => v.parse().map_err(|_| "--jobs needs a number")?,
        None => 1,
    };
    let snapshot_dir = a.take_values("--snapshot")?.pop();
    let snap_dir = snapshot_dir.as_deref().map(std::path::Path::new);
    let pos = a.positional();
    if pos.is_empty() {
        return Err("serve needs a .clao file or C sources".to_string());
    }

    // A single .clao positional serves the linked database; `reload`
    // re-reads the file, and a corrupt rewrite degrades (last-good answers)
    // instead of wedging the server. C sources are compiled in-process.
    let (session, reload_fs): (Session, Option<Arc<dyn FileProvider + Send + Sync>>) =
        if pos.len() == 1 && pos[0].ends_with(".clao") {
            let session = Session::from_object_path_with(
                std::path::Path::new(&pos[0]),
                SolveOptions::default(),
                snap_dir,
            )
            .map_err(|e| e.to_string())?;
            (session, None)
        } else {
            let pp = PpOptions {
                include_dirs,
                defines,
                ..PpOptions::default()
            };
            let lower = if field_independent {
                LowerOptions::default().field_independent()
            } else {
                LowerOptions::default()
            };
            let files: Vec<&str> = pos.iter().map(String::as_str).collect();
            let build = if lenient {
                Session::from_files_lenient
            } else {
                Session::from_files_jobs
            };
            let session = build(
                &OsFs,
                &files,
                &pp,
                &lower,
                SolveOptions::default(),
                snap_dir,
                jobs,
            )
            .map_err(|e| e.to_string())?;
            for q in session.quarantined() {
                eprintln!("cla-tool: quarantined {}: {}", q.file, q.reason);
            }
            (session, Some(Arc::new(OsFs)))
        };

    if snap_dir.is_some() {
        eprintln!(
            "cla-tool: snapshot {}",
            if session.snapshot_loaded() {
                "loaded (warm start, solve skipped)"
            } else {
                "written (cold start)"
            }
        );
    }
    let handle = cla::serve::serve_with(
        Arc::new(session),
        reload_fs,
        std::path::Path::new(&socket),
        cla::serve::ServeOptions {
            jobs,
            ..Default::default()
        },
    )
    .map_err(|e| format!("cannot bind `{socket}`: {e}"))?;
    eprintln!("cla-tool: serving on {socket} (send {{\"cmd\":\"shutdown\"}} to stop)");
    let stats = handle.join();
    println!("{}", stats.to_json().encode());
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    use cla::serve::json::{obj, Value};
    use cla::serve::{Client, Endpoint};

    let mut a = Args::new(args);
    let socket = a.take_values("--socket")?.pop();
    let tcp = a.take_values("--tcp")?.pop();
    let session = a.take_values("--session")?.pop();
    let endpoint = match (socket, tcp) {
        (Some(_), Some(_)) => return Err("--socket and --tcp are mutually exclusive".to_string()),
        (Some(path), None) => Endpoint::Unix(std::path::PathBuf::from(path)),
        (None, Some(addr)) => Endpoint::Tcp(addr),
        (None, None) => return Err("query needs --socket PATH or --tcp HOST:PORT".to_string()),
    };
    let non_targets = a.take_values("--non-target")?;
    let force = a.take_flag("--force");
    let interval_us = a.take_values("--interval-us")?.pop();
    let pos = a.positional();

    let request = match pos.first().map(String::as_str) {
        Some("points-to") => {
            let var = pos.get(1).ok_or("points-to needs a variable name")?;
            obj([("cmd", "points-to".into()), ("var", var.as_str().into())])
        }
        Some("alias") => {
            let (x, y) = match (pos.get(1), pos.get(2)) {
                (Some(x), Some(y)) => (x, y),
                _ => return Err("alias needs two variable names".to_string()),
            };
            obj([
                ("cmd", "alias".into()),
                ("a", x.as_str().into()),
                ("b", y.as_str().into()),
            ])
        }
        Some("depend") => {
            let target = pos.get(1).ok_or("depend needs a target name")?;
            obj([
                ("cmd", "depend".into()),
                ("target", target.as_str().into()),
                (
                    "non-targets",
                    Value::Arr(non_targets.iter().map(|n| n.as_str().into()).collect()),
                ),
            ])
        }
        Some("stats") => obj([("cmd", "stats".into())]),
        Some("metrics") => obj([("cmd", "metrics".into())]),
        Some("reload") => obj([("cmd", "reload".into()), ("force", force.into())]),
        Some("health") => obj([("cmd", "health".into())]),
        Some("profile") => {
            let action = match pos.get(1).map(String::as_str) {
                Some(a @ ("start" | "stop" | "dump")) => a,
                _ => return Err("profile needs an action (start, stop, dump)".to_string()),
            };
            let mut pairs = vec![
                ("cmd", Value::from("profile")),
                ("action", action.into()),
            ];
            if let Some(us) = &interval_us {
                let us: u64 = us
                    .parse()
                    .map_err(|_| format!("--interval-us: not a number: `{us}`"))?;
                pairs.push(("interval_us", us.into()));
            }
            obj(pairs)
        }
        Some("shutdown") => obj([("cmd", "shutdown".into())]),
        Some("sessions") => obj([("cmd", "sessions".into())]),
        Some(other) => return Err(format!("unknown query `{other}`")),
        None => return Err(
            "query needs a command (points-to, alias, depend, stats, metrics, reload, health, profile, sessions, shutdown)"
                .to_string(),
        ),
    };
    // A hub routes by the `session` field; the Unix-socket server ignores
    // unknown fields, so attaching it is harmless there.
    let request = match (request, &session) {
        (Value::Obj(mut map), Some(name)) => {
            map.insert("session".to_string(), name.as_str().into());
            Value::Obj(map)
        }
        (request, _) => request,
    };

    // The typed client turns a refusal into a hint, not a backtrace.
    let mut client = Client::connect(&endpoint).map_err(|e| e.to_string())?;
    let v = client.request(&request).map_err(|e| e.to_string())?;
    // Non-zero exit when the server reports an error. A `metrics` reply
    // carries multi-line Prometheus text; print it unescaped.
    if v.get("ok").and_then(Value::as_bool) == Some(false) {
        println!("{}", v.encode());
        return Err(v
            .get("error")
            .and_then(Value::as_str)
            .unwrap_or("server error")
            .to_string());
    }
    match v.get("metrics").and_then(Value::as_str) {
        Some(text) => print!("{text}"),
        None => println!("{}", v.encode()),
    }
    Ok(())
}

/// Starts the multi-tenant TCP hub: each `NAME=PATH` positional opens one
/// named session over a `.clao` object, a C source file, or a directory
/// of C sources. With `--snapshot-root DIR` every session evicts to (and
/// warm-starts from) `DIR/NAME/graph.clasnap`.
fn cmd_hub(args: &[String]) -> Result<(), String> {
    use cla::hub::{hub_serve, Hub, HubOptions, SessionSource, SessionSpec};
    use std::sync::Arc;

    let mut a = Args::new(args);
    let listen = a
        .take_values("--listen")?
        .pop()
        .unwrap_or_else(|| "127.0.0.1:4577".to_string());
    let capacity: usize = match a.take_values("--capacity")?.pop() {
        Some(v) => v.parse().map_err(|_| "--capacity needs a number")?,
        None => 8,
    };
    let max_inflight: u64 = match a.take_values("--max-inflight")?.pop() {
        Some(v) => v.parse().map_err(|_| "--max-inflight needs a number")?,
        None => 64,
    };
    let rebuild_slots: usize = match a.take_values("--rebuild-slots")?.pop() {
        Some(v) => v.parse().map_err(|_| "--rebuild-slots needs a number")?,
        None => 2,
    };
    let jobs: usize = match a.take_values("--jobs")?.pop() {
        Some(v) => v.parse().map_err(|_| "--jobs needs a number")?,
        None => 1,
    };
    let lenient = a.take_flag("--lenient");
    let include_dirs = a.take_values("-I")?;
    let defines: Vec<(String, String)> = a
        .take_values("-D")?
        .into_iter()
        .map(|d| match d.split_once('=') {
            Some((n, v)) => (n.to_string(), v.to_string()),
            None => (d, "1".to_string()),
        })
        .collect();
    let snapshot_root = a.take_values("--snapshot-root")?.pop();
    let pos = a.positional();
    if pos.is_empty() {
        return Err("hub needs at least one NAME=PATH session".to_string());
    }

    let hub = Arc::new(Hub::new(HubOptions {
        serve: cla::serve::ServeOptions {
            jobs,
            ..Default::default()
        },
        capacity,
        max_inflight,
        rebuild_slots,
    }));
    for entry in &pos {
        let (name, path) = entry
            .split_once('=')
            .ok_or_else(|| format!("session `{entry}` is not NAME=PATH"))?;
        let snapshot_dir = snapshot_root
            .as_ref()
            .map(|root| std::path::Path::new(root).join(name));
        let source = if path.ends_with(".clao") {
            SessionSource::Object {
                path: std::path::PathBuf::from(path),
            }
        } else {
            let meta =
                std::fs::metadata(path).map_err(|e| format!("session `{name}`: {path}: {e}"))?;
            let (files, mut dirs) = if meta.is_dir() {
                let mut files: Vec<String> = std::fs::read_dir(path)
                    .map_err(|e| format!("session `{name}`: {path}: {e}"))?
                    .filter_map(|e| e.ok())
                    .map(|e| e.path().to_string_lossy().into_owned())
                    .filter(|p| p.ends_with(".c"))
                    .collect();
                files.sort();
                if files.is_empty() {
                    return Err(format!("session `{name}`: no .c files in {path}"));
                }
                (files, vec![path.to_string()])
            } else {
                (vec![path.to_string()], Vec::new())
            };
            dirs.extend(include_dirs.iter().cloned());
            SessionSource::Files {
                fs: Arc::new(OsFs),
                files,
                pp: PpOptions {
                    include_dirs: dirs,
                    defines: defines.clone(),
                    ..PpOptions::default()
                },
                lower: LowerOptions::default(),
                lenient,
            }
        };
        let (epoch, warm) = hub
            .open(
                name,
                SessionSpec {
                    source,
                    solve: SolveOptions::default(),
                    snapshot_dir,
                    jobs,
                },
            )
            .map_err(|e| format!("session `{name}`: {e}"))?;
        eprintln!(
            "cla-tool: opened session {name} (epoch {epoch}{})",
            if warm { ", warm from snapshot" } else { "" }
        );
    }

    let handle = hub_serve(hub, &listen).map_err(|e| format!("cannot bind `{listen}`: {e}"))?;
    eprintln!(
        "cla-tool: hub serving {} sessions on {} (capacity {capacity}; send {{\"cmd\":\"shutdown\"}} to stop)",
        pos.len(),
        handle.addr(),
    );
    handle.join();
    Ok(())
}

/// Solves a linked database and persists the sealed graph as a `.clasnap`
/// snapshot. The provenance records the object file's content hash under
/// the serve-side scheme, so `cla-tool serve prog.clao --snapshot DIR`
/// (with the snapshot saved as `DIR/graph.clasnap`) starts warm from it.
fn cmd_snapshot_save(args: &[String]) -> Result<(), String> {
    let mut a = Args::new(args);
    let out = a
        .take_values("-o")?
        .pop()
        .unwrap_or_else(|| "a.clasnap".to_string());
    let pos = a.positional();
    let path = pos.first().ok_or("snapshot-save needs a .clao file")?;
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let hash = cla_cladb::fnv64(&bytes);
    let db = Database::open(bytes).map_err(|e| format!("`{path}`: {e}"))?;

    let opts = SolveOptions::default();
    let t = std::time::Instant::now();
    let sealed = cla::core::Warm::from_database(&db, opts).seal();
    let solve_time = t.elapsed();
    let names: Vec<String> = db.objects().iter().map(|o| o.name.clone()).collect();
    let prov = cla::serve::object_provenance(path, hash, opts);
    let written = cla::snap::save_snapshot(std::path::Path::new(&out), &prov, &sealed, &names)
        .map_err(|e| format!("cannot write `{out}`: {e}"))?;
    eprintln!(
        "snapshot {out}: {} objects, {written} bytes, solved in {solve_time:?} ({} passes)",
        names.len(),
        sealed.stats().passes
    );
    Ok(())
}

/// Prints a snapshot's header, section table, and provenance without
/// loading the graph — only the provenance section's checksum is verified,
/// which is exactly what a warm-start viability check costs.
fn cmd_snapshot_info(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("snapshot-info needs a .clasnap file")?;
    let snap = cla::snap::Snapshot::open(std::path::Path::new(path))
        .map_err(|e| format!("`{path}`: {e}"))?;
    let prov = snap.provenance();
    println!(
        "snapshot {path}: format v{}, {} objects, {} sections",
        cla::snap::VERSION,
        snap.object_count(),
        snap.section_table().len()
    );
    println!(
        "provenance: options_fp={:016x} cache={} cycle_elim={}",
        prov.options_fp, prov.solver.cache, prov.solver.cycle_elim
    );
    for (name, hash) in &prov.inputs {
        println!("  input {name} hash={hash:016x}");
    }
    println!("sections:");
    for s in snap.section_table() {
        let name = cla::snap::SnapSectionId::from_u32(s.id)
            .map(|i| i.name())
            .unwrap_or("?");
        println!(
            "  {:<8} id={} offset={} len={} checksum={:016x}",
            name, s.id, s.offset, s.len, s.checksum
        );
    }
    Ok(())
}

/// Deterministic fault injection over a real object file: truncation at
/// every byte offset, seeded bit flips, and section-table shuffles, each
/// asserting the invariant *open/block either returns correct data or a
/// typed `DbError` — never a panic, never a wrong answer*. With
/// `--snapshot` the same harness targets the `.clasnap` format instead,
/// fuzzing an in-memory snapshot built from the input program.
fn cmd_db_fuzz(args: &[String]) -> Result<(), String> {
    let mut a = Args::new(args);
    let iters: u64 = a
        .take_values("--iters")?
        .pop()
        .unwrap_or_else(|| "500".to_string())
        .parse()
        .map_err(|_| "--iters needs a number")?;
    let seed: u64 = a
        .take_values("--seed")?
        .pop()
        .unwrap_or_else(|| "1".to_string())
        .parse()
        .map_err(|_| "--seed needs a number")?;
    let fuzz_snapshot = a.take_flag("--snapshot");
    let include_dirs = a.take_values("-I")?;
    let defines = a
        .take_values("-D")?
        .into_iter()
        .map(|d| match d.split_once('=') {
            Some((n, v)) => (n.to_string(), v.to_string()),
            None => (d, "1".to_string()),
        })
        .collect();
    let pos = a.positional();
    if pos.is_empty() {
        return Err("db-fuzz needs C sources or a .clao file".to_string());
    }

    // A .clao positional is fuzzed as-is; C sources are compiled and linked
    // in-memory first, so the harness always works over a real multi-section
    // object file.
    let bytes = if pos.len() == 1 && pos[0].ends_with(".clao") {
        std::fs::read(&pos[0]).map_err(|e| format!("cannot read `{}`: {e}", pos[0]))?
    } else {
        let pp = PpOptions {
            include_dirs,
            defines,
            ..PpOptions::default()
        };
        let lower = LowerOptions::default();
        let mut units = Vec::new();
        for src in &pos {
            let (unit, _) = compile_file(&OsFs, src, &pp, &lower).map_err(|e| e.to_string())?;
            units.push(unit);
        }
        let (program, _) = link(&units, "fuzz-target");
        write_object(&program)
    };

    // `--snapshot` retargets the harness: solve the program, seal it, and
    // encode the result as a .clasnap — the mutants then attack the
    // snapshot reader against a pristine-load oracle.
    let (bytes, format) = if fuzz_snapshot {
        let hash = cla_cladb::fnv64(&bytes);
        let db = Database::open(bytes).map_err(|e| e.to_string())?;
        let opts = SolveOptions::default();
        let sealed = cla::core::Warm::from_database(&db, opts).seal();
        let names: Vec<String> = db.objects().iter().map(|o| o.name.clone()).collect();
        let prov = cla::serve::object_provenance("fuzz-target", hash, opts);
        (
            cla::snap::encode_snapshot(&prov, &sealed, &names),
            "snapshot",
        )
    } else {
        (bytes, "object")
    };

    eprintln!(
        "db-fuzz: {format} format, {} bytes, seed {seed}, {iters} bit-flip iters (+ full truncation sweep + section shuffles)",
        bytes.len()
    );
    let report = if fuzz_snapshot {
        cla::snap::fault::run_snap_fuzz(&bytes, seed, iters)
            .map_err(|e| format!("pristine snapshot does not decode: {e}"))?
    } else {
        cla_cladb::fault::run_fuzz(&bytes, seed, iters)
            .map_err(|e| format!("pristine input does not decode: {e}"))?
    };
    println!("{report}");
    if report.ok() {
        Ok(())
    } else {
        Err(format!(
            "integrity holes found: {} wrong-answer, {} panics",
            report.wrong.len(),
            report.panics.len()
        ))
    }
}

/// Hostile-input fuzzing of the frontend: deterministic mutants of a C
/// corpus (byte flips, truncations, token splices, deep nesting, macro
/// bombs, include cycles) pushed through the real compile path under a
/// [`FrontendLimits`] budget. The invariant is the quarantine contract:
/// *typed error or valid object — never a panic, never an unbounded stall.*
/// The corpus is the positional C files, `--gen profile.toml` generates a
/// synthetic corpus in memory instead (pure function of profile + seed).
fn cmd_front_fuzz(args: &[String]) -> Result<(), String> {
    let mut a = Args::new(args);
    let iters: u64 = a
        .take_values("--iters")?
        .pop()
        .unwrap_or_else(|| "2000".to_string())
        .parse()
        .map_err(|_| "--iters needs a number")?;
    let seed: u64 = a
        .take_values("--seed")?
        .pop()
        .unwrap_or_else(|| "1".to_string())
        .parse()
        .map_err(|_| "--seed needs a number")?;
    let deadline_ms: Option<u64> = a
        .take_values("--deadline-ms")?
        .pop()
        .map(|v| v.parse().map_err(|_| "--deadline-ms needs a number"))
        .transpose()?;
    let gen_profile = a.take_values("--gen")?.pop();
    let pos = a.positional();

    let mut corpus: Vec<(String, String)> = Vec::new();
    if let Some(profile_path) = &gen_profile {
        let profile = cla::genc::Profile::load(std::path::Path::new(profile_path))
            .map_err(|e| e.to_string())?;
        cla::genc::generate_with(&profile, seed, &mut |name, text| {
            corpus.push((name.to_string(), text.to_string()));
            Ok(())
        })
        .map_err(|e| format!("generation failed: {e}"))?;
    }
    for src in &pos {
        let text = std::fs::read_to_string(src).map_err(|e| format!("cannot read `{src}`: {e}"))?;
        corpus.push((src.clone(), text));
    }
    if corpus.is_empty() {
        return Err("front-fuzz needs C sources or --gen profile.toml".to_string());
    }

    let mut limits = cla::core::frontfuzz::fuzz_limits();
    if let Some(ms) = deadline_ms {
        limits.deadline_ms = ms;
    }
    eprintln!(
        "front-fuzz: {} corpus files, seed {seed}, {iters} mutants, deadline {}ms",
        corpus.len(),
        limits.deadline_ms
    );
    let report = cla::core::frontfuzz::run_front_fuzz(&corpus, seed, iters, &limits);
    println!("{report}");
    if report.ok() {
        Ok(())
    } else {
        Err(format!(
            "frontend integrity holes found: {} panics, {} deadline overruns",
            report.panics.len(),
            report.overruns.len()
        ))
    }
}

fn cmd_ctx(args: &[String]) -> Result<(), String> {
    let mut a = Args::new(args);
    let k: usize = a
        .take_values("-k")?
        .pop()
        .ok_or("ctx needs -k N")?
        .parse()
        .map_err(|_| "-k needs a number")?;
    let out = a.take_values("-o")?.pop().ok_or("ctx needs -o out.clao")?;
    let pos = a.positional();
    let path = pos.first().ok_or("ctx needs a .clao file")?;
    let db = load_database(path)?;
    let unit = db.to_unit().map_err(|e| e.to_string())?;
    let (dup, stats) = transform::duplicate_contexts(&unit, k);
    let bytes = write_object(&dup);
    cla_cladb::atomic_write_bytes(std::path::Path::new(&out), &bytes)
        .map_err(|e| format!("cannot write `{out}`: {e}"))?;
    eprintln!(
        "duplicated {} functions ({} sites over up to {k} contexts), +{} objects, +{} assignments -> {out}",
        stats.functions_cloned, stats.sites_distributed, stats.objects_added, stats.assigns_added
    );
    Ok(())
}
