//! # cla — ultra-fast aliasing analysis using compile-link-analyze
//!
//! A Rust reproduction of Heintze & Tardieu, *"Ultra-fast Aliasing Analysis
//! using CLA: A Million Lines of C Code in a Second"* (PLDI 2001).
//!
//! This facade crate re-exports the whole system:
//!
//! * [`cfront`] — a hand-written C frontend (lexer, preprocessor, parser).
//! * [`ir`] — lowering to the paper's five primitive assignment forms.
//! * [`cladb`] — the indexed object-file database, linker, demand loader.
//! * [`core`] — the pre-transitive points-to solver and the baselines
//!   (worklist Andersen, Steensgaard) plus the compile-link-analyze
//!   pipeline.
//! * [`depend`] — the forward data-dependence (type migration) tool.
//! * [`genc`] — the declarative million-line codebase generator behind the
//!   "million lines in a second" harness (profiles in `profiles/`).
//! * [`obs`] — zero-dependency tracing (Chrome `trace_event` JSONL) and
//!   metrics (counters, gauges, histograms, Prometheus text exposition)
//!   wired through every layer above.
//! * [`prof`] — the in-process sampling profiler (span-stack sampling,
//!   collapsed-stack/flamegraph output), the feature-gated counting
//!   allocator (`count-alloc`), and the `BENCH_history.jsonl` tooling
//!   behind `cla-tool bench-diff`.
//! * [`serve`] — a long-running query server (in-process [`prelude::Session`]
//!   or newline-delimited JSON over a Unix socket) that keeps the solved
//!   graph warm between queries.
//! * [`hub`] — the multi-tenant TCP front end: many named sessions behind
//!   one server, with an LRU of resident graphs that evicts to `.clasnap`
//!   snapshots and warm-starts on demand.
//! * [`snap`] — persistent analysis snapshots (`.clasnap`) and the
//!   content-addressed on-disk build cache, for instant warm starts.
//! * [`workload`] — synthetic benchmarks calibrated to the paper's Table 2.
//!
//! ## Quickstart
//!
//! ```
//! use cla::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut fs = MemoryFs::new();
//! fs.add("a.c", "int x; int *p; void f(void) { p = &x; }");
//! fs.add("b.c", "extern int *p; int *q; void g(void) { q = p; }");
//! let analysis = analyze(&fs, &["a.c", "b.c"], &PipelineOptions::default())?;
//! let q = analysis.database.targets("q")[0];
//! let x = analysis.database.targets("x")[0];
//! assert!(analysis.points_to.may_point_to(q, x));
//! # Ok(())
//! # }
//! ```

pub use cla_cfront as cfront;
pub use cla_cladb as cladb;
pub use cla_core as core;
pub use cla_depend as depend;
pub use cla_genc as genc;
pub use cla_hub as hub;
pub use cla_ir as ir;
pub use cla_obs as obs;
pub use cla_prof as prof;
pub use cla_serve as serve;
pub use cla_snap as snap;
pub use cla_workload as workload;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use cla_cfront::{FileProvider, FrontendLimits, MemoryFs, OsFs, PpOptions};
    pub use cla_cladb::{dump, link, write_object, Database};
    pub use cla_core::pipeline::{
        analyze, analyze_with, Analysis, AnalyzeHooks, PipelineError, PipelineOptions,
        QuarantineReason, Quarantined, Report,
    };
    pub use cla_core::{solve_database, solve_unit, PointsTo, SolveOptions};
    pub use cla_depend::{DependOptions, DependenceAnalysis};
    pub use cla_genc::{generate_to_dir, generate_with, measure_tree, GenReport, Measure, Profile};
    pub use cla_hub::{Hub, HubOptions, SessionSource, SessionSpec};
    pub use cla_ir::{
        compile_file, compile_source, AssignKind, CompiledUnit, FieldModel, LowerOptions, ObjId,
        ObjKind, Strength,
    };
    pub use cla_serve::{Client, Endpoint, Session, SessionStats};
    pub use cla_snap::{DiskCache, Snapshot, SnapshotStore};
    pub use cla_workload::{by_name, generate, GenOptions, PAPER_BENCHMARKS};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exports_work() {
        let unit = compile_source(
            "int x, *p; void f(void) { p = &x; }",
            "a.c",
            &LowerOptions::default(),
        )
        .unwrap();
        let (pts, _) = solve_unit(&unit, SolveOptions::default());
        assert_eq!(pts.pointer_variables(), 1);
    }
}
