//! Object-file format tests: forward compatibility (unknown sections are
//! ignored, as §4 promises for COFF/ELF-style containers) and corruption
//! detection.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use cla_cladb::{write_object, Database, MAGIC, VERSION};
use cla_ir::{compile_source, LowerOptions};

fn sample_bytes() -> Bytes {
    let unit = compile_source(
        "int x, *p, *q; void f(void) { p = &x; q = p; x = *q; }",
        "a.c",
        &LowerOptions::default(),
    )
    .unwrap();
    write_object(&unit)
}

/// Rebuilds an object file with one extra (unknown) section appended.
fn with_extra_section(orig: &Bytes, section_id: u32, payload: &[u8]) -> Bytes {
    let mut hdr = orig.clone();
    assert_eq!(hdr.get_u32_le(), MAGIC);
    assert_eq!(hdr.get_u32_le(), VERSION);
    let nsections = hdr.get_u32_le() as usize;
    let mut entries: Vec<(u32, u64, u64)> = (0..nsections)
        .map(|_| (hdr.get_u32_le(), hdr.get_u64_le(), hdr.get_u64_le()))
        .collect();
    let old_header_len = 12 + nsections * 20;
    let new_header_len = 12 + (nsections + 1) * 20;
    let shift = (new_header_len - old_header_len) as u64;
    for e in &mut entries {
        e.1 += shift;
    }
    let body = &orig[old_header_len..];
    entries.push((section_id, new_header_len as u64 + body.len() as u64, payload.len() as u64));

    let mut out = BytesMut::new();
    out.put_u32_le(MAGIC);
    out.put_u32_le(VERSION);
    out.put_u32_le((nsections + 1) as u32);
    for (id, off, len) in &entries {
        out.put_u32_le(*id);
        out.put_u64_le(*off);
        out.put_u64_le(*len);
    }
    out.extend_from_slice(body);
    out.extend_from_slice(payload);
    out.freeze()
}

#[test]
fn unknown_sections_are_ignored() {
    let orig = sample_bytes();
    let extended = with_extra_section(&orig, 999, b"future feature data");
    let db_orig = Database::open(orig).unwrap();
    let db_ext = Database::open(extended).expect("readers skip unknown sections");
    assert_eq!(db_orig.objects().len(), db_ext.objects().len());
    assert_eq!(
        db_orig.to_unit().unwrap().assign_counts(),
        db_ext.to_unit().unwrap().assign_counts()
    );
}

#[test]
fn every_truncation_point_is_rejected_or_consistent() {
    // Cutting the file anywhere must never panic; it either errors at open
    // or (if all sections happen to remain intact) behaves identically.
    let orig = sample_bytes();
    let full = Database::open(orig.clone()).unwrap().to_unit().unwrap();
    for cut in (0..orig.len()).step_by(7) {
        let sliced = orig.slice(..cut);
        match Database::open(sliced) {
            Err(_) => {}
            Ok(db) => match db.to_unit() {
                Err(_) => {}
                Ok(unit) => assert_eq!(unit.assign_counts(), full.assign_counts()),
            },
        }
    }
}

#[test]
fn byte_flips_in_header_never_panic() {
    let orig = sample_bytes();
    for pos in 0..orig.len().min(200) {
        let mut bytes = orig.to_vec();
        bytes[pos] ^= 0xff;
        // Must not panic; errors (or degraded-but-consistent reads) are fine.
        if let Ok(db) = Database::open(Bytes::from(bytes)) {
            let _ = db.to_unit();
            let _ = db.static_assigns();
        }
    }
}
