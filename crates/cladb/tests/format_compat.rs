//! Object-file format tests: forward compatibility (unknown sections are
//! ignored, as §4 promises for COFF/ELF-style containers) and corruption
//! detection.

use cla_cladb::{write_object, Database, MAGIC, VERSION};
use cla_ir::{compile_source, LowerOptions};

fn sample_bytes() -> Vec<u8> {
    let unit = compile_source(
        "int x, *p, *q; void f(void) { p = &x; q = p; x = *q; }",
        "a.c",
        &LowerOptions::default(),
    )
    .unwrap();
    write_object(&unit)
}

fn read_u32_le(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().unwrap())
}

fn read_u64_le(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().unwrap())
}

/// Rebuilds an object file with one extra (unknown) section appended.
fn with_extra_section(orig: &[u8], section_id: u32, payload: &[u8]) -> Vec<u8> {
    assert_eq!(read_u32_le(orig, 0), MAGIC);
    assert_eq!(read_u32_le(orig, 4), VERSION);
    let nsections = read_u32_le(orig, 8) as usize;
    let mut entries: Vec<(u32, u64, u64)> = (0..nsections)
        .map(|i| {
            let base = 12 + i * 20;
            (
                read_u32_le(orig, base),
                read_u64_le(orig, base + 4),
                read_u64_le(orig, base + 12),
            )
        })
        .collect();
    let old_header_len = 12 + nsections * 20;
    let new_header_len = 12 + (nsections + 1) * 20;
    let shift = (new_header_len - old_header_len) as u64;
    for e in &mut entries {
        e.1 += shift;
    }
    let body = &orig[old_header_len..];
    entries.push((
        section_id,
        new_header_len as u64 + body.len() as u64,
        payload.len() as u64,
    ));

    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&((nsections + 1) as u32).to_le_bytes());
    for (id, off, len) in &entries {
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&off.to_le_bytes());
        out.extend_from_slice(&len.to_le_bytes());
    }
    out.extend_from_slice(body);
    out.extend_from_slice(payload);
    out
}

#[test]
fn unknown_sections_are_ignored() {
    let orig = sample_bytes();
    let extended = with_extra_section(&orig, 999, b"future feature data");
    let db_orig = Database::open(orig).unwrap();
    let db_ext = Database::open(extended).expect("readers skip unknown sections");
    assert_eq!(db_orig.objects().len(), db_ext.objects().len());
    assert_eq!(
        db_orig.to_unit().unwrap().assign_counts(),
        db_ext.to_unit().unwrap().assign_counts()
    );
}

#[test]
fn every_truncation_point_is_rejected_or_consistent() {
    // Cutting the file anywhere must never panic; it either errors at open
    // or (if all sections happen to remain intact) behaves identically.
    let orig = sample_bytes();
    let full = Database::open(orig.clone()).unwrap().to_unit().unwrap();
    for cut in (0..orig.len()).step_by(7) {
        let sliced = orig[..cut].to_vec();
        match Database::open(sliced) {
            Err(_) => {}
            Ok(db) => match db.to_unit() {
                Err(_) => {}
                Ok(unit) => assert_eq!(unit.assign_counts(), full.assign_counts()),
            },
        }
    }
}

#[test]
fn byte_flips_in_header_never_panic() {
    let orig = sample_bytes();
    for pos in 0..orig.len().min(200) {
        let mut bytes = orig.clone();
        bytes[pos] ^= 0xff;
        // Must not panic; errors (or degraded-but-consistent reads) are fine.
        if let Ok(db) = Database::open(bytes) {
            let _ = db.to_unit();
            let _ = db.static_assigns();
        }
    }
}
