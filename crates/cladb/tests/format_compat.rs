//! Object-file format tests: forward compatibility (unknown sections are
//! ignored, as §4 promises for COFF/ELF-style containers), version gating,
//! and corruption detection.

use cla_cladb::{
    fnv64, write_object, Database, DbError, HEADER_FIXED_SIZE, MAGIC, SECTION_ENTRY_SIZE, VERSION,
};
use cla_ir::{compile_source, LowerOptions};

fn sample_bytes() -> Vec<u8> {
    let unit = compile_source(
        "int x, *p, *q; void f(void) { p = &x; q = p; x = *q; }",
        "a.c",
        &LowerOptions::default(),
    )
    .unwrap();
    write_object(&unit)
}

fn read_u32_le(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().unwrap())
}

fn read_u64_le(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().unwrap())
}

/// Rebuilds a v2 object file with one extra (unknown) section appended,
/// recomputing the header checksum over the rewritten section table.
fn with_extra_section(orig: &[u8], section_id: u32, payload: &[u8]) -> Vec<u8> {
    assert_eq!(read_u32_le(orig, 0), MAGIC);
    assert_eq!(read_u32_le(orig, 4), VERSION);
    let nsections = read_u32_le(orig, 16) as usize;
    // (id, offset, len, checksum) entries.
    let mut entries: Vec<(u32, u64, u64, u64)> = (0..nsections)
        .map(|i| {
            let base = HEADER_FIXED_SIZE + i * SECTION_ENTRY_SIZE;
            (
                read_u32_le(orig, base),
                read_u64_le(orig, base + 4),
                read_u64_le(orig, base + 12),
                read_u64_le(orig, base + 20),
            )
        })
        .collect();
    let old_header_len = HEADER_FIXED_SIZE + nsections * SECTION_ENTRY_SIZE;
    let new_header_len = HEADER_FIXED_SIZE + (nsections + 1) * SECTION_ENTRY_SIZE;
    let shift = (new_header_len - old_header_len) as u64;
    for e in &mut entries {
        e.1 += shift;
    }
    let body = &orig[old_header_len..];
    entries.push((
        section_id,
        new_header_len as u64 + body.len() as u64,
        payload.len() as u64,
        0, // unknown sections are skipped before their checksum is used
    ));

    // Table = count + entries; the header checksum covers exactly this.
    let mut table = Vec::new();
    table.extend_from_slice(&((nsections + 1) as u32).to_le_bytes());
    for (id, off, len, sum) in &entries {
        table.extend_from_slice(&id.to_le_bytes());
        table.extend_from_slice(&off.to_le_bytes());
        table.extend_from_slice(&len.to_le_bytes());
        table.extend_from_slice(&sum.to_le_bytes());
    }
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&fnv64(&table).to_le_bytes());
    out.extend_from_slice(&table);
    out.extend_from_slice(body);
    out.extend_from_slice(payload);
    out
}

#[test]
fn unknown_sections_are_ignored() {
    let orig = sample_bytes();
    let extended = with_extra_section(&orig, 999, b"future feature data");
    let db_orig = Database::open(orig).unwrap();
    let db_ext = Database::open(extended).expect("readers skip unknown sections");
    assert_eq!(db_orig.objects().len(), db_ext.objects().len());
    assert_eq!(
        db_orig.to_unit().unwrap().assign_counts(),
        db_ext.to_unit().unwrap().assign_counts()
    );
}

#[test]
fn previous_format_version_is_rejected_with_clear_message() {
    // A v1 file (no checksum fields) must be refused up front with
    // `BadVersion`, never misparsed under the v2 layout.
    let orig = sample_bytes();
    let nsections = read_u32_le(&orig, 16);
    let mut v1 = Vec::new();
    v1.extend_from_slice(&MAGIC.to_le_bytes());
    v1.extend_from_slice(&1u32.to_le_bytes());
    v1.extend_from_slice(&nsections.to_le_bytes());
    // v1 entries were (id, offset, len) = 20 bytes; content is irrelevant —
    // the version gate must fire before any of it is parsed.
    v1.extend_from_slice(&vec![0u8; nsections as usize * 20]);
    v1.extend_from_slice(&orig[HEADER_FIXED_SIZE..]);
    match Database::open(v1) {
        Err(DbError::BadVersion(1)) => {}
        other => panic!("expected BadVersion(1), got {other:?}"),
    }
    assert_eq!(
        DbError::BadVersion(1).to_string(),
        "unsupported CLA object version 1"
    );
}

#[test]
fn header_checksum_catches_section_table_damage() {
    let orig = sample_bytes();
    // Flip a byte inside the first section entry's offset field.
    let mut bytes = orig.clone();
    bytes[HEADER_FIXED_SIZE + 5] ^= 0x01;
    match Database::open(bytes) {
        Err(DbError::Checksum(what)) => assert!(what.contains("section table"), "{what}"),
        other => panic!("expected a checksum error, got {other:?}"),
    }
}

#[test]
fn every_truncation_point_is_rejected_or_consistent() {
    // Cutting the file anywhere must never panic; it either errors at open
    // or (if all sections happen to remain intact) behaves identically.
    let orig = sample_bytes();
    let full = Database::open(orig.clone()).unwrap().to_unit().unwrap();
    for cut in (0..orig.len()).step_by(7) {
        let sliced = orig[..cut].to_vec();
        match Database::open(sliced) {
            Err(_) => {}
            Ok(db) => match db.to_unit() {
                Err(_) => {}
                Ok(unit) => assert_eq!(unit.assign_counts(), full.assign_counts()),
            },
        }
    }
}

#[test]
fn byte_flips_in_header_never_panic() {
    let orig = sample_bytes();
    for pos in 0..orig.len().min(200) {
        let mut bytes = orig.clone();
        bytes[pos] ^= 0xff;
        // Must not panic; errors (or degraded-but-consistent reads) are fine.
        if let Ok(db) = Database::open(bytes) {
            let _ = db.to_unit();
            let _ = db.static_assigns();
        }
    }
}
