//! The CLA object-file binary format.
//!
//! A sectioned, indexed container (in the spirit of COFF/ELF — paper §4):
//!
//! ```text
//! header    magic, version, section table (id, offset, length)
//! string    interned strings (names, types, file names)
//! file      file-name table (string ids)
//! object    object metadata records
//! global    linking information: (link name, object) pairs
//! static    address-of assignments `x = &y` — always loaded for points-to
//! dynamic   per-object blocks of assignments keyed by *source* object,
//!           with an offset index so a block is found in one lookup
//! funsig    function / function-pointer signature records
//! target    name → objects index for dependence-analysis targets
//! meta      unit name, assignment totals
//! ```
//!
//! New sections can be added without breaking existing readers: readers look
//! sections up by id and ignore unknown ids (paper §4: "new sections can be
//! transparently added ... existing analysis systems do not need to be
//! rewritten").

use std::fmt;

/// Magic number at offset 0: `"CLA\x01"` little-endian.
pub const MAGIC: u32 = 0x014C_4143;

/// Format version written by this crate.
///
/// * v1 — sectioned container, no integrity data.
/// * v2 — adds a 64-bit [`fnv64`] checksum per section-table entry, a
///   header checksum covering the section table, and a per-block checksum
///   in the dynamic index. v1 files are rejected with
///   [`DbError::BadVersion`] rather than misparsed.
/// * v3 — adds a per-object flags byte (bit 0 = symbol is *defined*, not
///   merely referenced) to the object section, so a partial analysis can
///   find the referenced-but-undefined globals that need conservative
///   summaries. v1/v2 files are rejected with [`DbError::BadVersion`].
pub const VERSION: u32 = 3;

/// Byte size of one section-table entry on the wire
/// (id `u32`, offset `u64`, len `u64`, checksum `u64`).
pub const SECTION_ENTRY_SIZE: usize = 28;

/// Byte size of the fixed header before the section table
/// (magic `u32`, version `u32`, header checksum `u64`, count `u32`).
pub const HEADER_FIXED_SIZE: usize = 20;

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The zero-dependency integrity checksum used throughout the format:
/// FNV-1a over the bytes, folded to 64 bits. Not cryptographic — it
/// detects bit rot, truncation, and torn writes, which is the database
/// failure model (DESIGN.md §10).
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// [`fnv64`] with a 4-byte tag hashed ahead of the payload. Section
/// checksums are tagged with their section id so that two sections swapped
/// *together with* their stored checksums still fail verification — the
/// checksum binds content *and* identity.
#[must_use]
pub fn fnv64_tagged(tag: u32, bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for b in tag.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Section identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum SectionId {
    String = 1,
    File = 2,
    Object = 3,
    Global = 4,
    Static = 5,
    Dynamic = 6,
    FunSig = 7,
    Target = 8,
    Meta = 9,
}

impl SectionId {
    /// All known sections, in canonical order.
    pub const ALL: [SectionId; 9] = [
        SectionId::String,
        SectionId::File,
        SectionId::Object,
        SectionId::Global,
        SectionId::Static,
        SectionId::Dynamic,
        SectionId::FunSig,
        SectionId::Target,
        SectionId::Meta,
    ];

    /// Section id from its wire value.
    pub fn from_u32(v: u32) -> Option<SectionId> {
        use SectionId::*;
        Some(match v {
            1 => String,
            2 => File,
            3 => Object,
            4 => Global,
            5 => Static,
            6 => Dynamic,
            7 => FunSig,
            8 => Target,
            9 => Meta,
            _ => return None,
        })
    }

    /// Human-readable section name (for dumps).
    pub fn name(self) -> &'static str {
        match self {
            SectionId::String => "string",
            SectionId::File => "file",
            SectionId::Object => "object",
            SectionId::Global => "global",
            SectionId::Static => "static",
            SectionId::Dynamic => "dynamic",
            SectionId::FunSig => "funsig",
            SectionId::Target => "target",
            SectionId::Meta => "meta",
        }
    }
}

impl fmt::Display for SectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One entry of the section table.
///
/// `checksum` is [`fnv64`] over the section's *verified prefix*: the whole
/// body for every section except `dynamic`, whose checksum covers only the
/// eagerly read index (count + per-object entries). The dynamic blob is
/// covered block-by-block by the checksums stored in that index, verified
/// lazily on first demand load so cold data is never hashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionEntry {
    pub id: u32,
    pub offset: u64,
    pub len: u64,
    pub checksum: u64,
}

/// Sentinel for "no string" / "no object" references on the wire.
pub const NONE_U32: u32 = u32::MAX;

/// Size in bytes of one encoded assignment record.
pub const ASSIGN_RECORD_SIZE: usize = 19;

/// Errors from reading an object file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// Not a CLA object file (bad magic).
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// A required section is missing.
    MissingSection(&'static str),
    /// Structurally invalid data (truncation, bad enum value, out-of-range
    /// reference).
    Corrupt(String),
    /// Stored and recomputed checksums disagree: the bytes were damaged
    /// after they were written (bit rot, torn write, tampering).
    Checksum(String),
    /// The object file could not be read or written.
    Io(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::BadMagic => f.write_str("not a CLA object file (bad magic)"),
            DbError::BadVersion(v) => write!(f, "unsupported CLA object version {v}"),
            DbError::MissingSection(s) => write!(f, "missing required section `{s}`"),
            DbError::Corrupt(msg) => write!(f, "corrupt object file: {msg}"),
            DbError::Checksum(what) => write!(f, "checksum mismatch in {what}"),
            DbError::Io(msg) => write!(f, "object file I/O error: {msg}"),
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_ids_roundtrip() {
        for s in SectionId::ALL {
            assert_eq!(SectionId::from_u32(s as u32), Some(s));
        }
        assert_eq!(SectionId::from_u32(0), None);
        assert_eq!(SectionId::from_u32(100), None);
    }

    #[test]
    fn section_names() {
        assert_eq!(SectionId::Dynamic.name(), "dynamic");
        assert_eq!(format!("{}", SectionId::Static), "static");
    }

    #[test]
    fn error_display() {
        assert!(format!("{}", DbError::BadMagic).contains("magic"));
        assert!(format!("{}", DbError::BadVersion(9)).contains('9'));
        assert!(format!("{}", DbError::MissingSection("object")).contains("object"));
        assert!(format!("{}", DbError::Corrupt("x".into())).contains('x'));
        assert!(format!("{}", DbError::Checksum("block 3".into())).contains("block 3"));
        assert!(format!("{}", DbError::Io("nope".into())).contains("nope"));
    }

    #[test]
    fn fnv64_reference_values() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
        // Single-bit damage changes the sum.
        assert_ne!(fnv64(b"foobar"), fnv64(b"foobas"));
    }
}
