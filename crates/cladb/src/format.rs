//! The CLA object-file binary format.
//!
//! A sectioned, indexed container (in the spirit of COFF/ELF — paper §4):
//!
//! ```text
//! header    magic, version, section table (id, offset, length)
//! string    interned strings (names, types, file names)
//! file      file-name table (string ids)
//! object    object metadata records
//! global    linking information: (link name, object) pairs
//! static    address-of assignments `x = &y` — always loaded for points-to
//! dynamic   per-object blocks of assignments keyed by *source* object,
//!           with an offset index so a block is found in one lookup
//! funsig    function / function-pointer signature records
//! target    name → objects index for dependence-analysis targets
//! meta      unit name, assignment totals
//! ```
//!
//! New sections can be added without breaking existing readers: readers look
//! sections up by id and ignore unknown ids (paper §4: "new sections can be
//! transparently added ... existing analysis systems do not need to be
//! rewritten").

use std::fmt;

/// Magic number at offset 0: `"CLA\x01"` little-endian.
pub const MAGIC: u32 = 0x014C_4143;

/// Format version written by this crate.
pub const VERSION: u32 = 1;

/// Section identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum SectionId {
    String = 1,
    File = 2,
    Object = 3,
    Global = 4,
    Static = 5,
    Dynamic = 6,
    FunSig = 7,
    Target = 8,
    Meta = 9,
}

impl SectionId {
    /// All known sections, in canonical order.
    pub const ALL: [SectionId; 9] = [
        SectionId::String,
        SectionId::File,
        SectionId::Object,
        SectionId::Global,
        SectionId::Static,
        SectionId::Dynamic,
        SectionId::FunSig,
        SectionId::Target,
        SectionId::Meta,
    ];

    /// Section id from its wire value.
    pub fn from_u32(v: u32) -> Option<SectionId> {
        use SectionId::*;
        Some(match v {
            1 => String,
            2 => File,
            3 => Object,
            4 => Global,
            5 => Static,
            6 => Dynamic,
            7 => FunSig,
            8 => Target,
            9 => Meta,
            _ => return None,
        })
    }

    /// Human-readable section name (for dumps).
    pub fn name(self) -> &'static str {
        match self {
            SectionId::String => "string",
            SectionId::File => "file",
            SectionId::Object => "object",
            SectionId::Global => "global",
            SectionId::Static => "static",
            SectionId::Dynamic => "dynamic",
            SectionId::FunSig => "funsig",
            SectionId::Target => "target",
            SectionId::Meta => "meta",
        }
    }
}

impl fmt::Display for SectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One entry of the section table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionEntry {
    pub id: u32,
    pub offset: u64,
    pub len: u64,
}

/// Sentinel for "no string" / "no object" references on the wire.
pub const NONE_U32: u32 = u32::MAX;

/// Size in bytes of one encoded assignment record.
pub const ASSIGN_RECORD_SIZE: usize = 19;

/// Errors from reading an object file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// Not a CLA object file (bad magic).
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// A required section is missing.
    MissingSection(&'static str),
    /// Structurally invalid data (truncation, bad enum value, out-of-range
    /// reference).
    Corrupt(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::BadMagic => f.write_str("not a CLA object file (bad magic)"),
            DbError::BadVersion(v) => write!(f, "unsupported CLA object version {v}"),
            DbError::MissingSection(s) => write!(f, "missing required section `{s}`"),
            DbError::Corrupt(msg) => write!(f, "corrupt object file: {msg}"),
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_ids_roundtrip() {
        for s in SectionId::ALL {
            assert_eq!(SectionId::from_u32(s as u32), Some(s));
        }
        assert_eq!(SectionId::from_u32(0), None);
        assert_eq!(SectionId::from_u32(100), None);
    }

    #[test]
    fn section_names() {
        assert_eq!(SectionId::Dynamic.name(), "dynamic");
        assert_eq!(format!("{}", SectionId::Static), "static");
    }

    #[test]
    fn error_display() {
        assert!(format!("{}", DbError::BadMagic).contains("magic"));
        assert!(format!("{}", DbError::BadVersion(9)).contains('9'));
        assert!(format!("{}", DbError::MissingSection("object")).contains("object"));
        assert!(format!("{}", DbError::Corrupt("x".into())).contains('x'));
    }
}
