//! Database-to-database transformations.
//!
//! The paper (§4) highlights that "pre-analysis optimizers" can be written
//! "as database to database transformers", and specifically that the
//! authors "experimented with context-sensitive analysis by writing a
//! transformation that reads in databases and simulates context-sensitivity
//! by controlled duplication of primitive assignments in the database —
//! this requires no changes to code in the compile, link or analyze
//! components". This module is that experiment, plus the §4 remark that an
//! executable's "linking information is typically obsolete (and could be
//! stripped)".

use cla_ir::{CompiledUnit, ObjId, ObjKind, ObjectInfo, OpKind, PrimAssign};
use std::collections::HashMap;

/// Statistics from a context-duplication transform.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ContextStats {
    /// Functions whose bodies were duplicated.
    pub functions_cloned: usize,
    /// Objects added by cloning.
    pub objects_added: usize,
    /// Assignments added by cloning.
    pub assigns_added: usize,
    /// Call sites distributed over clones.
    pub sites_distributed: usize,
}

/// Simulates context-sensitive analysis by *controlled duplication*: the
/// body of every directly called function is cloned `contexts` times, and
/// its call sites are distributed round-robin over the clones (call sites
/// are grouped by source location — the argument and result assignments of
/// one call share it). With `contexts` ≥ the number of call sites this is
/// full (1-level) call-site sensitivity; smaller values trade precision for
/// size, exactly the "controlled" in the paper's phrasing.
///
/// The result is an ordinary program database: the solver runs on it
/// unchanged, and clone objects report the points-to results of their
/// context.
pub fn duplicate_contexts(unit: &CompiledUnit, contexts: usize) -> (CompiledUnit, ContextStats) {
    let mut out = unit.clone();
    let mut stats = ContextStats::default();
    if contexts < 2 {
        return (out, stats);
    }

    // Body membership: every object declared inside a function, keyed by
    // the function object (paper §4: object files record, for each local,
    // the function in which it is defined).
    let mut body_of: HashMap<ObjId, Vec<ObjId>> = HashMap::new();
    for (i, o) in unit.objects.iter().enumerate() {
        if let Some(f) = o.in_func {
            body_of.entry(f).or_default().push(ObjId(i as u32));
        }
    }

    for sig in unit.funsigs.iter().filter(|s| !s.is_indirect) {
        let f = sig.obj;
        let Some(body) = body_of.get(&f) else {
            continue;
        };
        // Partition the function's assignments: internal (both ends in the
        // body or reaching out to globals from inside) vs call-site
        // plumbing (argument passing into parameters, results read from the
        // return variable).
        let is_member = |o: ObjId| unit.object(o).in_func == Some(f) || o == f;
        let mut internal: Vec<&PrimAssign> = Vec::new();
        let mut sites: HashMap<(u32, u32), Vec<&PrimAssign>> = HashMap::new();
        for a in &unit.assigns {
            let arg_edge = a.op == OpKind::Arg && sig.params.contains(&a.dst);
            let ret_edge = a.op == OpKind::RetVal && a.src == sig.ret;
            if arg_edge || ret_edge {
                // Group by call-site location.
                sites.entry((a.loc.file.0, a.loc.line)).or_default().push(a);
            } else if is_member(a.dst) || is_member(a.src) {
                internal.push(a);
            }
        }
        if sites.len() < 2 {
            continue; // a single context cannot be conflated
        }
        stats.functions_cloned += 1;
        let k = contexts.min(sites.len());

        // Clone the body (including the standardized params/ret, which are
        // in `body` because their in_func is the function object).
        let mut clone_maps: Vec<HashMap<ObjId, ObjId>> = Vec::with_capacity(k - 1);
        for ctx in 1..k {
            let mut map = HashMap::new();
            for &o in body {
                let proto = unit.object(o);
                let mut info = ObjectInfo {
                    name: format!("{}@ctx{ctx}", proto.name),
                    link_name: None, // clones are never linked
                    kind: proto.kind,
                    ty: proto.ty.clone(),
                    loc: proto.loc,
                    in_func: Some(f),
                    defined: proto.defined,
                };
                if info.kind == ObjKind::Var {
                    info.kind = ObjKind::Temp;
                }
                let id = out.push_object(info);
                stats.objects_added += 1;
                map.insert(o, id);
            }
            // Internal assignments, remapped into the clone.
            for a in &internal {
                let dst = *map.get(&a.dst).unwrap_or(&a.dst);
                let src = *map.get(&a.src).unwrap_or(&a.src);
                out.push_assign(PrimAssign { dst, src, ..**a });
                stats.assigns_added += 1;
            }
            clone_maps.push(map);
        }

        // Distribute call sites: context 0 keeps the original objects; the
        // assignments of contexts 1..k are remapped in place.
        let mut ordered: Vec<(&(u32, u32), &Vec<&PrimAssign>)> = sites.iter().collect();
        ordered.sort_by_key(|(loc, _)| **loc);
        for (ix, (_, site_assigns)) in ordered.iter().enumerate() {
            let ctx = ix % k;
            stats.sites_distributed += 1;
            if ctx == 0 {
                continue;
            }
            let map = &clone_maps[ctx - 1];
            for a in site_assigns.iter() {
                // Find the matching assignment in `out` and remap it. The
                // clone of an original assignment is located by identity of
                // all fields (assignments were copied verbatim into `out`).
                let target = out
                    .assigns
                    .iter_mut()
                    .find(|b| {
                        b.kind == a.kind
                            && b.dst == a.dst
                            && b.src == a.src
                            && b.loc == a.loc
                            && b.op == a.op
                    })
                    .expect("original assignment present in clone");
                target.dst = *map.get(&target.dst).unwrap_or(&target.dst);
                target.src = *map.get(&target.src).unwrap_or(&target.src);
            }
        }
    }
    (out, stats)
}

/// Statistics from offline variable substitution.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OvsStats {
    /// Variables merged into their unique copy source.
    pub merged: usize,
    /// Assignments removed (collapsed copies + rewritten duplicates).
    pub assigns_removed: usize,
}

/// Offline variable substitution (in the spirit of Rountev & Chandra's
/// PLDI 2000 technique, which the paper cites as the state of the art it
/// outperforms): a variable whose only incoming assignment is a single copy
/// `v = u`, and whose address is never taken, provably has `pts(v) =
/// pts(u)` — so every use of `v` can be replaced by `u` and the copy
/// dropped before the analysis runs. A classic "pre-analysis optimizer
/// written as a database-to-database transformer" (§4).
///
/// Returns the transformed database and the substitution map
/// (`map[i]` = the representative whose points-to set variable `i` shares);
/// query results for a merged variable should be looked up through the map.
pub fn substitute_variables(unit: &CompiledUnit) -> (CompiledUnit, Vec<ObjId>, OvsStats) {
    let n = unit.objects.len();
    let mut stats = OvsStats::default();

    // Candidate detection.
    let mut addr_taken = vec![false; n];
    let mut deref_load = vec![false; n];
    let mut incoming: Vec<Option<Option<&PrimAssign>>> = vec![None; n];
    use cla_ir::AssignKind as K;
    for a in &unit.assigns {
        match a.kind {
            K::Addr => addr_taken[a.src.index()] = true,
            K::Load | K::StoreLoad => deref_load[a.src.index()] = true,
            _ => {}
        }
        // Incoming value assignments (anything that writes dst directly).
        if matches!(a.kind, K::Copy | K::Addr | K::Load) {
            let slot = &mut incoming[a.dst.index()];
            *slot = match slot.take() {
                None => Some(if a.kind == K::Copy { Some(a) } else { None }),
                Some(_) => Some(None), // more than one writer: not a candidate
            };
        }
        // A store *v = y writes through v's pointees, not v, but *x = y
        // means x's pointees get extra writers: conservatively disqualify
        // every object (they are identified only via points-to, which we
        // do not have yet) — i.e. any addr-taken object. Already covered
        // by addr_taken: only addr-taken objects can be store targets.
    }

    // Union-find over substitutions: v -> its unique copy source.
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            let up = parent[parent[x as usize] as usize];
            parent[x as usize] = up;
            x = up;
        }
        x
    }
    for v in 0..n {
        if addr_taken[v] {
            continue;
        }
        let kind = unit.objects[v].kind;
        // Param/Ret objects receive *dynamic* writes when indirect calls
        // are linked at analysis time (g$i ⊇ fp$i, fp$ret ⊇ g$ret), so they
        // are never substitution candidates.
        if !matches!(kind, ObjKind::Var | ObjKind::Temp) {
            continue;
        }
        if let Some(Some(copy)) = incoming[v] {
            let u = copy.src.0;
            if find(&mut parent, u) != v as u32 {
                parent[v] = find(&mut parent, u);
                stats.merged += 1;
            }
        }
    }

    // Rewrite.
    let mut out = unit.clone();
    let before = out.assigns.len();
    let mut seen = std::collections::HashSet::new();
    out.assigns = unit
        .assigns
        .iter()
        .filter_map(|a| {
            let dst = ObjId(find(&mut parent, a.dst.0));
            let src = ObjId(find(&mut parent, a.src.0));
            if a.kind == K::Copy && dst == src {
                return None; // the collapsed copy itself
            }
            let rewritten = PrimAssign { dst, src, ..*a };
            // Rewriting can create duplicates; keep one.
            let key = (rewritten.kind as u8, dst.0, src.0);
            if seen.insert(key) {
                Some(rewritten)
            } else {
                None
            }
        })
        .collect();
    stats.assigns_removed = before - out.assigns.len();
    for sig in &mut out.funsigs {
        sig.obj = ObjId(find(&mut parent, sig.obj.0));
        sig.ret = ObjId(find(&mut parent, sig.ret.0));
        for p in &mut sig.params {
            *p = ObjId(find(&mut parent, p.0));
        }
    }
    let map: Vec<ObjId> = (0..n as u32).map(|i| ObjId(find(&mut parent, i))).collect();
    let _ = deref_load; // reads through v never disqualify: pts(v)=pts(u)
    (out, map, stats)
}

/// Strips linking information from a linked program database (the paper:
/// the executable's "linking information is typically obsolete (and could
/// be stripped)"). The result serializes smaller; analysis results are
/// unchanged.
pub fn strip_linkage(unit: &CompiledUnit) -> CompiledUnit {
    let mut out = unit.clone();
    for o in &mut out.objects {
        o.link_name = None;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::write_object;
    use cla_ir::{compile_source, LowerOptions};

    /// Two call sites of an identity function: context-insensitive analysis
    /// conflates them (r1 and r2 each see both x and y); the duplicated
    /// database separates them.
    const CONFLATED: &str = "int x, y;
        int *id(int *a) { return a; }
        int *r1, *r2;
        void main_(void) {
          r1 = id(&x);
          r2 = id(&y);
        }";

    #[test]
    fn duplication_restores_precision() {
        let unit = compile_source(CONFLATED, "ctx.c", &LowerOptions::default()).unwrap();
        let x = unit.find_object("x").unwrap();
        let y = unit.find_object("y").unwrap();
        let r1 = unit.find_object("r1").unwrap();
        let r2 = unit.find_object("r2").unwrap();

        // Baseline: conflated.
        let (base, _) = cla_core_solve(&unit);
        assert!(base.may_point_to(r1, x));
        assert!(
            base.may_point_to(r1, y),
            "context-insensitive join point expected"
        );

        // Transformed: each site sees only its own argument.
        let (dup, stats) = duplicate_contexts(&unit, 2);
        assert_eq!(stats.functions_cloned, 1);
        assert_eq!(stats.sites_distributed, 2);
        assert!(stats.objects_added >= 3); // a, id$1, id$ret clones
        let (pts, _) = cla_core_solve(&dup);
        assert!(pts.may_point_to(r1, x));
        assert!(!pts.may_point_to(r1, y), "contexts must be separated");
        assert!(pts.may_point_to(r2, y));
        assert!(!pts.may_point_to(r2, x));
    }

    // The solver lives in cla-core, which depends on this crate; tests use
    // a tiny local Andersen evaluator instead to avoid a cyclic dev
    // dependency.
    fn cla_core_solve(unit: &CompiledUnit) -> (NaivePts, ()) {
        (NaivePts::solve(unit), ())
    }

    /// Minimal Andersen fixpoint for tests (mirrors the deductive rules).
    struct NaivePts {
        pts: Vec<std::collections::BTreeSet<u32>>,
    }

    impl NaivePts {
        fn solve(unit: &CompiledUnit) -> NaivePts {
            use cla_ir::AssignKind as K;
            let n = unit.objects.len();
            let mut pts: Vec<std::collections::BTreeSet<u32>> = vec![Default::default(); n];
            loop {
                let mut changed = false;
                let add = |set: &mut Vec<std::collections::BTreeSet<u32>>,
                           d: usize,
                           v: u32|
                 -> bool { set[d].insert(v) };
                for a in &unit.assigns {
                    let (d, s) = (a.dst.index(), a.src.index());
                    match a.kind {
                        K::Addr => changed |= add(&mut pts, d, a.src.0),
                        K::Copy => {
                            let vs: Vec<u32> = pts[s].iter().copied().collect();
                            for v in vs {
                                changed |= add(&mut pts, d, v);
                            }
                        }
                        K::Load => {
                            let ptrs: Vec<u32> = pts[s].iter().copied().collect();
                            for p in ptrs {
                                let vs: Vec<u32> = pts[p as usize].iter().copied().collect();
                                for v in vs {
                                    changed |= add(&mut pts, d, v);
                                }
                            }
                        }
                        K::Store => {
                            let ptrs: Vec<u32> = pts[d].iter().copied().collect();
                            let vs: Vec<u32> = pts[s].iter().copied().collect();
                            for p in ptrs {
                                for &v in &vs {
                                    changed |= add(&mut pts, p as usize, v);
                                }
                            }
                        }
                        K::StoreLoad => {
                            let dptrs: Vec<u32> = pts[d].iter().copied().collect();
                            let sptrs: Vec<u32> = pts[s].iter().copied().collect();
                            for sp in &sptrs {
                                let vs: Vec<u32> = pts[*sp as usize].iter().copied().collect();
                                for dp in &dptrs {
                                    for &v in &vs {
                                        changed |= add(&mut pts, *dp as usize, v);
                                    }
                                }
                            }
                        }
                    }
                }
                // Indirect calls.
                for sig in unit.funsigs.iter().filter(|s| s.is_indirect) {
                    let targets: Vec<u32> = pts[sig.obj.index()].iter().copied().collect();
                    for g in targets {
                        if let Some(gsig) =
                            unit.funsigs.iter().find(|s| !s.is_indirect && s.obj.0 == g)
                        {
                            for (k, fp) in sig.params.iter().enumerate() {
                                if let Some(gp) = gsig.params.get(k) {
                                    let vs: Vec<u32> = pts[fp.index()].iter().copied().collect();
                                    for v in vs {
                                        changed |= add(&mut pts, gp.index(), v);
                                    }
                                }
                            }
                            let vs: Vec<u32> = pts[gsig.ret.index()].iter().copied().collect();
                            for v in vs {
                                changed |= add(&mut pts, sig.ret.index(), v);
                            }
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            NaivePts { pts }
        }

        fn may_point_to(&self, p: ObjId, t: ObjId) -> bool {
            self.pts[p.index()].contains(&t.0)
        }
    }

    #[test]
    fn fewer_contexts_than_sites_still_sound() {
        // One call per line: sites are grouped by source location.
        let src = "int a, b, c;
            int *id(int *v) { return v; }
            int *r1, *r2, *r3;
            void main_(void) {
              r1 = id(&a);
              r2 = id(&b);
              r3 = id(&c);
            }";
        let unit = compile_source(src, "ctx.c", &LowerOptions::default()).unwrap();
        let (dup, stats) = duplicate_contexts(&unit, 2);
        assert_eq!(stats.sites_distributed, 3);
        let pts = NaivePts::solve(&dup);
        // Sites 1 and 3 share context 0; site 2 has its own.
        let a = unit.find_object("a").unwrap();
        let b = unit.find_object("b").unwrap();
        let r1 = unit.find_object("r1").unwrap();
        let r2 = unit.find_object("r2").unwrap();
        assert!(pts.may_point_to(r1, a));
        assert!(pts.may_point_to(r2, b));
        assert!(!pts.may_point_to(r2, a), "site 2 is alone in its context");
    }

    #[test]
    fn transformed_database_serializes() {
        let unit = compile_source(CONFLATED, "ctx.c", &LowerOptions::default()).unwrap();
        let (dup, _) = duplicate_contexts(&unit, 2);
        let db = crate::reader::Database::open(write_object(&dup)).unwrap();
        assert_eq!(db.objects().len(), dup.objects.len());
    }

    #[test]
    fn single_context_is_identity() {
        let unit = compile_source(CONFLATED, "ctx.c", &LowerOptions::default()).unwrap();
        let (same, stats) = duplicate_contexts(&unit, 1);
        assert_eq!(same.objects.len(), unit.objects.len());
        assert_eq!(stats, ContextStats::default());
    }

    #[test]
    fn ovs_collapses_copy_chains() {
        // d = c = b = a with only one writer each: all collapse into a.
        let src = "int x; int *a, *b, *c, *d;
            void f(void) { a = &x; b = a; c = b; d = c; }";
        let unit = compile_source(src, "ovs.c", &LowerOptions::default()).unwrap();
        let (out, map, stats) = substitute_variables(&unit);
        assert_eq!(stats.merged, 3, "b, c, d merge into a");
        assert!(stats.assigns_removed >= 3);
        let a = unit.find_object("a").unwrap();
        let d = unit.find_object("d").unwrap();
        assert_eq!(map[d.index()], a);
        // Solving the reduced database gives the same answer through the map.
        let pts = NaivePts::solve(&out);
        let x = unit.find_object("x").unwrap();
        assert!(pts.may_point_to(map[d.index()], x));
    }

    #[test]
    fn ovs_keeps_multi_writer_variables() {
        let src = "int x, y; int *a, *b, *m;
            void f(void) { a = &x; b = &y; m = a; m = b; }";
        let unit = compile_source(src, "ovs.c", &LowerOptions::default()).unwrap();
        let (out, map, _) = substitute_variables(&unit);
        let m = unit.find_object("m").unwrap();
        assert_eq!(map[m.index()], m, "two writers: m must survive");
        let pts = NaivePts::solve(&out);
        assert!(pts.may_point_to(m, unit.find_object("x").unwrap()));
        assert!(pts.may_point_to(m, unit.find_object("y").unwrap()));
    }

    #[test]
    fn ovs_keeps_address_taken_variables() {
        // b = a, but &b is taken: a store through pp could write b, so the
        // merge would be unsound.
        let src = "int x, y; int *a, *b, **pp;
            void f(void) { a = &x; b = a; pp = &b; *pp = &y; }";
        let unit = compile_source(src, "ovs.c", &LowerOptions::default()).unwrap();
        let (out, map, _) = substitute_variables(&unit);
        let b = unit.find_object("b").unwrap();
        let a = unit.find_object("a").unwrap();
        assert_eq!(map[b.index()], b, "address-taken: b must survive");
        let pts = NaivePts::solve(&out);
        assert!(pts.may_point_to(b, unit.find_object("y").unwrap()));
        assert!(!pts.may_point_to(a, unit.find_object("y").unwrap()));
    }

    #[test]
    fn ovs_preserves_solution_on_example() {
        let src = "int x, y, v;
            int *p, *q, *r, **pp;
            void f(void) {
              p = &x; q = p; pp = &q;
              *pp = &y; r = *pp;
              r = &v;
            }";
        let unit = compile_source(src, "ovs.c", &LowerOptions::default()).unwrap();
        let base = NaivePts::solve(&unit);
        let (out, map, _) = substitute_variables(&unit);
        let reduced = NaivePts::solve(&out);
        for (i, _) in unit.objects.iter().enumerate() {
            let o = ObjId(i as u32);
            for (j, _) in unit.objects.iter().enumerate() {
                let t = ObjId(j as u32);
                assert_eq!(
                    base.may_point_to(o, t),
                    reduced.may_point_to(map[o.index()], t),
                    "pts({}) changed for target {}",
                    unit.object(o).name,
                    unit.object(t).name
                );
            }
        }
    }

    #[test]
    fn strip_linkage_removes_link_names() {
        let unit = compile_source("int g; static int s;", "a.c", &LowerOptions::default()).unwrap();
        assert!(unit.objects.iter().any(|o| o.link_name.is_some()));
        let stripped = strip_linkage(&unit);
        assert!(stripped.objects.iter().all(|o| o.link_name.is_none()));
        // Stripped databases are smaller or equal on the wire.
        assert!(write_object(&stripped).len() <= write_object(&unit).len());
    }
}
