//! Human-readable object-file dumps (paper Figure 4's sketch).

use crate::reader::Database;
use cla_ir::{AssignKind, ObjId};
use std::fmt::Write as _;

/// Renders a Figure 4-style sketch of an object file: the section list, the
/// static section contents, and the per-object dynamic blocks.
pub fn dump(db: &Database) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "object file for {}:", db.unit_name());
    let _ = writeln!(
        out,
        "header section: {} objects, {} assignments, {} bytes",
        db.objects().len(),
        db.load_stats().assigns_in_file,
        db.file_size()
    );
    let globals = db
        .objects()
        .iter()
        .filter(|o| o.link_name.is_some())
        .count();
    let _ = writeln!(out, "global section: {globals} linked symbols");
    let _ = writeln!(
        out,
        "static section: address-of operations; always loaded for points-to analysis"
    );
    if let Ok(statics) = db.static_assigns() {
        for a in &statics {
            let _ = writeln!(out, "    {}", a.display(db.objects(), db.files()));
        }
    }
    let _ = writeln!(out, "string section: common strings");
    let _ = writeln!(
        out,
        "target section: index for finding targets ({} names)",
        db.target_names().count()
    );
    let _ = writeln!(
        out,
        "dynamic section: elements are loaded on demand, organized by object"
    );
    for (i, obj) in db.objects().iter().enumerate() {
        let id = ObjId(i as u32);
        let n = db.block_len(id);
        // Only show named program objects (temps with empty blocks are noise).
        if !obj.kind.is_program_object() && n == 0 {
            continue;
        }
        let _ = writeln!(out, "    {} @ {}", obj.name, db.files().display(obj.loc));
        if n == 0 {
            let _ = writeln!(out, "        none");
        } else if let Ok(block) = db.block(id) {
            for a in &block {
                let _ = writeln!(out, "        {}", a.display(db.objects(), db.files()));
            }
        }
    }
    out
}

/// Renders the assignment-kind census (the last five columns of Table 2).
pub fn census(db: &Database) -> String {
    let Ok(unit) = db.to_unit() else {
        return "corrupt database".to_string();
    };
    let c = unit.assign_counts();
    let mut out = String::new();
    let _ = writeln!(out, "x = y      {}", c.copy);
    let _ = writeln!(out, "x = &y     {}", c.addr);
    let _ = writeln!(out, "*x = y     {}", c.store);
    let _ = writeln!(out, "*x = *y    {}", c.store_load);
    let _ = writeln!(out, "x = *y     {}", c.load);
    out
}

/// True when an assignment would appear in the static section.
pub fn is_static_assign(kind: AssignKind) -> bool {
    kind == AssignKind::Addr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::write_object;
    use cla_ir::{compile_source, LowerOptions};

    fn db_for(src: &str) -> Database {
        let unit = compile_source(src, "a.c", &LowerOptions::default()).unwrap();
        Database::open(write_object(&unit)).unwrap()
    }

    #[test]
    fn figure4_shape() {
        // The example program of Figure 4.
        let db = db_for(
            "int x, y, z, *p, *q;
             void f(void) {
               x = y;
               x = z;
               *p = z;
               p = q;
               q = &y;
               x = *p;
             }",
        );
        let text = dump(&db);
        assert!(text.contains("static section"), "{text}");
        assert!(text.contains("q = &y"), "{text}");
        assert!(text.contains("dynamic section"), "{text}");
        // Block for z shows both x = z and *p = z.
        assert!(text.contains("x = z"), "{text}");
        assert!(text.contains("*p = z"), "{text}");
        assert!(text.contains("x = *p"), "{text}");
    }

    #[test]
    fn census_counts() {
        let db = db_for("int x, y, *p; void f(void) { x = y; p = &x; x = *p; }");
        let text = census(&db);
        assert!(text.contains("x = y      1"), "{text}");
        assert!(text.contains("x = &y     1"), "{text}");
        assert!(text.contains("x = *y     1"), "{text}");
    }

    #[test]
    fn static_predicate() {
        assert!(is_static_assign(AssignKind::Addr));
        assert!(!is_static_assign(AssignKind::Copy));
    }
}
