//! Deterministic fault injection for the object-file format.
//!
//! The database invariant under arbitrary byte damage is:
//!
//! > `Database::open` / `block` either return `Ok` with data identical to the
//! > pristine file, or a typed [`DbError`] — never a panic, never a silently
//! > wrong answer.
//!
//! This module damages a real object file in three deterministic ways and
//! checks the invariant for each mutant:
//!
//! * **truncation sweep** — cut the file at every byte offset (a torn write);
//! * **seeded bit flips** — flip 1–4 random bits per iteration (bit rot);
//! * **section-table shuffle** — swap section-table entries, with and without
//!   a recomputed header checksum (buggy tooling / tampering; the tagged
//!   section checksums must still catch a consistent swap).
//!
//! Everything is seeded ([`SplitMix64`]) so a failing mutant reproduces from
//! the report alone. `cla-tool db-fuzz` drives this over `examples/c/`.

use crate::format::{fnv64, DbError, HEADER_FIXED_SIZE, MAGIC, SECTION_ENTRY_SIZE, VERSION};
use crate::reader::Database;
use cla_ir::{CompiledUnit, ObjId};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The split-mix 64 generator — tiny, seedable, statistically fine for
/// fuzzing. The same generator the serve tests use; no external RNG crates.
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// What one damaged input did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Typed `DbError` from open or from a later read — the desired outcome.
    Rejected,
    /// Opened and decoded bytes identical to the pristine file (damage in
    /// padding or a flip that landed back on the same value).
    Identical,
    /// Opened "successfully" but produced data that differs from the
    /// pristine file — an integrity hole.
    WrongData,
    /// A panic escaped the reader — a robustness hole.
    Panicked,
}

/// Aggregate result of a fuzz run. `wrong` and `panics` carry bounded,
/// reproducible descriptions (mutation kind + parameters) of every failure.
#[derive(Debug, Default)]
pub struct FuzzReport {
    /// Mutants exercised.
    pub exercised: u64,
    /// Mutants rejected with a typed error.
    pub rejected: u64,
    /// Mutants whose decode matched the pristine file exactly.
    pub identical: u64,
    /// Descriptions of wrong-data failures (bounded to 20).
    pub wrong: Vec<String>,
    /// Descriptions of escaped panics (bounded to 20).
    pub panics: Vec<String>,
}

impl FuzzReport {
    /// True when no mutant broke the invariant.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.wrong.is_empty() && self.panics.is_empty()
    }

    /// Folds one mutant's verdict into the tally. Public so other format
    /// fuzzers (the snapshot harness in `cla-snap`) can reuse the report.
    pub fn record(&mut self, verdict: Verdict, describe: impl FnOnce() -> String) {
        self.exercised += 1;
        match verdict {
            Verdict::Rejected => self.rejected += 1,
            Verdict::Identical => self.identical += 1,
            Verdict::WrongData => {
                if self.wrong.len() < 20 {
                    self.wrong.push(describe());
                }
            }
            Verdict::Panicked => {
                if self.panics.len() < 20 {
                    self.panics.push(describe());
                }
            }
        }
    }
}

impl std::fmt::Display for FuzzReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} mutants: {} rejected, {} identical, {} wrong, {} panicked",
            self.exercised,
            self.rejected,
            self.identical,
            self.wrong.len(),
            self.panics.len()
        )?;
        for w in &self.wrong {
            write!(f, "\n  WRONG  {w}")?;
        }
        for p in &self.panics {
            write!(f, "\n  PANIC  {p}")?;
        }
        Ok(())
    }
}

/// The pristine file's fully decoded contents, used as the correctness
/// oracle: any mutant that opens must decode to exactly this.
pub struct Oracle {
    unit: CompiledUnit,
}

impl Oracle {
    /// Fully decodes `pristine`; fails if the input itself is not valid.
    pub fn new(pristine: &[u8]) -> Result<Oracle, DbError> {
        let db = Database::open(pristine.to_vec())?;
        db.verify_all()?;
        Ok(Oracle {
            unit: db.to_unit()?,
        })
    }
}

/// Opens and fully decodes a mutant, comparing against the oracle.
/// Panics are caught and reported; the panic hook is suppressed for the
/// duration of the run by [`run_fuzz`] so expected catches stay silent.
fn exercise(bytes: Vec<u8>, oracle: &Oracle) -> Verdict {
    let result = catch_unwind(AssertUnwindSafe(|| -> Result<Verdict, DbError> {
        let db = Database::open(bytes)?;
        // Touch every read path: statics, every demand-loaded block, the
        // full re-decode.
        db.static_assigns()?;
        for ix in 0..db.objects().len() {
            db.block(ObjId(ix as u32))?;
        }
        let unit = db.to_unit()?;
        let same = unit.objects == oracle.unit.objects
            && unit.assigns == oracle.unit.assigns
            && unit.funsigs == oracle.unit.funsigs
            && unit.files == oracle.unit.files;
        Ok(if same {
            Verdict::Identical
        } else {
            Verdict::WrongData
        })
    }));
    match result {
        Ok(Ok(v)) => v,
        Ok(Err(_)) => Verdict::Rejected,
        Err(_) => Verdict::Panicked,
    }
}

/// Runs `f` with the default panic hook replaced by a silent one, so the
/// expected `catch_unwind`s inside don't spam stderr with backtraces.
pub fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// Truncates the file at every byte offset and exercises each prefix.
pub fn truncation_sweep(pristine: &[u8], oracle: &Oracle, report: &mut FuzzReport) {
    for cut in 0..pristine.len() {
        let verdict = exercise(pristine[..cut].to_vec(), oracle);
        report.record(verdict, || format!("truncate at {cut}"));
    }
}

/// Flips 1–4 seeded random bits per iteration and exercises the mutant.
pub fn bit_flip_round(
    pristine: &[u8],
    oracle: &Oracle,
    seed: u64,
    iters: u64,
    report: &mut FuzzReport,
) {
    let mut rng = SplitMix64(seed);
    for it in 0..iters {
        let mut bytes = pristine.to_vec();
        let nflips = 1 + rng.below(4);
        let mut flips = Vec::with_capacity(nflips as usize);
        for _ in 0..nflips {
            let pos = rng.below(bytes.len() as u64) as usize;
            let bit = rng.below(8) as u8;
            bytes[pos] ^= 1 << bit;
            flips.push((pos, bit));
        }
        let verdict = exercise(bytes, oracle);
        report.record(verdict, || {
            format!("bit flip iter {it} (seed {seed}): flips {flips:?}")
        });
    }
}

/// Swaps two random section-table entries. On odd iterations the header
/// checksum is recomputed so the swap is only catchable by the id-tagged
/// per-section checksums; on even iterations the stale header checksum
/// must reject it first.
pub fn section_shuffle_round(
    pristine: &[u8],
    oracle: &Oracle,
    seed: u64,
    iters: u64,
    report: &mut FuzzReport,
) {
    // Parse just enough of the v2 header to find the table.
    if pristine.len() < HEADER_FIXED_SIZE {
        return;
    }
    let magic = u32::from_le_bytes(pristine[0..4].try_into().unwrap());
    let version = u32::from_le_bytes(pristine[4..8].try_into().unwrap());
    if magic != MAGIC || version != VERSION {
        return;
    }
    let nsections = u32::from_le_bytes(pristine[16..20].try_into().unwrap()) as usize;
    let table_end = HEADER_FIXED_SIZE + nsections * SECTION_ENTRY_SIZE;
    if nsections < 2 || pristine.len() < table_end {
        return;
    }
    let mut rng = SplitMix64(seed ^ 0x5ec7_1045);
    for it in 0..iters {
        let a = rng.below(nsections as u64) as usize;
        let mut b = rng.below(nsections as u64) as usize;
        if a == b {
            b = (b + 1) % nsections;
        }
        let mut bytes = pristine.to_vec();
        let ea = HEADER_FIXED_SIZE + a * SECTION_ENTRY_SIZE;
        let eb = HEADER_FIXED_SIZE + b * SECTION_ENTRY_SIZE;
        // Swap the (offset, len, checksum) payloads but keep the ids in
        // place, so section id A now points at section B's bytes together
        // with B's matching checksum — only an id-tagged checksum or a
        // structural decode error can catch this.
        for k in 4..SECTION_ENTRY_SIZE {
            bytes.swap(ea + k, eb + k);
        }
        let fixed = it % 2 == 1;
        if fixed {
            let sum = fnv64(&bytes[16..table_end]);
            bytes[8..16].copy_from_slice(&sum.to_le_bytes());
        }
        let verdict = exercise(bytes, oracle);
        report.record(verdict, || {
            format!(
                "section shuffle iter {it} (seed {seed}): swapped entries {a}<->{b}, \
                 header checksum {}",
                if fixed { "recomputed" } else { "stale" }
            )
        });
    }
}

/// Runs the full deterministic fuzz battery over one pristine object file:
/// a truncation sweep at every byte offset, `iters` seeded bit-flip mutants,
/// and `min(iters, 200)` section-table shuffles.
///
/// Returns `Err` if the pristine input itself does not decode (the harness
/// needs a valid oracle before it can judge mutants).
pub fn run_fuzz(pristine: &[u8], seed: u64, iters: u64) -> Result<FuzzReport, DbError> {
    let oracle = Oracle::new(pristine)?;
    let mut report = FuzzReport::default();
    with_quiet_panics(|| {
        truncation_sweep(pristine, &oracle, &mut report);
        bit_flip_round(pristine, &oracle, seed, iters, &mut report);
        section_shuffle_round(pristine, &oracle, seed, iters.min(200), &mut report);
    });
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{link, write_object};
    use cla_ir::{compile_source, LowerOptions};

    fn sample_object() -> Vec<u8> {
        let a = compile_source(
            "int shared, *p, **pp; void f(void) { p = &shared; pp = &p; }",
            "a.c",
            &LowerOptions::default(),
        )
        .unwrap();
        let b = compile_source(
            "extern int *p; int *q; void g(int *a) { q = p; q = a; }",
            "b.c",
            &LowerOptions::default(),
        )
        .unwrap();
        let (prog, _) = link(&[a, b], "prog");
        write_object(&prog)
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64(42);
        let mut b = SplitMix64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn fuzz_battery_finds_no_holes_in_sample() {
        let bytes = sample_object();
        let report = run_fuzz(&bytes, 1, 150).unwrap();
        assert!(report.ok(), "fuzz found holes:\n{report}");
        // The battery really ran: full sweep + flips + shuffles.
        assert!(report.exercised as usize >= bytes.len() + 150);
        // Damage is overwhelmingly detected, not silently identical.
        assert!(report.rejected > report.identical);
    }

    #[test]
    fn fuzz_requires_a_valid_oracle() {
        assert!(run_fuzz(b"garbage", 1, 10).is_err());
    }

    #[test]
    fn report_display_mentions_failures() {
        let mut r = FuzzReport::default();
        r.record(Verdict::Panicked, || "truncate at 7".into());
        r.record(Verdict::WrongData, || "bit flip iter 3".into());
        let text = r.to_string();
        assert!(text.contains("truncate at 7"));
        assert!(text.contains("bit flip iter 3"));
        assert!(!r.ok());
    }
}
