//! The CLA linker.
//!
//! Merges the databases of many separately compiled units into one program
//! database: objects with external linkage are unified by link name (the
//! same global symbol may be referenced in many files — paper §4), file-local
//! objects are kept distinct, assignments and signatures are remapped, and
//! indexing information is recomputed when the result is re-serialized.

use cla_ir::{CompiledUnit, FileIdx, FunSig, ObjId, PrimAssign, SrcLoc};
use std::collections::{BTreeMap, HashMap};

/// Statistics from one link.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LinkStats {
    pub units: usize,
    pub objects_in: usize,
    pub objects_out: usize,
    /// Global symbol references unified away.
    pub symbols_merged: usize,
    pub assigns: usize,
}

/// Links compiled units into a single program database.
///
/// The result has the same shape as a per-unit database (the paper: "the
/// 'executable' file produced has the same format as the object files").
pub fn link(units: &[CompiledUnit], program_name: &str) -> (CompiledUnit, LinkStats) {
    let mut linker = Linker::new(program_name);
    for unit in units {
        linker.add_unit(unit);
    }
    linker.finish()
}

/// The incremental linker: units fold into the program database one at a
/// time, so a compile pipeline can link each unit the moment it is compiled
/// and drop it — peak memory holds the program under construction plus one
/// unit, not every unit at once.
///
/// Folding the same units in the same order produces byte-identical output
/// to [`link`] (which is now a thin wrapper over this type).
#[derive(Debug)]
pub struct Linker {
    out: CompiledUnit,
    by_link_name: HashMap<String, ObjId>,
    stats: LinkStats,
    /// Signature merging: linked function objects may carry a signature
    /// from several units (e.g. a definition and extern call sites).
    sig_by_obj: HashMap<ObjId, FunSig>,
    indirect_sigs: Vec<FunSig>,
}

impl Linker {
    /// An empty program database awaiting units.
    pub fn new(program_name: &str) -> Self {
        Linker {
            out: CompiledUnit::new(program_name),
            by_link_name: HashMap::new(),
            stats: LinkStats::default(),
            sig_by_obj: HashMap::new(),
            indirect_sigs: Vec::new(),
        }
    }

    /// Units folded so far.
    pub fn units(&self) -> usize {
        self.stats.units
    }

    /// Folds one compiled unit into the program.
    pub fn add_unit(&mut self, unit: &CompiledUnit) {
        let out = &mut self.out;
        let by_link_name = &mut self.by_link_name;
        let stats = &mut self.stats;
        let sig_by_obj = &mut self.sig_by_obj;
        let indirect_sigs = &mut self.indirect_sigs;
        stats.units += 1;
        stats.objects_in += unit.objects.len();
        // Symbol phase: file-table remap plus link-name unification (the
        // paper's "hash global symbols into the program database").
        let sym_sp = cla_obs::global().span("link", "link.symbols");
        // File table remap.
        let file_map: Vec<FileIdx> = unit
            .files
            .names()
            .iter()
            .map(|n| out.files.intern(n))
            .collect();
        let remap_loc = |loc: SrcLoc| -> SrcLoc {
            if loc.is_none() {
                loc
            } else {
                SrcLoc::new(file_map[loc.file.0 as usize], loc.line)
            }
        };

        // Object remap.
        let mut obj_map: Vec<ObjId> = Vec::with_capacity(unit.objects.len());
        for info in &unit.objects {
            let new_id = match &info.link_name {
                Some(link) => {
                    if let Some(&existing) = by_link_name.get(link) {
                        stats.symbols_merged += 1;
                        // Prefer metadata with a real location (a definition
                        // over a mere reference).
                        let have = &mut out.objects[existing.index()];
                        if have.loc.is_none() && !info.loc.is_none() {
                            have.loc = remap_loc(info.loc);
                        }
                        if have.ty.is_empty() && !info.ty.is_empty() {
                            have.ty = info.ty.clone();
                        }
                        // A symbol is defined if *any* unit defines it.
                        have.defined |= info.defined;
                        existing
                    } else {
                        let mut new_info = info.clone();
                        new_info.loc = remap_loc(info.loc);
                        new_info.in_func = None; // fixed up below
                        let id = out.push_object(new_info);
                        by_link_name.insert(link.clone(), id);
                        id
                    }
                }
                None => {
                    let mut new_info = info.clone();
                    new_info.loc = remap_loc(info.loc);
                    new_info.in_func = None;
                    out.push_object(new_info)
                }
            };
            obj_map.push(new_id);
        }
        // Second pass: in_func links.
        for (old_ix, info) in unit.objects.iter().enumerate() {
            if let Some(f) = info.in_func {
                let new_id = obj_map[old_ix];
                let target = &mut out.objects[new_id.index()];
                if target.in_func.is_none() {
                    target.in_func = Some(obj_map[f.index()]);
                }
            }
        }
        drop(sym_sp);

        // Merge phase: assignments and signatures rewritten into program
        // object-id space.
        let merge_sp = cla_obs::global().span("link", "link.merge");
        // Assignments.
        for a in &unit.assigns {
            out.push_assign(PrimAssign {
                kind: a.kind,
                dst: obj_map[a.dst.index()],
                src: obj_map[a.src.index()],
                strength: a.strength,
                op: a.op,
                loc: remap_loc(a.loc),
            });
        }

        // Signatures.
        for sig in &unit.funsigs {
            let obj = obj_map[sig.obj.index()];
            let remapped = FunSig {
                obj,
                params: sig.params.iter().map(|p| obj_map[p.index()]).collect(),
                ret: obj_map[sig.ret.index()],
                is_indirect: sig.is_indirect,
            };
            if sig.is_indirect {
                // Indirect-call signatures never merge: each calling unit
                // has its own file-local standardized parameter objects
                // (`p$1`, ...), and collapsing two units' signatures for the
                // same global function pointer would silently drop one
                // unit's argument flows.
                indirect_sigs.push(remapped);
            } else {
                let entry = sig_by_obj.entry(obj).or_insert_with(|| remapped.clone());
                // Keep the longest parameter list seen (call sites may pass
                // more arguments than the shortest declaration).
                if remapped.params.len() > entry.params.len() {
                    entry.params = remapped.params.clone();
                }
            }
        }
        drop(merge_sp);
    }

    /// Finalizes the program database and its stats.
    ///
    /// Deterministic regardless of `HashMap` iteration order: direct
    /// signatures are unique per object and the sort is stable, so the
    /// final `funsigs` order depends only on the units and their order.
    pub fn finish(self) -> (CompiledUnit, LinkStats) {
        let mut out = self.out;
        let mut stats = self.stats;
        out.funsigs = self.sig_by_obj.into_values().collect();
        out.funsigs.extend(self.indirect_sigs);
        out.funsigs.sort_by_key(|s| s.obj);
        stats.objects_out = out.objects.len();
        stats.assigns = out.assigns.len();
        (out, stats)
    }
}

/// A [`Linker`] fed by an out-of-order producer (a parallel compile pool).
///
/// Units arrive tagged with their position in the input file list and may
/// arrive in any order; the stream linker folds each one the moment every
/// earlier unit has been folded, buffering only the out-of-order window in
/// between. The folded program is therefore byte-identical to linking the
/// same units serially in input order — completion order never leaks into
/// the output — while peak memory holds the program under construction
/// plus the buffered window, not the whole codebase.
#[derive(Debug)]
pub struct StreamLinker {
    inner: Linker,
    /// Index the next fold is waiting for.
    next: usize,
    /// Completed units that arrived ahead of `next`.
    pending: BTreeMap<usize, CompiledUnit>,
    peak_buffered: usize,
}

impl StreamLinker {
    pub fn new(program_name: &str) -> Self {
        StreamLinker {
            inner: Linker::new(program_name),
            next: 0,
            pending: BTreeMap::new(),
            peak_buffered: 0,
        }
    }

    /// Accepts the compiled unit for input position `index` (0-based,
    /// each position exactly once), folding it — and any buffered
    /// successors it unblocks — as soon as the order allows.
    pub fn push(&mut self, index: usize, unit: CompiledUnit) {
        debug_assert!(
            index >= self.next && !self.pending.contains_key(&index),
            "unit {index} delivered twice"
        );
        self.pending.insert(index, unit);
        self.peak_buffered = self.peak_buffered.max(self.pending.len());
        while let Some(unit) = self.pending.remove(&self.next) {
            self.inner.add_unit(&unit);
            self.next += 1;
        }
    }

    /// Units folded into the program so far (the in-order prefix).
    pub fn folded(&self) -> usize {
        self.next
    }

    /// High-water mark of units buffered while waiting for an earlier one
    /// to finish compiling — the streaming link's actual memory exposure.
    pub fn peak_buffered(&self) -> usize {
        self.peak_buffered
    }

    /// Finalizes the program. Panics if any input position never arrived
    /// (a producer bug: every index below the highest pushed one must be
    /// delivered before finishing).
    pub fn finish(self) -> (CompiledUnit, LinkStats) {
        assert!(
            self.pending.is_empty(),
            "stream link finished with {} unfolded units (next expected: {})",
            self.pending.len(),
            self.next
        );
        self.inner.finish()
    }
}

/// An incrementally maintained set of named compilation units.
///
/// A long-running analysis server recompiles only the sources that changed;
/// the `LinkSet` holds every unit by name so replacing one and relinking the
/// program is a single [`upsert`](LinkSet::upsert) + [`link`](LinkSet::link).
/// Units keep their insertion order across upserts, so relinking after a
/// no-op recompile reproduces the identical program database.
#[derive(Debug, Default)]
pub struct LinkSet {
    units: Vec<(String, CompiledUnit)>,
}

impl LinkSet {
    pub fn new() -> Self {
        LinkSet::default()
    }

    /// Inserts or replaces the unit for `name`. Returns true when an
    /// existing unit was replaced (its position is preserved).
    pub fn upsert(&mut self, name: impl Into<String>, unit: CompiledUnit) -> bool {
        let name = name.into();
        if let Some(slot) = self.units.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = unit;
            true
        } else {
            self.units.push((name, unit));
            false
        }
    }

    /// Removes the unit for `name`; returns true when it existed.
    pub fn remove(&mut self, name: &str) -> bool {
        let before = self.units.len();
        self.units.retain(|(n, _)| n != name);
        self.units.len() != before
    }

    /// Unit names in link order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.units.iter().map(|(n, _)| n.as_str())
    }

    pub fn len(&self) -> usize {
        self.units.len()
    }

    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Links the current set into one program database (folding each unit
    /// in place — units are borrowed, never cloned).
    pub fn link(&self, program_name: &str) -> (CompiledUnit, LinkStats) {
        let mut linker = Linker::new(program_name);
        for (_, unit) in &self.units {
            linker.add_unit(unit);
        }
        linker.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cla_ir::{compile_source, AssignKind, LowerOptions, ObjKind};

    fn unit(src: &str, name: &str) -> CompiledUnit {
        compile_source(src, name, &LowerOptions::default()).unwrap()
    }

    #[test]
    fn globals_unify_by_name() {
        let a = unit("int shared; int *p; void f(void) { p = &shared; }", "a.c");
        let b = unit(
            "extern int shared; int q; void g(void) { q = shared; }",
            "b.c",
        );
        let (linked, stats) = link(&[a, b], "prog");
        assert_eq!(stats.units, 2);
        assert!(stats.symbols_merged >= 1);
        // Exactly one `shared` object.
        assert_eq!(linked.find_objects("shared").count(), 1);
        // Both assignments reference it.
        let shared = linked.find_object("shared").unwrap();
        assert!(linked
            .assigns
            .iter()
            .any(|x| x.src == shared && x.kind == AssignKind::Addr));
        assert!(linked
            .assigns
            .iter()
            .any(|x| x.src == shared && x.kind == AssignKind::Copy));
    }

    #[test]
    fn statics_stay_distinct() {
        let a = unit("static int s; int *p; void f(void) { p = &s; }", "a.c");
        let b = unit("static int s; int *q; void g(void) { q = &s; }", "b.c");
        let (linked, _) = link(&[a, b], "prog");
        assert_eq!(linked.find_objects("s").count(), 2);
    }

    #[test]
    fn cross_unit_calls_link_params() {
        let a = unit("int f(int x) { return x; }", "a.c");
        let b = unit("int f(int); int r, v; void g(void) { r = f(v); }", "b.c");
        let (linked, _) = link(&[a, b], "prog");
        // One f, one f$1, one f$ret.
        assert_eq!(linked.find_objects("f").count(), 1);
        assert_eq!(linked.find_objects("f$1").count(), 1);
        assert_eq!(linked.find_objects("f$ret").count(), 1);
        // One merged signature for f.
        let f = linked.find_object("f").unwrap();
        let sigs: Vec<_> = linked.funsigs.iter().filter(|s| s.obj == f).collect();
        assert_eq!(sigs.len(), 1);
        assert_eq!(sigs[0].params.len(), 1);
    }

    #[test]
    fn fields_unify_across_units() {
        let a = unit(
            "struct S { int *x; }; struct S s1; int v1; void f(void) { s1.x = &v1; }",
            "a.c",
        );
        let b = unit(
            "struct S { int *x; }; struct S s2; int *p; void g(void) { p = s2.x; }",
            "b.c",
        );
        let (linked, _) = link(&[a, b], "prog");
        assert_eq!(linked.find_objects("S.x").count(), 1);
    }

    #[test]
    fn locations_remap() {
        let a = unit("int x;", "a.c");
        let b = unit("int y;", "b.c");
        let (linked, _) = link(&[a, b], "prog");
        let x = linked.find_object("x").unwrap();
        let y = linked.find_object("y").unwrap();
        assert_eq!(linked.files.display(linked.object(x).loc), "a.c:1");
        assert_eq!(linked.files.display(linked.object(y).loc), "b.c:1");
    }

    #[test]
    fn link_set_upsert_and_relink() {
        let mut set = LinkSet::new();
        assert!(!set.upsert(
            "a.c",
            unit("int shared; int *p; void f(void) { p = &shared; }", "a.c")
        ));
        assert!(!set.upsert(
            "b.c",
            unit(
                "extern int shared; int *q; void g(void) { q = &shared; }",
                "b.c"
            )
        ));
        let (first, _) = set.link("prog");

        // Replacing a unit with identical content relinks identically.
        assert!(set.upsert(
            "b.c",
            unit(
                "extern int shared; int *q; void g(void) { q = &shared; }",
                "b.c"
            )
        ));
        let (same, _) = set.link("prog");
        assert_eq!(same.objects, first.objects);
        assert_eq!(same.assign_counts(), first.assign_counts());

        // Changing one unit changes only what it contributes.
        assert!(set.upsert("b.c", unit("int *q; void g(void) { }", "b.c")));
        let (changed, _) = set.link("prog");
        assert!(changed.assign_counts().total() < first.assign_counts().total());

        assert!(set.remove("b.c"));
        assert!(!set.remove("b.c"));
        assert_eq!(set.names().collect::<Vec<_>>(), vec!["a.c"]);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn empty_link() {
        let (linked, stats) = link(&[], "prog");
        assert_eq!(linked.objects.len(), 0);
        assert_eq!(stats.objects_out, 0);
    }

    #[test]
    fn linked_database_roundtrips() {
        let a = unit("int shared; int *p; void f(void) { p = &shared; }", "a.c");
        let b = unit(
            "extern int shared; int *q; void g(void) { q = p_alias(); } int *p_alias(void);",
            "b.c",
        );
        let (linked, _) = link(&[a, b], "prog");
        let bytes = crate::writer::write_object(&linked);
        let db = crate::reader::Database::open(bytes).unwrap();
        let back = db.to_unit().unwrap();
        assert_eq!(back.assign_counts(), linked.assign_counts());
        assert_eq!(back.objects.len(), linked.objects.len());
    }

    #[test]
    fn indirect_sigs_survive_linking_per_unit() {
        // A *global* function pointer called indirectly from two units: the
        // argument flows of BOTH call sites must survive the link (each
        // unit has its own file-local fp$1 objects; merging the signatures
        // would drop one unit's).
        let a = unit(
            "int *(*handler)(int *);
             int xa; int *ra;
             void ca(void) { ra = handler(&xa); }",
            "a.c",
        );
        let b = unit(
            "extern int *(*handler)(int *);
             int xb; int *rb;
             void cb(void) { rb = handler(&xb); }",
            "b.c",
        );
        let c = unit(
            "int *id(int *v) { return v; }
             extern int *(*handler)(int *);
             void init(void) { handler = id; }",
            "c.c",
        );
        let (linked, _) = link(&[a, b, c], "prog");
        let handler = linked.find_object("handler").unwrap();
        let indirect: Vec<_> = linked
            .funsigs
            .iter()
            .filter(|s| s.obj == handler && s.is_indirect)
            .collect();
        assert_eq!(
            indirect.len(),
            2,
            "one indirect signature per calling unit must survive: {:?}",
            linked.funsigs
        );
        // And their parameter objects are distinct (per-unit).
        assert_ne!(indirect[0].params, indirect[1].params);
    }

    #[test]
    fn heap_and_temp_objects_stay_local() {
        let a = unit(
            "void *malloc(unsigned long); int *p; void f(void) { p = malloc(4); }",
            "a.c",
        );
        let b = unit(
            "void *malloc(unsigned long); int *q; void g(void) { q = malloc(4); }",
            "b.c",
        );
        let (linked, _) = link(&[a, b], "prog");
        let heaps = linked
            .objects
            .iter()
            .filter(|o| o.kind == ObjKind::Heap)
            .count();
        assert_eq!(heaps, 2);
    }
}
