//! Object-file reader with demand loading.
//!
//! [`Database`] decodes the cheap index sections eagerly (strings, object
//! metadata, block index) and leaves the assignment payload untouched until
//! a block is requested — the paper's "only those parts of the object file
//! that are required are loaded". Accounting counters record how many
//! assignments were loaded, supporting Table 3's in-core/loaded/in-file
//! columns. The paper used `mmap` for re-readable storage; we hold the byte
//! buffer in memory and decode ranges on demand, which preserves the
//! measured property: decoded assignments can be discarded and re-read later
//! at no extra I/O cost.
//!
//! Counters are atomic so a [`Database`] can be shared read-only across the
//! query threads of a long-running server.

use crate::format::{DbError, SectionId, ASSIGN_RECORD_SIZE, MAGIC, NONE_U32, VERSION};
use cla_ir::{
    AssignKind, CompiledUnit, FileIdx, FileTable, FunSig, ObjId, ObjKind, ObjectInfo, OpKind,
    PrimAssign, SrcLoc, Strength,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A little-endian read cursor over a byte slice.
struct Cur<'a> {
    buf: &'a [u8],
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cur { buf }
    }

    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (v, rest) = self.buf.split_at(1);
        self.buf = rest;
        v[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let (v, rest) = self.buf.split_at(4);
        self.buf = rest;
        u32::from_le_bytes(v.try_into().expect("4-byte split"))
    }

    fn get_u64_le(&mut self) -> u64 {
        let (v, rest) = self.buf.split_at(8);
        self.buf = rest;
        u64::from_le_bytes(v.try_into().expect("8-byte split"))
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        let (v, rest) = self.buf.split_at(n);
        self.buf = rest;
        v
    }
}

/// Accounting counters for demand loading.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LoadStats {
    /// Assignment records decoded so far (counting repeats).
    pub assigns_loaded: u64,
    /// Block fetches served.
    pub block_fetches: u64,
    /// Assignments present in the file.
    pub assigns_in_file: u64,
}

/// A CLA object file opened for demand-driven reading.
#[derive(Debug)]
pub struct Database {
    data: Vec<u8>,
    /// Decoded object metadata (always resident; the heavy payload is the
    /// assignments, which stay encoded).
    objects: Vec<ObjectInfo>,
    files: FileTable,
    unit_name: String,
    /// Per-object `(offset, count)` into the dynamic blob.
    block_index: Vec<(u64, u32)>,
    dynamic_blob: (u64, u64),
    static_range: (u64, u32),
    funsigs: Vec<FunSig>,
    funsig_by_obj: HashMap<ObjId, usize>,
    targets: HashMap<String, Vec<ObjId>>,
    assigns_in_file: u64,
    loaded: AtomicU64,
    fetches: AtomicU64,
    /// Assignments loaded through the (cold) static section, so the
    /// dynamic share of `loaded` can be recovered without a separate
    /// hot-path counter.
    static_loaded: AtomicU64,
    /// Global-registry mirrors of the per-database counters. The dynamic
    /// demand-load path updates them lazily in [`Database::load_stats`] —
    /// publishing the delta since the last read — so `block()` pays no
    /// extra atomics beyond its own accounting.
    obs_assigns_loaded: cla_obs::Counter,
    obs_block_fetches: cla_obs::Counter,
    obs_bytes_static: cla_obs::Counter,
    obs_bytes_dynamic: cla_obs::Counter,
    obs_pub_fetches: AtomicU64,
    obs_pub_dynamic: AtomicU64,
}

struct Sections {
    map: HashMap<u32, (u64, u64)>,
}

impl Sections {
    fn get(&self, id: SectionId) -> Result<(u64, u64), DbError> {
        self.map
            .get(&(id as u32))
            .copied()
            .ok_or(DbError::MissingSection(id.name()))
    }
}

fn slice<'a>(data: &'a [u8], off: u64, len: u64) -> Result<Cur<'a>, DbError> {
    let end = off
        .checked_add(len)
        .ok_or_else(|| DbError::Corrupt("section range overflow".into()))?;
    if end > data.len() as u64 {
        return Err(DbError::Corrupt("section past end of file".into()));
    }
    Ok(Cur::new(&data[off as usize..end as usize]))
}

/// Checks that `buf` still holds `n` bytes before a fixed-size read.
fn need(buf: &Cur<'_>, n: usize, what: &str) -> Result<(), DbError> {
    if buf.remaining() < n {
        return Err(DbError::Corrupt(format!("truncated {what}")));
    }
    Ok(())
}

fn decode_assign(buf: &mut Cur<'_>) -> Result<PrimAssign, DbError> {
    if buf.remaining() < ASSIGN_RECORD_SIZE {
        return Err(DbError::Corrupt("truncated assignment record".into()));
    }
    let kind = AssignKind::from_u8(buf.get_u8())
        .ok_or_else(|| DbError::Corrupt("bad assignment kind".into()))?;
    let dst = ObjId(buf.get_u32_le());
    let src = ObjId(buf.get_u32_le());
    let strength = match buf.get_u8() {
        0 => Strength::Weak,
        1 => Strength::Strong,
        _ => return Err(DbError::Corrupt("bad strength".into())),
    };
    let op = OpKind::from_u8(buf.get_u8()).ok_or_else(|| DbError::Corrupt("bad op kind".into()))?;
    let file = FileIdx(buf.get_u32_le());
    let line = buf.get_u32_le();
    Ok(PrimAssign {
        kind,
        dst,
        src,
        strength,
        op,
        loc: SrcLoc { file, line },
    })
}

impl Database {
    /// Opens an object file from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DbError`] on malformed input.
    pub fn open(data: Vec<u8>) -> Result<Database, DbError> {
        let obs = cla_obs::global();
        let mut sp = obs.span("db", "db.open");
        let section_read = |id: SectionId, bytes: u64| {
            obs.counter_with("cla_db_section_bytes_read_total", &[("section", id.name())])
                .add(bytes);
        };
        let mut hdr = Cur::new(&data);
        if hdr.remaining() < 12 {
            return Err(DbError::BadMagic);
        }
        if hdr.get_u32_le() != MAGIC {
            return Err(DbError::BadMagic);
        }
        let version = hdr.get_u32_le();
        if version != VERSION {
            return Err(DbError::BadVersion(version));
        }
        let nsections = hdr.get_u32_le() as usize;
        if hdr.remaining() < nsections * 20 {
            return Err(DbError::Corrupt("truncated section table".into()));
        }
        let mut map = HashMap::new();
        for _ in 0..nsections {
            let id = hdr.get_u32_le();
            let offset = hdr.get_u64_le();
            let len = hdr.get_u64_le();
            map.insert(id, (offset, len));
        }
        let sections = Sections { map };

        // Strings.
        let (off, len) = sections.get(SectionId::String)?;
        let mut buf = slice(&data, off, len)?;
        need(&buf, 4, "string section")?;
        let count = buf.get_u32_le() as usize;
        let mut strings = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            if buf.remaining() < 4 {
                return Err(DbError::Corrupt("truncated string".into()));
            }
            let n = buf.get_u32_le() as usize;
            if buf.remaining() < n {
                return Err(DbError::Corrupt("truncated string body".into()));
            }
            let body = buf.take(n);
            strings.push(
                String::from_utf8(body.to_vec())
                    .map_err(|_| DbError::Corrupt("invalid utf-8 string".into()))?,
            );
        }
        section_read(SectionId::String, len);
        let get_str = |sid: u32| -> Result<&str, DbError> {
            strings
                .get(sid as usize)
                .map(String::as_str)
                .ok_or_else(|| DbError::Corrupt(format!("string id {sid} out of range")))
        };

        // Files.
        let (off, len) = sections.get(SectionId::File)?;
        let mut buf = slice(&data, off, len)?;
        need(&buf, 4, "file section")?;
        let count = buf.get_u32_le() as usize;
        let mut file_names = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            need(&buf, 4, "file entry")?;
            file_names.push(get_str(buf.get_u32_le())?.to_string());
        }
        let files = FileTable::from_names(file_names);
        section_read(SectionId::File, len);

        // Objects.
        let (off, len) = sections.get(SectionId::Object)?;
        let mut buf = slice(&data, off, len)?;
        need(&buf, 4, "object section")?;
        let count = buf.get_u32_le() as usize;
        let mut objects = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            if buf.remaining() < 25 {
                return Err(DbError::Corrupt("truncated object record".into()));
            }
            let name = get_str(buf.get_u32_le())?.to_string();
            let link_sid = buf.get_u32_le();
            let link_name = if link_sid == NONE_U32 {
                None
            } else {
                Some(get_str(link_sid)?.to_string())
            };
            let ty = get_str(buf.get_u32_le())?.to_string();
            let kind = ObjKind::from_u8(buf.get_u8())
                .ok_or_else(|| DbError::Corrupt("bad object kind".into()))?;
            let file = FileIdx(buf.get_u32_le());
            let line = buf.get_u32_le();
            let in_func_raw = buf.get_u32_le();
            let in_func = if in_func_raw == NONE_U32 {
                None
            } else {
                Some(ObjId(in_func_raw))
            };
            objects.push(ObjectInfo {
                name,
                link_name,
                kind,
                ty,
                loc: SrcLoc { file, line },
                in_func,
            });
        }

        section_read(SectionId::Object, len);

        // Static range.
        let (off, len) = sections.get(SectionId::Static)?;
        let mut buf = slice(&data, off, len)?;
        need(&buf, 4, "static section")?;
        let static_count = buf.get_u32_le();
        let static_range = (off + 4, static_count);
        // Only the 4-byte header is read eagerly; the payload is counted
        // when `static_assigns` decodes it.
        section_read(SectionId::Static, 4);

        // Dynamic index.
        let (off, len) = sections.get(SectionId::Dynamic)?;
        let mut buf = slice(&data, off, len)?;
        need(&buf, 4, "dynamic section")?;
        let nobjs = buf.get_u32_le() as usize;
        if nobjs != objects.len() {
            return Err(DbError::Corrupt("dynamic index size mismatch".into()));
        }
        let mut block_index = Vec::with_capacity(nobjs);
        let mut dynamic_total: u64 = 0;
        for _ in 0..nobjs {
            if buf.remaining() < 12 {
                return Err(DbError::Corrupt("truncated dynamic index".into()));
            }
            let boff = buf.get_u64_le();
            let cnt = buf.get_u32_le();
            dynamic_total += u64::from(cnt);
            block_index.push((boff, cnt));
        }
        let blob_start = off + 4 + (nobjs as u64) * 12;
        let blob_len = len
            .checked_sub(4 + (nobjs as u64) * 12)
            .ok_or_else(|| DbError::Corrupt("dynamic index larger than section".into()))?;
        let dynamic_blob = (blob_start, blob_len);
        // Eagerly read: the per-object block index, not the blob itself.
        section_read(SectionId::Dynamic, 4 + (nobjs as u64) * 12);

        // Funsigs.
        let (off, len) = sections.get(SectionId::FunSig)?;
        let mut buf = slice(&data, off, len)?;
        need(&buf, 4, "funsig section")?;
        let count = buf.get_u32_le() as usize;
        let mut funsigs = Vec::with_capacity(count.min(1 << 20));
        let mut funsig_by_obj = HashMap::new();
        section_read(SectionId::FunSig, len);
        for _ in 0..count {
            if buf.remaining() < 13 {
                return Err(DbError::Corrupt("truncated funsig".into()));
            }
            let obj = ObjId(buf.get_u32_le());
            let ret = ObjId(buf.get_u32_le());
            let is_indirect = buf.get_u8() != 0;
            let nparams = buf.get_u32_le() as usize;
            if buf.remaining() < nparams * 4 {
                return Err(DbError::Corrupt("truncated funsig params".into()));
            }
            let params = (0..nparams).map(|_| ObjId(buf.get_u32_le())).collect();
            funsig_by_obj.insert(obj, funsigs.len());
            funsigs.push(FunSig {
                obj,
                params,
                ret,
                is_indirect,
            });
        }

        // Targets.
        let (off, len) = sections.get(SectionId::Target)?;
        let mut buf = slice(&data, off, len)?;
        need(&buf, 4, "target section")?;
        let count = buf.get_u32_le() as usize;
        let mut targets: HashMap<String, Vec<ObjId>> = HashMap::new();
        for _ in 0..count {
            if buf.remaining() < 8 {
                return Err(DbError::Corrupt("truncated target entry".into()));
            }
            let name = get_str(buf.get_u32_le())?.to_string();
            let obj = ObjId(buf.get_u32_le());
            targets.entry(name).or_default().push(obj);
        }

        section_read(SectionId::Target, len);

        // Meta.
        let (off, len) = sections.get(SectionId::Meta)?;
        let mut buf = slice(&data, off, len)?;
        need(&buf, 12, "meta section")?;
        let unit_name = get_str(buf.get_u32_le())?.to_string();
        let total_assigns = buf.get_u64_le();
        if total_assigns != dynamic_total + u64::from(static_count) {
            return Err(DbError::Corrupt(
                "assignment totals disagree between sections".into(),
            ));
        }

        section_read(SectionId::Meta, len);

        sp.set("objects", objects.len());
        sp.set("assigns_in_file", total_assigns);
        sp.set("bytes", data.len());
        Ok(Database {
            data,
            objects,
            files,
            unit_name,
            block_index,
            dynamic_blob,
            static_range,
            funsigs,
            funsig_by_obj,
            targets,
            assigns_in_file: total_assigns,
            loaded: AtomicU64::new(0),
            fetches: AtomicU64::new(0),
            static_loaded: AtomicU64::new(0),
            obs_assigns_loaded: obs.counter("cla_db_assigns_loaded_total"),
            obs_block_fetches: obs.counter("cla_db_block_fetches_total"),
            obs_bytes_static: obs
                .counter_with("cla_db_section_bytes_read_total", &[("section", "static")]),
            obs_bytes_dynamic: obs
                .counter_with("cla_db_section_bytes_read_total", &[("section", "dynamic")]),
            obs_pub_fetches: AtomicU64::new(0),
            obs_pub_dynamic: AtomicU64::new(0),
        })
    }

    /// The unit (or linked program) name.
    pub fn unit_name(&self) -> &str {
        &self.unit_name
    }

    /// Object metadata (always resident).
    pub fn objects(&self) -> &[ObjectInfo] {
        &self.objects
    }

    /// Metadata for one object.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range for this database.
    pub fn object(&self, id: ObjId) -> &ObjectInfo {
        &self.objects[id.index()]
    }

    /// The file-name table.
    pub fn files(&self) -> &FileTable {
        &self.files
    }

    /// All function/function-pointer signatures.
    pub fn funsigs(&self) -> &[FunSig] {
        &self.funsigs
    }

    /// The signature attached to an object, if any.
    pub fn funsig(&self, obj: ObjId) -> Option<&FunSig> {
        self.funsig_by_obj.get(&obj).map(|&i| &self.funsigs[i])
    }

    /// Decodes the static section: every `x = &y` assignment. This is the
    /// starting point of the points-to analysis and is always loaded.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Corrupt`] on malformed records.
    pub fn static_assigns(&self) -> Result<Vec<PrimAssign>, DbError> {
        let (off, count) = self.static_range;
        let mut buf = slice(
            &self.data,
            off,
            u64::from(count) * ASSIGN_RECORD_SIZE as u64,
        )?;
        let mut out = Vec::with_capacity(count as usize);
        for _ in 0..count {
            out.push(decode_assign(&mut buf)?);
        }
        self.loaded.fetch_add(u64::from(count), Ordering::Relaxed);
        self.static_loaded
            .fetch_add(u64::from(count), Ordering::Relaxed);
        self.obs_assigns_loaded.add(u64::from(count));
        self.obs_bytes_static
            .add(u64::from(count) * ASSIGN_RECORD_SIZE as u64);
        Ok(out)
    }

    /// Number of assignments in the block for `obj`, without decoding it.
    pub fn block_len(&self, obj: ObjId) -> usize {
        self.block_index
            .get(obj.index())
            .map_or(0, |&(_, c)| c as usize)
    }

    /// Decodes the dynamic block for `obj`: all assignments whose *source*
    /// is `obj`. One index lookup plus a sequential decode; callers may
    /// discard the result and re-fetch later (load-and-throw-away).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Corrupt`] on malformed records.
    pub fn block(&self, obj: ObjId) -> Result<Vec<PrimAssign>, DbError> {
        let Some(&(boff, count)) = self.block_index.get(obj.index()) else {
            return Ok(Vec::new());
        };
        let (blob_start, blob_len) = self.dynamic_blob;
        let need = u64::from(count) * ASSIGN_RECORD_SIZE as u64;
        if boff + need > blob_len {
            return Err(DbError::Corrupt("block past end of dynamic blob".into()));
        }
        let mut buf = slice(&self.data, blob_start + boff, need)?;
        let mut out = Vec::with_capacity(count as usize);
        for _ in 0..count {
            out.push(decode_assign(&mut buf)?);
        }
        self.fetches.fetch_add(1, Ordering::Relaxed);
        self.loaded.fetch_add(u64::from(count), Ordering::Relaxed);
        Ok(out)
    }

    /// Objects matching a target name (the paper's target-section lookup for
    /// dependence analysis).
    pub fn targets(&self, name: &str) -> &[ObjId] {
        self.targets.get(name).map_or(&[], Vec::as_slice)
    }

    /// All distinct target names (for browsing).
    pub fn target_names(&self) -> impl Iterator<Item = &str> {
        self.targets.keys().map(String::as_str)
    }

    /// Accounting counters.
    pub fn load_stats(&self) -> LoadStats {
        let stats = LoadStats {
            assigns_loaded: self.loaded.load(Ordering::Relaxed),
            block_fetches: self.fetches.load(Ordering::Relaxed),
            assigns_in_file: self.assigns_in_file,
        };
        // Publish the demand-load delta since the last read to the global
        // metrics registry. Doing it here — every solve ends with a
        // `load_stats` read — keeps `block()`, the solver's innermost
        // loop, free of any obs-side atomics. The `swap` claims each delta
        // exactly once under concurrent readers; `saturating_sub` absorbs
        // a racing `reset_load_stats`.
        let dynamic = stats
            .assigns_loaded
            .saturating_sub(self.static_loaded.load(Ordering::Relaxed));
        let df = stats.block_fetches.saturating_sub(
            self.obs_pub_fetches
                .swap(stats.block_fetches, Ordering::Relaxed),
        );
        let dd = dynamic.saturating_sub(self.obs_pub_dynamic.swap(dynamic, Ordering::Relaxed));
        self.obs_block_fetches.add(df);
        self.obs_assigns_loaded.add(dd);
        self.obs_bytes_dynamic.add(dd * ASSIGN_RECORD_SIZE as u64);
        stats
    }

    /// Resets the loaded/fetch counters (e.g. between benchmark phases).
    pub fn reset_load_stats(&self) {
        self.loaded.store(0, Ordering::Relaxed);
        self.fetches.store(0, Ordering::Relaxed);
        self.static_loaded.store(0, Ordering::Relaxed);
        self.obs_pub_fetches.store(0, Ordering::Relaxed);
        self.obs_pub_dynamic.store(0, Ordering::Relaxed);
    }

    /// Size of the object file in bytes.
    pub fn file_size(&self) -> usize {
        self.data.len()
    }

    /// Fully decodes the database back into a [`CompiledUnit`] (used by the
    /// linker and the non-demand-driven baseline solvers).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Corrupt`] on malformed records.
    pub fn to_unit(&self) -> Result<CompiledUnit, DbError> {
        let mut unit = CompiledUnit::new(self.unit_name.clone());
        unit.files = self.files.clone();
        unit.objects = self.objects.clone();
        unit.funsigs = self.funsigs.clone();
        unit.assigns = self.static_assigns()?;
        for i in 0..self.objects.len() {
            unit.assigns.extend(self.block(ObjId(i as u32))?);
        }
        Ok(unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::write_object;
    use cla_ir::{compile_source, LowerOptions};

    fn db_for(src: &str) -> Database {
        let unit = compile_source(src, "a.c", &LowerOptions::default()).unwrap();
        Database::open(write_object(&unit)).unwrap()
    }

    #[test]
    fn roundtrip_counts() {
        let src = "int x, y, *p, *q, **pp;
                   void f(void) { x = y; p = &x; *pp = p; q = *pp; }";
        let unit = compile_source(src, "a.c", &LowerOptions::default()).unwrap();
        let db = Database::open(write_object(&unit)).unwrap();
        assert_eq!(db.objects().len(), unit.objects.len());
        let back = db.to_unit().unwrap();
        assert_eq!(back.assign_counts().total(), unit.assign_counts().total());
        assert_eq!(back.assign_counts(), unit.assign_counts());
        // Objects survive byte-for-byte.
        assert_eq!(back.objects, unit.objects);
        assert_eq!(back.funsigs, unit.funsigs);
    }

    #[test]
    fn static_section_holds_addrs() {
        let db = db_for("int x, *p, *q; void f(void) { p = &x; q = p; }");
        let statics = db.static_assigns().unwrap();
        assert_eq!(statics.len(), 1);
        assert_eq!(statics[0].kind, AssignKind::Addr);
    }

    #[test]
    fn blocks_keyed_by_source() {
        // Paper Figure 4: block for z contains x = z and *p = z.
        let db = db_for(
            "int x, y, z, *p, *q;
             void f(void) { x = y; x = z; *p = z; p = q; q = &y; x = *p; }",
        );
        let z = db
            .objects()
            .iter()
            .position(|o| o.name == "z")
            .map(|i| ObjId(i as u32))
            .unwrap();
        let block = db.block(z).unwrap();
        assert_eq!(block.len(), 2);
        assert!(block.iter().all(|a| a.src == z));
        let kinds: Vec<_> = block.iter().map(|a| a.kind).collect();
        assert!(kinds.contains(&AssignKind::Copy));
        assert!(kinds.contains(&AssignKind::Store));
        // Block for p: x = *p.
        let p = db
            .objects()
            .iter()
            .position(|o| o.name == "p")
            .map(|i| ObjId(i as u32))
            .unwrap();
        let block = db.block(p).unwrap();
        assert_eq!(block.len(), 1);
        assert_eq!(block[0].kind, AssignKind::Load);
    }

    #[test]
    fn accounting() {
        let db = db_for("int x, y, z; void f(void) { x = y; y = z; }");
        assert_eq!(db.load_stats().assigns_loaded, 0);
        let _ = db.static_assigns().unwrap();
        let y = db.objects().iter().position(|o| o.name == "y").unwrap();
        let before = db.load_stats();
        let b = db.block(ObjId(y as u32)).unwrap();
        assert_eq!(b.len(), 1);
        let after = db.load_stats();
        assert_eq!(after.assigns_loaded - before.assigns_loaded, 1);
        assert_eq!(after.block_fetches - before.block_fetches, 1);
        assert_eq!(after.assigns_in_file, 2);
        // Re-reading is allowed and counted again (load-and-throw-away).
        let _ = db.block(ObjId(y as u32)).unwrap();
        assert_eq!(db.load_stats().assigns_loaded, after.assigns_loaded + 1);
        db.reset_load_stats();
        assert_eq!(db.load_stats().assigns_loaded, 0);
    }

    #[test]
    fn targets_present() {
        let db = db_for("int zz; struct S { int fld; } s; void f(void) { s.fld = zz; }");
        assert_eq!(db.targets("zz").len(), 1);
        assert_eq!(db.targets("S.fld").len(), 1);
        assert!(db.targets("nope").is_empty());
        assert!(db.target_names().count() >= 3);
    }

    #[test]
    fn funsig_lookup() {
        let db = db_for("int f(int a) { return a; } void g(void) { f(1); }");
        let f = db
            .objects()
            .iter()
            .position(|o| o.name == "f")
            .map(|i| ObjId(i as u32))
            .unwrap();
        let sig = db.funsig(f).unwrap();
        assert_eq!(sig.params.len(), 1);
        assert!(db.funsig(ObjId(9999)).is_none());
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        assert!(matches!(
            Database::open(b"oops".to_vec()),
            Err(DbError::BadMagic)
        ));
        assert!(matches!(
            Database::open(b"XXXXXXXXXXXXXXXX".to_vec()),
            Err(DbError::BadMagic)
        ));
        let mut bytes = MAGIC.to_le_bytes().to_vec();
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            Database::open(bytes),
            Err(DbError::BadVersion(99))
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let unit = compile_source(
            "int x, *p; void f(void) { p = &x; }",
            "a.c",
            &LowerOptions::default(),
        )
        .unwrap();
        let full = write_object(&unit);
        let truncated = full[..full.len() - 10].to_vec();
        assert!(Database::open(truncated).is_err());
    }
}
