//! Object-file reader with demand loading.
//!
//! [`Database`] decodes the cheap index sections eagerly (strings, object
//! metadata, block index) and leaves the assignment payload untouched until
//! a block is requested — the paper's "only those parts of the object file
//! that are required are loaded". Accounting counters record how many
//! assignments were loaded, supporting Table 3's in-core/loaded/in-file
//! columns. The paper used `mmap` for re-readable storage; we hold the byte
//! buffer in memory and decode ranges on demand, which preserves the
//! measured property: decoded assignments can be discarded and re-read later
//! at no extra I/O cost.
//!
//! Counters are atomic so a [`Database`] can be shared read-only across the
//! query threads of a long-running server.

use crate::format::{
    fnv64, fnv64_tagged, DbError, SectionId, ASSIGN_RECORD_SIZE, HEADER_FIXED_SIZE, MAGIC,
    NONE_U32, SECTION_ENTRY_SIZE, VERSION,
};
use cla_ir::{
    AssignKind, CompiledUnit, FileIdx, FileTable, FunSig, ObjId, ObjKind, ObjectInfo, OpKind,
    PrimAssign, SrcLoc, Strength,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// A little-endian read cursor over a byte slice. Every read is bounds
/// checked and reports a typed [`DbError::Corrupt`] on a short buffer — no
/// read from an object file can panic, no matter how damaged the bytes are.
struct Cur<'a> {
    buf: &'a [u8],
}

/// The error every short cursor read maps to.
fn short(n: usize) -> DbError {
    DbError::Corrupt(format!("unexpected end of section ({n} more bytes needed)"))
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cur { buf }
    }

    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn get_u8(&mut self) -> Result<u8, DbError> {
        let (&v, rest) = self.buf.split_first().ok_or_else(|| short(1))?;
        self.buf = rest;
        Ok(v)
    }

    fn get_u32_le(&mut self) -> Result<u32, DbError> {
        let (v, rest) = self.buf.split_at_checked(4).ok_or_else(|| short(4))?;
        self.buf = rest;
        Ok(u32::from_le_bytes(v.try_into().unwrap()))
    }

    fn get_u64_le(&mut self) -> Result<u64, DbError> {
        let (v, rest) = self.buf.split_at_checked(8).ok_or_else(|| short(8))?;
        self.buf = rest;
        Ok(u64::from_le_bytes(v.try_into().unwrap()))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DbError> {
        let (v, rest) = self.buf.split_at_checked(n).ok_or_else(|| short(n))?;
        self.buf = rest;
        Ok(v)
    }
}

/// Accounting counters for demand loading.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LoadStats {
    /// Assignment records decoded so far (counting repeats).
    pub assigns_loaded: u64,
    /// Block fetches served.
    pub block_fetches: u64,
    /// Assignments present in the file.
    pub assigns_in_file: u64,
}

/// A CLA object file opened for demand-driven reading.
#[derive(Debug)]
pub struct Database {
    data: Vec<u8>,
    /// Decoded object metadata (always resident; the heavy payload is the
    /// assignments, which stay encoded).
    objects: Vec<ObjectInfo>,
    files: FileTable,
    unit_name: String,
    /// Per-object index into the dynamic blob.
    block_index: Vec<BlockEntry>,
    dynamic_blob: (u64, u64),
    static_range: (u64, u32),
    funsigs: Vec<FunSig>,
    funsig_by_obj: HashMap<ObjId, usize>,
    targets: HashMap<String, Vec<ObjId>>,
    assigns_in_file: u64,
    loaded: AtomicU64,
    fetches: AtomicU64,
    /// Assignments loaded through the (cold) static section, so the
    /// dynamic share of `loaded` can be recovered without a separate
    /// hot-path counter.
    static_loaded: AtomicU64,
    /// Global-registry mirrors of the per-database counters. The dynamic
    /// demand-load path updates them lazily in [`Database::load_stats`] —
    /// publishing the delta since the last read — so `block()` pays no
    /// extra atomics beyond its own accounting.
    obs_assigns_loaded: cla_obs::Counter,
    obs_block_fetches: cla_obs::Counter,
    obs_bytes_static: cla_obs::Counter,
    obs_bytes_dynamic: cla_obs::Counter,
    obs_pub_fetches: AtomicU64,
    obs_pub_dynamic: AtomicU64,
    obs_checksum_fail: cla_obs::Counter,
}

/// One dynamic-index entry. `verified` lives in the same cache line as the
/// fields the demand loader reads anyway, so the warm-path integrity check
/// is one relaxed load with no extra memory traffic; it flips to 1 after
/// the block's checksum has been verified against the (immutable)
/// in-memory bytes, and racing verifiers idempotently store the same 1.
#[derive(Debug)]
struct BlockEntry {
    off: u64,
    checksum: u64,
    count: u32,
    verified: AtomicU32,
}

struct Sections {
    map: HashMap<u32, (u64, u64, u64)>,
}

impl Sections {
    fn get(&self, id: SectionId) -> Result<(u64, u64, u64), DbError> {
        self.map
            .get(&(id as u32))
            .copied()
            .ok_or(DbError::MissingSection(id.name()))
    }
}

/// Bounds-checked view of `len` bytes at `off` (checked add rejects
/// offset+len overflow).
fn slice_bytes(data: &[u8], off: u64, len: u64) -> Result<&[u8], DbError> {
    let end = off
        .checked_add(len)
        .ok_or_else(|| DbError::Corrupt("section range overflow".into()))?;
    if end > data.len() as u64 {
        return Err(DbError::Corrupt("section past end of file".into()));
    }
    Ok(&data[off as usize..end as usize])
}

fn slice<'a>(data: &'a [u8], off: u64, len: u64) -> Result<Cur<'a>, DbError> {
    Ok(Cur::new(slice_bytes(data, off, len)?))
}

/// Checks that `buf` still holds `n` bytes before a fixed-size read.
fn need(buf: &Cur<'_>, n: usize, what: &str) -> Result<(), DbError> {
    if buf.remaining() < n {
        return Err(DbError::Corrupt(format!("truncated {what}")));
    }
    Ok(())
}

/// Decodes one fixed-size assignment record. Takes the record by array so
/// the field reads need no per-read bounds or `Result` plumbing — callers
/// validate the enclosing slice length once (`chunks_exact`), which keeps
/// the demand-load decode as cheap as the pre-checksum reader.
#[inline]
fn decode_assign(rec: &[u8; ASSIGN_RECORD_SIZE]) -> Result<PrimAssign, DbError> {
    let u32_at = |i: usize| u32::from_le_bytes([rec[i], rec[i + 1], rec[i + 2], rec[i + 3]]);
    let kind = AssignKind::from_u8(rec[0])
        .ok_or_else(|| DbError::Corrupt("bad assignment kind".into()))?;
    let dst = ObjId(u32_at(1));
    let src = ObjId(u32_at(5));
    let strength = match rec[9] {
        0 => Strength::Weak,
        1 => Strength::Strong,
        _ => return Err(DbError::Corrupt("bad strength".into())),
    };
    let op = OpKind::from_u8(rec[10]).ok_or_else(|| DbError::Corrupt("bad op kind".into()))?;
    let file = FileIdx(u32_at(11));
    let line = u32_at(15);
    Ok(PrimAssign {
        kind,
        dst,
        src,
        strength,
        op,
        loc: SrcLoc { file, line },
    })
}

/// Decodes `count` contiguous assignment records from an exactly sized
/// byte slice (callers slice `count * ASSIGN_RECORD_SIZE` bytes).
#[inline]
fn decode_assigns(bytes: &[u8], count: u32) -> Result<Vec<PrimAssign>, DbError> {
    let mut out = Vec::with_capacity(count as usize);
    for rec in bytes.chunks_exact(ASSIGN_RECORD_SIZE) {
        out.push(decode_assign(rec.try_into().expect("chunks_exact size"))?);
    }
    if out.len() != count as usize {
        return Err(DbError::Corrupt("truncated assignment record".into()));
    }
    Ok(out)
}

impl Database {
    /// Opens an object file from bytes.
    ///
    /// Integrity verified here: the header checksum (covering the section
    /// table), then each known section's checksum — whole body for every
    /// section except `dynamic`, whose verified prefix is the eagerly read
    /// block index. The dynamic blob is verified lazily, block by block, on
    /// first demand load (see [`Database::block`]), so opening never hashes
    /// payload bytes the analysis might not touch.
    ///
    /// # Errors
    ///
    /// Returns [`DbError`] on malformed or damaged input.
    pub fn open(data: Vec<u8>) -> Result<Database, DbError> {
        let obs = cla_obs::global();
        let mut sp = obs.span("db", "db.open");
        let checksum_fail = obs.counter("cla_db_checksum_fail_total");
        let section_read = |id: SectionId, bytes: u64| {
            obs.counter_with("cla_db_section_bytes_read_total", &[("section", id.name())])
                .add(bytes);
        };
        let mut hdr = Cur::new(&data);
        if hdr.remaining() < HEADER_FIXED_SIZE {
            return Err(DbError::BadMagic);
        }
        if hdr.get_u32_le()? != MAGIC {
            return Err(DbError::BadMagic);
        }
        let version = hdr.get_u32_le()?;
        if version != VERSION {
            return Err(DbError::BadVersion(version));
        }
        let header_sum = hdr.get_u64_le()?;
        // The table (count + entries) is covered by the header checksum, so
        // a damaged offset/len/checksum field is caught before anything
        // trusts it.
        let table_start = HEADER_FIXED_SIZE - 4;
        let nsections = hdr.get_u32_le()? as usize;
        if hdr.remaining() < nsections.saturating_mul(SECTION_ENTRY_SIZE) {
            return Err(DbError::Corrupt("truncated section table".into()));
        }
        let table_end = HEADER_FIXED_SIZE + nsections * SECTION_ENTRY_SIZE;
        if fnv64(&data[table_start..table_end]) != header_sum {
            checksum_fail.inc();
            return Err(DbError::Checksum("section table".into()));
        }
        let mut map = HashMap::new();
        for _ in 0..nsections {
            let id = hdr.get_u32_le()?;
            let offset = hdr.get_u64_le()?;
            let len = hdr.get_u64_le()?;
            let checksum = hdr.get_u64_le()?;
            map.insert(id, (offset, len, checksum));
        }
        let sections = Sections { map };
        // Every known section's stored checksum must match its bytes. For
        // the dynamic section only the index prefix is covered (the blob is
        // verified per block on demand) — its verified length is computed
        // from the object count below, so here we check the others.
        for id in SectionId::ALL {
            if id == SectionId::Dynamic {
                continue;
            }
            let Ok((off, len, want)) = sections.get(id) else {
                continue; // missing sections are reported where they're used
            };
            let body = slice_bytes(&data, off, len)?;
            if fnv64_tagged(id as u32, body) != want {
                checksum_fail.inc();
                return Err(DbError::Checksum(format!("section `{}`", id.name())));
            }
        }

        // Strings.
        let (off, len, _) = sections.get(SectionId::String)?;
        let mut buf = slice(&data, off, len)?;
        need(&buf, 4, "string section")?;
        let count = buf.get_u32_le()? as usize;
        let mut strings = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            if buf.remaining() < 4 {
                return Err(DbError::Corrupt("truncated string".into()));
            }
            let n = buf.get_u32_le()? as usize;
            if buf.remaining() < n {
                return Err(DbError::Corrupt("truncated string body".into()));
            }
            let body = buf.take(n)?;
            strings.push(
                String::from_utf8(body.to_vec())
                    .map_err(|_| DbError::Corrupt("invalid utf-8 string".into()))?,
            );
        }
        section_read(SectionId::String, len);
        let get_str = |sid: u32| -> Result<&str, DbError> {
            strings
                .get(sid as usize)
                .map(String::as_str)
                .ok_or_else(|| DbError::Corrupt(format!("string id {sid} out of range")))
        };

        // Files.
        let (off, len, _) = sections.get(SectionId::File)?;
        let mut buf = slice(&data, off, len)?;
        need(&buf, 4, "file section")?;
        let count = buf.get_u32_le()? as usize;
        let mut file_names = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            need(&buf, 4, "file entry")?;
            file_names.push(get_str(buf.get_u32_le()?)?.to_string());
        }
        let files = FileTable::from_names(file_names);
        section_read(SectionId::File, len);

        // Objects.
        let (off, len, _) = sections.get(SectionId::Object)?;
        let mut buf = slice(&data, off, len)?;
        need(&buf, 4, "object section")?;
        let count = buf.get_u32_le()? as usize;
        let mut objects = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            if buf.remaining() < 26 {
                return Err(DbError::Corrupt("truncated object record".into()));
            }
            let name = get_str(buf.get_u32_le()?)?.to_string();
            let link_sid = buf.get_u32_le()?;
            let link_name = if link_sid == NONE_U32 {
                None
            } else {
                Some(get_str(link_sid)?.to_string())
            };
            let ty = get_str(buf.get_u32_le()?)?.to_string();
            let kind = ObjKind::from_u8(buf.get_u8()?)
                .ok_or_else(|| DbError::Corrupt("bad object kind".into()))?;
            // Flags byte (v3): bit 0 = defined; other bits must be zero.
            let flags = buf.get_u8()?;
            if flags > 1 {
                return Err(DbError::Corrupt("bad object flags".into()));
            }
            let file = FileIdx(buf.get_u32_le()?);
            let line = buf.get_u32_le()?;
            let in_func_raw = buf.get_u32_le()?;
            let in_func = if in_func_raw == NONE_U32 {
                None
            } else {
                Some(ObjId(in_func_raw))
            };
            objects.push(ObjectInfo {
                name,
                link_name,
                kind,
                ty,
                loc: SrcLoc { file, line },
                in_func,
                defined: flags & 1 != 0,
            });
        }

        section_read(SectionId::Object, len);

        // Static range.
        let (off, len, _) = sections.get(SectionId::Static)?;
        let mut buf = slice(&data, off, len)?;
        need(&buf, 4, "static section")?;
        let static_count = buf.get_u32_le()?;
        let static_range = (off + 4, static_count);
        // Only the 4-byte header is read eagerly; the payload is counted
        // when `static_assigns` decodes it.
        section_read(SectionId::Static, 4);

        // Dynamic index.
        let (off, len, dyn_sum) = sections.get(SectionId::Dynamic)?;
        let mut buf = slice(&data, off, len)?;
        need(&buf, 4, "dynamic section")?;
        let nobjs = buf.get_u32_le()? as usize;
        if nobjs != objects.len() {
            return Err(DbError::Corrupt("dynamic index size mismatch".into()));
        }
        let index_len = 4u64
            .checked_add((nobjs as u64).saturating_mul(20))
            .ok_or_else(|| DbError::Corrupt("dynamic index size overflow".into()))?;
        if index_len > len {
            return Err(DbError::Corrupt("dynamic index larger than section".into()));
        }
        // The dynamic section's stored checksum covers exactly this eagerly
        // read index; the blob behind it carries per-block checksums.
        if fnv64_tagged(
            SectionId::Dynamic as u32,
            slice_bytes(&data, off, index_len)?,
        ) != dyn_sum
        {
            checksum_fail.inc();
            return Err(DbError::Checksum("section `dynamic` (block index)".into()));
        }
        let mut block_index = Vec::with_capacity(nobjs);
        let mut dynamic_total: u64 = 0;
        for _ in 0..nobjs {
            if buf.remaining() < 20 {
                return Err(DbError::Corrupt("truncated dynamic index".into()));
            }
            let boff = buf.get_u64_le()?;
            let cnt = buf.get_u32_le()?;
            let sum = buf.get_u64_le()?;
            dynamic_total += u64::from(cnt);
            block_index.push(BlockEntry {
                off: boff,
                checksum: sum,
                count: cnt,
                verified: AtomicU32::new(0),
            });
        }
        let blob_start = off + index_len;
        let blob_len = len - index_len;
        let dynamic_blob = (blob_start, blob_len);
        // Eagerly read: the per-object block index, not the blob itself.
        section_read(SectionId::Dynamic, index_len);

        // Funsigs.
        let (off, len, _) = sections.get(SectionId::FunSig)?;
        let mut buf = slice(&data, off, len)?;
        need(&buf, 4, "funsig section")?;
        let count = buf.get_u32_le()? as usize;
        let mut funsigs = Vec::with_capacity(count.min(1 << 20));
        let mut funsig_by_obj = HashMap::new();
        section_read(SectionId::FunSig, len);
        for _ in 0..count {
            if buf.remaining() < 13 {
                return Err(DbError::Corrupt("truncated funsig".into()));
            }
            let obj = ObjId(buf.get_u32_le()?);
            let ret = ObjId(buf.get_u32_le()?);
            let is_indirect = buf.get_u8()? != 0;
            let nparams = buf.get_u32_le()? as usize;
            if buf.remaining() < nparams.saturating_mul(4) {
                return Err(DbError::Corrupt("truncated funsig params".into()));
            }
            let mut params = Vec::with_capacity(nparams.min(1 << 16));
            for _ in 0..nparams {
                params.push(ObjId(buf.get_u32_le()?));
            }
            funsig_by_obj.insert(obj, funsigs.len());
            funsigs.push(FunSig {
                obj,
                params,
                ret,
                is_indirect,
            });
        }

        // Targets.
        let (off, len, _) = sections.get(SectionId::Target)?;
        let mut buf = slice(&data, off, len)?;
        need(&buf, 4, "target section")?;
        let count = buf.get_u32_le()? as usize;
        let mut targets: HashMap<String, Vec<ObjId>> = HashMap::new();
        for _ in 0..count {
            if buf.remaining() < 8 {
                return Err(DbError::Corrupt("truncated target entry".into()));
            }
            let name = get_str(buf.get_u32_le()?)?.to_string();
            let obj = ObjId(buf.get_u32_le()?);
            targets.entry(name).or_default().push(obj);
        }

        section_read(SectionId::Target, len);

        // Meta.
        let (off, len, _) = sections.get(SectionId::Meta)?;
        let mut buf = slice(&data, off, len)?;
        need(&buf, 12, "meta section")?;
        let unit_name = get_str(buf.get_u32_le()?)?.to_string();
        let total_assigns = buf.get_u64_le()?;
        if total_assigns != dynamic_total + u64::from(static_count) {
            return Err(DbError::Corrupt(
                "assignment totals disagree between sections".into(),
            ));
        }

        section_read(SectionId::Meta, len);

        sp.set("objects", objects.len());
        sp.set("assigns_in_file", total_assigns);
        sp.set("bytes", data.len());
        Ok(Database {
            data,
            objects,
            files,
            unit_name,
            block_index,
            dynamic_blob,
            static_range,
            funsigs,
            funsig_by_obj,
            targets,
            assigns_in_file: total_assigns,
            loaded: AtomicU64::new(0),
            fetches: AtomicU64::new(0),
            static_loaded: AtomicU64::new(0),
            obs_assigns_loaded: obs.counter("cla_db_assigns_loaded_total"),
            obs_block_fetches: obs.counter("cla_db_block_fetches_total"),
            obs_bytes_static: obs
                .counter_with("cla_db_section_bytes_read_total", &[("section", "static")]),
            obs_bytes_dynamic: obs
                .counter_with("cla_db_section_bytes_read_total", &[("section", "dynamic")]),
            obs_pub_fetches: AtomicU64::new(0),
            obs_pub_dynamic: AtomicU64::new(0),
            obs_checksum_fail: checksum_fail,
        })
    }

    /// Opens an object file read from `path`.
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] when the file cannot be read, otherwise any
    /// [`DbError`] from [`Database::open`].
    pub fn open_path(path: &std::path::Path) -> Result<Database, DbError> {
        let bytes = std::fs::read(path)
            .map_err(|e| DbError::Io(format!("cannot read `{}`: {e}", path.display())))?;
        Database::open(bytes)
    }

    /// The unit (or linked program) name.
    pub fn unit_name(&self) -> &str {
        &self.unit_name
    }

    /// Object metadata (always resident).
    pub fn objects(&self) -> &[ObjectInfo] {
        &self.objects
    }

    /// Metadata for one object.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range for this database.
    pub fn object(&self, id: ObjId) -> &ObjectInfo {
        &self.objects[id.index()]
    }

    /// The file-name table.
    pub fn files(&self) -> &FileTable {
        &self.files
    }

    /// All function/function-pointer signatures.
    pub fn funsigs(&self) -> &[FunSig] {
        &self.funsigs
    }

    /// The signature attached to an object, if any.
    pub fn funsig(&self, obj: ObjId) -> Option<&FunSig> {
        self.funsig_by_obj.get(&obj).map(|&i| &self.funsigs[i])
    }

    /// Decodes the static section: every `x = &y` assignment. This is the
    /// starting point of the points-to analysis and is always loaded.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Corrupt`] on malformed records.
    pub fn static_assigns(&self) -> Result<Vec<PrimAssign>, DbError> {
        let (off, count) = self.static_range;
        let bytes = slice_bytes(
            &self.data,
            off,
            u64::from(count) * ASSIGN_RECORD_SIZE as u64,
        )?;
        let out = decode_assigns(bytes, count)?;
        self.loaded.fetch_add(u64::from(count), Ordering::Relaxed);
        self.static_loaded
            .fetch_add(u64::from(count), Ordering::Relaxed);
        self.obs_assigns_loaded.add(u64::from(count));
        self.obs_bytes_static
            .add(u64::from(count) * ASSIGN_RECORD_SIZE as u64);
        Ok(out)
    }

    /// Number of assignments in the block for `obj`, without decoding it.
    pub fn block_len(&self, obj: ObjId) -> usize {
        self.block_index
            .get(obj.index())
            .map_or(0, |e| e.count as usize)
    }

    /// Bounds-checks block `ix` and verifies its checksum on first touch.
    /// Returns the block's raw bytes.
    #[inline]
    fn block_bytes(&self, ix: usize) -> Result<&[u8], DbError> {
        let e = &self.block_index[ix];
        let (blob_start, blob_len) = self.dynamic_blob;
        let need = u64::from(e.count) * ASSIGN_RECORD_SIZE as u64;
        let end = e
            .off
            .checked_add(need)
            .ok_or_else(|| DbError::Corrupt("block offset overflow".into()))?;
        if end > blob_len {
            return Err(DbError::Corrupt("block past end of dynamic blob".into()));
        }
        let bytes = slice_bytes(&self.data, blob_start + e.off, need)?;
        // Lazy integrity: hash the block the first time it is fetched, then
        // remember — the bytes are immutable in memory, so the warm
        // demand-load path pays one relaxed load of a flag sitting in the
        // index entry's own cache line instead of a re-hash.
        if e.verified.load(Ordering::Relaxed) == 0 {
            if fnv64(bytes) != e.checksum {
                self.obs_checksum_fail.inc();
                return Err(DbError::Checksum(format!("dynamic block {ix}")));
            }
            e.verified.store(1, Ordering::Relaxed);
        }
        Ok(bytes)
    }

    /// Decodes the dynamic block for `obj`: all assignments whose *source*
    /// is `obj`. One index lookup plus a sequential decode; callers may
    /// discard the result and re-fetch later (load-and-throw-away). The
    /// block's checksum is verified on its first fetch.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Corrupt`] on malformed records and
    /// [`DbError::Checksum`] on damaged block bytes.
    pub fn block(&self, obj: ObjId) -> Result<Vec<PrimAssign>, DbError> {
        if obj.index() >= self.block_index.len() {
            return Ok(Vec::new());
        }
        let count = self.block_index[obj.index()].count;
        let out = decode_assigns(self.block_bytes(obj.index())?, count)?;
        self.fetches.fetch_add(1, Ordering::Relaxed);
        self.loaded.fetch_add(u64::from(count), Ordering::Relaxed);
        Ok(out)
    }

    /// Verifies every lazily checked checksum in the file (all dynamic
    /// blocks) in one pass. `Database::open` already verified the header,
    /// section table, and every eager section, so after `verify_all`
    /// returns `Ok` there is no byte the analysis can read whose integrity
    /// has not been confirmed. Used before swapping a reloaded database
    /// into a serving session, where a mid-solve checksum failure would be
    /// far more disruptive than this one sequential scan.
    ///
    /// # Errors
    ///
    /// The first [`DbError`] any block fails with.
    pub fn verify_all(&self) -> Result<(), DbError> {
        for ix in 0..self.block_index.len() {
            self.block_bytes(ix)?;
        }
        Ok(())
    }

    /// Objects matching a target name (the paper's target-section lookup for
    /// dependence analysis).
    pub fn targets(&self, name: &str) -> &[ObjId] {
        self.targets.get(name).map_or(&[], Vec::as_slice)
    }

    /// All distinct target names (for browsing).
    pub fn target_names(&self) -> impl Iterator<Item = &str> {
        self.targets.keys().map(String::as_str)
    }

    /// Accounting counters.
    pub fn load_stats(&self) -> LoadStats {
        let stats = LoadStats {
            assigns_loaded: self.loaded.load(Ordering::Relaxed),
            block_fetches: self.fetches.load(Ordering::Relaxed),
            assigns_in_file: self.assigns_in_file,
        };
        // Publish the demand-load delta since the last read to the global
        // metrics registry. Doing it here — every solve ends with a
        // `load_stats` read — keeps `block()`, the solver's innermost
        // loop, free of any obs-side atomics. The `swap` claims each delta
        // exactly once under concurrent readers; `saturating_sub` absorbs
        // a racing `reset_load_stats`.
        let dynamic = stats
            .assigns_loaded
            .saturating_sub(self.static_loaded.load(Ordering::Relaxed));
        let df = stats.block_fetches.saturating_sub(
            self.obs_pub_fetches
                .swap(stats.block_fetches, Ordering::Relaxed),
        );
        let dd = dynamic.saturating_sub(self.obs_pub_dynamic.swap(dynamic, Ordering::Relaxed));
        self.obs_block_fetches.add(df);
        self.obs_assigns_loaded.add(dd);
        self.obs_bytes_dynamic.add(dd * ASSIGN_RECORD_SIZE as u64);
        stats
    }

    /// Resets the loaded/fetch counters (e.g. between benchmark phases).
    pub fn reset_load_stats(&self) {
        self.loaded.store(0, Ordering::Relaxed);
        self.fetches.store(0, Ordering::Relaxed);
        self.static_loaded.store(0, Ordering::Relaxed);
        self.obs_pub_fetches.store(0, Ordering::Relaxed);
        self.obs_pub_dynamic.store(0, Ordering::Relaxed);
    }

    /// Size of the object file in bytes.
    pub fn file_size(&self) -> usize {
        self.data.len()
    }

    /// Fully decodes the database back into a [`CompiledUnit`] (used by the
    /// linker and the non-demand-driven baseline solvers).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Corrupt`] on malformed records.
    pub fn to_unit(&self) -> Result<CompiledUnit, DbError> {
        let mut unit = CompiledUnit::new(self.unit_name.clone());
        unit.files = self.files.clone();
        unit.objects = self.objects.clone();
        unit.funsigs = self.funsigs.clone();
        unit.assigns = self.static_assigns()?;
        for i in 0..self.objects.len() {
            unit.assigns.extend(self.block(ObjId(i as u32))?);
        }
        Ok(unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::write_object;
    use cla_ir::{compile_source, LowerOptions};

    fn db_for(src: &str) -> Database {
        let unit = compile_source(src, "a.c", &LowerOptions::default()).unwrap();
        Database::open(write_object(&unit)).unwrap()
    }

    #[test]
    fn roundtrip_counts() {
        let src = "int x, y, *p, *q, **pp;
                   void f(void) { x = y; p = &x; *pp = p; q = *pp; }";
        let unit = compile_source(src, "a.c", &LowerOptions::default()).unwrap();
        let db = Database::open(write_object(&unit)).unwrap();
        assert_eq!(db.objects().len(), unit.objects.len());
        let back = db.to_unit().unwrap();
        assert_eq!(back.assign_counts().total(), unit.assign_counts().total());
        assert_eq!(back.assign_counts(), unit.assign_counts());
        // Objects survive byte-for-byte.
        assert_eq!(back.objects, unit.objects);
        assert_eq!(back.funsigs, unit.funsigs);
    }

    #[test]
    fn static_section_holds_addrs() {
        let db = db_for("int x, *p, *q; void f(void) { p = &x; q = p; }");
        let statics = db.static_assigns().unwrap();
        assert_eq!(statics.len(), 1);
        assert_eq!(statics[0].kind, AssignKind::Addr);
    }

    #[test]
    fn blocks_keyed_by_source() {
        // Paper Figure 4: block for z contains x = z and *p = z.
        let db = db_for(
            "int x, y, z, *p, *q;
             void f(void) { x = y; x = z; *p = z; p = q; q = &y; x = *p; }",
        );
        let z = db
            .objects()
            .iter()
            .position(|o| o.name == "z")
            .map(|i| ObjId(i as u32))
            .unwrap();
        let block = db.block(z).unwrap();
        assert_eq!(block.len(), 2);
        assert!(block.iter().all(|a| a.src == z));
        let kinds: Vec<_> = block.iter().map(|a| a.kind).collect();
        assert!(kinds.contains(&AssignKind::Copy));
        assert!(kinds.contains(&AssignKind::Store));
        // Block for p: x = *p.
        let p = db
            .objects()
            .iter()
            .position(|o| o.name == "p")
            .map(|i| ObjId(i as u32))
            .unwrap();
        let block = db.block(p).unwrap();
        assert_eq!(block.len(), 1);
        assert_eq!(block[0].kind, AssignKind::Load);
    }

    #[test]
    fn accounting() {
        let db = db_for("int x, y, z; void f(void) { x = y; y = z; }");
        assert_eq!(db.load_stats().assigns_loaded, 0);
        let _ = db.static_assigns().unwrap();
        let y = db.objects().iter().position(|o| o.name == "y").unwrap();
        let before = db.load_stats();
        let b = db.block(ObjId(y as u32)).unwrap();
        assert_eq!(b.len(), 1);
        let after = db.load_stats();
        assert_eq!(after.assigns_loaded - before.assigns_loaded, 1);
        assert_eq!(after.block_fetches - before.block_fetches, 1);
        assert_eq!(after.assigns_in_file, 2);
        // Re-reading is allowed and counted again (load-and-throw-away).
        let _ = db.block(ObjId(y as u32)).unwrap();
        assert_eq!(db.load_stats().assigns_loaded, after.assigns_loaded + 1);
        db.reset_load_stats();
        assert_eq!(db.load_stats().assigns_loaded, 0);
    }

    #[test]
    fn targets_present() {
        let db = db_for("int zz; struct S { int fld; } s; void f(void) { s.fld = zz; }");
        assert_eq!(db.targets("zz").len(), 1);
        assert_eq!(db.targets("S.fld").len(), 1);
        assert!(db.targets("nope").is_empty());
        assert!(db.target_names().count() >= 3);
    }

    #[test]
    fn funsig_lookup() {
        let db = db_for("int f(int a) { return a; } void g(void) { f(1); }");
        let f = db
            .objects()
            .iter()
            .position(|o| o.name == "f")
            .map(|i| ObjId(i as u32))
            .unwrap();
        let sig = db.funsig(f).unwrap();
        assert_eq!(sig.params.len(), 1);
        assert!(db.funsig(ObjId(9999)).is_none());
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        assert!(matches!(
            Database::open(b"oops".to_vec()),
            Err(DbError::BadMagic)
        ));
        assert!(matches!(
            Database::open(b"XXXXXXXXXXXXXXXXXXXXXXXX".to_vec()),
            Err(DbError::BadMagic)
        ));
        let mut bytes = MAGIC.to_le_bytes().to_vec();
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 12]);
        assert!(matches!(
            Database::open(bytes),
            Err(DbError::BadVersion(99))
        ));
    }

    #[test]
    fn flipped_bit_in_eager_section_is_a_checksum_error() {
        let unit = compile_source(
            "int x, *p; void f(void) { p = &x; }",
            "a.c",
            &LowerOptions::default(),
        )
        .unwrap();
        let full = write_object(&unit);
        // Flip one bit in every byte past the fixed header; each must be
        // rejected with a typed error (checksum or structural), never a
        // silently different database.
        let baseline = Database::open(full.clone()).unwrap().to_unit().unwrap();
        for pos in crate::format::HEADER_FIXED_SIZE..full.len() {
            let mut bytes = full.clone();
            bytes[pos] ^= 0x10;
            match Database::open(bytes) {
                Err(_) => {}
                Ok(db) => {
                    // The flip can only have landed in the dynamic blob
                    // (verified lazily) or an unreferenced gap; a full
                    // decode must either error or agree with the pristine
                    // file.
                    if let Ok(unit) = db.to_unit() {
                        assert_eq!(
                            unit.assigns, baseline.assigns,
                            "flip at {pos} went unnoticed"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn flipped_block_byte_is_caught_on_fetch_and_by_verify_all() {
        let unit = compile_source(
            "int x, y, z; void f(void) { x = y; y = z; z = x; }",
            "a.c",
            &LowerOptions::default(),
        )
        .unwrap();
        let full = write_object(&unit);
        let pristine = Database::open(full.clone()).unwrap();
        assert!(pristine.verify_all().is_ok());
        // Find the dynamic blob: flip a byte inside the last assignment
        // record of the file (blob bytes sit at the end of the dynamic
        // section). Locate it by diffing open results over flips from the
        // end until one is only caught lazily.
        let mut caught_lazily = false;
        for pos in (0..full.len()).rev() {
            let mut bytes = full.clone();
            bytes[pos] ^= 0xff;
            if let Ok(db) = Database::open(bytes) {
                let lazy_err = db.verify_all().is_err();
                if lazy_err {
                    caught_lazily = true;
                    // Every block is either clean or a typed error.
                    for i in 0..db.objects().len() {
                        let _ = db.block(ObjId(i as u32));
                    }
                    break;
                }
            }
        }
        assert!(caught_lazily, "no flip exercised the lazy block checksum");
    }

    #[test]
    fn truncation_is_detected() {
        let unit = compile_source(
            "int x, *p; void f(void) { p = &x; }",
            "a.c",
            &LowerOptions::default(),
        )
        .unwrap();
        let full = write_object(&unit);
        let truncated = full[..full.len() - 10].to_vec();
        assert!(Database::open(truncated).is_err());
    }
}
