//! # cla-cladb — the compile-link-analyze object-file database
//!
//! The architectural contribution of the paper: program facts (primitive
//! assignments, function signatures, symbol tables) live in a compact,
//! heavily indexed, sectioned object file. The *compile* phase (`cla-ir`)
//! produces one database per source file; [`link`] merges them into a
//! program database with global symbols unified; [`Database`] serves the
//! *analyze* phase with demand loading — only the blocks an analysis touches
//! are ever decoded, and a decoded block may be discarded and re-read later
//! (load-and-throw-away), keeping the in-core footprint small.
//!
//! ```
//! use cla_ir::{compile_source, LowerOptions};
//! use cla_cladb::{write_object, Database, link};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let a = compile_source("int shared; int *p; void f(void) { p = &shared; }", "a.c",
//!                        &LowerOptions::default())?;
//! let b = compile_source("extern int shared; int q; void g(void) { q = shared; }", "b.c",
//!                        &LowerOptions::default())?;
//! let (program, _) = link(&[a, b], "prog");
//! let db = Database::open(write_object(&program))?;
//! assert_eq!(db.static_assigns()?.len(), 1);
//! # Ok(())
//! # }
//! ```

mod dump;
pub mod fault;
mod format;
mod linker;
mod reader;
pub mod transform;
mod writer;

pub use dump::{census, dump, is_static_assign};
pub use format::{
    fnv64, fnv64_tagged, DbError, SectionId, ASSIGN_RECORD_SIZE, HEADER_FIXED_SIZE, MAGIC,
    NONE_U32, SECTION_ENTRY_SIZE, VERSION,
};
pub use linker::{link, LinkSet, LinkStats, Linker, StreamLinker};
pub use reader::{Database, LoadStats};
pub use writer::{atomic_write_bytes, block_key, sweep_stale_tmp, write_object, write_object_file};

#[cfg(test)]
mod tests {
    use super::*;
    use cla_ir::{compile_source, LowerOptions};

    #[test]
    fn compile_link_analyze_pipeline() {
        let sources = [
            ("a.c", "int shared, *p; void fa(void) { p = &shared; }"),
            (
                "b.c",
                "extern int shared; extern int *p; int *q; void fb(void) { q = p; }",
            ),
            ("c.c", "extern int *q; int r; void fc(void) { r = *q; }"),
        ];
        let units: Vec<_> = sources
            .iter()
            .map(|(n, s)| compile_source(s, n, &LowerOptions::default()).unwrap())
            .collect();
        let (program, stats) = link(&units, "prog");
        assert_eq!(stats.units, 3);
        let db = Database::open(write_object(&program)).unwrap();
        // One shared object, one p, one q.
        assert_eq!(program.find_objects("shared").count(), 1);
        assert_eq!(program.find_objects("p").count(), 1);
        // Static section: p = &shared.
        let statics = db.static_assigns().unwrap();
        assert_eq!(statics.len(), 1);
        // The executable has the same format as object files: re-open works.
        let rewritten = write_object(&db.to_unit().unwrap());
        assert!(Database::open(rewritten).is_ok());
    }

    #[test]
    fn object_file_is_compact() {
        // The database should cost a bounded number of bytes per assignment
        // (the paper's object files are a few MB for hundreds of thousands
        // of assignments).
        let src = r"
            int a0, a1, a2, a3, a4, a5, a6, a7, a8, a9;
            void f(void) {
                a0 = a1; a1 = a2; a2 = a3; a3 = a4; a4 = a5;
                a5 = a6; a6 = a7; a7 = a8; a8 = a9; a9 = a0;
            }
        ";
        let unit = compile_source(src, "a.c", &LowerOptions::default()).unwrap();
        let bytes = write_object(&unit);
        let per_assign = bytes.len() / unit.assigns.len();
        assert!(per_assign < 200, "bytes per assignment: {per_assign}");
    }
}
