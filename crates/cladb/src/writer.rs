//! Object-file writer: serializes a [`CompiledUnit`] into the sectioned
//! format of [`format`](crate::format), and provides crash-safe persistence
//! via [`write_object_file`] (write-to-temp + fsync + atomic rename), so an
//! interrupted compile or link never leaves a half-written `.clao` behind
//! for a later phase to load.

use crate::format::{fnv64, fnv64_tagged, SectionEntry, SectionId, MAGIC, NONE_U32, VERSION};
use cla_ir::{CompiledUnit, ObjId, PrimAssign};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::Path;

/// Little-endian append helpers over a plain byte vector.
trait Put {
    fn put_u8(&mut self, v: u8);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
}

impl Put for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

/// String interner for one object file.
#[derive(Default)]
struct Strings {
    list: Vec<String>,
    index: HashMap<String, u32>,
}

impl Strings {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&i) = self.index.get(s) {
            return i;
        }
        let i = self.list.len() as u32;
        self.list.push(s.to_string());
        self.index.insert(s.to_string(), i);
        i
    }
}

fn put_assign(buf: &mut Vec<u8>, a: &PrimAssign) {
    buf.put_u8(a.kind as u8);
    buf.put_u32_le(a.dst.0);
    buf.put_u32_le(a.src.0);
    buf.put_u8(a.strength as u8);
    buf.put_u8(a.op as u8);
    buf.put_u32_le(a.loc.file.0);
    buf.put_u32_le(a.loc.line);
}

/// Serializes a compiled unit to object-file bytes.
///
/// The dynamic section groups non-address assignments into per-object blocks
/// keyed by their *source* object (paper Figure 4: the block for `z` holds
/// `x = z` and `*p = z`); address-of assignments go to the always-loaded
/// static section.
pub fn write_object(unit: &CompiledUnit) -> Vec<u8> {
    let obs = cla_obs::global();
    let mut sp = obs.span("db", "db.write_object");
    sp.set("unit", unit.file.as_str());
    let mut strings = Strings::default();

    // ---- file section payload (names interned) ----
    let mut file_sec = Vec::new();
    file_sec.put_u32_le(unit.files.names().len() as u32);
    for name in unit.files.names() {
        let sid = strings.intern(name);
        file_sec.put_u32_le(sid);
    }

    // ---- object section ----
    let mut obj_sec = Vec::new();
    obj_sec.put_u32_le(unit.objects.len() as u32);
    for o in &unit.objects {
        obj_sec.put_u32_le(strings.intern(&o.name));
        match &o.link_name {
            Some(l) => obj_sec.put_u32_le(strings.intern(l)),
            None => obj_sec.put_u32_le(NONE_U32),
        }
        obj_sec.put_u32_le(strings.intern(&o.ty));
        obj_sec.put_u8(o.kind as u8);
        // Flags byte (v3): bit 0 = defined. Spare bits reserved.
        obj_sec.put_u8(u8::from(o.defined));
        obj_sec.put_u32_le(o.loc.file.0);
        obj_sec.put_u32_le(o.loc.line);
        obj_sec.put_u32_le(o.in_func.map_or(NONE_U32, |f| f.0));
    }

    // ---- global (linking) section ----
    let globals: Vec<(u32, u32)> = unit
        .objects
        .iter()
        .enumerate()
        .filter_map(|(i, o)| o.link_name.as_ref().map(|l| (strings.intern(l), i as u32)))
        .collect();
    let mut glob_sec = Vec::new();
    glob_sec.put_u32_le(globals.len() as u32);
    for (sid, oid) in &globals {
        glob_sec.put_u32_le(*sid);
        glob_sec.put_u32_le(*oid);
    }

    // ---- static + dynamic sections ----
    let mut static_sec = Vec::new();
    let statics: Vec<&PrimAssign> = unit
        .assigns
        .iter()
        .filter(|a| a.kind == cla_ir::AssignKind::Addr)
        .collect();
    static_sec.put_u32_le(statics.len() as u32);
    for a in &statics {
        put_assign(&mut static_sec, a);
    }

    // Group dynamic assignments by source object.
    let nobjs = unit.objects.len();
    let mut blocks: Vec<Vec<&PrimAssign>> = vec![Vec::new(); nobjs];
    for a in &unit.assigns {
        if a.kind != cla_ir::AssignKind::Addr {
            blocks[a.src.index()].push(a);
        }
    }
    let mut dyn_sec = Vec::new();
    dyn_sec.put_u32_le(nobjs as u32);
    // Index: per object, (relative blob offset, count, block checksum). The
    // checksum covers the block's encoded bytes and is verified lazily by
    // the reader on the block's first demand load.
    let mut blob = Vec::new();
    let mut index = Vec::with_capacity(nobjs);
    for block in &blocks {
        let start = blob.len();
        for a in block {
            put_assign(&mut blob, a);
        }
        index.push((start as u64, block.len() as u32, fnv64(&blob[start..])));
    }
    for (off, count, sum) in &index {
        dyn_sec.put_u64_le(*off);
        dyn_sec.put_u32_le(*count);
        dyn_sec.put_u64_le(*sum);
    }
    let dyn_index_len = dyn_sec.len();
    dyn_sec.extend_from_slice(&blob);

    // ---- funsig section ----
    let mut sig_sec = Vec::new();
    sig_sec.put_u32_le(unit.funsigs.len() as u32);
    for s in &unit.funsigs {
        sig_sec.put_u32_le(s.obj.0);
        sig_sec.put_u32_le(s.ret.0);
        sig_sec.put_u8(u8::from(s.is_indirect));
        sig_sec.put_u32_le(s.params.len() as u32);
        for p in &s.params {
            sig_sec.put_u32_le(p.0);
        }
    }

    // ---- target section: display name -> object ----
    // Heap sites ride along with the program objects: they show up inside
    // points-to sets (`heap@a.c:12`, the `<unknown>` summary object), so
    // they must be addressable by name in queries too.
    let mut targets: Vec<(u32, u32)> = unit
        .objects
        .iter()
        .enumerate()
        .filter(|(_, o)| o.kind.is_program_object() || o.kind == cla_ir::ObjKind::Heap)
        .map(|(i, o)| (strings.intern(&o.name), i as u32))
        .collect();
    targets.sort_unstable();
    let mut tgt_sec = Vec::new();
    tgt_sec.put_u32_le(targets.len() as u32);
    for (sid, oid) in &targets {
        tgt_sec.put_u32_le(*sid);
        tgt_sec.put_u32_le(*oid);
    }

    // ---- meta section ----
    let mut meta_sec = Vec::new();
    meta_sec.put_u32_le(strings.intern(&unit.file));
    meta_sec.put_u64_le(unit.assigns.len() as u64);

    // ---- string section (interned last, after all interning) ----
    let mut str_sec = Vec::new();
    str_sec.put_u32_le(strings.list.len() as u32);
    for s in &strings.list {
        str_sec.put_u32_le(s.len() as u32);
        str_sec.extend_from_slice(s.as_bytes());
    }

    // ---- assemble ----
    let sections: Vec<(SectionId, Vec<u8>)> = vec![
        (SectionId::String, str_sec),
        (SectionId::File, file_sec),
        (SectionId::Object, obj_sec),
        (SectionId::Global, glob_sec),
        (SectionId::Static, static_sec),
        (SectionId::Dynamic, dyn_sec),
        (SectionId::FunSig, sig_sec),
        (SectionId::Target, tgt_sec),
        (SectionId::Meta, meta_sec),
    ];
    for (id, body) in &sections {
        obs.counter_with(
            "cla_db_section_bytes_written_total",
            &[("section", id.name())],
        )
        .add(body.len() as u64);
    }
    let header_len =
        crate::format::HEADER_FIXED_SIZE + sections.len() * crate::format::SECTION_ENTRY_SIZE;
    let mut out =
        Vec::with_capacity(header_len + sections.iter().map(|(_, b)| b.len()).sum::<usize>());
    let mut offset = header_len as u64;
    let mut entries = Vec::new();
    for (id, body) in &sections {
        // The dynamic section's checksum covers only its eagerly read index
        // prefix; the blob behind it is covered by the per-block checksums,
        // so demand loading never hashes data it does not decode.
        let verified = if *id == SectionId::Dynamic {
            &body[..dyn_index_len]
        } else {
            &body[..]
        };
        entries.push(SectionEntry {
            id: *id as u32,
            offset,
            len: body.len() as u64,
            checksum: fnv64_tagged(*id as u32, verified),
        });
        offset += body.len() as u64;
    }
    // Section table bytes (count + entries), covered by the header checksum
    // so damage to any offset/len/checksum field is caught before use.
    let mut table = Vec::with_capacity(header_len - 16);
    table.put_u32_le(sections.len() as u32);
    for e in &entries {
        table.put_u32_le(e.id);
        table.put_u64_le(e.offset);
        table.put_u64_le(e.len);
        table.put_u64_le(e.checksum);
    }
    out.put_u32_le(MAGIC);
    out.put_u32_le(VERSION);
    out.put_u64_le(fnv64(&table));
    out.extend_from_slice(&table);
    for (_, body) in sections {
        out.extend_from_slice(&body);
    }
    sp.set("assigns", unit.assigns.len());
    sp.set("bytes", out.len());
    out
}

/// Writes `bytes` to `path` crash-safely: the data goes to a temporary file
/// in the same directory, is fsync'd, and is atomically renamed over the
/// destination, after which the directory itself is fsync'd. A reader (or a
/// crash at any instant) sees either the complete old file or the complete
/// new file — never a prefix.
///
/// # Errors
///
/// Any I/O failure; the temporary file is removed on error.
pub fn atomic_write_bytes(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    // A per-write sequence number keeps concurrent writers *within* one
    // process (e.g. two serve sessions sharing a snapshot directory) from
    // colliding on the temporary name — a collision would let one writer
    // truncate the other's half-written temp and rename garbage into place.
    static WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let base = path
        .file_name()
        .ok_or_else(|| std::io::Error::other("path has no file name"))?
        .to_string_lossy()
        .into_owned();
    let seq = WRITE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = dir.join(format!(".{base}.tmp.{}.{seq}", std::process::id()));
    let write = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        // Data must be durable before the rename makes it visible,
        // otherwise a crash could publish a name pointing at garbage.
        f.sync_all()?;
        std::fs::rename(&tmp, path)?;
        // Durable rename: fsync the directory entry. Best effort — some
        // filesystems refuse to open directories for syncing.
        if let Ok(d) = std::fs::File::open(&dir) {
            let _ = d.sync_all();
        }
        Ok(())
    })();
    if write.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    write
}

/// Removes stale temporaries left in `dir` by a crash mid-write. Matches the
/// `.{base}.tmp.{pid}.{seq}` names produced by [`atomic_write_bytes`] (and
/// the older `.{base}.tmp.{pid}` form) plus plain `*.tmp` leftovers,
/// skipping any temporary owned by the current process — a concurrent
/// writer in this process may still be mid-rename, so sweeping its temp
/// would turn an in-flight save into a lost write. Returns the number of
/// files reclaimed and bumps `cla_db_tmp_reclaimed_total`.
///
/// # Errors
///
/// Fails only if `dir` cannot be read; per-file removal errors are ignored
/// (another process may have swept the same file first).
pub fn sweep_stale_tmp(dir: &Path) -> std::io::Result<usize> {
    let own_suffix = format!(".{}", std::process::id());
    let own_infix = format!(".tmp.{}.", std::process::id());
    let mut reclaimed = 0usize;
    for entry in std::fs::read_dir(dir)? {
        let Ok(entry) = entry else { continue };
        if !entry.file_type().is_ok_and(|t| t.is_file()) {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        let ours = name.ends_with(&own_suffix) || name.contains(&own_infix);
        let stale =
            (name.starts_with('.') && name.contains(".tmp.") && !ours) || name.ends_with(".tmp");
        if stale && std::fs::remove_file(entry.path()).is_ok() {
            reclaimed += 1;
        }
    }
    if reclaimed > 0 {
        cla_obs::global()
            .counter("cla_db_tmp_reclaimed_total")
            .add(reclaimed as u64);
    }
    Ok(reclaimed)
}

/// Serializes `unit` and persists it crash-safely at `path`
/// (see [`atomic_write_bytes`]). Returns the encoded size in bytes.
///
/// # Errors
///
/// Any I/O failure from the write-fsync-rename protocol.
pub fn write_object_file(unit: &CompiledUnit, path: &Path) -> std::io::Result<usize> {
    let bytes = write_object(unit);
    atomic_write_bytes(path, &bytes)?;
    Ok(bytes.len())
}

/// Returns the per-source-object block an assignment belongs to, mirroring
/// the writer's grouping (exposed for tests).
pub fn block_key(a: &PrimAssign) -> Option<ObjId> {
    if a.kind == cla_ir::AssignKind::Addr {
        None
    } else {
        Some(a.src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cla_ir::{compile_source, LowerOptions};

    #[test]
    fn writes_nonempty_object() {
        let unit = compile_source(
            "int x, *p; void f(void) { p = &x; x = *p; }",
            "a.c",
            &LowerOptions::default(),
        )
        .unwrap();
        let bytes = write_object(&unit);
        assert!(bytes.len() > 64);
        // Magic at the front.
        assert_eq!(&bytes[..4], &MAGIC.to_le_bytes());
    }

    #[test]
    fn block_key_is_source() {
        let unit = compile_source(
            "int x, y, *p; void f(void) { x = y; p = &x; }",
            "a.c",
            &LowerOptions::default(),
        )
        .unwrap();
        let copy = unit
            .assigns
            .iter()
            .find(|a| a.kind == cla_ir::AssignKind::Copy)
            .unwrap();
        let addr = unit
            .assigns
            .iter()
            .find(|a| a.kind == cla_ir::AssignKind::Addr)
            .unwrap();
        assert_eq!(block_key(copy), Some(copy.src));
        assert_eq!(block_key(addr), None);
    }

    #[test]
    fn deterministic_output() {
        let unit = compile_source(
            "int a, b, *p; void f(void) { p = &a; b = a; }",
            "a.c",
            &LowerOptions::default(),
        )
        .unwrap();
        assert_eq!(write_object(&unit), write_object(&unit));
    }
}
