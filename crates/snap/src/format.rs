//! Snapshot file format constants and the typed error.
//!
//! A `.clasnap` file persists a solved [`cla_core::SealedGraph`] in the same
//! sectioned, checksummed shape as the cladb object format (DESIGN.md §11):
//! a fixed header (`magic`, `version`, header checksum, section count)
//! followed by a section table and the section bodies. The header checksum
//! covers the table; each section carries an id-tagged FNV-1a-64 checksum
//! verified on first access, so opening a snapshot validates only the header
//! and the provenance record — the multi-megabyte set payload is not hashed
//! until (unless) a caller actually loads the graph.
//!
//! Geometry is shared with the object format — [`HEADER_FIXED_SIZE`] and
//! [`SECTION_ENTRY_SIZE`] are re-exported from `cla-cladb` — so the PR 4
//! fault-injection sweeps (truncation, bit flips, section-table shuffles
//! with a recomputed header checksum) apply to snapshots unchanged.

pub use cla_cladb::{HEADER_FIXED_SIZE, SECTION_ENTRY_SIZE};

/// Snapshot file magic: `CLAS` in little-endian byte order. Distinct from
/// the object-file magic so neither reader ever half-decodes the other's
/// files.
pub const MAGIC: u32 = 0x5341_4C43;

/// Snapshot format version. Bumped on any layout change; old versions are
/// rejected with [`SnapError::BadVersion`], never migrated silently.
pub const VERSION: u32 = 1;

/// Section identifiers. Same 28-byte table-entry encoding as the object
/// format; ids are tag inputs to the per-section checksums, so two sections
/// swapped wholesale in the table are still caught.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum SnapSectionId {
    /// Provenance: solver options, options fingerprint, per-input closure
    /// hashes, object count. The only section verified at open time.
    Prov = 1,
    /// Interned string payload for object names.
    Strings = 2,
    /// Per-object display-name string id.
    Names = 3,
    /// Per-object set id into [`SnapSectionId::Sets`] (`NONE_U32` = empty),
    /// the flattened representative table: SCC members and hash-consed
    /// duplicates carry the same id, which the loader turns back into a
    /// shared `Arc`.
    Reps = 4,
    /// Distinct points-to sets, each encoded once: count, then per set a
    /// length and its sorted object ids.
    Sets = 5,
    /// The [`cla_core::SolveStats`] of the solve that produced the graph.
    Stats = 6,
}

impl SnapSectionId {
    /// All sections a writer emits, in file order.
    pub const ALL: [SnapSectionId; 6] = [
        SnapSectionId::Prov,
        SnapSectionId::Strings,
        SnapSectionId::Names,
        SnapSectionId::Reps,
        SnapSectionId::Sets,
        SnapSectionId::Stats,
    ];

    /// Human-readable section name (for `snapshot-info` and errors).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SnapSectionId::Prov => "prov",
            SnapSectionId::Strings => "strings",
            SnapSectionId::Names => "names",
            SnapSectionId::Reps => "reps",
            SnapSectionId::Sets => "sets",
            SnapSectionId::Stats => "stats",
        }
    }

    /// Decodes a section id, if known.
    #[must_use]
    pub fn from_u32(v: u32) -> Option<SnapSectionId> {
        SnapSectionId::ALL.into_iter().find(|&id| id as u32 == v)
    }
}

/// Error type for snapshot decoding. Mirrors `DbError`'s taxonomy plus a
/// [`SnapError::Provenance`] variant: a structurally valid snapshot of the
/// *wrong inputs* is not corruption, it is a cache miss that the caller
/// answers with a full re-solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// Not a snapshot file (bad or short magic).
    BadMagic,
    /// A snapshot from an unsupported format version.
    BadVersion(u32),
    /// A required section is absent.
    MissingSection(&'static str),
    /// Structurally invalid bytes.
    Corrupt(String),
    /// A checksum mismatch (damaged bytes).
    Checksum(String),
    /// The file could not be read or written.
    Io(String),
    /// Valid snapshot, wrong provenance (stale inputs or options).
    Provenance(String),
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapError::MissingSection(s) => write!(f, "missing snapshot section: {s}"),
            SnapError::Corrupt(m) => write!(f, "corrupt snapshot: {m}"),
            SnapError::Checksum(m) => write!(f, "snapshot checksum mismatch: {m}"),
            SnapError::Io(m) => write!(f, "snapshot i/o error: {m}"),
            SnapError::Provenance(m) => write!(f, "snapshot provenance mismatch: {m}"),
        }
    }
}

impl std::error::Error for SnapError {}

impl From<std::io::Error> for SnapError {
    fn from(e: std::io::Error) -> Self {
        SnapError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magic_spells_clas() {
        assert_eq!(&MAGIC.to_le_bytes(), b"CLAS");
    }

    #[test]
    fn section_ids_round_trip() {
        for id in SnapSectionId::ALL {
            assert_eq!(SnapSectionId::from_u32(id as u32), Some(id));
        }
        assert_eq!(SnapSectionId::from_u32(0), None);
        assert_eq!(SnapSectionId::from_u32(7), None);
    }

    #[test]
    fn errors_display_their_kind() {
        assert!(SnapError::BadMagic.to_string().contains("magic"));
        assert!(SnapError::BadVersion(9).to_string().contains('9'));
        assert!(SnapError::Provenance("x".into())
            .to_string()
            .contains("provenance"));
    }
}
