//! Content-addressed build cache: preprocessed-source hash → object file.
//!
//! Persists what PR 1's in-memory hash-diff reload only kept per process:
//! a compile whose preprocessed closure hashes to a cached key is skipped
//! entirely across restarts. Entries are ordinary `.clao` files named by
//! their 16-hex-digit key, written crash-safely, and re-validated through
//! the checksummed object reader on every hit — a damaged entry is a miss
//! that gets recompiled and overwritten, never an error.
//!
//! Eviction is a size-capped LRU sweep: when the directory grows past the
//! configured cap, oldest-modified entries are removed until it fits. Hits
//! refresh an entry's modified time (`File::set_modified`, best effort) so
//! recency tracking survives without any sidecar metadata.

use cla_core::pipeline::CompileCache;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Default size cap: plenty for every workload profile in this repo while
/// staying trivial to blow away.
pub const DEFAULT_MAX_BYTES: u64 = 256 * 1024 * 1024;

/// An open cache directory.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
    max_bytes: u64,
    /// Running estimate of the directory's payload size; a sweep resets it
    /// to the measured total.
    approx_bytes: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Stale temporaries reclaimed when the cache was opened.
    reclaimed: usize,
}

impl DiskCache {
    /// Opens (creating if needed) a cache directory with the default size
    /// cap. Stale `*.tmp` files from a crashed writer are swept first.
    ///
    /// # Errors
    ///
    /// Directory creation or listing failure.
    pub fn open(dir: &Path) -> std::io::Result<DiskCache> {
        DiskCache::with_capacity(dir, DEFAULT_MAX_BYTES)
    }

    /// [`DiskCache::open`] with an explicit size cap in bytes.
    ///
    /// # Errors
    ///
    /// Directory creation or listing failure.
    pub fn with_capacity(dir: &Path, max_bytes: u64) -> std::io::Result<DiskCache> {
        std::fs::create_dir_all(dir)?;
        let reclaimed = cla_cladb::sweep_stale_tmp(dir)?;
        let cache = DiskCache {
            dir: dir.to_path_buf(),
            max_bytes,
            approx_bytes: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            reclaimed,
        };
        let total = cache.sweep()?;
        cache.approx_bytes.store(total, Ordering::Relaxed);
        Ok(cache)
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.clao"))
    }

    /// Stale temporaries removed at open.
    #[must_use]
    pub fn reclaimed_tmp(&self) -> usize {
        self.reclaimed
    }

    /// (hits, misses) so far for this handle.
    #[must_use]
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Enforces the size cap: lists entries, and while the total exceeds
    /// the cap removes the least-recently-modified ones. Returns the total
    /// payload bytes remaining. Bumps `cla_snap_cache_evictions_total` per
    /// removed entry.
    ///
    /// # Errors
    ///
    /// Directory listing failure (individual removals are best effort).
    pub fn sweep(&self) -> std::io::Result<u64> {
        let mut entries: Vec<(std::time::SystemTime, u64, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let Ok(entry) = entry else { continue };
            let path = entry.path();
            if path.extension().is_none_or(|e| e != "clao") {
                continue;
            }
            let Ok(meta) = entry.metadata() else { continue };
            let modified = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
            entries.push((modified, meta.len(), path));
        }
        let mut total: u64 = entries.iter().map(|(_, len, _)| len).sum();
        if total > self.max_bytes {
            entries.sort_by_key(|(modified, _, _)| *modified);
            let evictions = cla_obs::global().counter("cla_snap_cache_evictions_total");
            for (_, len, path) in &entries {
                if total <= self.max_bytes {
                    break;
                }
                if std::fs::remove_file(path).is_ok() {
                    total -= len;
                    evictions.inc();
                }
            }
        }
        self.approx_bytes.store(total, Ordering::Relaxed);
        Ok(total)
    }
}

impl CompileCache for DiskCache {
    fn load(&self, key: u64) -> Option<Vec<u8>> {
        let path = self.entry_path(key);
        match std::fs::read(&path) {
            Ok(bytes) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                cla_obs::global().counter("cla_snap_cache_hits_total").inc();
                // Refresh recency for the LRU sweep; best effort.
                if let Ok(f) = std::fs::File::options().append(true).open(&path) {
                    let _ = f.set_modified(std::time::SystemTime::now());
                }
                Some(bytes)
            }
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                cla_obs::global()
                    .counter("cla_snap_cache_misses_total")
                    .inc();
                None
            }
        }
    }

    fn store(&self, key: u64, bytes: &[u8]) {
        // Best effort by contract: a failed store only costs a recompile.
        if cla_cladb::atomic_write_bytes(&self.entry_path(key), bytes).is_err() {
            return;
        }
        let total = self
            .approx_bytes
            .fetch_add(bytes.len() as u64, Ordering::Relaxed)
            + bytes.len() as u64;
        if total > self.max_bytes {
            let _ = self.sweep();
        }
    }
}
