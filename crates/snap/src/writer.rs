//! Snapshot writer: serializes a solved [`SealedGraph`] plus its
//! [`Provenance`] into the sectioned `.clasnap` format and persists it with
//! the crash-safe temp+fsync+rename protocol from `cla-cladb`, so a crash
//! mid-save never leaves a half-written snapshot for a later warm start to
//! trip over.

use crate::format::{SnapSectionId, HEADER_FIXED_SIZE, MAGIC, SECTION_ENTRY_SIZE, VERSION};
use cla_cladb::{atomic_write_bytes, fnv64, fnv64_tagged, NONE_U32};
use cla_core::pipeline::Provenance;
use cla_core::SealedGraph;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Packs the solver options into the provenance flag byte.
pub(crate) fn solver_flags(opts: cla_core::SolveOptions) -> u8 {
    u8::from(opts.cache) | (u8::from(opts.cycle_elim) << 1)
}

/// Serializes a snapshot to bytes.
///
/// `names` are the per-object display names (one per object, same order as
/// the sealed graph's sets); they let a snapshot answer by-name queries
/// standalone. The per-object set table stores one id per object while each
/// distinct set is encoded exactly once — objects unified into one SCC (or
/// hash-consed to an identical set) share an id, so the on-disk size and
/// the reloaded in-memory sharing both match what [`cla_core::Warm::seal`]
/// produced.
#[must_use]
pub fn encode_snapshot(prov: &Provenance, sealed: &SealedGraph, names: &[String]) -> Vec<u8> {
    // ---- prov ----
    let mut prov_sec = Vec::new();
    prov_sec.push(solver_flags(prov.solver));
    put_u64(&mut prov_sec, prov.options_fp);
    put_u32(&mut prov_sec, prov.inputs.len() as u32);
    for (name, hash) in &prov.inputs {
        put_str(&mut prov_sec, name);
        put_u64(&mut prov_sec, *hash);
    }
    put_u32(&mut prov_sec, sealed.object_count() as u32);

    // ---- strings + names ----
    let mut interned: Vec<&str> = Vec::new();
    let mut index: HashMap<&str, u32> = HashMap::new();
    let mut names_sec = Vec::new();
    put_u32(&mut names_sec, names.len() as u32);
    for name in names {
        let sid = *index.entry(name.as_str()).or_insert_with(|| {
            interned.push(name.as_str());
            (interned.len() - 1) as u32
        });
        put_u32(&mut names_sec, sid);
    }
    let mut str_sec = Vec::new();
    put_u32(&mut str_sec, interned.len() as u32);
    for s in &interned {
        put_str(&mut str_sec, s);
    }

    // ---- reps + sets (sharing encoded once, referenced by id) ----
    let mut set_ids: HashMap<*const Vec<cla_ir::ObjId>, u32> = HashMap::new();
    let mut sets_sec = Vec::new();
    let mut nsets = 0u32;
    let mut sets_body = Vec::new();
    let mut reps_sec = Vec::new();
    put_u32(&mut reps_sec, sealed.sets().len() as u32);
    for set in sealed.sets() {
        if set.is_empty() {
            put_u32(&mut reps_sec, NONE_U32);
            continue;
        }
        let id = *set_ids.entry(Arc::as_ptr(set)).or_insert_with(|| {
            put_u32(&mut sets_body, set.len() as u32);
            for o in set.iter() {
                put_u32(&mut sets_body, o.0);
            }
            nsets += 1;
            nsets - 1
        });
        put_u32(&mut reps_sec, id);
    }
    put_u32(&mut sets_sec, nsets);
    sets_sec.extend_from_slice(&sets_body);

    // ---- stats ----
    let st = sealed.stats();
    let mut stats_sec = Vec::new();
    for v in [
        st.passes as u64,
        st.getlvals_calls,
        st.dfs_visits,
        st.cache_hits,
        st.unifications,
        st.edges_added,
        st.sets_shared,
        st.complex_in_core as u64,
        st.nodes as u64,
        st.approx_bytes as u64,
    ] {
        put_u64(&mut stats_sec, v);
    }

    // ---- assemble: same header geometry as the object format ----
    let sections: Vec<(SnapSectionId, Vec<u8>)> = vec![
        (SnapSectionId::Prov, prov_sec),
        (SnapSectionId::Strings, str_sec),
        (SnapSectionId::Names, names_sec),
        (SnapSectionId::Reps, reps_sec),
        (SnapSectionId::Sets, sets_sec),
        (SnapSectionId::Stats, stats_sec),
    ];
    let header_len = HEADER_FIXED_SIZE + sections.len() * SECTION_ENTRY_SIZE;
    let mut offset = header_len as u64;
    let mut table = Vec::with_capacity(header_len - 16);
    put_u32(&mut table, sections.len() as u32);
    for (id, body) in &sections {
        put_u32(&mut table, *id as u32);
        put_u64(&mut table, offset);
        put_u64(&mut table, body.len() as u64);
        put_u64(&mut table, fnv64_tagged(*id as u32, body));
        offset += body.len() as u64;
    }
    let mut out =
        Vec::with_capacity(header_len + sections.iter().map(|(_, b)| b.len()).sum::<usize>());
    put_u32(&mut out, MAGIC);
    put_u32(&mut out, VERSION);
    put_u64(&mut out, fnv64(&table));
    out.extend_from_slice(&table);
    for (_, body) in sections {
        out.extend_from_slice(&body);
    }
    out
}

/// Encodes and persists a snapshot crash-safely at `path`. Returns the
/// encoded size in bytes. Timed under a `snap.save` span; bumps
/// `cla_snap_saves_total` and `cla_snap_bytes_written_total`.
///
/// # Errors
///
/// Any I/O failure from the write-fsync-rename protocol.
pub fn save_snapshot(
    path: &Path,
    prov: &Provenance,
    sealed: &SealedGraph,
    names: &[String],
) -> std::io::Result<usize> {
    let obs = cla_obs::global();
    let mut sp = obs.span("snap", "snap.save");
    sp.set("objects", sealed.object_count());
    let bytes = encode_snapshot(prov, sealed, names);
    sp.set("bytes", bytes.len());
    atomic_write_bytes(path, &bytes)?;
    obs.counter("cla_snap_saves_total").inc();
    obs.counter("cla_snap_bytes_written_total")
        .add(bytes.len() as u64);
    Ok(bytes.len())
}
