//! On-disk snapshot store: one snapshot per directory, matched by
//! provenance. This is the [`SnapshotHook`] implementation the pipeline and
//! the serve layer plug in — load succeeds only when the stored provenance
//! equals the requested one, so an edited source file (headers included),
//! a changed preprocessor define, or a flipped solver option can never
//! yield stale answers; it simply misses and the caller re-solves.

use crate::reader::Snapshot;
use crate::writer::save_snapshot;
use cla_core::pipeline::{Provenance, SnapshotHook};
use cla_core::SealedGraph;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// File name of the store's single snapshot.
pub const SNAPSHOT_FILE: &str = "graph.clasnap";

/// A directory holding (at most) one analysis snapshot.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
    loads: AtomicU64,
    saves: AtomicU64,
    mismatches: AtomicU64,
    /// Stale temporaries reclaimed when the store was opened.
    reclaimed: usize,
}

impl SnapshotStore {
    /// Opens (creating if needed) a snapshot directory. Stale `*.tmp`
    /// files left by a crash mid-save are swept here, before any writer
    /// can collide with them.
    ///
    /// # Errors
    ///
    /// Directory creation or listing failure.
    pub fn open(dir: &Path) -> std::io::Result<SnapshotStore> {
        std::fs::create_dir_all(dir)?;
        let reclaimed = cla_cladb::sweep_stale_tmp(dir)?;
        Ok(SnapshotStore {
            dir: dir.to_path_buf(),
            loads: AtomicU64::new(0),
            saves: AtomicU64::new(0),
            mismatches: AtomicU64::new(0),
            reclaimed,
        })
    }

    /// Path of the snapshot file (whether or not it exists yet).
    #[must_use]
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join(SNAPSHOT_FILE)
    }

    /// Stale temporaries removed at open.
    #[must_use]
    pub fn reclaimed_tmp(&self) -> usize {
        self.reclaimed
    }

    /// (successful loads, saves, provenance/decode mismatches) so far.
    #[must_use]
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.loads.load(Ordering::Relaxed),
            self.saves.load(Ordering::Relaxed),
            self.mismatches.load(Ordering::Relaxed),
        )
    }

    /// The stored snapshot's provenance, if a readable snapshot exists.
    #[must_use]
    pub fn stored_provenance(&self) -> Option<Provenance> {
        Snapshot::open(&self.snapshot_path())
            .ok()
            .map(|s| s.provenance().clone())
    }
}

impl SnapshotHook for SnapshotStore {
    fn load(&self, prov: &Provenance) -> Option<SealedGraph> {
        let path = self.snapshot_path();
        if !path.exists() {
            return None;
        }
        let snap = match Snapshot::open(&path) {
            Ok(s) => s,
            Err(_) => {
                // Unreadable or corrupt is a miss, not an error: the
                // caller re-solves and overwrites the bad file.
                self.mismatches.fetch_add(1, Ordering::Relaxed);
                cla_obs::global().counter("cla_snap_mismatch_total").inc();
                return None;
            }
        };
        if snap.provenance() != prov {
            self.mismatches.fetch_add(1, Ordering::Relaxed);
            cla_obs::global().counter("cla_snap_mismatch_total").inc();
            return None;
        }
        match snap.load_sealed() {
            Ok(sealed) => {
                self.loads.fetch_add(1, Ordering::Relaxed);
                Some(sealed)
            }
            Err(_) => {
                self.mismatches.fetch_add(1, Ordering::Relaxed);
                cla_obs::global().counter("cla_snap_mismatch_total").inc();
                None
            }
        }
    }

    fn save(&self, prov: &Provenance, sealed: &SealedGraph, names: &[String]) {
        // Best effort by contract: a failed save costs a cold start later,
        // nothing else.
        if save_snapshot(&self.snapshot_path(), prov, sealed, names).is_ok() {
            self.saves.fetch_add(1, Ordering::Relaxed);
        }
    }
}
