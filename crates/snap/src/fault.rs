//! Deterministic fault injection for snapshot files.
//!
//! Extends the PR 4 object-file harness (`cla_cladb::fault`) to the
//! `.clasnap` format, reusing its RNG, verdicts, report, and panic
//! suppression. The invariant is the same: a mutant either fails with a
//! typed [`crate::SnapError`] or decodes to the pristine snapshot exactly
//! (provenance, names, per-object sets, stats) — never a panic, never
//! silently wrong answers. Because the snapshot header shares the object
//! format's geometry, the sweeps mirror the object harness: truncation at
//! every byte offset, seeded 1–4-bit flips, and section-table entry swaps
//! with the header checksum alternately stale and recomputed (the
//! recomputed case is only catchable by the id-tagged section checksums).

use crate::format::{SnapError, HEADER_FIXED_SIZE, MAGIC, SECTION_ENTRY_SIZE, VERSION};
use crate::reader::Snapshot;
use cla_cladb::fault::{with_quiet_panics, FuzzReport, SplitMix64, Verdict};
use cla_cladb::fnv64;
use cla_core::pipeline::Provenance;
use cla_core::SolveStats;
use cla_ir::ObjId;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The pristine snapshot's fully decoded contents — the correctness oracle.
pub struct SnapOracle {
    prov: Provenance,
    names: Vec<String>,
    sets: Vec<Vec<ObjId>>,
    stats: SolveStats,
}

impl SnapOracle {
    /// Fully decodes `pristine`; fails if the input itself is not valid.
    ///
    /// # Errors
    ///
    /// Any [`SnapError`] from decoding the pristine bytes.
    pub fn new(pristine: &[u8]) -> Result<SnapOracle, SnapError> {
        let snap = Snapshot::from_bytes(pristine.to_vec())?;
        let sealed = snap.load_sealed()?;
        Ok(SnapOracle {
            prov: snap.provenance().clone(),
            names: snap.names()?,
            sets: (0..sealed.object_count())
                .map(|i| sealed.points_to(ObjId(i as u32)).to_vec())
                .collect(),
            stats: sealed.stats(),
        })
    }
}

/// Opens and fully decodes a mutant, comparing against the oracle. Touches
/// every read path: provenance, the name tables, every per-object set, and
/// the stats record.
fn exercise(bytes: Vec<u8>, oracle: &SnapOracle) -> Verdict {
    let result = catch_unwind(AssertUnwindSafe(|| -> Result<Verdict, SnapError> {
        let snap = Snapshot::from_bytes(bytes)?;
        let sealed = snap.load_sealed()?;
        let names = snap.names()?;
        let same = snap.provenance() == &oracle.prov
            && names == oracle.names
            && sealed.object_count() == oracle.sets.len()
            && (0..oracle.sets.len())
                .all(|i| sealed.points_to(ObjId(i as u32)) == &oracle.sets[i][..])
            && sealed.stats() == oracle.stats;
        Ok(if same {
            Verdict::Identical
        } else {
            Verdict::WrongData
        })
    }));
    match result {
        Ok(Ok(v)) => v,
        Ok(Err(_)) => Verdict::Rejected,
        Err(_) => Verdict::Panicked,
    }
}

/// Truncates the snapshot at every byte offset and exercises each prefix.
pub fn truncation_sweep(pristine: &[u8], oracle: &SnapOracle, report: &mut FuzzReport) {
    for cut in 0..pristine.len() {
        let verdict = exercise(pristine[..cut].to_vec(), oracle);
        report.record(verdict, || format!("snap truncate at {cut}"));
    }
}

/// Flips 1–4 seeded random bits per iteration and exercises the mutant.
pub fn bit_flip_round(
    pristine: &[u8],
    oracle: &SnapOracle,
    seed: u64,
    iters: u64,
    report: &mut FuzzReport,
) {
    let mut rng = SplitMix64(seed);
    for it in 0..iters {
        let mut bytes = pristine.to_vec();
        let nflips = 1 + rng.below(4);
        let mut flips = Vec::with_capacity(nflips as usize);
        for _ in 0..nflips {
            let pos = rng.below(bytes.len() as u64) as usize;
            let bit = rng.below(8) as u8;
            bytes[pos] ^= 1 << bit;
            flips.push((pos, bit));
        }
        let verdict = exercise(bytes, oracle);
        report.record(verdict, || {
            format!("snap bit flip iter {it} (seed {seed}): flips {flips:?}")
        });
    }
}

/// Swaps two random section-table entries' payloads (keeping the ids in
/// place). On odd iterations the header checksum is recomputed, so only
/// the id-tagged per-section checksums can catch the swap; on even
/// iterations the stale header checksum must reject it first.
pub fn section_shuffle_round(
    pristine: &[u8],
    oracle: &SnapOracle,
    seed: u64,
    iters: u64,
    report: &mut FuzzReport,
) {
    if pristine.len() < HEADER_FIXED_SIZE {
        return;
    }
    let magic = u32::from_le_bytes(pristine[0..4].try_into().unwrap());
    let version = u32::from_le_bytes(pristine[4..8].try_into().unwrap());
    if magic != MAGIC || version != VERSION {
        return;
    }
    let nsections = u32::from_le_bytes(pristine[16..20].try_into().unwrap()) as usize;
    let table_end = HEADER_FIXED_SIZE + nsections * SECTION_ENTRY_SIZE;
    if nsections < 2 || pristine.len() < table_end {
        return;
    }
    let mut rng = SplitMix64(seed ^ 0x5ec7_1045);
    for it in 0..iters {
        let a = rng.below(nsections as u64) as usize;
        let mut b = rng.below(nsections as u64) as usize;
        if a == b {
            b = (b + 1) % nsections;
        }
        let mut bytes = pristine.to_vec();
        let ea = HEADER_FIXED_SIZE + a * SECTION_ENTRY_SIZE;
        let eb = HEADER_FIXED_SIZE + b * SECTION_ENTRY_SIZE;
        for k in 4..SECTION_ENTRY_SIZE {
            bytes.swap(ea + k, eb + k);
        }
        let fixed = it % 2 == 1;
        if fixed {
            let sum = fnv64(&bytes[16..table_end]);
            bytes[8..16].copy_from_slice(&sum.to_le_bytes());
        }
        let verdict = exercise(bytes, oracle);
        report.record(verdict, || {
            format!(
                "snap section shuffle iter {it} (seed {seed}): swapped entries {a}<->{b}, \
                 header checksum {}",
                if fixed { "recomputed" } else { "stale" }
            )
        });
    }
}

/// Runs the full deterministic fuzz battery over one pristine snapshot:
/// a truncation sweep at every byte offset, `iters` seeded bit-flip
/// mutants, and `min(iters, 200)` section-table shuffles.
///
/// # Errors
///
/// `Err` if the pristine input itself does not decode (the harness needs a
/// valid oracle before it can judge mutants).
pub fn run_snap_fuzz(pristine: &[u8], seed: u64, iters: u64) -> Result<FuzzReport, SnapError> {
    let oracle = SnapOracle::new(pristine)?;
    let mut report = FuzzReport::default();
    with_quiet_panics(|| {
        truncation_sweep(pristine, &oracle, &mut report);
        bit_flip_round(pristine, &oracle, seed, iters, &mut report);
        section_shuffle_round(pristine, &oracle, seed, iters.min(200), &mut report);
    });
    Ok(report)
}
