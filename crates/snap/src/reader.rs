//! Snapshot reader with demand verification.
//!
//! [`Snapshot::from_bytes`] validates only the header checksum (covering the
//! section table) and the small provenance section — enough to decide
//! whether the snapshot is usable at all. The heavyweight sections (the set
//! payload, the name tables) keep their bytes unverified until the first
//! call that needs them, mirroring the object reader's lazily verified
//! blocks: a server probing ten stale snapshots pays ten provenance reads,
//! not ten full-file hashes.
//!
//! Every read is bounds checked and reports a typed [`SnapError`] — no
//! snapshot, however damaged, can panic the loader (the `cla-tool db-fuzz
//! --snapshot` harness enforces this over seeded mutants).

use crate::format::{
    SnapError, SnapSectionId, HEADER_FIXED_SIZE, MAGIC, SECTION_ENTRY_SIZE, VERSION,
};
use cla_cladb::{fnv64, fnv64_tagged, NONE_U32};
use cla_core::pipeline::Provenance;
use cla_core::{SealedGraph, SolveOptions, SolveStats};
use cla_ir::ObjId;
use std::path::Path;
use std::sync::Arc;

/// Bounds-checked little-endian cursor (same discipline as the object
/// reader: a short buffer is a typed error, never a panic).
struct Cur<'a> {
    buf: &'a [u8],
}

fn short(n: usize) -> SnapError {
    SnapError::Corrupt(format!("unexpected end of section ({n} more bytes needed)"))
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cur { buf }
    }

    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn get_u8(&mut self) -> Result<u8, SnapError> {
        let (&v, rest) = self.buf.split_first().ok_or_else(|| short(1))?;
        self.buf = rest;
        Ok(v)
    }

    fn get_u32_le(&mut self) -> Result<u32, SnapError> {
        let (v, rest) = self.buf.split_at_checked(4).ok_or_else(|| short(4))?;
        self.buf = rest;
        Ok(u32::from_le_bytes(v.try_into().unwrap()))
    }

    fn get_u64_le(&mut self) -> Result<u64, SnapError> {
        let (v, rest) = self.buf.split_at_checked(8).ok_or_else(|| short(8))?;
        self.buf = rest;
        Ok(u64::from_le_bytes(v.try_into().unwrap()))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        let (v, rest) = self.buf.split_at_checked(n).ok_or_else(|| short(n))?;
        self.buf = rest;
        Ok(v)
    }
}

/// One decoded section-table entry (exposed for `snapshot-info`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapSection {
    /// Raw section id (may be unknown to this reader version).
    pub id: u32,
    /// Byte offset of the body within the file.
    pub offset: u64,
    /// Body length in bytes.
    pub len: u64,
    /// Id-tagged FNV-1a-64 checksum of the body.
    pub checksum: u64,
}

/// A snapshot file opened for demand-driven loading. Opening verifies the
/// header and provenance only; [`Snapshot::load_sealed`] and
/// [`Snapshot::names`] verify their sections on first use.
#[derive(Debug)]
pub struct Snapshot {
    data: Vec<u8>,
    table: Vec<SnapSection>,
    prov: Provenance,
    object_count: u32,
}

impl Snapshot {
    /// Opens snapshot bytes: header checksum, section table, provenance.
    ///
    /// # Errors
    ///
    /// [`SnapError`] on malformed or damaged input.
    pub fn from_bytes(data: Vec<u8>) -> Result<Snapshot, SnapError> {
        let mut hdr = Cur::new(&data);
        if hdr.remaining() < HEADER_FIXED_SIZE {
            return Err(SnapError::BadMagic);
        }
        if hdr.get_u32_le()? != MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = hdr.get_u32_le()?;
        if version != VERSION {
            return Err(SnapError::BadVersion(version));
        }
        let header_sum = hdr.get_u64_le()?;
        let table_start = HEADER_FIXED_SIZE - 4;
        let nsections = hdr.get_u32_le()? as usize;
        if hdr.remaining() < nsections.saturating_mul(SECTION_ENTRY_SIZE) {
            return Err(SnapError::Corrupt("truncated section table".into()));
        }
        let table_end = HEADER_FIXED_SIZE + nsections * SECTION_ENTRY_SIZE;
        if fnv64(&data[table_start..table_end]) != header_sum {
            cla_obs::global()
                .counter("cla_snap_checksum_fail_total")
                .inc();
            return Err(SnapError::Checksum("section table".into()));
        }
        let mut table = Vec::with_capacity(nsections);
        for _ in 0..nsections {
            table.push(SnapSection {
                id: hdr.get_u32_le()?,
                offset: hdr.get_u64_le()?,
                len: hdr.get_u64_le()?,
                checksum: hdr.get_u64_le()?,
            });
        }
        let mut prov_sec = section_body(&data, &table, SnapSectionId::Prov)?;
        let flags = prov_sec.get_u8()?;
        if flags & !0b11 != 0 {
            return Err(SnapError::Corrupt("bad solver flag bits".into()));
        }
        let solver = SolveOptions {
            cache: flags & 0b01 != 0,
            cycle_elim: flags & 0b10 != 0,
        };
        let options_fp = prov_sec.get_u64_le()?;
        let ninputs = prov_sec.get_u32_le()? as usize;
        let mut inputs = Vec::with_capacity(ninputs.min(1024));
        for _ in 0..ninputs {
            let len = prov_sec.get_u32_le()? as usize;
            let name = std::str::from_utf8(prov_sec.take(len)?)
                .map_err(|_| SnapError::Corrupt("input name is not UTF-8".into()))?
                .to_string();
            inputs.push((name, prov_sec.get_u64_le()?));
        }
        let object_count = prov_sec.get_u32_le()?;
        if prov_sec.remaining() != 0 {
            return Err(SnapError::Corrupt("trailing bytes in prov section".into()));
        }
        Ok(Snapshot {
            data,
            table,
            prov: Provenance {
                inputs,
                options_fp,
                solver,
            },
            object_count,
        })
    }

    /// Reads and opens a snapshot file.
    ///
    /// # Errors
    ///
    /// I/O failures plus everything [`Snapshot::from_bytes`] rejects.
    pub fn open(path: &Path) -> Result<Snapshot, SnapError> {
        Snapshot::from_bytes(std::fs::read(path)?)
    }

    /// The provenance this snapshot was saved under.
    #[must_use]
    pub fn provenance(&self) -> &Provenance {
        &self.prov
    }

    /// The number of objects in the snapshotted graph.
    #[must_use]
    pub fn object_count(&self) -> usize {
        self.object_count as usize
    }

    /// The decoded section table (for `snapshot-info`; already covered by
    /// the verified header checksum).
    #[must_use]
    pub fn section_table(&self) -> &[SnapSection] {
        &self.table
    }

    /// The verified body of `id` as a cursor. This is the demand-verify
    /// point: the id-tagged section checksum is recomputed here, on access,
    /// not at open.
    fn section(&self, id: SnapSectionId) -> Result<Cur<'_>, SnapError> {
        section_body(&self.data, &self.table, id)
    }

    /// Rebuilds the query-ready [`SealedGraph`] — no solver run, no source.
    /// Verifies and decodes the reps, sets, and stats sections; validates
    /// every set id and object id against the provenance object count and
    /// requires sets to be strictly sorted (the `may_alias` merge
    /// intersection depends on it). SCC/hash-cons sharing is restored by
    /// cloning one `Arc` per distinct set id. Timed under a `snap.load`
    /// span; bumps `cla_snap_loads_total`.
    ///
    /// # Errors
    ///
    /// [`SnapError`] on damaged or inconsistent sections.
    pub fn load_sealed(&self) -> Result<SealedGraph, SnapError> {
        let obs = cla_obs::global();
        let mut sp = obs.span("snap", "snap.load");
        sp.set("objects", self.object_count as usize);
        sp.set("bytes", self.data.len());

        let mut sets_sec = self.section(SnapSectionId::Sets)?;
        let nsets = sets_sec.get_u32_le()? as usize;
        let mut sets: Vec<Arc<Vec<ObjId>>> = Vec::with_capacity(nsets.min(1 << 20));
        for _ in 0..nsets {
            let len = sets_sec.get_u32_le()? as usize;
            let mut set = Vec::with_capacity(len.min(1 << 20));
            let mut prev: Option<u32> = None;
            for _ in 0..len {
                let v = sets_sec.get_u32_le()?;
                if v >= self.object_count {
                    return Err(SnapError::Corrupt("set member out of range".into()));
                }
                if prev.is_some_and(|p| p >= v) {
                    return Err(SnapError::Corrupt("set not strictly sorted".into()));
                }
                prev = Some(v);
                set.push(ObjId(v));
            }
            if set.is_empty() {
                return Err(SnapError::Corrupt("empty encoded set".into()));
            }
            sets.push(Arc::new(set));
        }
        if sets_sec.remaining() != 0 {
            return Err(SnapError::Corrupt("trailing bytes in sets section".into()));
        }

        let mut reps_sec = self.section(SnapSectionId::Reps)?;
        let nobjs = reps_sec.get_u32_le()?;
        if nobjs != self.object_count {
            return Err(SnapError::Corrupt(
                "reps count disagrees with provenance".into(),
            ));
        }
        let empty: Arc<Vec<ObjId>> = Arc::new(Vec::new());
        let mut per_object = Vec::with_capacity(nobjs as usize);
        for _ in 0..nobjs {
            let id = reps_sec.get_u32_le()?;
            if id == NONE_U32 {
                per_object.push(Arc::clone(&empty));
            } else {
                let set = sets
                    .get(id as usize)
                    .ok_or_else(|| SnapError::Corrupt("set id out of range".into()))?;
                per_object.push(Arc::clone(set));
            }
        }
        if reps_sec.remaining() != 0 {
            return Err(SnapError::Corrupt("trailing bytes in reps section".into()));
        }

        let mut stats_sec = self.section(SnapSectionId::Stats)?;
        let stats = SolveStats {
            passes: stats_sec.get_u64_le()? as usize,
            getlvals_calls: stats_sec.get_u64_le()?,
            dfs_visits: stats_sec.get_u64_le()?,
            cache_hits: stats_sec.get_u64_le()?,
            unifications: stats_sec.get_u64_le()?,
            edges_added: stats_sec.get_u64_le()?,
            sets_shared: stats_sec.get_u64_le()?,
            complex_in_core: stats_sec.get_u64_le()? as usize,
            nodes: stats_sec.get_u64_le()? as usize,
            approx_bytes: stats_sec.get_u64_le()? as usize,
        };
        if stats_sec.remaining() != 0 {
            return Err(SnapError::Corrupt("trailing bytes in stats section".into()));
        }

        obs.counter("cla_snap_loads_total").inc();
        Ok(SealedGraph::from_parts(per_object, stats))
    }

    /// The per-object display names (verifies the strings and names
    /// sections on demand).
    ///
    /// # Errors
    ///
    /// [`SnapError`] on damaged or inconsistent sections.
    pub fn names(&self) -> Result<Vec<String>, SnapError> {
        let mut str_sec = self.section(SnapSectionId::Strings)?;
        let nstrings = str_sec.get_u32_le()? as usize;
        let mut strings = Vec::with_capacity(nstrings.min(1 << 20));
        for _ in 0..nstrings {
            let len = str_sec.get_u32_le()? as usize;
            let s = std::str::from_utf8(str_sec.take(len)?)
                .map_err(|_| SnapError::Corrupt("object name is not UTF-8".into()))?;
            strings.push(s.to_string());
        }
        if str_sec.remaining() != 0 {
            return Err(SnapError::Corrupt(
                "trailing bytes in strings section".into(),
            ));
        }
        let mut names_sec = self.section(SnapSectionId::Names)?;
        let nnames = names_sec.get_u32_le()?;
        if nnames != self.object_count {
            return Err(SnapError::Corrupt(
                "names count disagrees with provenance".into(),
            ));
        }
        let mut names = Vec::with_capacity(nnames as usize);
        for _ in 0..nnames {
            let sid = names_sec.get_u32_le()? as usize;
            let s = strings
                .get(sid)
                .ok_or_else(|| SnapError::Corrupt("name string id out of range".into()))?;
            names.push(s.clone());
        }
        if names_sec.remaining() != 0 {
            return Err(SnapError::Corrupt("trailing bytes in names section".into()));
        }
        Ok(names)
    }

    /// All object ids whose display name is `name` (by-name query support
    /// for standalone snapshot use; the serve layer resolves names through
    /// its linked database instead).
    ///
    /// # Errors
    ///
    /// [`SnapError`] from decoding the name tables.
    pub fn find_objects(&self, name: &str) -> Result<Vec<ObjId>, SnapError> {
        Ok(self
            .names()?
            .iter()
            .enumerate()
            .filter(|(_, n)| n.as_str() == name)
            .map(|(i, _)| ObjId(i as u32))
            .collect())
    }
}

/// Looks up section `id` in the table, bounds checks its range, and
/// verifies its id-tagged checksum — the demand-verify primitive shared by
/// `from_bytes` (provenance) and the lazy accessors.
fn section_body<'a>(
    data: &'a [u8],
    table: &[SnapSection],
    id: SnapSectionId,
) -> Result<Cur<'a>, SnapError> {
    let entry = table
        .iter()
        .find(|e| e.id == id as u32)
        .ok_or(SnapError::MissingSection(id.name()))?;
    let end = entry
        .offset
        .checked_add(entry.len)
        .ok_or_else(|| SnapError::Corrupt("section range overflow".into()))?;
    if end > data.len() as u64 {
        return Err(SnapError::Corrupt("section past end of file".into()));
    }
    let body = &data[entry.offset as usize..end as usize];
    if fnv64_tagged(id as u32, body) != entry.checksum {
        cla_obs::global()
            .counter("cla_snap_checksum_fail_total")
            .inc();
        return Err(SnapError::Checksum(id.name().into()));
    }
    Ok(Cur::new(body))
}
