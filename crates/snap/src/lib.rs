//! # cla-snap — persistent analysis snapshots and the build cache
//!
//! The paper's thesis is a *database-centric* analysis architecture; this
//! crate extends the database idea from primitive assignments (the `.clao`
//! object format) to *analysis results*, so the most expensive artifact —
//! the solved pre-transitive graph — survives process exit:
//!
//! - **Snapshots** ([`Snapshot`], [`save_snapshot`], [`SnapshotStore`]):
//!   a sectioned, checksummed, demand-loadable `.clasnap` file holding a
//!   [`cla_core::SealedGraph`]'s flattened representative table, its
//!   Arc-shared points-to sets (each distinct set encoded once), the name
//!   tables needed to answer queries standalone, and a provenance record.
//!   Loading validates provenance and rebuilds a query-ready graph without
//!   running the solver — an instant warm start.
//! - **Build cache** ([`DiskCache`]): a content-addressed on-disk cache of
//!   compiled object files keyed by the hash of each file's preprocessed
//!   closure, with a size-capped LRU eviction sweep.
//!
//! Both plug into [`cla_core::pipeline::analyze_with`] through the
//! [`CompileCache`](cla_core::pipeline::CompileCache) and
//! [`SnapshotHook`](cla_core::pipeline::SnapshotHook) traits, and both are
//! covered by the deterministic fault-injection battery in [`fault`].
//!
//! ```
//! use cla_core::pipeline::{analyze_with, AnalyzeHooks, PipelineOptions};
//! use cla_snap::{DiskCache, SnapshotStore};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dir = std::env::temp_dir().join(format!("cla-snap-doc-{}", std::process::id()));
//! let mut fs = cla_cfront::MemoryFs::new();
//! fs.add("a.c", "int x, *p; void f(void) { p = &x; }");
//! let cache = DiskCache::open(&dir.join("cache"))?;
//! let store = SnapshotStore::open(&dir)?;
//! let hooks = AnalyzeHooks { compile_cache: Some(&cache), snapshots: Some(&store) };
//! let opts = PipelineOptions::default();
//! let cold = analyze_with(&fs, &["a.c"], &opts, &hooks)?;
//! assert!(!cold.report.snapshot_loaded);
//! let warm = analyze_with(&fs, &["a.c"], &opts, &hooks)?;
//! assert!(warm.report.snapshot_loaded); // solver skipped entirely
//! assert_eq!(warm.report.compile_cache_hits, 1);
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok(())
//! # }
//! ```

mod cache;
pub mod fault;
mod format;
mod reader;
mod store;
mod writer;

pub use cache::{DiskCache, DEFAULT_MAX_BYTES};
pub use format::{SnapError, SnapSectionId, MAGIC, VERSION};
pub use reader::{SnapSection, Snapshot};
pub use store::{SnapshotStore, SNAPSHOT_FILE};
pub use writer::{encode_snapshot, save_snapshot};

#[cfg(test)]
mod tests {
    use super::*;
    use cla_core::pipeline::{Provenance, SnapshotHook};
    use cla_core::{SolveOptions, Warm};
    use cla_ir::{compile_source, LowerOptions, ObjId};
    use std::sync::Arc;

    fn sample_sealed() -> (cla_core::SealedGraph, Vec<String>) {
        let unit = compile_source(
            "int shared, *p, *q, **pp; void f(void) { p = &shared; q = p; pp = &p; }",
            "a.c",
            &LowerOptions::default(),
        )
        .unwrap();
        let sealed = Warm::from_unit(&unit, SolveOptions::default()).seal();
        let names = unit.objects.iter().map(|o| o.name.clone()).collect();
        (sealed, names)
    }

    fn sample_prov() -> Provenance {
        Provenance {
            inputs: vec![("a.c".into(), 0xdead_beef)],
            options_fp: 42,
            solver: SolveOptions::default(),
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let (sealed, names) = sample_sealed();
        let prov = sample_prov();
        let bytes = encode_snapshot(&prov, &sealed, &names);
        let snap = Snapshot::from_bytes(bytes).unwrap();
        assert_eq!(snap.provenance(), &prov);
        assert_eq!(snap.object_count(), sealed.object_count());
        assert_eq!(snap.names().unwrap(), names);
        let loaded = snap.load_sealed().unwrap();
        assert_eq!(loaded.stats(), sealed.stats());
        for i in 0..sealed.object_count() as u32 {
            assert_eq!(loaded.points_to(ObjId(i)), sealed.points_to(ObjId(i)));
            for j in 0..sealed.object_count() as u32 {
                assert_eq!(
                    loaded.may_alias(ObjId(i), ObjId(j)),
                    sealed.may_alias(ObjId(i), ObjId(j))
                );
            }
        }
    }

    #[test]
    fn sharing_survives_the_round_trip() {
        let (sealed, names) = sample_sealed();
        let bytes = encode_snapshot(&sample_prov(), &sealed, &names);
        let loaded = Snapshot::from_bytes(bytes).unwrap().load_sealed().unwrap();
        // p and q point at the same set; sharing must come back as one
        // allocation (the may_alias ptr::eq fast path depends on it).
        for i in 0..sealed.object_count() {
            for j in i + 1..sealed.object_count() {
                let (a, b) = (&sealed.sets()[i], &sealed.sets()[j]);
                let (la, lb) = (&loaded.sets()[i], &loaded.sets()[j]);
                if !a.is_empty() {
                    assert_eq!(Arc::ptr_eq(a, b), Arc::ptr_eq(la, lb), "objects {i},{j}");
                }
            }
        }
    }

    #[test]
    fn deterministic_encoding() {
        let (sealed, names) = sample_sealed();
        let prov = sample_prov();
        assert_eq!(
            encode_snapshot(&prov, &sealed, &names),
            encode_snapshot(&prov, &sealed, &names)
        );
    }

    #[test]
    fn store_misses_on_provenance_mismatch() {
        let dir = std::env::temp_dir().join(format!("cla-snap-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SnapshotStore::open(&dir).unwrap();
        let (sealed, names) = sample_sealed();
        let prov = sample_prov();
        store.save(&prov, &sealed, &names);
        assert!(store.load(&prov).is_some());
        let mut stale = prov.clone();
        stale.inputs[0].1 ^= 1; // one edited input file
        assert!(store.load(&stale).is_none());
        let mut other_solver = prov.clone();
        other_solver.solver.cycle_elim = !other_solver.solver.cycle_elim;
        assert!(store.load(&other_solver).is_none());
        let (_, _, mismatches) = store.counters();
        assert_eq!(mismatches, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_file_is_rejected_with_typed_error() {
        let (sealed, names) = sample_sealed();
        let bytes = encode_snapshot(&sample_prov(), &sealed, &names);
        for cut in [0, 3, 19, bytes.len() / 2, bytes.len() - 1] {
            let err = match Snapshot::from_bytes(bytes[..cut].to_vec()) {
                Err(e) => e,
                Ok(snap) => snap
                    .load_sealed()
                    .err()
                    .or_else(|| snap.names().err())
                    .expect("truncated snapshot decoded fully"),
            };
            // Any typed variant is acceptable; panics/wrong data are not.
            let _ = err.to_string();
        }
    }

    #[test]
    fn object_files_are_not_snapshots() {
        let unit = compile_source("int x;", "a.c", &LowerOptions::default()).unwrap();
        let obj = cla_cladb::write_object(&unit);
        assert!(matches!(
            Snapshot::from_bytes(obj),
            Err(SnapError::BadMagic)
        ));
    }
}
