//! Property tests for the frontend: token spell/relex round-trips and
//! preprocessor robustness over generated inputs.

use cla_cfront::lexer::lex;
use cla_cfront::pp::{self, spell, MemoryFs, PpOptions};
use cla_cfront::span::FileId;
use cla_cfront::token::TokenKind;
use proptest::prelude::*;

/// A strategy over single tokens that spell unambiguously when separated by
/// spaces.
fn token_text() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-zA-Z_][a-zA-Z0-9_]{0,8}",
        (0u64..1_000_000).prop_map(|v| v.to_string()),
        Just("(".to_string()),
        Just(")".to_string()),
        Just("{".to_string()),
        Just("}".to_string()),
        Just(";".to_string()),
        Just(",".to_string()),
        Just("->".to_string()),
        Just("<<=".to_string()),
        Just("...".to_string()),
        Just("&&".to_string()),
        Just("==".to_string()),
        Just("*".to_string()),
        Just("\"str lit\"".to_string()),
        Just("'c'".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Lexing space-separated tokens, spelling them back, and relexing
    /// yields the same token kinds.
    #[test]
    fn lex_spell_relex(tokens in prop::collection::vec(token_text(), 0..40)) {
        let src = tokens.join(" ");
        let first = lex(&src, FileId(0)).unwrap();
        let spelled: String = first
            .iter()
            .map(spell)
            .collect::<Vec<_>>()
            .join(" ");
        let second = lex(&spelled, FileId(0)).unwrap();
        let kinds = |ts: &[cla_cfront::token::Token]| -> Vec<TokenKind> {
            ts.iter().map(|t| t.kind.clone()).collect()
        };
        prop_assert_eq!(kinds(&first), kinds(&second), "spelled: {}", spelled);
    }

    /// The lexer never panics on arbitrary ASCII input (it may error).
    #[test]
    fn lexer_total_on_ascii(src in "[ -~\n\t]{0,200}") {
        let _ = lex(&src, FileId(0));
    }

    /// The preprocessor never panics on arbitrary directive-shaped input.
    #[test]
    fn preprocessor_total(body in "[a-zA-Z0-9_ #\n(),]{0,200}") {
        let mut fs = MemoryFs::new();
        fs.add("f.c", body);
        let _ = pp::preprocess(&fs, "f.c", &PpOptions::default());
    }

    /// Object-like macro definitions + uses always terminate and produce
    /// relexable output.
    #[test]
    fn macros_terminate(
        bodies in prop::collection::vec("[a-z0-9+ ()A-Z]{0,16}", 1..5),
        uses in prop::collection::vec(0usize..5, 0..10),
    ) {
        let mut src = String::new();
        for (i, b) in bodies.iter().enumerate() {
            src.push_str(&format!("#define M{i} {b}\n"));
        }
        src.push_str("int sink[] = {");
        for u in &uses {
            src.push_str(&format!(" M{} ,", u % bodies.len()));
        }
        src.push_str(" 0 };\n");
        let mut fs = MemoryFs::new();
        fs.add("m.c", src);
        let _ = pp::preprocess(&fs, "m.c", &PpOptions::default());
    }
}

/// Deterministic regression corpus for odd-but-valid inputs.
#[test]
fn regression_corpus() {
    for src in [
        "a//\nb",
        "a/**/b",
        "x\\\ny",
        "0x1fULL_not_a_suffix", // pp-number that fails to classify -> error ok
        "1.e5",
        ".5f",
        "'\\377'",
        "\"\\x41\\n\"",
        "a+++b",   // lexes as a ++ + b
        "a---b",
        "x<<<<y",
    ] {
        let _ = lex(src, FileId(0));
    }
    // Greedy punctuation: a+++b == a ++ + b.
    let ts = lex("a+++b", FileId(0)).unwrap();
    let spelled: Vec<String> = ts.iter().map(spell).collect();
    assert_eq!(spelled, vec!["a", "++", "+", "b"]);
}
