//! Randomized tests for the frontend: token spell/relex round-trips and
//! preprocessor robustness over generated inputs.
//!
//! Inputs come from a fixed-seed SplitMix64 stream, so every run checks the
//! same corpus and failures reproduce exactly.

use cla_cfront::lexer::lex;
use cla_cfront::pp::{self, spell, MemoryFs, PpOptions};
use cla_cfront::span::FileId;
use cla_cfront::token::TokenKind;

/// Minimal deterministic RNG (SplitMix64) — kept local because cla-cfront
/// sits below cla-workload in the dependency order.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// A string of `len` characters drawn from `charset`.
    fn string_from(&mut self, charset: &[u8], len: usize) -> String {
        (0..len)
            .map(|_| charset[self.below(charset.len())] as char)
            .collect()
    }
}

/// One token that spells unambiguously when separated by spaces.
fn token_text(rng: &mut Rng) -> String {
    const FIXED: &[&str] = &[
        "(",
        ")",
        "{",
        "}",
        ";",
        ",",
        "->",
        "<<=",
        "...",
        "&&",
        "==",
        "*",
        "\"str lit\"",
        "'c'",
    ];
    match rng.below(FIXED.len() + 2) {
        0 => {
            // Identifier: [a-zA-Z_][a-zA-Z0-9_]{0,8}
            const HEAD: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_";
            const TAIL: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
            let mut s = String::new();
            s.push(HEAD[rng.below(HEAD.len())] as char);
            let extra = rng.below(9);
            s.push_str(&rng.string_from(TAIL, extra));
            s
        }
        1 => (rng.next_u64() % 1_000_000).to_string(),
        k => FIXED[k - 2].to_string(),
    }
}

/// Lexing space-separated tokens, spelling them back, and relexing yields
/// the same token kinds.
#[test]
fn lex_spell_relex() {
    let mut rng = Rng(0xf00d_0001);
    for _case in 0..256 {
        let n = rng.below(40);
        let tokens: Vec<String> = (0..n).map(|_| token_text(&mut rng)).collect();
        let src = tokens.join(" ");
        let first = lex(&src, FileId(0)).unwrap();
        let spelled: String = first.iter().map(spell).collect::<Vec<_>>().join(" ");
        let second = lex(&spelled, FileId(0)).unwrap();
        let kinds = |ts: &[cla_cfront::token::Token]| -> Vec<TokenKind> {
            ts.iter().map(|t| t.kind.clone()).collect()
        };
        assert_eq!(kinds(&first), kinds(&second), "spelled: {spelled}");
    }
}

/// The lexer never panics on arbitrary ASCII input (it may error).
#[test]
fn lexer_total_on_ascii() {
    let printable: Vec<u8> = (b' '..=b'~').chain([b'\n', b'\t']).collect();
    let mut rng = Rng(0xf00d_0002);
    for _case in 0..256 {
        let len = rng.below(201);
        let src = rng.string_from(&printable, len);
        let _ = lex(&src, FileId(0));
    }
}

/// The preprocessor never panics on arbitrary directive-shaped input.
#[test]
fn preprocessor_total() {
    const CHARSET: &[u8] =
        b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_ #\n(),";
    let mut rng = Rng(0xf00d_0003);
    for _case in 0..256 {
        let len = rng.below(201);
        let body = rng.string_from(CHARSET, len);
        let mut fs = MemoryFs::new();
        fs.add("f.c", body);
        let _ = pp::preprocess(&fs, "f.c", &PpOptions::default());
    }
}

/// Object-like macro definitions + uses always terminate and produce
/// relexable output.
#[test]
fn macros_terminate() {
    const BODY_CHARSET: &[u8] =
        b"abcdefghijklmnopqrstuvwxyz0123456789+ ()ABCDEFGHIJKLMNOPQRSTUVWXYZ";
    let mut rng = Rng(0xf00d_0004);
    for _case in 0..256 {
        let nbodies = 1 + rng.below(4);
        let bodies: Vec<String> = (0..nbodies)
            .map(|_| {
                let len = rng.below(17);
                rng.string_from(BODY_CHARSET, len)
            })
            .collect();
        let nuses = rng.below(10);
        let mut src = String::new();
        for (i, b) in bodies.iter().enumerate() {
            src.push_str(&format!("#define M{i} {b}\n"));
        }
        src.push_str("int sink[] = {");
        for _ in 0..nuses {
            src.push_str(&format!(" M{} ,", rng.below(5) % bodies.len()));
        }
        src.push_str(" 0 };\n");
        let mut fs = MemoryFs::new();
        fs.add("m.c", src);
        let _ = pp::preprocess(&fs, "m.c", &PpOptions::default());
    }
}

/// Deterministic regression corpus for odd-but-valid inputs.
#[test]
fn regression_corpus() {
    for src in [
        "a//\nb",
        "a/**/b",
        "x\\\ny",
        "0x1fULL_not_a_suffix", // pp-number that fails to classify -> error ok
        "1.e5",
        ".5f",
        "'\\377'",
        "\"\\x41\\n\"",
        "a+++b", // lexes as a ++ + b
        "a---b",
        "x<<<<y",
    ] {
        let _ = lex(src, FileId(0));
    }
    // Greedy punctuation: a+++b == a ++ + b.
    let ts = lex("a+++b", FileId(0)).unwrap();
    let spelled: Vec<String> = ts.iter().map(spell).collect();
    assert_eq!(spelled, vec!["a", "++", "+", "b"]);
}
