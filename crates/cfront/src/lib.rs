//! # cla-cfront — a hand-written C frontend
//!
//! The parsing substrate for the CLA analysis system (Heintze & Tardieu,
//! PLDI 2001). The paper used the ML `ckit` frontend; this crate plays the
//! same role in Rust: it turns C source text into an AST that the lowering
//! in `cla-ir` compiles to primitive assignments.
//!
//! Pipeline: [`lexer`] → [`pp`] (preprocessor) → [`parser`] → [`ast`].
//!
//! ```
//! use cla_cfront::{parse_source};
//!
//! # fn main() -> Result<(), cla_cfront::CError> {
//! let tu = parse_source("int x, *p; void f(void) { p = &x; }", "a.c")?;
//! assert_eq!(tu.items.len(), 2);
//! # Ok(())
//! # }
//! ```

pub mod ast;
mod error;
pub mod lexer;
pub mod parser;
pub mod pp;
pub mod span;
pub mod token;
pub mod types;

pub use error::{CError, Result};
pub use pp::{FileProvider, FrontendLimits, MemoryFs, OsFs, PpOptions, PpStats, Preprocessed};
pub use span::{FileId, Loc, SourceMap};

use ast::TranslationUnit;

/// Everything produced by fully processing one `.c` file.
#[derive(Debug)]
pub struct ParsedUnit {
    /// The parsed translation unit.
    pub tu: TranslationUnit,
    /// All source files read (main file and headers).
    pub sources: SourceMap,
    /// Preprocessor statistics (bytes read, tokens emitted, ...).
    pub pp_stats: PpStats,
}

/// Preprocesses and parses one file from a [`FileProvider`].
///
/// # Errors
///
/// Propagates lexical, preprocessing, and parse errors.
pub fn parse_file(fs: &dyn FileProvider, path: &str, opts: &PpOptions) -> Result<ParsedUnit> {
    let obs = cla_obs::global();
    let pre = {
        let mut sp = obs.span("front", "pp");
        sp.set("file", path);
        let pre = match pp::preprocess(fs, path, opts) {
            Ok(pre) => pre,
            Err(e) => {
                obs.counter("cla_front_diagnostics_total").inc();
                return Err(e);
            }
        };
        sp.set("files_read", pre.stats.files_read);
        sp.set("tokens", pre.stats.tokens_out);
        sp.set("macro_expansions", pre.stats.macro_expansions);
        pre
    };
    obs.counter("cla_front_files_total").inc();
    obs.counter("cla_front_bytes_total").add(pre.stats.bytes_in);
    obs.counter("cla_front_tokens_total")
        .add(pre.stats.tokens_out as u64);
    obs.counter("cla_front_macro_expansions_total")
        .add(pre.stats.macro_expansions as u64);
    let tu = {
        let mut sp = obs.span("front", "parse");
        sp.set("file", path);
        match parser::parse_with(pre.tokens, path, &opts.limits) {
            Ok(tu) => {
                sp.set("items", tu.items.len());
                tu
            }
            Err(e) => {
                obs.counter("cla_front_diagnostics_total").inc();
                return Err(e);
            }
        }
    };
    Ok(ParsedUnit {
        tu,
        sources: pre.sources,
        pp_stats: pre.stats,
    })
}

/// Convenience: preprocesses and parses a single in-memory source string
/// (includes resolve against an empty file system).
///
/// # Errors
///
/// Propagates lexical, preprocessing, and parse errors.
pub fn parse_source(src: &str, name: &str) -> Result<TranslationUnit> {
    let mut fs = MemoryFs::new();
    fs.add(name, src);
    Ok(parse_file(&fs, name, &PpOptions::default())?.tu)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_single_file() {
        let tu = parse_source("#define PTR(t) t *\nint x;\nPTR(int) p = &x;\n", "main.c").unwrap();
        assert_eq!(tu.items.len(), 2);
        assert_eq!(tu.file, "main.c");
    }

    #[test]
    fn end_to_end_with_headers() {
        let mut fs = MemoryFs::new();
        fs.add("defs.h", "typedef struct Point { int x; int y; } Point;\n");
        fs.add(
            "main.c",
            "#include \"defs.h\"\nPoint origin;\nint get_x(Point *p) { return p->x; }\n",
        );
        let parsed = parse_file(&fs, "main.c", &PpOptions::default()).unwrap();
        // Three items: the typedef declaration, `origin`, and `get_x`.
        assert_eq!(parsed.tu.items.len(), 3);
        assert_eq!(parsed.sources.len(), 2);
        assert!(parsed.pp_stats.bytes_in > 0);
    }

    #[test]
    fn paper_figure3_program_parses() {
        // The example from Figure 3 of the paper.
        let tu = parse_source(
            "int x, *y;\nint **z;\nvoid f(void) { z = &y; *z = &x; }\n",
            "fig3.c",
        )
        .unwrap();
        assert_eq!(tu.items.len(), 3);
    }

    #[test]
    fn paper_figure1_program_parses() {
        // The struct example from Figure 1 of the paper.
        let src = "short target;
struct S { short x; short y; };
short u, *v, w;
struct S s, t;
void f(void) {
  v = &w;
  u = target;
  *v = u;
  s.x = w;
}
";
        let tu = parse_source(src, "eg1.c").unwrap();
        assert!(tu.items.len() >= 4);
    }

    #[test]
    fn errors_carry_locations() {
        let err = parse_source("int x = ;", "bad.c").unwrap_err();
        assert_eq!(err.loc().line, 1);
    }
}
