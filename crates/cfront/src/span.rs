//! Source locations and the source map.
//!
//! Every token and AST node carries a [`Loc`] identifying the file, line and
//! column it came from. Locations survive preprocessing: tokens produced by
//! macro expansion keep the location of the macro *invocation*, which is what
//! the dependence-chain renderer (paper Figure 1) reports to the user.

use std::fmt;
use std::sync::Arc;

/// Identifier of a source file registered in a [`SourceMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

impl FileId {
    /// A dummy file id for synthesized tokens (e.g. built-in macros).
    pub const BUILTIN: FileId = FileId(u32::MAX);
}

/// A source location: file, 1-based line, 1-based column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Loc {
    pub file: FileId,
    pub line: u32,
    pub col: u32,
}

impl Loc {
    /// Location used for synthesized constructs with no source counterpart.
    pub const BUILTIN: Loc = Loc {
        file: FileId::BUILTIN,
        line: 0,
        col: 0,
    };

    /// Creates a new location.
    pub fn new(file: FileId, line: u32, col: u32) -> Self {
        Loc { file, line, col }
    }
}

impl Default for Loc {
    fn default() -> Self {
        Loc::BUILTIN
    }
}

/// A source file registered in a [`SourceMap`].
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path (or virtual path) of the file.
    pub name: String,
    /// Complete source text.
    pub src: Arc<str>,
}

/// Registry of all files touched while preprocessing a translation unit.
///
/// The map is append-only; [`FileId`]s index into it.
#[derive(Debug, Default, Clone)]
pub struct SourceMap {
    files: Vec<SourceFile>,
}

impl SourceMap {
    /// Creates an empty source map.
    pub fn new() -> Self {
        SourceMap::default()
    }

    /// Registers a file and returns its id.
    pub fn add_file(&mut self, name: impl Into<String>, src: Arc<str>) -> FileId {
        let id = FileId(self.files.len() as u32);
        self.files.push(SourceFile {
            name: name.into(),
            src,
        });
        id
    }

    /// Looks up a file by id. Returns `None` for [`FileId::BUILTIN`].
    pub fn file(&self, id: FileId) -> Option<&SourceFile> {
        self.files.get(id.0 as usize)
    }

    /// Name of a file, or `"<builtin>"`.
    pub fn file_name(&self, id: FileId) -> &str {
        self.file(id).map_or("<builtin>", |f| f.name.as_str())
    }

    /// Number of registered files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when no file has been registered.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Renders a location as `file:line` (the paper's `<eg1.c:3>` form,
    /// without the angle brackets).
    pub fn display(&self, loc: Loc) -> String {
        format!("{}:{}", self.file_name(loc.file), loc.line)
    }

    /// Iterates over `(FileId, &SourceFile)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FileId, &SourceFile)> {
        self.files
            .iter()
            .enumerate()
            .map(|(i, f)| (FileId(i as u32), f))
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.file == FileId::BUILTIN {
            write!(f, "<builtin>")
        } else {
            write!(f, "file#{}:{}:{}", self.file.0, self.line, self.col)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut sm = SourceMap::new();
        let a = sm.add_file("a.c", "int x;".into());
        let b = sm.add_file("b.c", "int y;".into());
        assert_ne!(a, b);
        assert_eq!(sm.file_name(a), "a.c");
        assert_eq!(sm.file_name(b), "b.c");
        assert_eq!(sm.file(a).unwrap().src.as_ref(), "int x;");
        assert_eq!(sm.len(), 2);
    }

    #[test]
    fn builtin_loc_display() {
        let sm = SourceMap::new();
        assert_eq!(sm.file_name(FileId::BUILTIN), "<builtin>");
        assert_eq!(format!("{}", Loc::BUILTIN), "<builtin>");
    }

    #[test]
    fn display_loc() {
        let mut sm = SourceMap::new();
        let a = sm.add_file("eg1.c", "short target;".into());
        assert_eq!(sm.display(Loc::new(a, 3, 1)), "eg1.c:3");
    }
}
