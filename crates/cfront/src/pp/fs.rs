//! File providers for the preprocessor.
//!
//! The preprocessor reads files through the [`FileProvider`] trait so that
//! analyses can run over in-memory code bases (the synthetic benchmark
//! generator, tests) as well as on-disk trees.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// Source of file contents for `#include` resolution.
pub trait FileProvider: Sync {
    /// Returns the contents of `path`, or `None` when it does not exist.
    /// `path` is a normalized, `/`-separated path.
    fn read(&self, path: &str) -> Option<Arc<str>>;
}

/// An in-memory file system: a map from path to contents.
#[derive(Debug, Default, Clone)]
pub struct MemoryFs {
    files: HashMap<String, Arc<str>>,
}

impl MemoryFs {
    /// Creates an empty in-memory file system.
    pub fn new() -> Self {
        MemoryFs::default()
    }

    /// Adds (or replaces) a file.
    pub fn add(&mut self, path: impl Into<String>, contents: impl Into<Arc<str>>) -> &mut Self {
        self.files
            .insert(normalize_path(&path.into()), contents.into());
        self
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when the file system holds no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Iterates over `(path, contents)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<str>)> {
        self.files.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl FromIterator<(String, String)> for MemoryFs {
    fn from_iter<T: IntoIterator<Item = (String, String)>>(iter: T) -> Self {
        let mut fs = MemoryFs::new();
        for (p, c) in iter {
            fs.add(p, c);
        }
        fs
    }
}

impl FileProvider for MemoryFs {
    fn read(&self, path: &str) -> Option<Arc<str>> {
        self.files.get(&normalize_path(path)).cloned()
    }
}

/// A file provider backed by the operating system's file system.
#[derive(Debug, Default, Clone)]
pub struct OsFs;

impl FileProvider for OsFs {
    fn read(&self, path: &str) -> Option<Arc<str>> {
        if !Path::new(path).is_file() {
            return None;
        }
        std::fs::read_to_string(path).ok().map(Arc::from)
    }
}

/// Normalizes a `/`-separated path: collapses `.` and `..` segments and
/// duplicate separators. Does not touch the file system.
pub fn normalize_path(path: &str) -> String {
    let absolute = path.starts_with('/');
    let mut parts: Vec<&str> = Vec::new();
    for seg in path.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                if matches!(parts.last(), Some(&p) if p != "..") {
                    parts.pop();
                } else if !absolute {
                    parts.push("..");
                }
            }
            s => parts.push(s),
        }
    }
    let joined = parts.join("/");
    if absolute {
        format!("/{joined}")
    } else {
        joined
    }
}

/// Returns the directory component of a normalized path (`""` when none).
pub fn dir_of(path: &str) -> &str {
    match path.rfind('/') {
        Some(i) => &path[..i],
        None => "",
    }
}

/// Joins a directory and a relative path, normalizing the result.
pub fn join_path(dir: &str, rel: &str) -> String {
    if dir.is_empty() || rel.starts_with('/') {
        normalize_path(rel)
    } else {
        normalize_path(&format!("{dir}/{rel}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize() {
        assert_eq!(normalize_path("a/./b"), "a/b");
        assert_eq!(normalize_path("a/x/../b"), "a/b");
        assert_eq!(normalize_path("./a//b/"), "a/b");
        assert_eq!(normalize_path("/usr/../include"), "/include");
        assert_eq!(normalize_path("../a"), "../a");
        assert_eq!(normalize_path("a/../../b"), "../b");
    }

    #[test]
    fn dirs_and_joins() {
        assert_eq!(dir_of("a/b/c.h"), "a/b");
        assert_eq!(dir_of("c.h"), "");
        assert_eq!(join_path("a/b", "x.h"), "a/b/x.h");
        assert_eq!(join_path("a/b", "../x.h"), "a/x.h");
        assert_eq!(join_path("", "x.h"), "x.h");
        assert_eq!(join_path("a", "/abs.h"), "/abs.h");
    }

    #[test]
    fn memory_fs() {
        let mut fs = MemoryFs::new();
        fs.add("inc/a.h", "#define A 1\n");
        assert!(fs.read("inc/a.h").is_some());
        assert!(fs.read("inc/./a.h").is_some());
        assert!(fs.read("inc/b.h").is_none());
        assert_eq!(fs.len(), 1);
        assert!(!fs.is_empty());
    }

    #[test]
    fn memory_fs_from_iter() {
        let fs: MemoryFs = vec![("a.c".to_string(), "int x;".to_string())]
            .into_iter()
            .collect();
        assert_eq!(fs.read("a.c").unwrap().as_ref(), "int x;");
    }
}
