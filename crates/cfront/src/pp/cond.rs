//! `#if` / `#elif` constant-expression evaluation.
//!
//! Evaluates an integer constant expression over macro-expanded tokens.
//! `defined X` / `defined(X)` are resolved *before* macro expansion, as the
//! standard requires; identifiers that survive expansion evaluate to 0.

use crate::error::{CError, Result};
use crate::pp::expand::{expand, ExpandStats, MacroTable};
use crate::span::Loc;
use crate::token::{Punct, Token, TokenKind};

/// Evaluates the controlling expression of `#if`/`#elif`.
///
/// # Errors
///
/// Returns [`CError::Pp`] on syntax errors, division by zero, or an empty
/// expression.
pub fn eval_condition(
    tokens: &[Token],
    macros: &MacroTable,
    loc: Loc,
    stats: &mut ExpandStats,
) -> Result<bool> {
    let resolved = resolve_defined(tokens, macros, loc)?;
    let expanded = expand(resolved, macros, stats)?;
    let mut p = CondParser {
        toks: &expanded,
        pos: 0,
        loc,
        depth: 0,
    };
    let v = p.ternary()?;
    if p.pos != p.toks.len() {
        return Err(CError::pp("trailing tokens in #if expression", p.cur_loc()));
    }
    Ok(v != 0)
}

/// Replaces `defined NAME` and `defined(NAME)` with `1`/`0`.
fn resolve_defined(tokens: &[Token], macros: &MacroTable, loc: Loc) -> Result<Vec<Token>> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("defined") {
            let (name, next) = if tokens.get(i + 1).is_some_and(|t| t.is_punct(Punct::LParen)) {
                let name = tokens
                    .get(i + 2)
                    .and_then(|t| t.kind.ident())
                    .ok_or_else(|| CError::pp("expected identifier after `defined(`", loc))?;
                if !tokens.get(i + 3).is_some_and(|t| t.is_punct(Punct::RParen)) {
                    return Err(CError::pp("expected `)` after `defined(NAME`", loc));
                }
                (name.to_string(), i + 4)
            } else {
                let name = tokens
                    .get(i + 1)
                    .and_then(|t| t.kind.ident())
                    .ok_or_else(|| CError::pp("expected identifier after `defined`", loc))?;
                (name.to_string(), i + 2)
            };
            let v = u64::from(macros.contains_key(&name));
            out.push(Token::synth(TokenKind::Int(v, Default::default()), loc));
            i = next;
        } else {
            out.push(tokens[i].clone());
            i += 1;
        }
    }
    Ok(out)
}

/// Deepest `#if` expression nesting (parens, `?:`, unary chains) before a
/// typed budget error. Hostile `#if ((((...` must not overflow the stack.
const MAX_COND_DEPTH: u32 = 256;

struct CondParser<'a> {
    toks: &'a [Token],
    pos: usize,
    loc: Loc,
    depth: u32,
}

impl<'a> CondParser<'a> {
    fn enter(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_COND_DEPTH {
            return Err(CError::budget(
                format!("#if expression nested too deeply (limit {MAX_COND_DEPTH})"),
                self.cur_loc(),
            ));
        }
        Ok(())
    }

    fn cur_loc(&self) -> Loc {
        self.toks.get(self.pos).map_or(self.loc, |t| t.loc)
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.toks.get(self.pos).map(|t| &t.kind)
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if matches!(self.peek(), Some(TokenKind::Punct(q)) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn err(&self, msg: impl Into<String>) -> CError {
        CError::pp(msg, self.cur_loc())
    }

    fn ternary(&mut self) -> Result<i64> {
        self.enter()?;
        let r = self.ternary_inner();
        self.depth -= 1;
        r
    }

    fn ternary_inner(&mut self) -> Result<i64> {
        let c = self.binary(0)?;
        if self.eat_punct(Punct::Question) {
            let t = self.ternary()?;
            if !self.eat_punct(Punct::Colon) {
                return Err(self.err("expected `:` in conditional"));
            }
            let e = self.ternary()?;
            Ok(if c != 0 { t } else { e })
        } else {
            Ok(c)
        }
    }

    /// Precedence climbing over binary operators.
    fn binary(&mut self, min_prec: u8) -> Result<i64> {
        let mut lhs = self.unary()?;
        while let Some(TokenKind::Punct(p)) = self.peek() {
            let Some(prec) = bin_prec(*p) else { break };
            if prec < min_prec {
                break;
            }
            let op = *p;
            self.pos += 1;
            // Short-circuit operators must not evaluate eagerly in a way that
            // faults (e.g. `defined(X) && 1/X`): evaluate rhs but guard
            // division by zero only when the result is actually used.
            let rhs = self.binary(prec + 1)?;
            lhs = apply_bin(op, lhs, rhs, self.cur_loc())?;
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<i64> {
        self.enter()?;
        let r = self.unary_inner();
        self.depth -= 1;
        r
    }

    fn unary_inner(&mut self) -> Result<i64> {
        if self.eat_punct(Punct::Bang) {
            return Ok(i64::from(self.unary()? == 0));
        }
        if self.eat_punct(Punct::Minus) {
            return Ok(self.unary()?.wrapping_neg());
        }
        if self.eat_punct(Punct::Plus) {
            return self.unary();
        }
        if self.eat_punct(Punct::Tilde) {
            return Ok(!self.unary()?);
        }
        if self.eat_punct(Punct::LParen) {
            let v = self.ternary()?;
            if !self.eat_punct(Punct::RParen) {
                return Err(self.err("expected `)`"));
            }
            return Ok(v);
        }
        match self.peek() {
            Some(TokenKind::Int(v, _)) => {
                let v = *v as i64;
                self.pos += 1;
                Ok(v)
            }
            Some(TokenKind::Char(v)) => {
                let v = *v;
                self.pos += 1;
                Ok(v)
            }
            // Any identifier remaining after expansion evaluates to 0.
            Some(TokenKind::Ident(_)) => {
                self.pos += 1;
                Ok(0)
            }
            Some(TokenKind::Float(_)) => Err(self.err("floating constant in #if")),
            _ => Err(self.err("expected expression in #if")),
        }
    }
}

fn bin_prec(p: Punct) -> Option<u8> {
    use Punct::*;
    Some(match p {
        PipePipe => 1,
        AmpAmp => 2,
        Pipe => 3,
        Caret => 4,
        Amp => 5,
        EqEq | BangEq => 6,
        Lt | Gt | Le | Ge => 7,
        Shl | Shr => 8,
        Plus | Minus => 9,
        Star | Slash | Percent => 10,
        _ => return None,
    })
}

fn apply_bin(op: Punct, l: i64, r: i64, loc: Loc) -> Result<i64> {
    use Punct::*;
    Ok(match op {
        PipePipe => i64::from(l != 0 || r != 0),
        AmpAmp => i64::from(l != 0 && r != 0),
        Pipe => l | r,
        Caret => l ^ r,
        Amp => l & r,
        EqEq => i64::from(l == r),
        BangEq => i64::from(l != r),
        Lt => i64::from(l < r),
        Gt => i64::from(l > r),
        Le => i64::from(l <= r),
        Ge => i64::from(l >= r),
        Shl => l.wrapping_shl(r as u32 & 63),
        Shr => l.wrapping_shr(r as u32 & 63),
        Plus => l.wrapping_add(r),
        Minus => l.wrapping_sub(r),
        Star => l.wrapping_mul(r),
        Slash => {
            if r == 0 {
                return Err(CError::pp("division by zero in #if", loc));
            }
            l.wrapping_div(r)
        }
        Percent => {
            if r == 0 {
                return Err(CError::pp("modulo by zero in #if", loc));
            }
            l.wrapping_rem(r)
        }
        // Defensive: the precedence climber only dispatches the operators
        // above, but a typed error beats a panic if that ever drifts.
        other => {
            return Err(CError::pp(
                format!("`{}` is not a #if binary operator", other.as_str()),
                loc,
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::pp::expand::MacroDef;
    use crate::span::FileId;

    fn eval(src: &str, defs: &[(&str, &str)]) -> Result<bool> {
        let macros: MacroTable = defs
            .iter()
            .map(|(n, b)| {
                (
                    n.to_string(),
                    MacroDef::Object {
                        body: lex(b, FileId(0)).unwrap(),
                    },
                )
            })
            .collect();
        let toks = lex(src, FileId(0)).unwrap();
        let mut stats = ExpandStats::default();
        eval_condition(&toks, &macros, Loc::BUILTIN, &mut stats)
    }

    #[test]
    fn arithmetic() {
        assert!(eval("1 + 2 * 3 == 7", &[]).unwrap());
        assert!(eval("(1 + 2) * 3 == 9", &[]).unwrap());
        assert!(!eval("0", &[]).unwrap());
        assert!(eval("10 % 3 == 1 && 10 / 3 == 3", &[]).unwrap());
        assert!(eval("1 << 4 == 16", &[]).unwrap());
    }

    #[test]
    fn defined_operator() {
        assert!(eval("defined(FOO)", &[("FOO", "1")]).unwrap());
        assert!(eval("defined FOO", &[("FOO", "1")]).unwrap());
        assert!(!eval("defined(BAR)", &[]).unwrap());
        assert!(eval("!defined(BAR)", &[]).unwrap());
    }

    #[test]
    fn macros_in_condition() {
        assert!(eval("VERSION >= 2", &[("VERSION", "3")]).unwrap());
        assert!(!eval("VERSION >= 2", &[("VERSION", "1")]).unwrap());
    }

    #[test]
    fn unknown_idents_are_zero() {
        assert!(!eval("SOME_UNDEFINED_THING", &[]).unwrap());
        assert!(eval("SOME_UNDEFINED_THING == 0", &[]).unwrap());
    }

    #[test]
    fn ternary_and_unary() {
        assert!(eval("1 ? 2 : 0", &[]).unwrap());
        assert!(eval("-1 < 0", &[]).unwrap());
        assert!(eval("~0 == -1", &[]).unwrap());
        assert!(eval("+5 == 5", &[]).unwrap());
        assert!(eval("'A' == 65", &[]).unwrap());
    }

    #[test]
    fn deep_nesting_is_budget_error_not_overflow() {
        let parens = format!("{}1{}", "(".repeat(50_000), ")".repeat(50_000));
        assert!(eval(&parens, &[]).unwrap_err().is_budget());
        let bangs = format!("{}1", "!".repeat(50_000));
        assert!(eval(&bangs, &[]).unwrap_err().is_budget());
        let ternaries = "1?".repeat(50_000) + "1" + &":1".repeat(50_000);
        assert!(eval(&ternaries, &[]).unwrap_err().is_budget());
    }

    #[test]
    fn errors() {
        assert!(eval("1 +", &[]).is_err());
        assert!(eval("1 / 0", &[]).is_err());
        assert!(eval("1 % 0", &[]).is_err());
        assert!(eval("", &[]).is_err());
        assert!(eval("1 2", &[]).is_err());
        assert!(eval("defined()", &[]).is_err());
        assert!(eval("1.5", &[]).is_err());
    }
}
