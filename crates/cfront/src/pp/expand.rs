//! Macro expansion.
//!
//! A simplified variant of Prosser's hide-set algorithm: every token in
//! flight carries the set of macro names whose expansion produced it; a
//! name in its own hide set is never re-expanded, which guarantees
//! termination on self-referential macros (`#define a a`).

use crate::error::{CError, Result};
use crate::lexer;
use crate::span::Loc;
use crate::token::{Punct, Token, TokenKind};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

/// A macro definition.
#[derive(Debug, Clone, PartialEq)]
pub enum MacroDef {
    /// `#define NAME body...`
    Object { body: Vec<Token> },
    /// `#define NAME(params...) body...`
    Function {
        params: Vec<String>,
        variadic: bool,
        body: Vec<Token>,
    },
}

/// Table of live macro definitions.
pub type MacroTable = HashMap<String, MacroDef>;

/// A token in flight through the expander, with its hide set.
#[derive(Debug, Clone)]
struct PTok {
    tok: Token,
    hide: Rc<Vec<String>>,
}

impl PTok {
    fn fresh(tok: Token) -> Self {
        PTok {
            tok,
            hide: Rc::new(Vec::new()),
        }
    }

    fn hidden(&self, name: &str) -> bool {
        self.hide.iter().any(|h| h == name)
    }
}

fn extend_hide(hide: &Rc<Vec<String>>, name: &str) -> Rc<Vec<String>> {
    let mut v = (**hide).clone();
    v.push(name.to_string());
    Rc::new(v)
}

/// Statistics from macro expansion, plus the expansion budget.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExpandStats {
    /// Number of macro invocations expanded.
    pub expansions: usize,
    /// Budget: expansions allowed before a typed [`CError::Budget`] fires
    /// (0 = unlimited). Rides in the stats struct so every expansion site —
    /// lines, conditionals, `#include` arguments — draws from one tank.
    pub fuel: usize,
    /// Live macro-argument pre-expansion nesting depth. Argument expansion
    /// is the only call-stack recursion in the expander, so `F(F(F(...` is
    /// bounded here rather than by the thread stack.
    pub depth: u32,
}

/// Deepest macro-argument nesting before a typed budget error.
const MAX_ARG_DEPTH: u32 = 256;

impl ExpandStats {
    /// Counts one expansion against the fuel budget.
    fn burn(&mut self, loc: Loc) -> Result<()> {
        self.expansions += 1;
        if self.fuel != 0 && self.expansions > self.fuel {
            return Err(CError::budget(
                format!("macro expansion fuel exhausted ({} expansions)", self.fuel),
                loc,
            ));
        }
        Ok(())
    }
}

/// Fully macro-expands `tokens` against `macros`.
///
/// # Errors
///
/// Returns [`CError::Pp`] on malformed invocations (unterminated argument
/// list, wrong arity) or invalid `##` pastes.
pub fn expand(
    tokens: Vec<Token>,
    macros: &MacroTable,
    stats: &mut ExpandStats,
) -> Result<Vec<Token>> {
    let mut input: VecDeque<PTok> = tokens.into_iter().map(PTok::fresh).collect();
    let mut out = Vec::new();
    expand_into(&mut input, macros, &mut out, stats)?;
    Ok(out)
}

fn expand_into(
    input: &mut VecDeque<PTok>,
    macros: &MacroTable,
    out: &mut Vec<Token>,
    stats: &mut ExpandStats,
) -> Result<()> {
    while let Some(pt) = input.pop_front() {
        let name = match pt.tok.kind.ident() {
            Some(n) => n.to_string(),
            None => {
                out.push(pt.tok);
                continue;
            }
        };
        if pt.hidden(&name) {
            out.push(pt.tok);
            continue;
        }
        match macros.get(&name) {
            None => out.push(pt.tok),
            Some(MacroDef::Object { body }) => {
                stats.burn(pt.tok.loc)?;
                let hide = extend_hide(&pt.hide, &name);
                let replaced = paste_tokens(body.clone(), pt.tok.loc)?;
                for t in replaced.into_iter().rev() {
                    let mut t = t;
                    t.loc = pt.tok.loc;
                    input.push_front(PTok {
                        tok: t,
                        hide: Rc::clone(&hide),
                    });
                }
            }
            Some(MacroDef::Function {
                params,
                variadic,
                body,
            }) => {
                // A function-like macro name not followed by `(` is an
                // ordinary identifier.
                if !matches!(input.front(), Some(n) if n.tok.is_punct(Punct::LParen)) {
                    out.push(pt.tok);
                    continue;
                }
                input.pop_front(); // `(`
                let args = collect_args(input, pt.tok.loc)?;
                let arity_ok = if *variadic {
                    args.len() >= params.len()
                } else {
                    args.len() == params.len()
                        || (params.is_empty() && args.len() == 1 && args[0].is_empty())
                };
                if !arity_ok {
                    return Err(CError::pp(
                        format!(
                            "macro `{name}` expects {} argument(s), got {}",
                            params.len(),
                            args.len()
                        ),
                        pt.tok.loc,
                    ));
                }
                stats.burn(pt.tok.loc)?;
                let substituted =
                    substitute(body, params, *variadic, &args, macros, pt.tok.loc, stats)?;
                let hide = extend_hide(&pt.hide, &name);
                for t in substituted.into_iter().rev() {
                    let mut t = t;
                    t.loc = pt.tok.loc;
                    input.push_front(PTok {
                        tok: t,
                        hide: Rc::clone(&hide),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Collects macro arguments after the opening parenthesis (which the caller
/// consumed). Arguments are comma-separated at paren/bracket/brace depth 0.
fn collect_args(input: &mut VecDeque<PTok>, loc: Loc) -> Result<Vec<Vec<PTok>>> {
    let mut args: Vec<Vec<PTok>> = vec![Vec::new()];
    let mut depth = 0usize;
    loop {
        let Some(pt) = input.pop_front() else {
            return Err(CError::pp("unterminated macro argument list", loc));
        };
        match &pt.tok.kind {
            TokenKind::Punct(Punct::LParen)
            | TokenKind::Punct(Punct::LBracket)
            | TokenKind::Punct(Punct::LBrace) => {
                depth += 1;
                args.last_mut().unwrap().push(pt);
            }
            TokenKind::Punct(Punct::RParen) if depth == 0 => return Ok(args),
            TokenKind::Punct(Punct::RParen)
            | TokenKind::Punct(Punct::RBracket)
            | TokenKind::Punct(Punct::RBrace) => {
                depth = depth.saturating_sub(1);
                args.last_mut().unwrap().push(pt);
            }
            TokenKind::Punct(Punct::Comma) if depth == 0 => args.push(Vec::new()),
            _ => args.last_mut().unwrap().push(pt),
        }
    }
}

/// Substitutes parameters into a function-like macro body, handling `#`
/// (stringification, unexpanded argument) and `##` (token paste, unexpanded
/// operands). Other parameter uses receive the *fully expanded* argument.
#[allow(clippy::too_many_arguments)]
fn substitute(
    body: &[Token],
    params: &[String],
    variadic: bool,
    args: &[Vec<PTok>],
    macros: &MacroTable,
    loc: Loc,
    stats: &mut ExpandStats,
) -> Result<Vec<Token>> {
    let param_index = |name: &str| -> Option<usize> {
        if let Some(i) = params.iter().position(|p| p == name) {
            return Some(i);
        }
        if variadic && name == "__VA_ARGS__" {
            return Some(usize::MAX);
        }
        None
    };
    let arg_tokens = |idx: usize| -> Vec<Token> {
        if idx == usize::MAX {
            // __VA_ARGS__: the trailing arguments, comma-separated.
            let mut v = Vec::new();
            for (i, a) in args.iter().enumerate().skip(params.len()) {
                if i > params.len() {
                    v.push(Token::synth(TokenKind::Punct(Punct::Comma), loc));
                }
                v.extend(a.iter().map(|p| p.tok.clone()));
            }
            v
        } else {
            args.get(idx)
                .map(|a| a.iter().map(|p| p.tok.clone()).collect())
                .unwrap_or_default()
        }
    };

    let mut out: Vec<Token> = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let t = &body[i];
        // Stringification: `#param`.
        if t.is_punct(Punct::Hash) {
            if let Some(next) = body.get(i + 1) {
                if let Some(idx) = next.kind.ident().and_then(param_index) {
                    out.push(Token::synth(
                        TokenKind::Str(stringify(&arg_tokens(idx))),
                        loc,
                    ));
                    i += 2;
                    continue;
                }
            }
            return Err(CError::pp("`#` not followed by a macro parameter", loc));
        }
        // Token paste: `lhs ## rhs` (left-associative chains).
        if body.get(i + 1).is_some_and(|n| n.is_punct(Punct::HashHash)) {
            let mut pasted: Vec<Token> = expand_one(t, param_index, &arg_tokens);
            let mut j = i + 1;
            while j < body.len() && body[j].is_punct(Punct::HashHash) {
                let rhs = body
                    .get(j + 1)
                    .ok_or_else(|| CError::pp("`##` at end of macro body", loc))?;
                let rhs_toks = expand_one(rhs, param_index, &arg_tokens);
                pasted = paste_join(pasted, rhs_toks, loc)?;
                j += 2;
            }
            out.extend(pasted);
            i = j;
            continue;
        }
        // Ordinary parameter: fully expanded argument.
        if let Some(idx) = t.kind.ident().and_then(param_index) {
            stats.depth += 1;
            if stats.depth > MAX_ARG_DEPTH {
                stats.depth -= 1;
                return Err(CError::budget(
                    format!("macro arguments nested too deeply (limit {MAX_ARG_DEPTH})"),
                    loc,
                ));
            }
            let expanded = expand(arg_tokens(idx), macros, stats);
            stats.depth -= 1;
            out.extend(expanded?);
            i += 1;
            continue;
        }
        out.push(t.clone());
        i += 1;
    }
    Ok(out)
}

/// For `##` operands: a parameter becomes its unexpanded argument tokens,
/// anything else stays itself.
fn expand_one(
    t: &Token,
    param_index: impl Fn(&str) -> Option<usize>,
    arg_tokens: &impl Fn(usize) -> Vec<Token>,
) -> Vec<Token> {
    match t.kind.ident().and_then(param_index) {
        Some(idx) => arg_tokens(idx),
        None => vec![t.clone()],
    }
}

/// Joins the last token of `lhs` with the first of `rhs` by re-lexing their
/// concatenated spelling.
fn paste_join(mut lhs: Vec<Token>, mut rhs: Vec<Token>, loc: Loc) -> Result<Vec<Token>> {
    if lhs.is_empty() {
        return Ok(rhs);
    }
    if rhs.is_empty() {
        return Ok(lhs);
    }
    let l = lhs.pop().unwrap();
    let r = rhs.remove(0);
    let text = format!("{}{}", spell(&l), spell(&r));
    let mut lexed = lexer::lex(&text, loc.file)
        .map_err(|_| CError::pp(format!("`##` produced invalid token `{text}`"), loc))?;
    if lexed.len() != 1 {
        return Err(CError::pp(
            format!("`##` produced invalid token `{text}`"),
            loc,
        ));
    }
    let mut t = lexed.pop().unwrap();
    t.loc = loc;
    lhs.push(t);
    lhs.extend(rhs);
    Ok(lhs)
}

/// Handles `##` occurrences in an *object-like* macro body.
fn paste_tokens(body: Vec<Token>, loc: Loc) -> Result<Vec<Token>> {
    if !body.iter().any(|t| t.is_punct(Punct::HashHash)) {
        return Ok(body);
    }
    let mut out: Vec<Token> = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if body.get(i + 1).is_some_and(|n| n.is_punct(Punct::HashHash)) {
            let mut pasted = vec![body[i].clone()];
            let mut j = i + 1;
            while j < body.len() && body[j].is_punct(Punct::HashHash) {
                let rhs = body
                    .get(j + 1)
                    .ok_or_else(|| CError::pp("`##` at end of macro body", loc))?;
                pasted = paste_join(pasted, vec![rhs.clone()], loc)?;
                j += 2;
            }
            out.extend(pasted);
            i = j;
        } else {
            out.push(body[i].clone());
            i += 1;
        }
    }
    Ok(out)
}

/// The source spelling of a token (used for `#` and `##`).
pub fn spell(t: &Token) -> String {
    match &t.kind {
        TokenKind::Ident(s) => s.clone(),
        TokenKind::Str(s) => format!("{s:?}"),
        other => format!("{other}"),
    }
}

/// Renders argument tokens as a string literal body (for `#param`).
fn stringify(tokens: &[Token]) -> String {
    let mut s = String::new();
    for (i, t) in tokens.iter().enumerate() {
        if i > 0 && t.space_before {
            s.push(' ');
        }
        s.push_str(&spell(t));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::FileId;

    fn toks(src: &str) -> Vec<Token> {
        lexer::lex(src, FileId(0)).unwrap()
    }

    fn run(src: &str, defs: &[(&str, MacroDef)]) -> String {
        let macros: MacroTable = defs
            .iter()
            .map(|(n, d)| (n.to_string(), d.clone()))
            .collect();
        let mut stats = ExpandStats::default();
        let out = expand(toks(src), &macros, &mut stats).unwrap();
        out.iter().map(spell).collect::<Vec<_>>().join(" ")
    }

    fn obj(body: &str) -> MacroDef {
        MacroDef::Object { body: toks(body) }
    }

    fn func(params: &[&str], body: &str) -> MacroDef {
        MacroDef::Function {
            params: params.iter().map(|s| s.to_string()).collect(),
            variadic: false,
            body: toks(body),
        }
    }

    #[test]
    fn object_macro() {
        assert_eq!(run("x = N ;", &[("N", obj("42"))]), "x = 42 ;");
    }

    #[test]
    fn nested_object_macros() {
        assert_eq!(run("A", &[("A", obj("B + B")), ("B", obj("1"))]), "1 + 1");
    }

    #[test]
    fn self_reference_terminates() {
        assert_eq!(run("a", &[("a", obj("a"))]), "a");
        assert_eq!(run("x", &[("x", obj("y")), ("y", obj("x"))]), "x");
    }

    #[test]
    fn function_macro() {
        assert_eq!(
            run(
                "MAX(1, 2)",
                &[("MAX", func(&["a", "b"], "((a)>(b)?(a):(b))"))]
            ),
            "( ( 1 ) > ( 2 ) ? ( 1 ) : ( 2 ) )"
        );
    }

    #[test]
    fn function_macro_name_without_parens() {
        assert_eq!(run("F + 1", &[("F", func(&["x"], "x"))]), "F + 1");
    }

    #[test]
    fn nested_call_arguments() {
        let defs = [("ID", func(&["x"], "x")), ("TWO", obj("2"))];
        assert_eq!(run("ID(ID(TWO))", &defs), "2");
        assert_eq!(run("ID((1, 2))", &defs[..1]), "( 1 , 2 )");
    }

    #[test]
    fn stringify() {
        assert_eq!(run("S(a + b)", &[("S", func(&["x"], "#x"))]), "\"a + b\"");
    }

    #[test]
    fn paste() {
        assert_eq!(
            run("CAT(foo, bar)", &[("CAT", func(&["a", "b"], "a ## b"))]),
            "foobar"
        );
        assert_eq!(run("X", &[("X", obj("pre ## fix"))]), "prefix");
        assert_eq!(
            run(
                "C3(a, b, c)",
                &[("C3", func(&["x", "y", "z"], "x ## y ## z"))]
            ),
            "abc"
        );
    }

    #[test]
    fn variadic() {
        let m = MacroDef::Function {
            params: vec!["f".into()],
            variadic: true,
            body: toks("f(__VA_ARGS__)"),
        };
        assert_eq!(run("CALL(g, 1, 2)", &[("CALL", m)]), "g ( 1 , 2 )");
    }

    #[test]
    fn arity_errors() {
        let macros: MacroTable = [("F".to_string(), func(&["a", "b"], "a b"))]
            .into_iter()
            .collect();
        let mut stats = ExpandStats::default();
        assert!(expand(toks("F(1)"), &macros, &mut stats).is_err());
        assert!(expand(toks("F(1, 2, 3)"), &macros, &mut stats).is_err());
        assert!(expand(toks("F(1, 2"), &macros, &mut stats).is_err());
    }

    #[test]
    fn zero_arg_macro() {
        let m = MacroDef::Function {
            params: vec![],
            variadic: false,
            body: toks("99"),
        };
        assert_eq!(run("Z()", &[("Z", m)]), "99");
    }

    #[test]
    fn bad_paste_is_error() {
        let macros: MacroTable = [("P".to_string(), func(&["a"], "a ## ="))]
            .into_iter()
            .collect();
        let mut stats = ExpandStats::default();
        // `;=` is not a single valid token.
        assert!(expand(toks("P(;)"), &macros, &mut stats).is_err());
    }
}
