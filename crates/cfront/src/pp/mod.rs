//! The C preprocessor.
//!
//! Directive handling (`#include`, `#define`, conditionals, …) plus macro
//! expansion over the token stream produced by the [`crate::lexer`] module.
//! The output is a flat token vector ready for the parser, together with the
//! [`SourceMap`] of all files read and byte/line statistics used by the
//! Table 2 benchmark harness.

mod cond;
mod expand;
mod fs;

pub use expand::{spell, ExpandStats, MacroDef, MacroTable};
pub use fs::{dir_of, join_path, normalize_path, FileProvider, MemoryFs, OsFs};

use crate::error::{CError, Result};
use crate::lexer;
use crate::span::{Loc, SourceMap};
use crate::token::{Punct, Token, TokenKind};

/// Per-unit resource budgets protecting the frontend from hostile or
/// pathological input (DESIGN.md §14). Exceeding any budget produces a
/// typed [`CError::Budget`], never a panic or an unbounded loop. The
/// include-nesting budget lives in [`PpOptions::max_include_depth`] for
/// backward compatibility; overflowing it is also a budget error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontendLimits {
    /// Macro invocations expanded per translation unit (0 = unlimited).
    /// The default absorbs heavy generated code but stops macro bombs.
    pub macro_fuel: usize,
    /// Preprocessed tokens emitted per translation unit (0 = unlimited).
    pub max_tokens: usize,
    /// Parser recursion depth for nested expressions/declarators
    /// (0 = the historical default of 64).
    pub max_parser_depth: u32,
    /// Wall-clock deadline for preprocessing + parsing one unit, in
    /// milliseconds (0 = none). Checked periodically, so overruns are
    /// bounded by one check interval, not exact.
    pub deadline_ms: u64,
}

impl Default for FrontendLimits {
    fn default() -> Self {
        FrontendLimits {
            macro_fuel: 4_000_000,
            max_tokens: 33_554_432,
            max_parser_depth: 64,
            deadline_ms: 0,
        }
    }
}

impl FrontendLimits {
    /// The parser depth bound with the 0-means-default rule applied.
    #[must_use]
    pub fn parser_depth(&self) -> u32 {
        if self.max_parser_depth == 0 {
            64
        } else {
            self.max_parser_depth
        }
    }

    /// The deadline as an absolute instant from now, if one is set.
    #[must_use]
    pub fn deadline_from_now(&self) -> Option<std::time::Instant> {
        (self.deadline_ms > 0)
            .then(|| std::time::Instant::now() + std::time::Duration::from_millis(self.deadline_ms))
    }
}

/// Preprocessor configuration.
#[derive(Debug, Clone, Default)]
pub struct PpOptions {
    /// Directories searched for `#include` (both forms; quoted includes try
    /// the including file's directory first).
    pub include_dirs: Vec<String>,
    /// Predefined object-like macros, as `(name, body)` pairs.
    pub defines: Vec<(String, String)>,
    /// Maximum `#include` nesting depth (default 64).
    pub max_include_depth: usize,
    /// Resource budgets for hostile-input protection.
    pub limits: FrontendLimits,
}

impl PpOptions {
    /// Options with a predefined macro added.
    pub fn define(mut self, name: impl Into<String>, body: impl Into<String>) -> Self {
        self.defines.push((name.into(), body.into()));
        self
    }

    /// Options with an include directory added.
    pub fn include_dir(mut self, dir: impl Into<String>) -> Self {
        self.include_dirs.push(dir.into());
        self
    }
}

/// Statistics gathered while preprocessing one translation unit.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PpStats {
    /// Files read (main file + headers, counting repeats).
    pub files_read: usize,
    /// Total bytes of source consumed.
    pub bytes_in: u64,
    /// Tokens emitted after preprocessing.
    pub tokens_out: usize,
    /// Approximate preprocessed line count (distinct source lines that
    /// contributed at least one output token).
    pub lines_out: usize,
    /// Macro invocations expanded.
    pub macro_expansions: usize,
}

/// The result of preprocessing one translation unit.
#[derive(Debug)]
pub struct Preprocessed {
    /// The fully expanded token stream (no `Eof` sentinel).
    pub tokens: Vec<Token>,
    /// All files read, for location rendering.
    pub sources: SourceMap,
    /// Statistics.
    pub stats: PpStats,
}

/// Preprocesses `main_path` read from `fs` into a token stream.
///
/// # Errors
///
/// Returns [`CError::Pp`] when the main file is missing, an include cannot be
/// resolved, a directive is malformed, or `#error` fires; lexical errors from
/// any included file propagate as [`CError::Lex`].
pub fn preprocess(
    fs: &dyn FileProvider,
    main_path: &str,
    opts: &PpOptions,
) -> Result<Preprocessed> {
    let mut pp = Pp {
        fs,
        opts,
        sources: SourceMap::new(),
        macros: MacroTable::new(),
        out: Vec::new(),
        stats: PpStats::default(),
        expand_stats: ExpandStats {
            fuel: opts.limits.macro_fuel,
            ..ExpandStats::default()
        },
        cond_stack: Vec::new(),
        lines_seen: std::collections::HashSet::new(),
        line_adjust: 0,
        line_file: None,
        include_stack: Vec::new(),
        deadline: opts.limits.deadline_from_now(),
        deadline_ticks: 0,
    };
    for (name, body) in &opts.defines {
        let toks = lexer::lex(body, crate::span::FileId::BUILTIN)?;
        pp.macros
            .insert(name.clone(), MacroDef::Object { body: toks });
    }
    pp.process_file(main_path, Loc::BUILTIN, 0)?;
    if let Some(open) = pp.cond_stack.last() {
        return Err(CError::pp(
            "unterminated conditional (#if without #endif)",
            open.loc,
        ));
    }
    pp.stats.tokens_out = pp.out.len();
    pp.stats.macro_expansions = pp.expand_stats.expansions;
    pp.stats.lines_out = pp.lines_seen.len();
    Ok(Preprocessed {
        tokens: pp.out,
        sources: pp.sources,
        stats: pp.stats,
    })
}

/// One level of `#if` nesting.
#[derive(Debug)]
struct Cond {
    /// Location of the opening `#if`, for error reporting.
    loc: Loc,
    /// Whether the enclosing context is active.
    parent_active: bool,
    /// Whether the current branch is being emitted.
    active: bool,
    /// Whether any branch of this conditional has been taken yet.
    taken: bool,
    /// Whether `#else` has been seen.
    seen_else: bool,
}

struct Pp<'a> {
    fs: &'a dyn FileProvider,
    opts: &'a PpOptions,
    sources: SourceMap,
    macros: MacroTable,
    out: Vec<Token>,
    stats: PpStats,
    expand_stats: ExpandStats,
    cond_stack: Vec<Cond>,
    lines_seen: std::collections::HashSet<(crate::span::FileId, u32)>,
    /// Active `#line` remapping for the current file: (line delta, optional
    /// presumed file).
    line_adjust: i64,
    line_file: Option<crate::span::FileId>,
    /// Resolved paths of files currently being processed, outermost first —
    /// re-entering one is an include cycle.
    include_stack: Vec<String>,
    /// Absolute wall-clock deadline for this unit, if budgeted.
    deadline: Option<std::time::Instant>,
    /// Logical lines processed since the last deadline check.
    deadline_ticks: u32,
}

/// How many logical lines may pass between wall-clock deadline checks;
/// bounds both the overrun and the `Instant::now` overhead on clean input.
const DEADLINE_CHECK_INTERVAL: u32 = 128;

impl<'a> Pp<'a> {
    fn active(&self) -> bool {
        self.cond_stack.iter().all(|c| c.active)
    }

    fn process_file(&mut self, path: &str, from: Loc, depth: usize) -> Result<()> {
        let max_depth = if self.opts.max_include_depth == 0 {
            64
        } else {
            self.opts.max_include_depth
        };
        if depth > max_depth {
            return Err(CError::budget(
                format!("#include nesting deeper than {max_depth} at `{path}`"),
                from,
            ));
        }
        if self.include_stack.iter().any(|p| p == path) {
            return Err(CError::include_cycle(
                format!(
                    "`{path}` is included while still being processed ({})",
                    self.include_stack.join(" -> ")
                ),
                from,
            ));
        }
        self.include_stack.push(path.to_string());
        let r = self.process_file_inner(path, from, depth);
        self.include_stack.pop();
        r
    }

    fn process_file_inner(&mut self, path: &str, from: Loc, depth: usize) -> Result<()> {
        let src = self
            .fs
            .read(path)
            .ok_or_else(|| CError::pp(format!("cannot open `{path}`"), from))?;
        self.stats.files_read += 1;
        self.stats.bytes_in += src.len() as u64;
        let file = self.sources.add_file(path, src.clone());
        let tokens = lexer::lex(&src, file)?;
        let cond_depth_at_entry = self.cond_stack.len();
        // #line remappings are per-file.
        let (saved_adjust, saved_file) = (self.line_adjust, self.line_file);
        self.line_adjust = 0;
        self.line_file = None;

        // Walk logical lines.
        let mut i = 0;
        while i < tokens.len() {
            // A logical line runs until the next `first_on_line` token.
            let mut j = i + 1;
            while j < tokens.len() && !tokens[j].first_on_line {
                j += 1;
            }
            let line = &tokens[i..j];
            self.check_budgets(line[0].loc)?;
            if line[0].is_punct(Punct::Hash) {
                self.directive(&line[1..], line[0].loc, path, depth)?;
            } else if self.active() {
                let mut expanded =
                    expand::expand(line.to_vec(), &self.macros, &mut self.expand_stats)?;
                if self.line_adjust != 0 || self.line_file.is_some() {
                    for t in &mut expanded {
                        if t.loc.file == file {
                            t.loc.line = (i64::from(t.loc.line) + self.line_adjust).max(1) as u32;
                            if let Some(f) = self.line_file {
                                t.loc.file = f;
                            }
                        }
                    }
                }
                for t in &expanded {
                    self.lines_seen.insert((t.loc.file, t.loc.line));
                }
                self.out.extend(expanded);
            }
            i = j;
        }
        self.line_adjust = saved_adjust;
        self.line_file = saved_file;
        if self.cond_stack.len() != cond_depth_at_entry {
            let open = &self.cond_stack[self.cond_stack.len() - 1];
            return Err(CError::pp(
                "unterminated conditional (#if without #endif)",
                open.loc,
            ));
        }
        Ok(())
    }

    /// Enforces the per-unit token cap and (periodically) the wall-clock
    /// deadline. Called once per logical line, so every budget overrun is
    /// caught within one line of work.
    fn check_budgets(&mut self, loc: Loc) -> Result<()> {
        let cap = self.opts.limits.max_tokens;
        if cap != 0 && self.out.len() > cap {
            return Err(CError::budget(
                format!("preprocessed output exceeds {cap} tokens"),
                loc,
            ));
        }
        if let Some(deadline) = self.deadline {
            self.deadline_ticks += 1;
            if self.deadline_ticks >= DEADLINE_CHECK_INTERVAL {
                self.deadline_ticks = 0;
                if std::time::Instant::now() > deadline {
                    return Err(CError::budget(
                        format!(
                            "preprocessing exceeded the {} ms deadline",
                            self.opts.limits.deadline_ms
                        ),
                        loc,
                    ));
                }
            }
        }
        Ok(())
    }

    fn directive(&mut self, rest: &[Token], loc: Loc, cur_path: &str, depth: usize) -> Result<()> {
        // A lone `#` is a null directive.
        let Some(first) = rest.first() else {
            return Ok(());
        };
        let name = first.kind.ident().unwrap_or("");
        let args = &rest[1..];
        match name {
            "if" => {
                // An #if inside a skipped region is pushed but its expression
                // is not evaluated (it may use constructs we cannot resolve).
                let parent = self.parent_active();
                let v = if parent {
                    cond::eval_condition(args, &self.macros, loc, &mut self.expand_stats)?
                } else {
                    false
                };
                self.cond_stack.push(Cond {
                    loc,
                    parent_active: parent,
                    active: parent && v,
                    taken: v,
                    seen_else: false,
                });
                Ok(())
            }
            "ifdef" | "ifndef" => {
                let id = args
                    .first()
                    .and_then(|t| t.kind.ident())
                    .ok_or_else(|| CError::pp(format!("#{name} needs an identifier"), loc))?;
                let mut cond = self.macros.contains_key(id);
                if name == "ifndef" {
                    cond = !cond;
                }
                self.cond_stack.push(Cond {
                    loc,
                    parent_active: self.parent_active(),
                    active: self.parent_active() && cond,
                    taken: cond,
                    seen_else: false,
                });
                Ok(())
            }
            "elif" => {
                let Some(top) = self.cond_stack.last_mut() else {
                    return Err(CError::pp("#elif without #if", loc));
                };
                if top.seen_else {
                    return Err(CError::pp("#elif after #else", loc));
                }
                if top.taken || !top.parent_active {
                    top.active = false;
                } else {
                    let v = cond::eval_condition(args, &self.macros, loc, &mut self.expand_stats)?;
                    top.active = v;
                    top.taken = v;
                }
                Ok(())
            }
            "else" => {
                let Some(top) = self.cond_stack.last_mut() else {
                    return Err(CError::pp("#else without #if", loc));
                };
                if top.seen_else {
                    return Err(CError::pp("duplicate #else", loc));
                }
                top.seen_else = true;
                top.active = top.parent_active && !top.taken;
                top.taken = true;
                Ok(())
            }
            "endif" => {
                if self.cond_stack.pop().is_none() {
                    return Err(CError::pp("#endif without #if", loc));
                }
                Ok(())
            }
            _ if !self.active() => Ok(()), // other directives in skipped regions are ignored
            "define" => self.define(args, loc),
            "undef" => {
                let id = args
                    .first()
                    .and_then(|t| t.kind.ident())
                    .ok_or_else(|| CError::pp("#undef needs an identifier", loc))?;
                self.macros.remove(id);
                Ok(())
            }
            "include" => self.include(args, loc, cur_path, depth),
            "error" => {
                let msg: Vec<String> = args.iter().map(spell).collect();
                Err(CError::pp(format!("#error {}", msg.join(" ")), loc))
            }
            "line" => {
                // `#line N ["file"]`: subsequent lines are presumed to come
                // from line N (of the given file). Common in generated code.
                let toks = expand::expand(args.to_vec(), &self.macros, &mut self.expand_stats)?;
                let Some(TokenKind::Int(n, _)) = toks.first().map(|t| &t.kind) else {
                    return Err(CError::pp("#line needs a line number", loc));
                };
                // The next physical line is loc.line + 1 and must appear as n.
                self.line_adjust = *n as i64 - i64::from(loc.line) - 1;
                // A bare `#line N` keeps the current presumed file name.
                if let Some(TokenKind::Str(name)) = toks.get(1).map(|t| &t.kind) {
                    let id = self.sources.add_file(name.clone(), "".into());
                    self.line_file = Some(id);
                }
                Ok(())
            }
            "warning" | "pragma" | "ident" => Ok(()), // accepted and ignored
            other => Err(CError::pp(format!("unknown directive #{other}"), loc)),
        }
    }

    fn parent_active(&self) -> bool {
        self.cond_stack.iter().all(|c| c.active)
    }

    fn define(&mut self, args: &[Token], loc: Loc) -> Result<()> {
        let Some((name_tok, rest)) = args.split_first() else {
            return Err(CError::pp("#define needs a name", loc));
        };
        let Some(name) = name_tok.kind.ident() else {
            return Err(CError::pp("#define needs an identifier", loc));
        };
        // Function-like iff `(` immediately follows the name (no whitespace).
        let function_like = rest
            .first()
            .is_some_and(|t| t.is_punct(Punct::LParen) && !t.space_before);
        if !function_like {
            self.macros.insert(
                name.to_string(),
                MacroDef::Object {
                    body: rest.to_vec(),
                },
            );
            return Ok(());
        }
        let mut params = Vec::new();
        let mut variadic = false;
        let mut i = 1; // after `(`
        if rest.get(i).is_some_and(|t| t.is_punct(Punct::RParen)) {
            i += 1;
        } else {
            loop {
                match rest.get(i) {
                    Some(t) if t.is_punct(Punct::Ellipsis) => {
                        variadic = true;
                        i += 1;
                    }
                    Some(t) => {
                        let p = t
                            .kind
                            .ident()
                            .ok_or_else(|| CError::pp("expected macro parameter name", t.loc))?;
                        params.push(p.to_string());
                        i += 1;
                    }
                    None => return Err(CError::pp("unterminated macro parameter list", loc)),
                }
                match rest.get(i) {
                    Some(t) if t.is_punct(Punct::Comma) && !variadic => i += 1,
                    Some(t) if t.is_punct(Punct::RParen) => {
                        i += 1;
                        break;
                    }
                    _ => {
                        return Err(CError::pp(
                            "expected `,` or `)` in macro parameter list",
                            loc,
                        ))
                    }
                }
            }
        }
        let body = rest[i..].to_vec();
        self.macros.insert(
            name.to_string(),
            MacroDef::Function {
                params,
                variadic,
                body,
            },
        );
        Ok(())
    }

    fn include(&mut self, args: &[Token], loc: Loc, cur_path: &str, depth: usize) -> Result<()> {
        // Two spellings: #include "path" and #include <path>. A macro that
        // expands to one of these forms is also accepted.
        let toks: Vec<Token>;
        let args = if args.first().is_some_and(|t| t.kind.is_ident()) {
            toks = expand::expand(args.to_vec(), &self.macros, &mut self.expand_stats)?;
            &toks[..]
        } else {
            args
        };
        let (path, angled) = match args.first().map(|t| &t.kind) {
            Some(TokenKind::Str(s)) => (s.clone(), false),
            Some(TokenKind::Punct(Punct::Lt)) => {
                let mut s = String::new();
                for t in &args[1..] {
                    if t.is_punct(Punct::Gt) {
                        break;
                    }
                    s.push_str(&spell(t));
                }
                if !args.iter().any(|t| t.is_punct(Punct::Gt)) {
                    return Err(CError::pp("unterminated <...> include", loc));
                }
                (s, true)
            }
            _ => return Err(CError::pp("malformed #include", loc)),
        };
        // Resolution order: quoted tries the includer's directory first,
        // then the include path; angled tries only the include path (plus
        // the bare name, so absolute/virtual paths work).
        let mut candidates = Vec::new();
        if !angled {
            candidates.push(join_path(dir_of(cur_path), &path));
        }
        for dir in &self.opts.include_dirs {
            candidates.push(join_path(dir, &path));
        }
        candidates.push(normalize_path(&path));
        for cand in &candidates {
            if self.fs.read(cand).is_some() {
                return self.process_file(cand, loc, depth + 1);
            }
        }
        Err(CError::pp(format!("include file not found: `{path}`"), loc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)], opts: PpOptions) -> Result<Preprocessed> {
        let mut fs = MemoryFs::new();
        for (p, c) in files {
            fs.add(*p, *c);
        }
        preprocess(&fs, files[0].0, &opts)
    }

    fn text(p: &Preprocessed) -> String {
        p.tokens.iter().map(spell).collect::<Vec<_>>().join(" ")
    }

    #[test]
    fn passthrough() {
        let p = run(&[("a.c", "int x = 1;\n")], PpOptions::default()).unwrap();
        assert_eq!(text(&p), "int x = 1 ;");
        assert_eq!(p.stats.files_read, 1);
    }

    #[test]
    fn object_and_function_macros() {
        let src = "#define N 10\n#define SQ(x) ((x)*(x))\nint a = SQ(N);\n";
        let p = run(&[("a.c", src)], PpOptions::default()).unwrap();
        assert_eq!(text(&p), "int a = ( ( 10 ) * ( 10 ) ) ;");
        assert!(p.stats.macro_expansions >= 2);
    }

    #[test]
    fn include_and_guard() {
        let h = "#ifndef H\n#define H\nint from_header;\n#endif\n";
        let c = "#include \"h.h\"\n#include \"h.h\"\nint main_var;\n";
        let p = run(&[("a.c", c), ("h.h", h)], PpOptions::default()).unwrap();
        assert_eq!(text(&p), "int from_header ; int main_var ;");
        assert_eq!(p.stats.files_read, 3);
    }

    #[test]
    fn include_relative_to_includer() {
        let files = [
            ("src/a.c", "#include \"sub/x.h\"\n"),
            ("src/sub/x.h", "#include \"y.h\"\n"),
            ("src/sub/y.h", "int deep;\n"),
        ];
        let p = run(&files, PpOptions::default()).unwrap();
        assert_eq!(text(&p), "int deep ;");
    }

    #[test]
    fn angled_include_uses_include_dirs() {
        let files = [
            ("a.c", "#include <lib.h>\nint b;\n"),
            ("inc/lib.h", "int a;\n"),
        ];
        let p = run(&files, PpOptions::default().include_dir("inc")).unwrap();
        assert_eq!(text(&p), "int a ; int b ;");
        assert!(run(&files, PpOptions::default()).is_err());
    }

    #[test]
    fn conditionals() {
        let src = "#if FOO\nint yes;\n#else\nint no;\n#endif\n";
        let p = run(&[("a.c", src)], PpOptions::default().define("FOO", "1")).unwrap();
        assert_eq!(text(&p), "int yes ;");
        let p = run(&[("a.c", src)], PpOptions::default()).unwrap();
        assert_eq!(text(&p), "int no ;");
    }

    #[test]
    fn elif_chain() {
        let src = "#if A\nint a;\n#elif B\nint b;\n#elif C\nint c;\n#else\nint d;\n#endif\n";
        let p = run(&[("x.c", src)], PpOptions::default().define("B", "1")).unwrap();
        assert_eq!(text(&p), "int b ;");
        let p = run(&[("x.c", src)], PpOptions::default().define("C", "1")).unwrap();
        assert_eq!(text(&p), "int c ;");
        let p = run(&[("x.c", src)], PpOptions::default()).unwrap();
        assert_eq!(text(&p), "int d ;");
        // Only the first true branch is taken.
        let p = run(
            &[("x.c", src)],
            PpOptions::default().define("B", "1").define("C", "1"),
        )
        .unwrap();
        assert_eq!(text(&p), "int b ;");
    }

    #[test]
    fn nested_conditionals_in_skipped_region() {
        let src = "#if 0\n#if 1\nint skipped;\n#endif\n#else\nint kept;\n#endif\n";
        let p = run(&[("a.c", src)], PpOptions::default()).unwrap();
        assert_eq!(text(&p), "int kept ;");
    }

    #[test]
    fn undef() {
        let src = "#define X 1\n#undef X\n#ifdef X\nint yes;\n#endif\nint always;\n";
        let p = run(&[("a.c", src)], PpOptions::default()).unwrap();
        assert_eq!(text(&p), "int always ;");
    }

    #[test]
    fn error_directive() {
        let src = "#if 0\n#error never\n#endif\nint ok;\n";
        assert_eq!(
            text(&run(&[("a.c", src)], PpOptions::default()).unwrap()),
            "int ok ;"
        );
        let src = "#error boom here\n";
        let e = run(&[("a.c", src)], PpOptions::default()).unwrap_err();
        assert!(e.message().contains("boom here"));
    }

    #[test]
    fn missing_things_error() {
        assert!(run(&[("a.c", "#include \"nope.h\"\n")], PpOptions::default()).is_err());
        assert!(run(&[("a.c", "#if 1\nint x;\n")], PpOptions::default()).is_err());
        assert!(run(&[("a.c", "#endif\n")], PpOptions::default()).is_err());
        assert!(run(&[("a.c", "#else\n")], PpOptions::default()).is_err());
        assert!(run(&[("a.c", "#bogus\n")], PpOptions::default()).is_err());
        let mut fs = MemoryFs::new();
        fs.add("self.h", "#include \"self.h\"\n");
        assert!(preprocess(&fs, "self.h", &PpOptions::default()).is_err());
    }

    #[test]
    fn include_cycle_is_a_typed_error() {
        // Indirect cycle: b.h -> c.h -> b.h.
        let files = [
            ("a.c", "#include \"b.h\"\n"),
            ("b.h", "#include \"c.h\"\n"),
            ("c.h", "#include \"b.h\"\n"),
        ];
        let e = run(&files, PpOptions::default()).unwrap_err();
        assert!(matches!(e, CError::IncludeCycle { .. }), "{e}");
        assert!(e.message().contains("b.h"), "{e}");
        // Direct self-include is the degenerate cycle.
        let e = run(&[("self.h", "#include \"self.h\"\n")], PpOptions::default()).unwrap_err();
        assert!(matches!(e, CError::IncludeCycle { .. }), "{e}");
        // A diamond (two paths to the same header, sequentially) is not.
        let files = [
            ("a.c", "#include \"b.h\"\n#include \"c.h\"\n"),
            ("b.h", "#include \"d.h\"\n"),
            ("c.h", "#include \"d.h\"\n"),
            ("d.h", "int d_var;\n"),
        ];
        assert!(run(&files, PpOptions::default()).is_ok());
    }

    #[test]
    fn include_depth_overflow_is_a_budget_error() {
        let mut fs = MemoryFs::new();
        for i in 0..6 {
            fs.add(format!("f{i}.h"), format!("#include \"f{}.h\"\n", i + 1));
        }
        fs.add("f6.h", "int deep;\n");
        let opts = PpOptions {
            max_include_depth: 3,
            ..PpOptions::default()
        };
        let e = preprocess(&fs, "f0.h", &opts).unwrap_err();
        assert!(e.is_budget(), "{e}");
    }

    #[test]
    fn macro_fuel_stops_expansion_bombs() {
        // Each level expands to eight copies of the previous one: the full
        // expansion is ~8^8 invocations, far over the test budget.
        let mut src = String::from("#define A0 x\n");
        for i in 1..9 {
            let p = i - 1;
            src.push_str(&format!(
                "#define A{i} A{p} A{p} A{p} A{p} A{p} A{p} A{p} A{p}\n"
            ));
        }
        src.push_str("int A8;\n");
        let mut opts = PpOptions::default();
        opts.limits.macro_fuel = 10_000;
        let e = run(&[("bomb.c", src.as_str())], opts).unwrap_err();
        assert!(e.is_budget(), "{e}");
    }

    #[test]
    fn token_cap_bounds_output() {
        let src = "#define ROW int a; int b; int c; int d;\n".to_string() + &"ROW\n".repeat(200);
        let mut opts = PpOptions::default();
        opts.limits.max_tokens = 100;
        let e = run(&[("big.c", src.as_str())], opts).unwrap_err();
        assert!(e.is_budget(), "{e}");
        // Unlimited (0) accepts the same input.
        let mut opts = PpOptions::default();
        opts.limits.max_tokens = 0;
        assert!(run(&[("big.c", src.as_str())], opts).is_ok());
    }

    #[test]
    fn limit_helpers() {
        let limits = FrontendLimits {
            max_parser_depth: 0,
            deadline_ms: 0,
            ..FrontendLimits::default()
        };
        assert_eq!(limits.parser_depth(), 64);
        assert!(limits.deadline_from_now().is_none());
        let limits = FrontendLimits {
            max_parser_depth: 7,
            deadline_ms: 1000,
            ..FrontendLimits::default()
        };
        assert_eq!(limits.parser_depth(), 7);
        assert!(limits.deadline_from_now().is_some());
    }

    #[test]
    fn pragma_and_null_directive_ignored() {
        let src = "#pragma once\n#\nint x;\nint y;\n";
        let p = run(&[("a.c", src)], PpOptions::default()).unwrap();
        assert_eq!(text(&p), "int x ; int y ;");
    }

    #[test]
    fn line_directive_remaps_locations() {
        let src = "int a;\n#line 100 \"gen.y\"\nint b;\nint c;\n#line 7\nint d;\n";
        let p = run(&[("a.c", src)], PpOptions::default()).unwrap();
        assert_eq!(text(&p), "int a ; int b ; int c ; int d ;");
        let find = |name: &str| {
            p.tokens
                .iter()
                .find(|t| t.is_ident(name))
                .map(|t| (p.sources.file_name(t.loc.file).to_string(), t.loc.line))
                .unwrap()
        };
        assert_eq!(find("a"), ("a.c".to_string(), 1));
        assert_eq!(find("b"), ("gen.y".to_string(), 100));
        assert_eq!(find("c"), ("gen.y".to_string(), 101));
        assert_eq!(find("d"), ("gen.y".to_string(), 7));
    }

    #[test]
    fn line_directive_resets_per_file() {
        let files = [
            ("main.c", "#include \"gen.h\"\nint after;\n"),
            ("gen.h", "#line 500\nint inside;\n"),
        ];
        let p = run(&files, PpOptions::default()).unwrap();
        let after = p.tokens.iter().find(|t| t.is_ident("after")).unwrap();
        assert_eq!(after.loc.line, 2, "the includer's numbering is unaffected");
        let inside = p.tokens.iter().find(|t| t.is_ident("inside")).unwrap();
        assert_eq!(inside.loc.line, 500);
    }

    #[test]
    fn bad_line_directive_errors() {
        assert!(run(&[("a.c", "#line nope\n")], PpOptions::default()).is_err());
    }

    #[test]
    fn stats_counts() {
        let src = "#define A 1\nint x = A;\nint y = A;\n";
        let p = run(&[("a.c", src)], PpOptions::default()).unwrap();
        assert_eq!(p.stats.tokens_out, 10);
        assert_eq!(p.stats.macro_expansions, 2);
        assert_eq!(p.stats.lines_out, 2);
        assert_eq!(p.stats.bytes_in, src.len() as u64);
    }

    #[test]
    fn macro_locations_point_at_invocation() {
        let src = "#define M 42\nint x = M;\n";
        let p = run(&[("a.c", src)], PpOptions::default()).unwrap();
        let forty_two = p
            .tokens
            .iter()
            .find(|t| matches!(t.kind, TokenKind::Int(42, _)))
            .unwrap();
        assert_eq!(forty_two.loc.line, 2);
    }
}
