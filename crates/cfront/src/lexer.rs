//! The C lexer.
//!
//! Converts raw source text into a stream of [`Token`]s. Handles line
//! splicing (`\` + newline), both comment styles, all C89 literals plus the
//! common `//` and `long long` extensions, and records the layout flags the
//! preprocessor needs (`first_on_line`, `space_before`).

use crate::error::{CError, Result};
use crate::span::{FileId, Loc};
use crate::token::{IntSuffix, Punct, Token, TokenKind};

/// Lexes a whole file into a token vector (without a trailing `Eof` token).
///
/// # Errors
///
/// Returns [`CError::Lex`] on malformed literals, unterminated comments or
/// strings, or characters outside the C source character set.
pub fn lex(src: &str, file: FileId) -> Result<Vec<Token>> {
    Lexer::new(src, file).run()
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    file: FileId,
    line: u32,
    col: u32,
    first_on_line: bool,
    space_before: bool,
    out: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str, file: FileId) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            file,
            line: 1,
            col: 1,
            first_on_line: true,
            space_before: false,
            out: Vec::new(),
        }
    }

    fn loc(&self) -> Loc {
        Loc::new(self.file, self.line, self.col)
    }

    fn peek(&self) -> Option<u8> {
        self.peek_at(0)
    }

    /// Peeks `n` bytes ahead, transparently skipping line splices.
    fn peek_at(&self, n: usize) -> Option<u8> {
        let mut p = self.pos;
        let mut remaining = n;
        loop {
            // Skip any backslash-newline splices at p.
            while p + 1 < self.src.len()
                && self.src[p] == b'\\'
                && (self.src[p + 1] == b'\n'
                    || (self.src[p + 1] == b'\r'
                        && p + 2 < self.src.len()
                        && self.src[p + 2] == b'\n'))
            {
                p += if self.src[p + 1] == b'\r' { 3 } else { 2 };
            }
            let b = *self.src.get(p)?;
            if remaining == 0 {
                return Some(b);
            }
            remaining -= 1;
            p += 1;
        }
    }

    /// Consumes one byte, maintaining line/column and splicing lines.
    fn bump(&mut self) -> Option<u8> {
        loop {
            if self.pos + 1 < self.src.len()
                && self.src[self.pos] == b'\\'
                && (self.src[self.pos + 1] == b'\n'
                    || (self.src[self.pos + 1] == b'\r'
                        && self.pos + 2 < self.src.len()
                        && self.src[self.pos + 2] == b'\n'))
            {
                self.pos += if self.src[self.pos + 1] == b'\r' {
                    3
                } else {
                    2
                };
                self.line += 1;
                self.col = 1;
                continue;
            }
            let b = *self.src.get(self.pos)?;
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
            return Some(b);
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn err(&self, msg: impl Into<String>) -> CError {
        CError::lex(msg, self.loc())
    }

    fn run(mut self) -> Result<Vec<Token>> {
        loop {
            self.skip_ws_and_comments()?;
            let loc = self.loc();
            let Some(b) = self.peek() else { break };
            let first = self.first_on_line;
            let space = self.space_before;
            let kind = self.next_kind(b)?;
            self.out.push(Token {
                kind,
                loc,
                first_on_line: first,
                space_before: space,
            });
            self.first_on_line = false;
            self.space_before = false;
        }
        Ok(self.out)
    }

    fn skip_ws_and_comments(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(b'\n') => {
                    self.bump();
                    self.first_on_line = true;
                    self.space_before = true;
                }
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(0x0b) | Some(0x0c) => {
                    self.bump();
                    self.space_before = true;
                }
                Some(b'/') if self.peek_at(1) == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                    self.space_before = true;
                }
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    let start = self.loc();
                    self.bump();
                    self.bump();
                    loop {
                        match self.bump() {
                            Some(b'*') if self.peek() == Some(b'/') => {
                                self.bump();
                                break;
                            }
                            Some(_) => {}
                            None => return Err(CError::lex("unterminated block comment", start)),
                        }
                    }
                    self.space_before = true;
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_kind(&mut self, b: u8) -> Result<TokenKind> {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_ident(),
            b'0'..=b'9' => self.lex_number(),
            b'.' if self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) => self.lex_number(),
            b'\'' => self.lex_char(),
            b'"' => self.lex_string(),
            _ => self.lex_punct(),
        }
    }

    fn lex_ident(&mut self) -> Result<TokenKind> {
        let mut s = String::new();
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                s.push(self.bump().unwrap() as char);
            } else {
                break;
            }
        }
        // Wide literal prefixes: treat L"..." / L'...' as plain literals.
        if s == "L" {
            if self.peek() == Some(b'"') {
                return self.lex_string();
            }
            if self.peek() == Some(b'\'') {
                return self.lex_char();
            }
        }
        Ok(TokenKind::Ident(s))
    }

    fn lex_number(&mut self) -> Result<TokenKind> {
        let mut text = String::new();
        // Gather the full preprocessing-number first (digits, letters, dots,
        // exponent signs), then classify.
        let mut prev = 0u8;
        while let Some(b) = self.peek() {
            let is_exp_sign = (b == b'+' || b == b'-') && matches!(prev, b'e' | b'E' | b'p' | b'P');
            if b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || is_exp_sign {
                text.push(self.bump().unwrap() as char);
                prev = b;
            } else {
                break;
            }
        }
        parse_pp_number(&text).ok_or_else(|| self.err(format!("malformed number `{text}`")))
    }

    fn lex_escape(&mut self) -> Result<i64> {
        // Caller has consumed the backslash.
        let Some(b) = self.bump() else {
            return Err(self.err("unterminated escape sequence"));
        };
        Ok(match b {
            b'n' => b'\n' as i64,
            b't' => b'\t' as i64,
            b'r' => b'\r' as i64,
            b'0'..=b'7' => {
                let mut v = (b - b'0') as i64;
                for _ in 0..2 {
                    match self.peek() {
                        Some(c @ b'0'..=b'7') => {
                            self.bump();
                            v = v * 8 + (c - b'0') as i64;
                        }
                        _ => break,
                    }
                }
                v
            }
            b'x' => {
                let mut v: i64 = 0;
                let mut any = false;
                while let Some(c) = self.peek() {
                    if let Some(d) = (c as char).to_digit(16) {
                        self.bump();
                        v = v.wrapping_mul(16).wrapping_add(d as i64);
                        any = true;
                    } else {
                        break;
                    }
                }
                if !any {
                    return Err(self.err("\\x with no hex digits"));
                }
                v
            }
            b'a' => 7,
            b'b' => 8,
            b'f' => 12,
            b'v' => 11,
            b'\\' => b'\\' as i64,
            b'\'' => b'\'' as i64,
            b'"' => b'"' as i64,
            b'?' => b'?' as i64,
            other => other as i64, // lenient: unknown escape is the char itself
        })
    }

    fn lex_char(&mut self) -> Result<TokenKind> {
        let start = self.loc();
        self.bump(); // opening quote
        let mut value: i64 = 0;
        let mut any = false;
        loop {
            match self.peek() {
                None | Some(b'\n') => {
                    return Err(CError::lex("unterminated character constant", start))
                }
                Some(b'\'') => {
                    self.bump();
                    break;
                }
                Some(b'\\') => {
                    self.bump();
                    let v = self.lex_escape()?;
                    value = (value << 8) | (v & 0xff);
                    any = true;
                }
                Some(c) => {
                    self.bump();
                    value = (value << 8) | c as i64;
                    any = true;
                }
            }
        }
        if !any {
            return Err(CError::lex("empty character constant", start));
        }
        Ok(TokenKind::Char(value))
    }

    fn lex_string(&mut self) -> Result<TokenKind> {
        let start = self.loc();
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.peek() {
                None | Some(b'\n') => {
                    return Err(CError::lex("unterminated string literal", start))
                }
                Some(b'"') => {
                    self.bump();
                    break;
                }
                Some(b'\\') => {
                    self.bump();
                    let v = self.lex_escape()?;
                    s.push((v as u8) as char);
                }
                Some(c) => {
                    self.bump();
                    s.push(c as char);
                }
            }
        }
        Ok(TokenKind::Str(s))
    }

    fn lex_punct(&mut self) -> Result<TokenKind> {
        use Punct::*;
        let b = self.bump().unwrap();
        let p = match b {
            b'(' => LParen,
            b')' => RParen,
            b'[' => LBracket,
            b']' => RBracket,
            b'{' => LBrace,
            b'}' => RBrace,
            b',' => Comma,
            b';' => Semi,
            b':' => Colon,
            b'?' => Question,
            b'~' => Tilde,
            b'.' => {
                if self.peek() == Some(b'.') && self.peek_at(1) == Some(b'.') {
                    self.bump();
                    self.bump();
                    Ellipsis
                } else {
                    Dot
                }
            }
            b'+' => {
                if self.eat(b'+') {
                    PlusPlus
                } else if self.eat(b'=') {
                    PlusEq
                } else {
                    Plus
                }
            }
            b'-' => {
                if self.eat(b'-') {
                    MinusMinus
                } else if self.eat(b'=') {
                    MinusEq
                } else if self.eat(b'>') {
                    Arrow
                } else {
                    Minus
                }
            }
            b'&' => {
                if self.eat(b'&') {
                    AmpAmp
                } else if self.eat(b'=') {
                    AmpEq
                } else {
                    Amp
                }
            }
            b'*' => {
                if self.eat(b'=') {
                    StarEq
                } else {
                    Star
                }
            }
            b'!' => {
                if self.eat(b'=') {
                    BangEq
                } else {
                    Bang
                }
            }
            b'/' => {
                if self.eat(b'=') {
                    SlashEq
                } else {
                    Slash
                }
            }
            b'%' => {
                if self.eat(b'=') {
                    PercentEq
                } else {
                    Percent
                }
            }
            b'<' => {
                if self.eat(b'<') {
                    if self.eat(b'=') {
                        ShlEq
                    } else {
                        Shl
                    }
                } else if self.eat(b'=') {
                    Le
                } else {
                    Lt
                }
            }
            b'>' => {
                if self.eat(b'>') {
                    if self.eat(b'=') {
                        ShrEq
                    } else {
                        Shr
                    }
                } else if self.eat(b'=') {
                    Ge
                } else {
                    Gt
                }
            }
            b'=' => {
                if self.eat(b'=') {
                    EqEq
                } else {
                    Eq
                }
            }
            b'^' => {
                if self.eat(b'=') {
                    CaretEq
                } else {
                    Caret
                }
            }
            b'|' => {
                if self.eat(b'|') {
                    PipePipe
                } else if self.eat(b'=') {
                    PipeEq
                } else {
                    Pipe
                }
            }
            b'#' => {
                if self.eat(b'#') {
                    HashHash
                } else {
                    Hash
                }
            }
            other => {
                return Err(self.err(format!("unexpected character `{}`", other as char)));
            }
        };
        Ok(TokenKind::Punct(p))
    }
}

/// Parses a preprocessing-number into an `Int` or `Float` token kind.
/// Returns `None` when the text is not a valid C number.
fn parse_pp_number(text: &str) -> Option<TokenKind> {
    let bytes = text.as_bytes();
    let is_float = {
        let hex = text.starts_with("0x") || text.starts_with("0X");
        text.contains('.')
            || (!hex && (text.contains('e') || text.contains('E')))
            || (hex && (text.contains('p') || text.contains('P')))
    };
    if is_float {
        // Strip a trailing f/F/l/L suffix.
        let mut end = bytes.len();
        while end > 0 && matches!(bytes[end - 1], b'f' | b'F' | b'l' | b'L') {
            end -= 1;
        }
        let v: f64 = text[..end].parse().ok()?;
        return Some(TokenKind::Float(v));
    }
    // Integer: radix prefix, digits, suffix.
    let (radix, digits_start) = if text.starts_with("0x") || text.starts_with("0X") {
        (16, 2)
    } else if bytes.len() > 1 && bytes[0] == b'0' {
        (8, 1)
    } else {
        (10, 0)
    };
    let mut end = bytes.len();
    let mut suffix = IntSuffix::default();
    loop {
        if end <= digits_start {
            break;
        }
        match bytes[end - 1] {
            b'u' | b'U' => {
                if suffix.unsigned {
                    return None;
                }
                suffix.unsigned = true;
                end -= 1;
            }
            b'l' | b'L' => {
                if suffix.long >= 2 {
                    return None;
                }
                suffix.long += 1;
                end -= 1;
            }
            _ => break,
        }
    }
    let digits = &text[digits_start..end];
    if digits.is_empty() {
        // `0u` / `0L`: the leading zero itself is the whole value (the octal
        // prefix consumed it). `0x` with no digits stays an error.
        if radix == 8 {
            return Some(TokenKind::Int(0, suffix));
        }
        return None;
    }
    let mut v: u64 = 0;
    for &b in digits.as_bytes() {
        let d = (b as char).to_digit(radix)?;
        v = v.wrapping_mul(radix as u64).wrapping_add(d as u64);
    }
    Some(TokenKind::Int(v, suffix))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src, FileId(0))
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ks = kinds("int *p = &x;");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("int".into()),
                TokenKind::Punct(Punct::Star),
                TokenKind::Ident("p".into()),
                TokenKind::Punct(Punct::Eq),
                TokenKind::Punct(Punct::Amp),
                TokenKind::Ident("x".into()),
                TokenKind::Punct(Punct::Semi),
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("0"), vec![TokenKind::Int(0, IntSuffix::default())]);
        assert_eq!(kinds("42"), vec![TokenKind::Int(42, IntSuffix::default())]);
        assert_eq!(
            kinds("0x1F"),
            vec![TokenKind::Int(31, IntSuffix::default())]
        );
        assert_eq!(kinds("017"), vec![TokenKind::Int(15, IntSuffix::default())]);
        assert_eq!(
            kinds("42ul"),
            vec![TokenKind::Int(
                42,
                IntSuffix {
                    unsigned: true,
                    long: 1
                }
            )]
        );
        assert_eq!(
            kinds("0u"),
            vec![TokenKind::Int(
                0,
                IntSuffix {
                    unsigned: true,
                    long: 0
                }
            )]
        );
        assert_eq!(
            kinds("0L"),
            vec![TokenKind::Int(
                0,
                IntSuffix {
                    unsigned: false,
                    long: 1
                }
            )]
        );
        assert_eq!(kinds("1.5"), vec![TokenKind::Float(1.5)]);
        assert_eq!(kinds("1e3"), vec![TokenKind::Float(1000.0)]);
        assert_eq!(kinds("2.5f"), vec![TokenKind::Float(2.5)]);
        assert_eq!(kinds(".5"), vec![TokenKind::Float(0.5)]);
    }

    #[test]
    fn char_and_string() {
        assert_eq!(kinds("'a'"), vec![TokenKind::Char('a' as i64)]);
        assert_eq!(kinds(r"'\n'"), vec![TokenKind::Char(10)]);
        assert_eq!(kinds(r"'\x41'"), vec![TokenKind::Char(0x41)]);
        assert_eq!(kinds(r"'\0'"), vec![TokenKind::Char(0)]);
        assert_eq!(kinds(r#""hi\n""#), vec![TokenKind::Str("hi\n".into())]);
        assert_eq!(kinds(r#"L"wide""#), vec![TokenKind::Str("wide".into())]);
    }

    #[test]
    fn comments_and_layout_flags() {
        let ts = lex("a /* c */ b\n  c // x\nd", FileId(0)).unwrap();
        let names: Vec<_> = ts
            .iter()
            .map(|t| t.kind.ident().unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["a", "b", "c", "d"]);
        assert!(ts[0].first_on_line);
        assert!(!ts[1].first_on_line);
        assert!(ts[1].space_before);
        assert!(ts[2].first_on_line);
        assert!(ts[3].first_on_line);
        assert_eq!(ts[3].loc.line, 3);
    }

    #[test]
    fn line_splice() {
        let ts = lex("ab\\\ncd", FileId(0)).unwrap();
        assert_eq!(ts.len(), 1);
        assert!(ts[0].is_ident("abcd"));
        let ts = lex("#def\\\nine X 1", FileId(0)).unwrap();
        assert!(ts[1].is_ident("define"));
    }

    #[test]
    fn multi_char_puncts() {
        let ks = kinds("a <<= b >>= c ... p->q");
        assert!(ks.contains(&TokenKind::Punct(Punct::ShlEq)));
        assert!(ks.contains(&TokenKind::Punct(Punct::ShrEq)));
        assert!(ks.contains(&TokenKind::Punct(Punct::Ellipsis)));
        assert!(ks.contains(&TokenKind::Punct(Punct::Arrow)));
    }

    #[test]
    fn errors() {
        assert!(lex("\"abc", FileId(0)).is_err());
        assert!(lex("/* abc", FileId(0)).is_err());
        assert!(lex("''", FileId(0)).is_err());
        assert!(lex("@", FileId(0)).is_err());
        assert!(lex("0x", FileId(0)).is_err());
    }

    #[test]
    fn locations() {
        let ts = lex("x\n  y", FileId(7)).unwrap();
        assert_eq!(ts[0].loc, Loc::new(FileId(7), 1, 1));
        assert_eq!(ts[1].loc, Loc::new(FileId(7), 2, 3));
    }
}
