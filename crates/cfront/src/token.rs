//! Lexical tokens.
//!
//! The lexer deliberately does *not* distinguish keywords from identifiers:
//! the preprocessor must treat `int` and `while` as ordinary identifiers when
//! expanding macros, so keyword recognition happens in the parser.

use crate::span::Loc;
use std::fmt;

/// All C punctuators (plus the preprocessing-only `#` and `##`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Punct {
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Semi,
    Colon,
    Question,
    Tilde,
    Dot,
    Arrow,
    PlusPlus,
    MinusMinus,
    Amp,
    Star,
    Plus,
    Minus,
    Bang,
    Slash,
    Percent,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    BangEq,
    Caret,
    Pipe,
    AmpAmp,
    PipePipe,
    Eq,
    StarEq,
    SlashEq,
    PercentEq,
    PlusEq,
    MinusEq,
    ShlEq,
    ShrEq,
    AmpEq,
    CaretEq,
    PipeEq,
    Ellipsis,
    Hash,
    HashHash,
}

impl Punct {
    /// The textual spelling of the punctuator.
    pub fn as_str(self) -> &'static str {
        use Punct::*;
        match self {
            LParen => "(",
            RParen => ")",
            LBracket => "[",
            RBracket => "]",
            LBrace => "{",
            RBrace => "}",
            Comma => ",",
            Semi => ";",
            Colon => ":",
            Question => "?",
            Tilde => "~",
            Dot => ".",
            Arrow => "->",
            PlusPlus => "++",
            MinusMinus => "--",
            Amp => "&",
            Star => "*",
            Plus => "+",
            Minus => "-",
            Bang => "!",
            Slash => "/",
            Percent => "%",
            Shl => "<<",
            Shr => ">>",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            EqEq => "==",
            BangEq => "!=",
            Caret => "^",
            Pipe => "|",
            AmpAmp => "&&",
            PipePipe => "||",
            Eq => "=",
            StarEq => "*=",
            SlashEq => "/=",
            PercentEq => "%=",
            PlusEq => "+=",
            MinusEq => "-=",
            ShlEq => "<<=",
            ShrEq => ">>=",
            AmpEq => "&=",
            CaretEq => "^=",
            PipeEq => "|=",
            Ellipsis => "...",
            Hash => "#",
            HashHash => "##",
        }
    }
}

impl fmt::Display for Punct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Suffix attached to an integer literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct IntSuffix {
    pub unsigned: bool,
    /// Number of `l`s: 0, 1, or 2.
    pub long: u8,
}

/// The payload of a token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are classified by the parser).
    Ident(String),
    /// Integer constant (value after radix conversion) plus its suffix.
    Int(u64, IntSuffix),
    /// Floating constant.
    Float(f64),
    /// Character constant (value of the character, host `char` semantics).
    Char(i64),
    /// String literal (escapes decoded). Adjacent literals are concatenated
    /// by the parser.
    Str(String),
    /// Punctuator.
    Punct(Punct),
    /// End of input. Emitted once, at the very end of a token stream.
    Eof,
}

impl TokenKind {
    /// True for identifier tokens.
    pub fn is_ident(&self) -> bool {
        matches!(self, TokenKind::Ident(_))
    }

    /// Returns the identifier text if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => f.write_str(s),
            TokenKind::Int(v, sfx) => {
                write!(f, "{v}")?;
                if sfx.unsigned {
                    write!(f, "u")?;
                }
                for _ in 0..sfx.long {
                    write!(f, "l")?;
                }
                Ok(())
            }
            TokenKind::Float(v) => write!(f, "{v}"),
            TokenKind::Char(v) => write!(f, "'\\x{v:x}'"),
            TokenKind::Str(s) => write!(f, "{s:?}"),
            TokenKind::Punct(p) => write!(f, "{p}"),
            TokenKind::Eof => f.write_str("<eof>"),
        }
    }
}

/// A lexed token with location and layout metadata used by the preprocessor.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub loc: Loc,
    /// True when this token is the first on its (logical) source line.
    /// Directive recognition (`#` first on a line) relies on this.
    pub first_on_line: bool,
    /// True when whitespace (or a comment) immediately precedes this token.
    /// Needed for correct stringification (`#arg`).
    pub space_before: bool,
}

impl Token {
    /// Creates a synthesized token (no meaningful layout flags).
    pub fn synth(kind: TokenKind, loc: Loc) -> Self {
        Token {
            kind,
            loc,
            first_on_line: false,
            space_before: true,
        }
    }

    /// True if this token is the punctuator `p`.
    pub fn is_punct(&self, p: Punct) -> bool {
        self.kind == TokenKind::Punct(p)
    }

    /// True if this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident(s) if s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn punct_spellings_roundtrip() {
        assert_eq!(Punct::Arrow.as_str(), "->");
        assert_eq!(Punct::ShlEq.as_str(), "<<=");
        assert_eq!(format!("{}", Punct::Ellipsis), "...");
    }

    #[test]
    fn token_helpers() {
        let t = Token::synth(TokenKind::Ident("foo".into()), Loc::BUILTIN);
        assert!(t.is_ident("foo"));
        assert!(!t.is_ident("bar"));
        assert!(t.kind.is_ident());
        assert_eq!(t.kind.ident(), Some("foo"));
        let p = Token::synth(TokenKind::Punct(Punct::Star), Loc::BUILTIN);
        assert!(p.is_punct(Punct::Star));
        assert!(!p.is_punct(Punct::Amp));
    }

    #[test]
    fn display_tokens() {
        assert_eq!(
            format!(
                "{}",
                TokenKind::Int(
                    42,
                    IntSuffix {
                        unsigned: true,
                        long: 1
                    }
                )
            ),
            "42ul"
        );
        assert_eq!(format!("{}", TokenKind::Str("a\"b".into())), "\"a\\\"b\"");
    }
}
