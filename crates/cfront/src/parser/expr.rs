//! Expression parsing (precedence climbing).

use super::{is_keyword, Parser};
use crate::ast::{BinaryOp, Expr, ExprKind, IncDec, UnaryOp};
use crate::error::Result;
use crate::token::{Punct, TokenKind};

/// Binding powers for binary operators (higher binds tighter).
fn bin_op(p: Punct) -> Option<(BinaryOp, u8)> {
    use BinaryOp as B;
    use Punct as P;
    Some(match p {
        P::PipePipe => (B::LogOr, 1),
        P::AmpAmp => (B::LogAnd, 2),
        P::Pipe => (B::BitOr, 3),
        P::Caret => (B::BitXor, 4),
        P::Amp => (B::BitAnd, 5),
        P::EqEq => (B::Eq, 6),
        P::BangEq => (B::Ne, 6),
        P::Lt => (B::Lt, 7),
        P::Gt => (B::Gt, 7),
        P::Le => (B::Le, 7),
        P::Ge => (B::Ge, 7),
        P::Shl => (B::Shl, 8),
        P::Shr => (B::Shr, 8),
        P::Plus => (B::Add, 9),
        P::Minus => (B::Sub, 9),
        P::Star => (B::Mul, 10),
        P::Slash => (B::Div, 10),
        P::Percent => (B::Rem, 10),
        _ => return None,
    })
}

/// Compound-assignment operators.
fn assign_op(p: Punct) -> Option<Option<BinaryOp>> {
    use BinaryOp as B;
    use Punct as P;
    Some(match p {
        P::Eq => None,
        P::PlusEq => Some(B::Add),
        P::MinusEq => Some(B::Sub),
        P::StarEq => Some(B::Mul),
        P::SlashEq => Some(B::Div),
        P::PercentEq => Some(B::Rem),
        P::ShlEq => Some(B::Shl),
        P::ShrEq => Some(B::Shr),
        P::AmpEq => Some(B::BitAnd),
        P::CaretEq => Some(B::BitXor),
        P::PipeEq => Some(B::BitOr),
        _ => return None,
    })
}

impl Parser {
    /// Parses a full expression (including comma).
    pub(crate) fn parse_expr(&mut self) -> Result<Expr> {
        let loc = self.loc();
        let mut e = self.parse_assign_expr()?;
        while self.eat_punct(Punct::Comma) {
            let rhs = self.parse_assign_expr()?;
            e = Expr::new(ExprKind::Comma(Box::new(e), Box::new(rhs)), loc);
        }
        Ok(e)
    }

    /// Parses an assignment-expression (no top-level comma).
    pub(crate) fn parse_assign_expr(&mut self) -> Result<Expr> {
        let loc = self.loc();
        let lhs = self.parse_conditional_expr()?;
        if let TokenKind::Punct(p) = self.peek() {
            if let Some(op) = assign_op(*p) {
                self.pos_advance();
                let rhs = self.parse_assign_expr()?;
                return Ok(Expr::new(
                    ExprKind::Assign(op, Box::new(lhs), Box::new(rhs)),
                    loc,
                ));
            }
        }
        Ok(lhs)
    }

    fn pos_advance(&mut self) {
        self.bump();
    }

    /// Parses a conditional-expression (`?:` and below).
    pub(crate) fn parse_conditional_expr(&mut self) -> Result<Expr> {
        let loc = self.loc();
        let cond = self.parse_binary_expr(1)?;
        if self.eat_punct(Punct::Question) {
            let then_e = self.parse_expr()?;
            self.expect_punct(Punct::Colon)?;
            let else_e = self.parse_conditional_expr()?;
            return Ok(Expr::new(
                ExprKind::Cond(Box::new(cond), Box::new(then_e), Box::new(else_e)),
                loc,
            ));
        }
        Ok(cond)
    }

    fn parse_binary_expr(&mut self, min_prec: u8) -> Result<Expr> {
        let loc = self.loc();
        let mut lhs = self.parse_cast_expr()?;
        while let TokenKind::Punct(p) = self.peek() {
            let Some((op, prec)) = bin_op(*p) else { break };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.parse_binary_expr(prec + 1)?;
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), loc);
        }
        Ok(lhs)
    }

    /// Parses a cast-expression: `(type-name) cast-expr` or unary.
    pub(crate) fn parse_cast_expr(&mut self) -> Result<Expr> {
        let guard = self.enter()?;
        let result = self.parse_cast_expr_inner();
        self.leave(guard);
        result
    }

    fn parse_cast_expr_inner(&mut self) -> Result<Expr> {
        if self.at_punct(Punct::LParen) && self.starts_type_name_after_lparen() {
            let loc = self.loc();
            self.expect_punct(Punct::LParen)?;
            let ty = self.parse_type_name()?;
            self.expect_punct(Punct::RParen)?;
            // Compound literal: `(T){ ... }`.
            if self.at_punct(Punct::LBrace) {
                let inits = self.parse_braced_initializer_list()?;
                return Ok(Expr::new(ExprKind::CompoundLit(ty, inits), loc));
            }
            let inner = self.parse_cast_expr()?;
            return Ok(Expr::new(ExprKind::Cast(ty, Box::new(inner)), loc));
        }
        self.parse_unary_expr()
    }

    /// True when a `(` at the cursor opens a type-name (cast / compound
    /// literal) rather than a parenthesized expression.
    pub(crate) fn starts_type_name_after_lparen(&self) -> bool {
        debug_assert!(self.at_punct(Punct::LParen));
        match self.peek_ahead(1) {
            TokenKind::Ident(s) => {
                super::decl::is_type_specifier_kw(s)
                    || (!is_keyword(s) && self.typedef_lookup(s).is_some())
            }
            _ => false,
        }
    }

    fn parse_unary_expr(&mut self) -> Result<Expr> {
        let loc = self.loc();
        macro_rules! unary {
            ($op:expr) => {{
                self.bump();
                let inner = self.parse_cast_expr()?;
                Ok(Expr::new(ExprKind::Unary($op, Box::new(inner)), loc))
            }};
        }
        match self.peek() {
            TokenKind::Punct(Punct::Star) => unary!(UnaryOp::Deref),
            TokenKind::Punct(Punct::Amp) => unary!(UnaryOp::AddrOf),
            TokenKind::Punct(Punct::Minus) => unary!(UnaryOp::Neg),
            TokenKind::Punct(Punct::Plus) => unary!(UnaryOp::Pos),
            TokenKind::Punct(Punct::Bang) => unary!(UnaryOp::LogicalNot),
            TokenKind::Punct(Punct::Tilde) => unary!(UnaryOp::BitNot),
            TokenKind::Punct(Punct::PlusPlus) => {
                self.bump();
                let inner = self.parse_unary_expr()?;
                Ok(Expr::new(
                    ExprKind::Unary(UnaryOp::PreInc, Box::new(inner)),
                    loc,
                ))
            }
            TokenKind::Punct(Punct::MinusMinus) => {
                self.bump();
                let inner = self.parse_unary_expr()?;
                Ok(Expr::new(
                    ExprKind::Unary(UnaryOp::PreDec, Box::new(inner)),
                    loc,
                ))
            }
            TokenKind::Ident(s) if s == "sizeof" => {
                self.bump();
                if self.at_punct(Punct::LParen) && self.starts_type_name_after_lparen() {
                    self.expect_punct(Punct::LParen)?;
                    let ty = self.parse_type_name()?;
                    self.expect_punct(Punct::RParen)?;
                    return Ok(Expr::new(ExprKind::SizeofType(ty), loc));
                }
                let inner = self.parse_unary_expr()?;
                Ok(Expr::new(ExprKind::SizeofExpr(Box::new(inner)), loc))
            }
            _ => self.parse_postfix_expr(),
        }
    }

    fn parse_postfix_expr(&mut self) -> Result<Expr> {
        let mut e = self.parse_primary_expr()?;
        loop {
            let loc = self.loc();
            match self.peek() {
                TokenKind::Punct(Punct::LBracket) => {
                    self.bump();
                    let idx = self.parse_expr()?;
                    self.expect_punct(Punct::RBracket)?;
                    e = Expr::new(ExprKind::Index(Box::new(e), Box::new(idx)), loc);
                }
                TokenKind::Punct(Punct::LParen) => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at_punct(Punct::RParen) {
                        loop {
                            args.push(self.parse_assign_expr()?);
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_punct(Punct::RParen)?;
                    e = Expr::new(ExprKind::Call(Box::new(e), args), loc);
                }
                TokenKind::Punct(Punct::Dot) => {
                    self.bump();
                    let (field, _) = self.expect_ident()?;
                    e = Expr::new(
                        ExprKind::Member {
                            base: Box::new(e),
                            field,
                            arrow: false,
                        },
                        loc,
                    );
                }
                TokenKind::Punct(Punct::Arrow) => {
                    self.bump();
                    let (field, _) = self.expect_ident()?;
                    e = Expr::new(
                        ExprKind::Member {
                            base: Box::new(e),
                            field,
                            arrow: true,
                        },
                        loc,
                    );
                }
                TokenKind::Punct(Punct::PlusPlus) => {
                    self.bump();
                    e = Expr::new(ExprKind::PostIncDec(IncDec::Inc, Box::new(e)), loc);
                }
                TokenKind::Punct(Punct::MinusMinus) => {
                    self.bump();
                    e = Expr::new(ExprKind::PostIncDec(IncDec::Dec, Box::new(e)), loc);
                }
                _ => return Ok(e),
            }
        }
    }

    fn parse_primary_expr(&mut self) -> Result<Expr> {
        let loc = self.loc();
        match self.peek().clone() {
            TokenKind::Int(v, _) => {
                self.bump();
                Ok(Expr::new(ExprKind::IntLit(v), loc))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::FloatLit(v), loc))
            }
            TokenKind::Char(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::CharLit(v), loc))
            }
            TokenKind::Str(s) => {
                self.bump();
                // Adjacent string literals concatenate.
                let mut full = s;
                while let TokenKind::Str(next) = self.peek() {
                    full.push_str(next);
                    self.bump();
                }
                Ok(Expr::new(ExprKind::StrLit(full), loc))
            }
            TokenKind::Ident(name) if !is_keyword(&name) => {
                self.bump();
                Ok(Expr::new(ExprKind::Ident(name), loc))
            }
            TokenKind::Punct(Punct::LParen) => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            _ => Err(self.err("expected expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::span::FileId;

    fn expr(src: &str) -> Expr {
        let toks = lex(src, FileId(0)).unwrap();
        let mut p = Parser::new(toks);
        let e = p.parse_expr().unwrap();
        assert!(p.at_eof(), "trailing tokens after expression");
        e
    }

    #[test]
    fn precedence() {
        let e = expr("1 + 2 * 3");
        let ExprKind::Binary(BinaryOp::Add, _, rhs) = &e.kind else {
            panic!("{e:?}")
        };
        assert!(matches!(rhs.kind, ExprKind::Binary(BinaryOp::Mul, _, _)));
    }

    #[test]
    fn assignment_right_assoc() {
        let e = expr("a = b = c");
        let ExprKind::Assign(None, _, rhs) = &e.kind else {
            panic!("{e:?}")
        };
        assert!(matches!(rhs.kind, ExprKind::Assign(None, _, _)));
    }

    #[test]
    fn compound_assign() {
        let e = expr("a += b");
        assert!(matches!(
            e.kind,
            ExprKind::Assign(Some(BinaryOp::Add), _, _)
        ));
        let e = expr("a <<= 2");
        assert!(matches!(
            e.kind,
            ExprKind::Assign(Some(BinaryOp::Shl), _, _)
        ));
    }

    #[test]
    fn unary_and_postfix() {
        let e = expr("*p");
        assert!(matches!(e.kind, ExprKind::Unary(UnaryOp::Deref, _)));
        let e = expr("&x");
        assert!(matches!(e.kind, ExprKind::Unary(UnaryOp::AddrOf, _)));
        let e = expr("a[1]");
        assert!(matches!(e.kind, ExprKind::Index(_, _)));
        let e = expr("f(1, 2)");
        let ExprKind::Call(_, args) = &e.kind else {
            panic!()
        };
        assert_eq!(args.len(), 2);
        let e = expr("s.x");
        assert!(matches!(e.kind, ExprKind::Member { arrow: false, .. }));
        let e = expr("p->x");
        assert!(matches!(e.kind, ExprKind::Member { arrow: true, .. }));
        let e = expr("x++");
        assert!(matches!(e.kind, ExprKind::PostIncDec(IncDec::Inc, _)));
        let e = expr("--x");
        assert!(matches!(e.kind, ExprKind::Unary(UnaryOp::PreDec, _)));
    }

    #[test]
    fn deref_chains() {
        let e = expr("**pp");
        let ExprKind::Unary(UnaryOp::Deref, inner) = &e.kind else {
            panic!()
        };
        assert!(matches!(inner.kind, ExprKind::Unary(UnaryOp::Deref, _)));
    }

    #[test]
    fn conditional_and_comma() {
        let e = expr("a ? b : c");
        assert!(matches!(e.kind, ExprKind::Cond(_, _, _)));
        let e = expr("a, b");
        assert!(matches!(e.kind, ExprKind::Comma(_, _)));
    }

    #[test]
    fn string_concat() {
        let e = expr("\"ab\" \"cd\"");
        let ExprKind::StrLit(s) = &e.kind else {
            panic!()
        };
        assert_eq!(s, "abcd");
    }

    #[test]
    fn sizeof_forms() {
        let e = expr("sizeof(int)");
        assert!(matches!(e.kind, ExprKind::SizeofType(_)));
        let e = expr("sizeof x");
        assert!(matches!(e.kind, ExprKind::SizeofExpr(_)));
        let e = expr("sizeof(x)"); // paren-expr, x is not a type
        assert!(matches!(e.kind, ExprKind::SizeofExpr(_)));
    }

    #[test]
    fn casts() {
        let e = expr("(int)x");
        assert!(matches!(e.kind, ExprKind::Cast(_, _)));
        let e = expr("(int *)0");
        assert!(matches!(e.kind, ExprKind::Cast(_, _)));
        // Parenthesized expression, not a cast.
        let e = expr("(x) + 1");
        assert!(matches!(e.kind, ExprKind::Binary(BinaryOp::Add, _, _)));
    }

    #[test]
    fn call_through_function_pointer() {
        let e = expr("(*fp)(1)");
        let ExprKind::Call(callee, _) = &e.kind else {
            panic!()
        };
        assert!(matches!(callee.kind, ExprKind::Unary(UnaryOp::Deref, _)));
    }

    #[test]
    fn errors() {
        let toks = lex("1 +", FileId(0)).unwrap();
        let mut p = Parser::new(toks);
        assert!(p.parse_expr().is_err());
        let toks = lex("(1", FileId(0)).unwrap();
        let mut p = Parser::new(toks);
        assert!(p.parse_expr().is_err());
    }
}
