//! Statement and block parsing.

use super::Parser;
use crate::ast::{Block, BlockItem, ForInit, Stmt};
use crate::error::Result;
use crate::token::{Punct, TokenKind};

impl Parser {
    /// Parses a `{ ... }` block (the `{` must be at the cursor). Opens a new
    /// name scope.
    pub(crate) fn parse_block(&mut self) -> Result<Block> {
        let loc = self.loc();
        self.expect_punct(Punct::LBrace)?;
        self.push_scope();
        let mut items = Vec::new();
        while !self.at_punct(Punct::RBrace) {
            if self.at_eof() {
                return Err(self.err("unterminated block"));
            }
            if self.starts_decl() && !self.is_label_ahead() {
                items.push(BlockItem::Decl(self.parse_block_declaration()?));
            } else {
                items.push(BlockItem::Stmt(self.parse_stmt()?));
            }
        }
        self.expect_punct(Punct::RBrace)?;
        self.pop_scope();
        Ok(Block { items, loc })
    }

    /// A typedef name followed by `:` is a label, not a declaration.
    fn is_label_ahead(&self) -> bool {
        matches!(self.peek(), TokenKind::Ident(_))
            && matches!(self.peek_ahead(1), TokenKind::Punct(Punct::Colon))
    }

    /// Parses one statement. Statements nest through blocks, `if`/loop
    /// bodies, and labels, so the recursion shares the parser depth budget
    /// with expressions — a `{{{{...` flood is a typed budget error, not a
    /// stack overflow.
    pub(crate) fn parse_stmt(&mut self) -> Result<Stmt> {
        let guard = self.enter()?;
        let result = self.parse_stmt_inner();
        self.leave(guard);
        result
    }

    fn parse_stmt_inner(&mut self) -> Result<Stmt> {
        match self.peek() {
            TokenKind::Punct(Punct::Semi) => {
                self.bump();
                Ok(Stmt::Expr(None))
            }
            TokenKind::Punct(Punct::LBrace) => Ok(Stmt::Block(self.parse_block()?)),
            TokenKind::Ident(kw) => match kw.as_str() {
                "if" => self.parse_if(),
                "while" => self.parse_while(),
                "do" => self.parse_do_while(),
                "for" => self.parse_for(),
                "switch" => self.parse_switch(),
                "case" => {
                    self.bump();
                    let value = self.parse_conditional_expr()?;
                    // GNU case ranges: `case 1 ... 5:` — take the low end.
                    if self.eat_punct(Punct::Ellipsis) {
                        let _ = self.parse_conditional_expr()?;
                    }
                    self.expect_punct(Punct::Colon)?;
                    let body = Box::new(self.parse_stmt()?);
                    Ok(Stmt::Case { value, body })
                }
                "default" => {
                    self.bump();
                    self.expect_punct(Punct::Colon)?;
                    let body = Box::new(self.parse_stmt()?);
                    Ok(Stmt::Default { body })
                }
                "return" => {
                    let loc = self.loc();
                    self.bump();
                    let value = if self.at_punct(Punct::Semi) {
                        None
                    } else {
                        Some(self.parse_expr()?)
                    };
                    self.expect_punct(Punct::Semi)?;
                    Ok(Stmt::Return { value, loc })
                }
                "break" => {
                    self.bump();
                    self.expect_punct(Punct::Semi)?;
                    Ok(Stmt::Break)
                }
                "continue" => {
                    self.bump();
                    self.expect_punct(Punct::Semi)?;
                    Ok(Stmt::Continue)
                }
                "goto" => {
                    self.bump();
                    let (label, _) = self.expect_ident()?;
                    self.expect_punct(Punct::Semi)?;
                    Ok(Stmt::Goto(label))
                }
                _ => {
                    // Label: `name: stmt` (only for non-keyword identifiers).
                    if !super::is_keyword(kw) && self.is_label_ahead() {
                        let (name, _) = self.expect_ident()?;
                        self.expect_punct(Punct::Colon)?;
                        let body = Box::new(self.parse_stmt()?);
                        return Ok(Stmt::Label { name, body });
                    }
                    self.parse_expr_stmt()
                }
            },
            _ => self.parse_expr_stmt(),
        }
    }

    fn parse_expr_stmt(&mut self) -> Result<Stmt> {
        let e = self.parse_expr()?;
        self.expect_punct(Punct::Semi)?;
        Ok(Stmt::Expr(Some(e)))
    }

    fn parse_paren_expr(&mut self) -> Result<crate::ast::Expr> {
        self.expect_punct(Punct::LParen)?;
        let e = self.parse_expr()?;
        self.expect_punct(Punct::RParen)?;
        Ok(e)
    }

    fn parse_if(&mut self) -> Result<Stmt> {
        self.expect_kw("if")?;
        let cond = self.parse_paren_expr()?;
        let then_branch = Box::new(self.parse_stmt()?);
        let else_branch = if self.eat_kw("else") {
            Some(Box::new(self.parse_stmt()?))
        } else {
            None
        };
        Ok(Stmt::If {
            cond,
            then_branch,
            else_branch,
        })
    }

    fn parse_while(&mut self) -> Result<Stmt> {
        self.expect_kw("while")?;
        let cond = self.parse_paren_expr()?;
        let body = Box::new(self.parse_stmt()?);
        Ok(Stmt::While { cond, body })
    }

    fn parse_do_while(&mut self) -> Result<Stmt> {
        self.expect_kw("do")?;
        let body = Box::new(self.parse_stmt()?);
        self.expect_kw("while")?;
        let cond = self.parse_paren_expr()?;
        self.expect_punct(Punct::Semi)?;
        Ok(Stmt::DoWhile { body, cond })
    }

    fn parse_for(&mut self) -> Result<Stmt> {
        self.expect_kw("for")?;
        self.expect_punct(Punct::LParen)?;
        self.push_scope(); // C99 for-scope for declarations
        let init = if self.eat_punct(Punct::Semi) {
            None
        } else if self.starts_decl() {
            // parse_block_declaration consumes the `;`.
            Some(ForInit::Decl(self.parse_block_declaration()?))
        } else {
            let e = self.parse_expr()?;
            self.expect_punct(Punct::Semi)?;
            Some(ForInit::Expr(e))
        };
        let cond = if self.at_punct(Punct::Semi) {
            None
        } else {
            Some(self.parse_expr()?)
        };
        self.expect_punct(Punct::Semi)?;
        let step = if self.at_punct(Punct::RParen) {
            None
        } else {
            Some(self.parse_expr()?)
        };
        self.expect_punct(Punct::RParen)?;
        let body = Box::new(self.parse_stmt()?);
        self.pop_scope();
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
        })
    }

    fn parse_switch(&mut self) -> Result<Stmt> {
        self.expect_kw("switch")?;
        let cond = self.parse_paren_expr()?;
        let body = Box::new(self.parse_stmt()?);
        Ok(Stmt::Switch { cond, body })
    }
}

#[cfg(test)]
mod tests {
    use crate::ast::{BlockItem, ExternalDecl, Stmt};
    use crate::lexer::lex;
    use crate::span::FileId;

    fn body(src: &str) -> Vec<BlockItem> {
        let full = format!("void f(void) {{ {src} }}");
        let toks = lex(&full, FileId(0)).unwrap();
        let tu = super::super::parse(toks, "t.c").unwrap();
        let ExternalDecl::Function(f) = tu.items.into_iter().next().unwrap() else {
            panic!()
        };
        f.body.items
    }

    fn first_stmt(src: &str) -> Stmt {
        for item in body(src) {
            if let BlockItem::Stmt(s) = item {
                return s;
            }
        }
        panic!("no statement")
    }

    #[test]
    fn control_flow() {
        assert!(matches!(first_stmt("if (x) y = 1;"), Stmt::If { .. }));
        assert!(matches!(
            first_stmt("if (x) y = 1; else y = 2;"),
            Stmt::If {
                else_branch: Some(_),
                ..
            }
        ));
        assert!(matches!(first_stmt("while (x) { }"), Stmt::While { .. }));
        assert!(matches!(
            first_stmt("do x = 1; while (x);"),
            Stmt::DoWhile { .. }
        ));
        assert!(matches!(
            first_stmt("for (i = 0; i < 10; i++) ;"),
            Stmt::For { .. }
        ));
        assert!(matches!(first_stmt("for (;;) break;"), Stmt::For { .. }));
        assert!(matches!(
            first_stmt("for (int i = 0; i < 3; ++i) ;"),
            Stmt::For { .. }
        ));
        assert!(matches!(
            first_stmt("switch (x) { case 1: break; default: break; }"),
            Stmt::Switch { .. }
        ));
        assert!(matches!(
            first_stmt("return;"),
            Stmt::Return { value: None, .. }
        ));
        assert!(matches!(
            first_stmt("return 3;"),
            Stmt::Return { value: Some(_), .. }
        ));
        assert!(matches!(first_stmt("goto out;"), Stmt::Goto(_)));
        assert!(matches!(first_stmt("out: x = 1;"), Stmt::Label { .. }));
        assert!(matches!(first_stmt(";"), Stmt::Expr(None)));
    }

    #[test]
    fn local_declarations() {
        let items = body("int a; a = 1;");
        assert!(matches!(items[0], BlockItem::Decl(_)));
        assert!(matches!(items[1], BlockItem::Stmt(_)));
    }

    #[test]
    fn local_typedef_and_shadowing() {
        // `T` is a typedef in the outer scope but a variable in the inner.
        let src = "typedef int T; void f(void) { int T; T = 3; { T x; } }";
        let toks = lex(src, FileId(0)).unwrap();
        // Inner `T x;` must fail to parse T as a type because T is shadowed.
        assert!(super::super::parse(toks, "t.c").is_err());

        let src = "typedef int T; void f(void) { T v; v = 3; }";
        let toks = lex(src, FileId(0)).unwrap();
        assert!(super::super::parse(toks, "t.c").is_ok());
    }

    #[test]
    fn nested_blocks() {
        let items = body("{ { int x; x = 1; } }");
        assert!(matches!(items[0], BlockItem::Stmt(Stmt::Block(_))));
    }

    #[test]
    fn dangling_else_binds_inner() {
        let s = first_stmt("if (a) if (b) x = 1; else x = 2;");
        let Stmt::If {
            then_branch,
            else_branch,
            ..
        } = s
        else {
            panic!()
        };
        assert!(else_branch.is_none());
        assert!(matches!(
            *then_branch,
            Stmt::If {
                else_branch: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn errors() {
        let toks = lex("void f(void) { if x; }", FileId(0)).unwrap();
        assert!(super::super::parse(toks, "t.c").is_err());
        let toks = lex("void f(void) { x = 1 }", FileId(0)).unwrap();
        assert!(super::super::parse(toks, "t.c").is_err());
        let toks = lex("void f(void) { ", FileId(0)).unwrap();
        assert!(super::super::parse(toks, "t.c").is_err());
    }
}
