//! Recursive-descent parser for C.
//!
//! Consumes the preprocessed token stream and produces a
//! [`TranslationUnit`]. Keywords are classified here (the lexer emits plain
//! identifiers), and typedef names are tracked through a scope stack — the
//! classic "lexer hack" done parser-side.

mod decl;
mod expr;
mod stmt;

use crate::ast::{Expr, ExprKind, TranslationUnit, UnaryOp};
use crate::error::{CError, Result};
use crate::pp::FrontendLimits;
use crate::span::Loc;
use crate::token::{Punct, Token, TokenKind};
use crate::types::{Type, TypeTable};
use std::collections::{HashMap, HashSet};

/// Parses a preprocessed token stream into a translation unit, with the
/// default [`FrontendLimits`].
///
/// # Errors
///
/// Returns [`CError::Parse`] on any syntax error. The parser does not attempt
/// error recovery; the first error aborts the unit.
pub fn parse(tokens: Vec<Token>, file: impl Into<String>) -> Result<TranslationUnit> {
    parse_with(tokens, file, &FrontendLimits::default())
}

/// [`parse`] under explicit resource budgets: recursion bounded by
/// `limits.max_parser_depth`, wall clock by `limits.deadline_ms`. Both
/// overruns surface as typed [`CError::Budget`] errors.
pub fn parse_with(
    tokens: Vec<Token>,
    file: impl Into<String>,
    limits: &FrontendLimits,
) -> Result<TranslationUnit> {
    let mut p = Parser::new(tokens);
    p.max_depth = limits.parser_depth();
    p.deadline = limits.deadline_from_now();
    p.deadline_ms = limits.deadline_ms;
    let mut items = Vec::new();
    while !p.at_eof() {
        p.check_deadline()?;
        if let Some(item) = p.parse_external_decl()? {
            items.push(item);
        }
    }
    Ok(TranslationUnit {
        file: file.into(),
        items,
        types: p.types,
        enum_constants: p.enum_constants,
    })
}

/// C keywords (C89 + `inline` + common GNU spellings handled elsewhere).
const KEYWORDS: &[&str] = &[
    "auto", "break", "case", "char", "const", "continue", "default", "do", "double", "else",
    "enum", "extern", "float", "for", "goto", "if", "inline", "int", "long", "register", "return",
    "short", "signed", "sizeof", "static", "struct", "switch", "typedef", "union", "unsigned",
    "void", "volatile", "while", "restrict", "_Bool",
];

/// What a name means in the current scope.
#[derive(Debug, Clone)]
pub(crate) enum NameKind {
    /// A typedef name aliasing this type.
    Typedef(Type),
    /// An ordinary identifier (variable/function), which shadows any outer
    /// typedef of the same name.
    Ordinary,
}

pub(crate) struct Parser {
    toks: Vec<Token>,
    pos: usize,
    /// Current expression/declarator recursion depth (guards the
    /// recursive-descent parser against stack overflow on pathological
    /// nesting).
    depth: u32,
    /// Recursion bound (from [`FrontendLimits::parser_depth`]).
    max_depth: u32,
    /// Per-unit wall-clock deadline, checked between external declarations
    /// and periodically inside deep recursion.
    deadline: Option<std::time::Instant>,
    deadline_ms: u64,
    /// [`Parser::enter`] calls since the last deadline check.
    deadline_ticks: u32,
    pub(crate) types: TypeTable,
    scopes: Vec<HashMap<String, NameKind>>,
    pub(crate) enum_constants: HashSet<String>,
    /// Values of enum constants, for constant folding.
    pub(crate) enum_values: HashMap<String, i64>,
}

impl Parser {
    fn new(toks: Vec<Token>) -> Self {
        Parser {
            toks,
            pos: 0,
            depth: 0,
            max_depth: 64,
            deadline: None,
            deadline_ms: 0,
            deadline_ticks: 0,
            types: TypeTable::new(),
            scopes: vec![HashMap::new()],
            enum_constants: HashSet::new(),
            enum_values: HashMap::new(),
        }
    }

    // ----- cursor -------------------------------------------------------

    pub(crate) fn at_eof(&self) -> bool {
        self.pos >= self.toks.len()
    }

    pub(crate) fn peek(&self) -> &TokenKind {
        self.toks.get(self.pos).map_or(&TokenKind::Eof, |t| &t.kind)
    }

    pub(crate) fn peek_ahead(&self, n: usize) -> &TokenKind {
        self.toks
            .get(self.pos + n)
            .map_or(&TokenKind::Eof, |t| &t.kind)
    }

    pub(crate) fn loc(&self) -> Loc {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or(Loc::BUILTIN, |t| t.loc)
    }

    pub(crate) fn bump(&mut self) -> TokenKind {
        let k = self.peek().clone();
        self.pos += 1;
        k
    }

    /// Raw cursor position, for save/replay of declarator tokens.
    pub(crate) fn pos_raw(&self) -> usize {
        self.pos
    }

    /// Restores a cursor position previously obtained from [`Self::pos_raw`].
    pub(crate) fn restore_pos(&mut self, p: usize) {
        self.pos = p;
    }

    /// Enters one level of recursive parsing; errors beyond the nesting
    /// limit instead of overflowing the stack.
    pub(crate) fn enter(&mut self) -> Result<DepthGuard> {
        if self.depth >= self.max_depth {
            return Err(CError::budget(
                format!(
                    "expression or declarator nested too deeply (limit {})",
                    self.max_depth
                ),
                self.loc(),
            ));
        }
        self.depth += 1;
        self.deadline_ticks += 1;
        if self.deadline_ticks >= 4096 {
            self.deadline_ticks = 0;
            self.check_deadline()?;
        }
        Ok(DepthGuard)
    }

    /// Errors out when the per-unit wall-clock deadline has passed.
    pub(crate) fn check_deadline(&self) -> Result<()> {
        if let Some(deadline) = self.deadline {
            if std::time::Instant::now() > deadline {
                return Err(CError::budget(
                    format!("parsing exceeded the {} ms deadline", self.deadline_ms),
                    self.loc(),
                ));
            }
        }
        Ok(())
    }

    pub(crate) fn leave(&mut self, _g: DepthGuard) {
        self.depth -= 1;
    }

    pub(crate) fn err(&self, msg: impl Into<String>) -> CError {
        let mut msg = msg.into();
        if !self.at_eof() {
            msg = format!("{msg} (found `{}`)", self.peek());
        } else {
            msg = format!("{msg} (at end of input)");
        }
        CError::parse(msg, self.loc())
    }

    /// True if the current token is the punctuator `p`.
    pub(crate) fn at_punct(&self, p: Punct) -> bool {
        matches!(self.peek(), TokenKind::Punct(q) if *q == p)
    }

    /// Consumes `p` when present.
    pub(crate) fn eat_punct(&mut self, p: Punct) -> bool {
        if self.at_punct(p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Requires and consumes `p`.
    pub(crate) fn expect_punct(&mut self, p: Punct) -> Result<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", p.as_str())))
        }
    }

    /// True if the current token is the identifier/keyword `kw`.
    pub(crate) fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == kw)
    }

    /// Consumes the keyword when present.
    pub(crate) fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Requires and consumes the keyword.
    pub(crate) fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    /// Consumes and returns an identifier that is not a keyword.
    pub(crate) fn expect_ident(&mut self) -> Result<(String, Loc)> {
        let loc = self.loc();
        match self.peek() {
            TokenKind::Ident(s) if !is_keyword(s) => {
                let s = s.clone();
                self.pos += 1;
                Ok((s, loc))
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    // ----- scopes -------------------------------------------------------

    pub(crate) fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    pub(crate) fn pop_scope(&mut self) {
        self.scopes.pop();
        debug_assert!(!self.scopes.is_empty(), "popped file scope");
    }

    pub(crate) fn declare_typedef(&mut self, name: &str, ty: Type) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), NameKind::Typedef(ty));
    }

    pub(crate) fn declare_ordinary(&mut self, name: &str) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), NameKind::Ordinary);
    }

    /// Resolves a name to a typedef'd type, respecting shadowing.
    pub(crate) fn typedef_lookup(&self, name: &str) -> Option<&Type> {
        for scope in self.scopes.iter().rev() {
            match scope.get(name) {
                Some(NameKind::Typedef(t)) => return Some(t),
                Some(NameKind::Ordinary) => return None,
                None => {}
            }
        }
        None
    }

    // ----- GNU extensions we skip over ----------------------------------

    /// Skips `__attribute__((...))`, `__asm__("...")`, `__extension__`,
    /// `__restrict`, and similar decorations. Returns true if anything was
    /// consumed.
    pub(crate) fn skip_gnu_extensions(&mut self) -> Result<bool> {
        let mut any = false;
        loop {
            match self.peek() {
                TokenKind::Ident(s)
                    if matches!(
                        s.as_str(),
                        "__extension__"
                            | "__restrict"
                            | "__restrict__"
                            | "__inline"
                            | "__inline__"
                            | "__const"
                            | "__volatile__"
                            | "__signed__"
                    ) =>
                {
                    self.pos += 1;
                    any = true;
                }
                TokenKind::Ident(s) if s == "__attribute__" || s == "__asm__" || s == "__asm" => {
                    self.pos += 1;
                    self.skip_balanced_parens()?;
                    any = true;
                }
                _ => return Ok(any),
            }
        }
    }

    /// Skips a balanced `( ... )` group.
    pub(crate) fn skip_balanced_parens(&mut self) -> Result<()> {
        self.expect_punct(Punct::LParen)?;
        let mut depth = 1usize;
        while depth > 0 {
            match self.bump() {
                TokenKind::Punct(Punct::LParen) => depth += 1,
                TokenKind::Punct(Punct::RParen) => depth -= 1,
                TokenKind::Eof => return Err(self.err("unterminated parentheses")),
                _ => {}
            }
        }
        Ok(())
    }

    // ----- constant folding ---------------------------------------------

    /// Best-effort integer constant folding, used for array sizes, enum
    /// values and bit-field widths. Returns `None` for non-constant or
    /// unsupported expressions.
    pub(crate) fn eval_const(&self, e: &Expr) -> Option<i64> {
        use crate::ast::BinaryOp::*;
        Some(match &e.kind {
            ExprKind::IntLit(v) => *v as i64,
            ExprKind::CharLit(v) => *v,
            ExprKind::Ident(name) => *self.enum_values.get(name)?,
            ExprKind::Unary(op, inner) => {
                let v = self.eval_const(inner)?;
                match op {
                    UnaryOp::Neg => v.wrapping_neg(),
                    UnaryOp::Pos => v,
                    UnaryOp::LogicalNot => i64::from(v == 0),
                    UnaryOp::BitNot => !v,
                    _ => return None,
                }
            }
            ExprKind::Binary(op, l, r) => {
                let l = self.eval_const(l)?;
                let r = self.eval_const(r)?;
                match op {
                    Add => l.wrapping_add(r),
                    Sub => l.wrapping_sub(r),
                    Mul => l.wrapping_mul(r),
                    Div => {
                        if r == 0 {
                            return None;
                        }
                        l.wrapping_div(r)
                    }
                    Rem => {
                        if r == 0 {
                            return None;
                        }
                        l.wrapping_rem(r)
                    }
                    Shl => l.wrapping_shl(r as u32 & 63),
                    Shr => l.wrapping_shr(r as u32 & 63),
                    Lt => i64::from(l < r),
                    Gt => i64::from(l > r),
                    Le => i64::from(l <= r),
                    Ge => i64::from(l >= r),
                    Eq => i64::from(l == r),
                    Ne => i64::from(l != r),
                    BitAnd => l & r,
                    BitXor => l ^ r,
                    BitOr => l | r,
                    LogAnd => i64::from(l != 0 && r != 0),
                    LogOr => i64::from(l != 0 || r != 0),
                }
            }
            ExprKind::Cond(c, t, f) => {
                if self.eval_const(c)? != 0 {
                    self.eval_const(t)?
                } else {
                    self.eval_const(f)?
                }
            }
            ExprKind::Cast(_, inner) => self.eval_const(inner)?,
            ExprKind::SizeofType(ty) => self.types.size_of(ty)? as i64,
            ExprKind::SizeofExpr(_) => return None,
            _ => return None,
        })
    }
}

/// Token for one level of parser recursion (returned by [`Parser::enter`]).
pub(crate) struct DepthGuard;

/// True when `s` is a C keyword.
pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::span::FileId;

    pub(crate) fn parse_str(src: &str) -> Result<TranslationUnit> {
        let toks = lex(src, FileId(0)).unwrap();
        parse(toks, "test.c")
    }

    #[test]
    fn keyword_table() {
        assert!(is_keyword("int"));
        assert!(is_keyword("while"));
        assert!(!is_keyword("x"));
        assert!(!is_keyword("main"));
    }

    #[test]
    fn empty_unit() {
        let tu = parse_str("").unwrap();
        assert!(tu.items.is_empty());
    }

    #[test]
    fn stray_token_is_error() {
        assert!(parse_str("42;").is_err());
    }

    #[test]
    fn parser_depth_is_budgeted_and_configurable() {
        let src = format!("int x = {}1{};", "(".repeat(40), ")".repeat(40));
        let toks = lex(&src, FileId(0)).unwrap();
        let limits = FrontendLimits {
            max_parser_depth: 16,
            ..FrontendLimits::default()
        };
        let e = parse_with(toks, "deep.c", &limits).unwrap_err();
        assert!(e.is_budget(), "{e}");
        // The default bound of 64 accepts the same 40-deep nesting.
        let toks = lex(&src, FileId(0)).unwrap();
        assert!(parse(toks, "deep.c").is_ok());
        // Far past any bound, still a typed error — never a stack overflow.
        let src = format!("int x = {}1{};", "(".repeat(20_000), ")".repeat(20_000));
        let toks = lex(&src, FileId(0)).unwrap();
        let e = parse(toks, "deeper.c").unwrap_err();
        assert!(e.is_budget(), "{e}");
    }
}
