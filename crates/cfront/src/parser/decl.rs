//! Declaration parsing: specifiers, declarators, struct/union/enum
//! definitions, initializers, parameter lists (prototype and K&R), typedefs.

use super::Parser;
use crate::ast::{
    Declaration, Designator, ExternalDecl, FunctionDef, InitDeclarator, Initializer, Storage,
};
use crate::error::{CError, Result};
use crate::span::Loc;
use crate::token::{Punct, TokenKind};
use crate::types::{Field, FloatKind, FuncType, IntKind, Param, Type};

/// Type-specifier keywords (not storage classes or qualifiers).
pub(crate) fn is_type_specifier_kw(s: &str) -> bool {
    matches!(
        s,
        "void"
            | "char"
            | "short"
            | "int"
            | "long"
            | "float"
            | "double"
            | "signed"
            | "unsigned"
            | "struct"
            | "union"
            | "enum"
            | "const"
            | "volatile"
            | "restrict"
            | "_Bool"
    )
}

/// Accumulated declaration specifiers.
#[derive(Debug, Default)]
struct DeclSpecs {
    storage: Storage,
    is_typedef: bool,
    base: Option<Type>,
    // int-building state
    long_count: u8,
    short: bool,
    signedness: Option<bool>,
    int_seen: bool,
    char_seen: bool,
    float_seen: bool,
    double_seen: bool,
    void_seen: bool,
    bool_seen: bool,
}

impl DeclSpecs {
    fn resolve(self, p: &Parser) -> Result<(Storage, bool, Type)> {
        let ty = if let Some(t) = self.base {
            t
        } else if self.void_seen {
            Type::Void
        } else if self.float_seen {
            Type::Float(FloatKind::Float)
        } else if self.double_seen {
            if self.long_count > 0 {
                Type::Float(FloatKind::LongDouble)
            } else {
                Type::Float(FloatKind::Double)
            }
        } else {
            let signed = self.signedness.unwrap_or(true);
            let kind = if self.char_seen {
                IntKind::Char
            } else if self.short {
                IntKind::Short
            } else if self.long_count >= 2 {
                IntKind::LongLong
            } else if self.long_count == 1 {
                IntKind::Long
            } else if self.int_seen || self.signedness.is_some() || self.bool_seen {
                IntKind::Int
            } else {
                // No type specifier at all: implicit int (K&R).
                IntKind::Int
            };
            Type::Int { kind, signed }
        };
        let _ = p;
        Ok((self.storage, self.is_typedef, ty))
    }
}

impl Parser {
    /// True when the cursor starts declaration specifiers.
    pub(crate) fn starts_decl(&self) -> bool {
        match self.peek() {
            TokenKind::Ident(s) => {
                matches!(
                    s.as_str(),
                    "typedef" | "extern" | "static" | "auto" | "register" | "inline"
                ) || is_type_specifier_kw(s)
                    || s == "__extension__"
                    || s == "__inline"
                    || s == "__inline__"
                    || s == "__attribute__"
                    || (!super::is_keyword(s) && self.typedef_lookup(s).is_some())
            }
            _ => false,
        }
    }

    /// Parses declaration specifiers: storage class, qualifiers (ignored),
    /// and the base type.
    fn parse_decl_specs(&mut self) -> Result<(Storage, bool, Type)> {
        let mut specs = DeclSpecs::default();
        let mut any = false;
        loop {
            self.skip_gnu_extensions()?;
            let TokenKind::Ident(s) = self.peek() else {
                break;
            };
            let s = s.clone();
            match s.as_str() {
                "typedef" => {
                    self.bump();
                    specs.is_typedef = true;
                }
                "extern" => {
                    self.bump();
                    specs.storage = Storage::Extern;
                }
                "static" => {
                    self.bump();
                    specs.storage = Storage::Static;
                }
                "auto" => {
                    self.bump();
                    specs.storage = Storage::Auto;
                }
                "register" => {
                    self.bump();
                    specs.storage = Storage::Register;
                }
                "inline" | "const" | "volatile" | "restrict" => {
                    self.bump();
                }
                "void" => {
                    self.bump();
                    specs.void_seen = true;
                }
                "char" => {
                    self.bump();
                    specs.char_seen = true;
                }
                "short" => {
                    self.bump();
                    specs.short = true;
                }
                "int" => {
                    self.bump();
                    specs.int_seen = true;
                }
                "long" => {
                    self.bump();
                    specs.long_count += 1;
                }
                "float" => {
                    self.bump();
                    specs.float_seen = true;
                }
                "double" => {
                    self.bump();
                    specs.double_seen = true;
                }
                "_Bool" => {
                    self.bump();
                    specs.bool_seen = true;
                }
                "signed" => {
                    self.bump();
                    specs.signedness = Some(true);
                }
                "unsigned" => {
                    self.bump();
                    specs.signedness = Some(false);
                }
                "struct" | "union" => {
                    let ty = self.parse_record_spec(s == "union")?;
                    specs.base = Some(ty);
                }
                "enum" => {
                    let ty = self.parse_enum_spec()?;
                    specs.base = Some(ty);
                }
                _ => {
                    // A typedef name can serve as the type specifier, but only
                    // if we have no type specifier yet (storage classes and
                    // qualifiers may precede it).
                    if specs.base.is_none()
                        && !specs.int_seen
                        && !specs.char_seen
                        && !specs.void_seen
                        && !specs.float_seen
                        && !specs.double_seen
                        && !specs.short
                        && specs.long_count == 0
                        && specs.signedness.is_none()
                        && !super::is_keyword(&s)
                    {
                        if let Some(t) = self.typedef_lookup(&s) {
                            let t = t.clone();
                            self.bump();
                            specs.base = Some(t);
                            any = true;
                            continue;
                        }
                    }
                    break;
                }
            }
            any = true;
        }
        if !any {
            return Err(self.err("expected declaration specifiers"));
        }
        specs.resolve(self)
    }

    /// Parses `struct tag? { fields }?` / `union ...`.
    fn parse_record_spec(&mut self, is_union: bool) -> Result<Type> {
        let loc = self.loc();
        self.bump(); // struct/union
        self.skip_gnu_extensions()?;
        let tag = match self.peek() {
            TokenKind::Ident(s) if !super::is_keyword(s) => {
                let t = s.clone();
                self.bump();
                Some(t)
            }
            _ => None,
        };
        let id = match &tag {
            Some(t) => self.types.record_by_tag(t, is_union, loc),
            None => self.types.anon_record(is_union, loc),
        };
        if self.eat_punct(Punct::LBrace) {
            let mut fields = Vec::new();
            while !self.at_punct(Punct::RBrace) {
                self.parse_field_declaration(&mut fields)?;
            }
            self.expect_punct(Punct::RBrace)?;
            self.skip_gnu_extensions()?;
            let rec = self.types.record_mut(id);
            if rec.complete {
                // C allows the same complete definition in multiple headers
                // only via include guards; a textual redefinition is an error
                // but we accept an identical-arity one leniently.
                if rec.fields.len() != fields.len() {
                    return Err(CError::parse(
                        format!(
                            "redefinition of {} `{}`",
                            if is_union { "union" } else { "struct" },
                            rec.tag
                        ),
                        loc,
                    ));
                }
            } else {
                rec.fields = fields;
                rec.complete = true;
            }
        }
        Ok(Type::Record(id))
    }

    /// Parses one struct-declaration (a field line) into `fields`.
    fn parse_field_declaration(&mut self, fields: &mut Vec<Field>) -> Result<()> {
        let (_, _, base) = self.parse_decl_specs()?;
        // Unnamed field of record type (anonymous struct/union member or a
        // bare `struct S;` line).
        if self.eat_punct(Punct::Semi) {
            return Ok(());
        }
        loop {
            if self.at_punct(Punct::Colon) {
                // Unnamed bit-field.
                self.bump();
                let w = self.parse_conditional_expr()?;
                let _ = self.eval_const(&w);
            } else {
                let (name, ty, loc) = self.parse_named_declarator(base.clone())?;
                if self.eat_punct(Punct::Colon) {
                    let w = self.parse_conditional_expr()?;
                    let _ = self.eval_const(&w);
                }
                fields.push(Field { name, ty, loc });
            }
            self.skip_gnu_extensions()?;
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::Semi)?;
        Ok(())
    }

    /// Parses `enum tag? { enumerators }?`.
    fn parse_enum_spec(&mut self) -> Result<Type> {
        self.bump(); // enum
        self.skip_gnu_extensions()?;
        let tag = match self.peek() {
            TokenKind::Ident(s) if !super::is_keyword(s) => {
                let t = s.clone();
                self.bump();
                t
            }
            _ => "<anon-enum>".to_string(),
        };
        if self.eat_punct(Punct::LBrace) {
            let mut next_value: i64 = 0;
            while !self.at_punct(Punct::RBrace) {
                let (name, _) = self.expect_ident()?;
                if self.eat_punct(Punct::Eq) {
                    let e = self.parse_conditional_expr()?;
                    if let Some(v) = self.eval_const(&e) {
                        next_value = v;
                    }
                }
                self.enum_constants.insert(name.clone());
                self.enum_values.insert(name, next_value);
                next_value = next_value.wrapping_add(1);
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.expect_punct(Punct::RBrace)?;
        }
        Ok(Type::Enum(tag))
    }

    // ----- declarators ---------------------------------------------------

    /// Parses a declarator that must have a name.
    pub(crate) fn parse_named_declarator(&mut self, base: Type) -> Result<(String, Type, Loc)> {
        let loc = self.loc();
        let (name, ty) = self.parse_declarator(base, false)?;
        match name {
            Some(n) => Ok((n, ty, loc)),
            None => Err(CError::parse("expected declarator name", loc)),
        }
    }

    /// Parses a (possibly abstract) declarator applied to `base`.
    pub(crate) fn parse_declarator(
        &mut self,
        base: Type,
        allow_abstract: bool,
    ) -> Result<(Option<String>, Type)> {
        let guard = self.enter()?;
        let result = self.parse_declarator_inner(base, allow_abstract);
        self.leave(guard);
        result
    }

    fn parse_declarator_inner(
        &mut self,
        base: Type,
        allow_abstract: bool,
    ) -> Result<(Option<String>, Type)> {
        self.skip_gnu_extensions()?;
        // Pointer prefix.
        if self.eat_punct(Punct::Star) {
            // Qualifiers after `*`.
            while self.eat_kw("const") || self.eat_kw("volatile") || self.eat_kw("restrict") {}
            self.skip_gnu_extensions()?;
            return self.parse_declarator(Type::Pointer(Box::new(base)), allow_abstract);
        }
        self.parse_direct_declarator(base, allow_abstract)
    }

    fn parse_direct_declarator(
        &mut self,
        base: Type,
        allow_abstract: bool,
    ) -> Result<(Option<String>, Type)> {
        // Head: identifier, parenthesized declarator, or nothing (abstract).
        enum Head {
            Name(String),
            /// Token range of a parenthesized inner declarator, replayed
            /// after suffixes are known.
            Paren(usize, usize),
            Abstract,
        }
        let head = match self.peek() {
            TokenKind::Ident(s) if !super::is_keyword(s) => {
                let n = s.clone();
                self.bump();
                Head::Name(n)
            }
            TokenKind::Punct(Punct::LParen) if self.paren_is_declarator(allow_abstract) => {
                // Record the inner token range, skip it, parse suffixes, then
                // re-parse the inner declarator with the suffix-wrapped type.
                let start = self.save_pos();
                self.bump(); // (
                let inner_start = self.save_pos();
                let mut depth = 1usize;
                while depth > 0 {
                    match self.bump() {
                        TokenKind::Punct(Punct::LParen) => depth += 1,
                        TokenKind::Punct(Punct::RParen) => depth -= 1,
                        TokenKind::Eof => {
                            return Err(self.err("unterminated declarator parentheses"))
                        }
                        _ => {}
                    }
                }
                let inner_end = self.save_pos() - 1; // before the closing )
                let _ = start;
                Head::Paren(inner_start, inner_end)
            }
            _ if allow_abstract => Head::Abstract,
            _ => return Err(self.err("expected declarator")),
        };

        // Suffixes: arrays and parameter lists, applied right-to-left.
        #[derive(Debug)]
        enum Suffix {
            Array(Option<u64>),
            Func(Vec<Param>, bool, bool),
        }
        let mut suffixes = Vec::new();
        loop {
            if self.at_punct(Punct::LBracket) {
                self.bump();
                let size = if self.at_punct(Punct::RBracket) {
                    None
                } else {
                    let e = self.parse_assign_expr()?;
                    self.eval_const(&e).map(|v| v.max(0) as u64)
                };
                self.expect_punct(Punct::RBracket)?;
                suffixes.push(Suffix::Array(size));
            } else if self.at_punct(Punct::LParen) {
                self.bump();
                let (params, variadic, kr) = self.parse_parameter_list()?;
                suffixes.push(Suffix::Func(params, variadic, kr));
            } else {
                break;
            }
        }
        self.skip_gnu_extensions()?;

        let mut ty = base;
        for s in suffixes.into_iter().rev() {
            ty = match s {
                Suffix::Array(n) => Type::Array(Box::new(ty), n),
                Suffix::Func(params, variadic, kr) => Type::Function(Box::new(FuncType {
                    ret: ty,
                    params,
                    variadic,
                    kr,
                })),
            };
        }

        match head {
            Head::Name(n) => Ok((Some(n), ty)),
            Head::Abstract => Ok((None, ty)),
            Head::Paren(inner_start, inner_end) => {
                // Replay the inner declarator tokens against the wrapped type.
                let resume = self.save_pos();
                self.restore_pos(inner_start);
                let result = self.parse_declarator(ty, allow_abstract)?;
                if self.save_pos() != inner_end {
                    return Err(self.err("malformed parenthesized declarator"));
                }
                self.restore_pos(resume);
                Ok(result)
            }
        }
    }

    pub(crate) fn save_pos(&self) -> usize {
        self.pos_raw()
    }

    /// Decides whether `(` at the cursor opens a nested declarator (true) or
    /// a parameter list attached to an omitted name (false). A parameter list
    /// starts with a type or `)`; a nested declarator starts with `*`, an
    /// ordinary identifier, or another `(`.
    fn paren_is_declarator(&self, allow_abstract: bool) -> bool {
        match self.peek_ahead(1) {
            TokenKind::Punct(Punct::Star) => true,
            TokenKind::Punct(Punct::LParen) => true,
            TokenKind::Punct(Punct::RParen) => false, // `()` parameter list
            TokenKind::Ident(s) => {
                if is_type_specifier_kw(s)
                    || matches!(
                        s.as_str(),
                        "typedef" | "extern" | "static" | "auto" | "register"
                    )
                {
                    false
                } else if !super::is_keyword(s) && self.typedef_lookup(s).is_some() {
                    // A typedef name here is a parameter type... unless we
                    // need a concrete name (non-abstract context), where a
                    // shadowing declarator name is the only parse.
                    allow_abstract
                } else {
                    !super::is_keyword(s)
                }
            }
            _ => false,
        }
    }

    /// Parses a parameter list after `(`. Returns `(params, variadic, kr)`.
    fn parse_parameter_list(&mut self) -> Result<(Vec<Param>, bool, bool)> {
        // Empty: `()` — unspecified parameters (K&R).
        if self.eat_punct(Punct::RParen) {
            return Ok((Vec::new(), false, true));
        }
        // K&R identifier list: `f(a, b, c)` — names only, no types.
        if let TokenKind::Ident(s) = self.peek() {
            if !super::is_keyword(s)
                && self.typedef_lookup(s).is_none()
                && matches!(
                    self.peek_ahead(1),
                    TokenKind::Punct(Punct::Comma) | TokenKind::Punct(Punct::RParen)
                )
            {
                let mut params = Vec::new();
                loop {
                    let (name, loc) = self.expect_ident()?;
                    params.push(Param {
                        name: Some(name),
                        ty: Type::int(),
                        loc,
                    });
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
                self.expect_punct(Punct::RParen)?;
                return Ok((params, false, true));
            }
        }
        // Prototype.
        let mut params = Vec::new();
        let mut variadic = false;
        loop {
            if self.eat_punct(Punct::Ellipsis) {
                variadic = true;
                break;
            }
            let loc = self.loc();
            let (_, _, base) = self.parse_decl_specs()?;
            let (name, ty) = self.parse_declarator(base, true)?;
            // `(void)` means no parameters.
            if params.is_empty()
                && name.is_none()
                && ty == Type::Void
                && self.at_punct(Punct::RParen)
            {
                break;
            }
            params.push(Param {
                name,
                ty: decay(ty),
                loc,
            });
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::RParen)?;
        Ok((params, variadic, false))
    }

    /// Parses a type-name (for casts, `sizeof`, compound literals).
    pub(crate) fn parse_type_name(&mut self) -> Result<Type> {
        let (_, _, base) = self.parse_decl_specs()?;
        let (name, ty) = self.parse_declarator(base, true)?;
        if name.is_some() {
            return Err(self.err("unexpected name in type-name"));
        }
        Ok(ty)
    }

    // ----- initializers ---------------------------------------------------

    /// Parses an initializer (expression or braced list). Braced lists
    /// nest, so the recursion is charged against the parser depth budget —
    /// `x = {{{{...` is a typed budget error, not a stack overflow.
    fn parse_initializer(&mut self) -> Result<Initializer> {
        let guard = self.enter()?;
        let result = if self.at_punct(Punct::LBrace) {
            self.parse_braced_initializer_list().map(Initializer::List)
        } else {
            self.parse_assign_expr().map(Initializer::Expr)
        };
        self.leave(guard);
        result
    }

    /// Parses `{ designator? init, ... }` including the braces.
    pub(crate) fn parse_braced_initializer_list(
        &mut self,
    ) -> Result<Vec<(Designator, Initializer)>> {
        self.expect_punct(Punct::LBrace)?;
        let mut items = Vec::new();
        while !self.at_punct(Punct::RBrace) {
            let mut designator = Designator::None;
            // C99 designators `.f =` / `[i] =`; chains collapse to the head.
            loop {
                if self.at_punct(Punct::Dot) {
                    self.bump();
                    let (f, _) = self.expect_ident()?;
                    if matches!(designator, Designator::None) {
                        designator = Designator::Field(f);
                    }
                } else if self.at_punct(Punct::LBracket) {
                    self.bump();
                    let e = self.parse_conditional_expr()?;
                    self.expect_punct(Punct::RBracket)?;
                    if matches!(designator, Designator::None) {
                        designator =
                            Designator::Index(self.eval_const(&e).map(|v| v.max(0) as u64));
                    }
                } else {
                    break;
                }
            }
            if !matches!(designator, Designator::None) {
                self.expect_punct(Punct::Eq)?;
            }
            let init = self.parse_initializer()?;
            items.push((designator, init));
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::RBrace)?;
        Ok(items)
    }

    // ----- external declarations ------------------------------------------

    /// Parses one external declaration (function definition or declaration).
    /// Returns `None` for stray semicolons and type-only declarations that
    /// produce no AST item... (they still register types/typedefs).
    pub(crate) fn parse_external_decl(&mut self) -> Result<Option<ExternalDecl>> {
        // Stray semicolons are tolerated.
        if self.eat_punct(Punct::Semi) {
            return Ok(None);
        }
        self.skip_gnu_extensions()?;
        let loc = self.loc();
        let (storage, is_typedef, base) = self.parse_decl_specs()?;
        // `struct S { ... };` or `enum E { ... };` alone.
        if self.eat_punct(Punct::Semi) {
            return Ok(None);
        }
        let first_loc = self.loc();
        let (name, ty) = self.parse_declarator(base.clone(), false)?;
        let name = name.ok_or_else(|| CError::parse("expected declarator name", first_loc))?;

        // Function definition: function declarator followed by `{`, or by
        // K&R parameter declarations then `{`.
        if let Type::Function(ft) = &ty {
            if !is_typedef && (self.at_punct(Punct::LBrace) || self.starts_decl()) {
                let mut ft = (**ft).clone();
                // K&R parameter declarations.
                while !self.at_punct(Punct::LBrace) && self.starts_decl() {
                    let (_, _, kbase) = self.parse_decl_specs()?;
                    loop {
                        let (pname, pty, _ploc) = self.parse_named_declarator(kbase.clone())?;
                        if let Some(p) = ft
                            .params
                            .iter_mut()
                            .find(|p| p.name.as_deref() == Some(pname.as_str()))
                        {
                            p.ty = decay(pty);
                        }
                        if !self.eat_punct(Punct::Comma) {
                            break;
                        }
                    }
                    self.expect_punct(Punct::Semi)?;
                }
                if !self.at_punct(Punct::LBrace) {
                    return Err(self.err("expected function body"));
                }
                self.declare_ordinary(&name);
                self.push_scope();
                for p in &ft.params {
                    if let Some(n) = &p.name {
                        self.declare_ordinary(n);
                    }
                }
                let body = self.parse_block()?;
                self.pop_scope();
                return Ok(Some(ExternalDecl::Function(FunctionDef {
                    name,
                    ty: ft,
                    storage,
                    body,
                    loc,
                })));
            }
        }

        // Ordinary declaration (possibly a typedef), with more declarators.
        let decl = self.finish_declaration(storage, is_typedef, base, name, ty, first_loc, loc)?;
        Ok(Some(ExternalDecl::Declaration(decl)))
    }

    /// Completes a declaration after its first declarator has been parsed.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finish_declaration(
        &mut self,
        storage: Storage,
        is_typedef: bool,
        base: Type,
        first_name: String,
        first_ty: Type,
        first_loc: Loc,
        loc: Loc,
    ) -> Result<Declaration> {
        let mut items = Vec::new();
        let register = |p: &mut Parser, name: &str, ty: &Type| {
            if is_typedef {
                p.declare_typedef(name, ty.clone());
            } else {
                p.declare_ordinary(name);
            }
        };
        register(self, &first_name, &first_ty);
        let init = if self.eat_punct(Punct::Eq) {
            Some(self.parse_initializer()?)
        } else {
            None
        };
        items.push(InitDeclarator {
            name: first_name,
            ty: first_ty,
            init,
            loc: first_loc,
        });
        while self.eat_punct(Punct::Comma) {
            let (name, ty, dloc) = self.parse_named_declarator(base.clone())?;
            register(self, &name, &ty);
            let init = if self.eat_punct(Punct::Eq) {
                Some(self.parse_initializer()?)
            } else {
                None
            };
            items.push(InitDeclarator {
                name,
                ty,
                init,
                loc: dloc,
            });
        }
        self.expect_punct(Punct::Semi)?;
        Ok(Declaration {
            storage,
            is_typedef,
            items,
            loc,
        })
    }

    /// Parses a declaration inside a block (specifiers already known to
    /// start one).
    pub(crate) fn parse_block_declaration(&mut self) -> Result<Declaration> {
        let loc = self.loc();
        let (storage, is_typedef, base) = self.parse_decl_specs()?;
        if self.eat_punct(Punct::Semi) {
            return Ok(Declaration {
                storage,
                is_typedef,
                items: Vec::new(),
                loc,
            });
        }
        let first_loc = self.loc();
        let (name, ty, _) = self.parse_named_declarator(base.clone())?;
        self.finish_declaration(storage, is_typedef, base, name, ty, first_loc, loc)
    }
}

/// Parameter types decay: arrays to pointers, functions to function pointers.
pub(crate) fn decay(ty: Type) -> Type {
    match ty {
        Type::Array(elem, _) => Type::Pointer(elem),
        f @ Type::Function(_) => Type::Pointer(Box::new(f)),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use crate::ast::{ExternalDecl, Initializer};
    use crate::lexer::lex;
    use crate::span::FileId;
    use crate::types::{FloatKind, IntKind, Type};

    fn parse_ok(src: &str) -> crate::ast::TranslationUnit {
        let toks = lex(src, FileId(0)).unwrap();
        super::super::parse(toks, "t.c").unwrap()
    }

    fn first_var(tu: &crate::ast::TranslationUnit) -> (&str, &Type) {
        for item in &tu.items {
            if let ExternalDecl::Declaration(d) = item {
                let i = &d.items[0];
                return (&i.name, &i.ty);
            }
        }
        panic!("no declaration");
    }

    #[test]
    fn simple_decls() {
        let tu = parse_ok("int x;");
        let (n, t) = first_var(&tu);
        assert_eq!(n, "x");
        assert_eq!(*t, Type::int());

        let tu = parse_ok("unsigned long y;");
        let (_, t) = first_var(&tu);
        assert_eq!(
            *t,
            Type::Int {
                kind: IntKind::Long,
                signed: false
            }
        );

        let tu = parse_ok("long long z;");
        let (_, t) = first_var(&tu);
        assert_eq!(
            *t,
            Type::Int {
                kind: IntKind::LongLong,
                signed: true
            }
        );

        let tu = parse_ok("long double d;");
        let (_, t) = first_var(&tu);
        assert_eq!(*t, Type::Float(FloatKind::LongDouble));
    }

    #[test]
    fn pointers_and_arrays() {
        let tu = parse_ok("int *p;");
        assert_eq!(*first_var(&tu).1, Type::int().ptr_to());
        let tu = parse_ok("int **pp;");
        assert_eq!(*first_var(&tu).1, Type::int().ptr_to().ptr_to());
        let tu = parse_ok("int a[10];");
        assert_eq!(
            *first_var(&tu).1,
            Type::Array(Box::new(Type::int()), Some(10))
        );
        let tu = parse_ok("int m[2][3];");
        assert_eq!(
            *first_var(&tu).1,
            Type::Array(
                Box::new(Type::Array(Box::new(Type::int()), Some(3))),
                Some(2)
            )
        );
        let tu = parse_ok("int *ap[4];");
        assert_eq!(
            *first_var(&tu).1,
            Type::Array(Box::new(Type::int().ptr_to()), Some(4))
        );
        let tu = parse_ok("int (*pa)[4];");
        assert_eq!(
            *first_var(&tu).1,
            Type::Pointer(Box::new(Type::Array(Box::new(Type::int()), Some(4))))
        );
        let tu = parse_ok("int sz[sizeof(int) * 2];");
        assert_eq!(
            *first_var(&tu).1,
            Type::Array(Box::new(Type::int()), Some(8))
        );
    }

    #[test]
    fn function_declarators() {
        let tu = parse_ok("int f(int a, char *b);");
        let (n, t) = first_var(&tu);
        assert_eq!(n, "f");
        let Type::Function(ft) = t else {
            panic!("{t:?}")
        };
        assert_eq!(ft.ret, Type::int());
        assert_eq!(ft.params.len(), 2);
        assert_eq!(ft.params[1].ty, Type::char_().ptr_to());
        assert!(!ft.variadic);

        let tu = parse_ok("int g(void);");
        let Type::Function(ft) = first_var(&tu).1 else {
            panic!()
        };
        assert!(ft.params.is_empty());
        assert!(!ft.kr);

        let tu = parse_ok("int h();");
        let Type::Function(ft) = first_var(&tu).1 else {
            panic!()
        };
        assert!(ft.kr);

        let tu = parse_ok("int v(char *fmt, ...);");
        let Type::Function(ft) = first_var(&tu).1 else {
            panic!()
        };
        assert!(ft.variadic);
    }

    #[test]
    fn function_pointers() {
        let tu = parse_ok("int (*fp)(int);");
        let Type::Pointer(inner) = first_var(&tu).1 else {
            panic!()
        };
        assert!(matches!(**inner, Type::Function(_)));

        let tu = parse_ok("void (*table[8])(void);");
        let Type::Array(elem, Some(8)) = first_var(&tu).1 else {
            panic!()
        };
        assert!(matches!(**elem, Type::Pointer(_)));

        // Function returning a function pointer.
        let tu = parse_ok("int (*get(void))(char);");
        let Type::Function(ft) = first_var(&tu).1 else {
            panic!()
        };
        assert!(matches!(ft.ret, Type::Pointer(_)));
    }

    #[test]
    fn array_params_decay() {
        let tu = parse_ok("void f(int a[10], int g(void));");
        let Type::Function(ft) = first_var(&tu).1 else {
            panic!()
        };
        assert_eq!(ft.params[0].ty, Type::int().ptr_to());
        assert!(matches!(ft.params[1].ty, Type::Pointer(_)));
    }

    #[test]
    fn structs() {
        let tu = parse_ok("struct S { short x; short y; } s, *ps;");
        let rec = tu.types.iter().next().unwrap().1;
        assert_eq!(rec.tag, "S");
        assert_eq!(rec.fields.len(), 2);
        assert!(rec.complete);
        let ExternalDecl::Declaration(d) = &tu.items[0] else {
            panic!()
        };
        assert_eq!(d.items.len(), 2);
        assert!(matches!(d.items[1].ty, Type::Pointer(_)));
    }

    #[test]
    fn forward_and_self_referential_struct() {
        let tu = parse_ok("struct N { struct N *next; int v; }; struct N head;");
        let rec = tu.types.iter().next().unwrap().1;
        assert_eq!(rec.fields.len(), 2);
        assert!(matches!(rec.fields[0].ty, Type::Pointer(_)));
    }

    #[test]
    fn unions_and_bitfields() {
        let tu = parse_ok("union U { int i; float f; } u;");
        let rec = tu.types.iter().next().unwrap().1;
        assert!(rec.is_union);
        let tu = parse_ok("struct B { int flags : 3; int : 2; int rest; } b;");
        let rec = tu.types.iter().next().unwrap().1;
        assert_eq!(rec.fields.len(), 2);
    }

    #[test]
    fn enums() {
        let tu = parse_ok("enum Color { RED, GREEN = 5, BLUE } c;");
        assert!(tu.enum_constants.contains("RED"));
        assert!(tu.enum_constants.contains("BLUE"));
        let (_, t) = first_var(&tu);
        assert_eq!(*t, Type::Enum("Color".into()));
    }

    #[test]
    fn typedefs() {
        let tu = parse_ok("typedef int myint; myint x;");
        // The second declaration should resolve myint to int.
        let mut vars = Vec::new();
        for item in &tu.items {
            if let ExternalDecl::Declaration(d) = item {
                if !d.is_typedef {
                    for i in &d.items {
                        vars.push((i.name.clone(), i.ty.clone()));
                    }
                }
            }
        }
        assert_eq!(vars, vec![("x".to_string(), Type::int())]);

        let tu = parse_ok("typedef struct S { int v; } S_t; S_t *p;");
        let mut found = false;
        for item in &tu.items {
            if let ExternalDecl::Declaration(d) = item {
                if !d.is_typedef {
                    assert!(matches!(d.items[0].ty, Type::Pointer(_)));
                    found = true;
                }
            }
        }
        assert!(found);
    }

    #[test]
    fn typedef_function_pointer() {
        let tu = parse_ok("typedef void (*handler)(int); handler h;");
        let mut checked = false;
        for item in &tu.items {
            if let ExternalDecl::Declaration(d) = item {
                if !d.is_typedef {
                    let Type::Pointer(inner) = &d.items[0].ty else {
                        panic!()
                    };
                    assert!(matches!(**inner, Type::Function(_)));
                    checked = true;
                }
            }
        }
        assert!(checked);
    }

    #[test]
    fn initializers() {
        let tu = parse_ok("int x = 1;");
        let ExternalDecl::Declaration(d) = &tu.items[0] else {
            panic!()
        };
        assert!(matches!(d.items[0].init, Some(Initializer::Expr(_))));
        let tu = parse_ok("int a[3] = {1, 2, 3};");
        let ExternalDecl::Declaration(d) = &tu.items[0] else {
            panic!()
        };
        let Some(Initializer::List(l)) = &d.items[0].init else {
            panic!()
        };
        assert_eq!(l.len(), 3);
        let tu = parse_ok("struct P { int x; int y; } p = { .y = 2, .x = 1 };");
        let ExternalDecl::Declaration(d) = &tu.items[0] else {
            panic!()
        };
        let Some(Initializer::List(l)) = &d.items[0].init else {
            panic!()
        };
        assert_eq!(l.len(), 2);
        assert!(matches!(l[0].0, crate::ast::Designator::Field(ref f) if f == "y"));
    }

    #[test]
    fn function_definition() {
        let tu = parse_ok("int add(int a, int b) { return a + b; }");
        let ExternalDecl::Function(f) = &tu.items[0] else {
            panic!()
        };
        assert_eq!(f.name, "add");
        assert_eq!(f.ty.params.len(), 2);
        assert_eq!(f.body.items.len(), 1);
    }

    #[test]
    fn kr_function_definition() {
        let tu = parse_ok("int f(a, p) int a; char *p; { return a; }");
        let ExternalDecl::Function(f) = &tu.items[0] else {
            panic!()
        };
        assert!(f.ty.kr);
        assert_eq!(f.ty.params[0].ty, Type::int());
        assert_eq!(f.ty.params[1].ty, Type::char_().ptr_to());
    }

    #[test]
    fn storage_classes() {
        let tu = parse_ok("static int s; extern int e;");
        let ExternalDecl::Declaration(d) = &tu.items[0] else {
            panic!()
        };
        assert_eq!(d.storage, crate::ast::Storage::Static);
        let ExternalDecl::Declaration(d) = &tu.items[1] else {
            panic!()
        };
        assert_eq!(d.storage, crate::ast::Storage::Extern);
    }

    #[test]
    fn gnu_extensions_skipped() {
        parse_ok("__extension__ int x;");
        parse_ok("int f(void) __attribute__((noreturn));");
        parse_ok("static __inline int g(void) { return 0; }");
    }

    #[test]
    fn implicit_int() {
        let tu = parse_ok("static x;");
        assert_eq!(*first_var(&tu).1, Type::int());
    }

    #[test]
    fn redefinition_errors() {
        let toks = lex(
            "struct S { int a; }; struct S { int a; int b; };",
            FileId(0),
        )
        .unwrap();
        assert!(super::super::parse(toks, "t.c").is_err());
    }
}
