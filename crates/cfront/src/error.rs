//! Frontend error types.

use crate::span::Loc;
use std::fmt;

/// Result alias used throughout the frontend.
pub type Result<T> = std::result::Result<T, CError>;

/// An error produced by the lexer, preprocessor, or parser.
#[derive(Debug, Clone, PartialEq)]
pub enum CError {
    /// Lexical error (bad literal, stray character, unterminated comment).
    Lex { msg: String, loc: Loc },
    /// Preprocessor error (bad directive, macro arity mismatch, missing
    /// include, `#error`).
    Pp { msg: String, loc: Loc },
    /// Parse error (unexpected token, malformed declaration).
    Parse { msg: String, loc: Loc },
}

impl CError {
    /// Constructs a lexical error.
    pub fn lex(msg: impl Into<String>, loc: Loc) -> Self {
        CError::Lex {
            msg: msg.into(),
            loc,
        }
    }

    /// Constructs a preprocessor error.
    pub fn pp(msg: impl Into<String>, loc: Loc) -> Self {
        CError::Pp {
            msg: msg.into(),
            loc,
        }
    }

    /// Constructs a parse error.
    pub fn parse(msg: impl Into<String>, loc: Loc) -> Self {
        CError::Parse {
            msg: msg.into(),
            loc,
        }
    }

    /// The location the error points at.
    pub fn loc(&self) -> Loc {
        match self {
            CError::Lex { loc, .. } | CError::Pp { loc, .. } | CError::Parse { loc, .. } => *loc,
        }
    }

    /// The error message without the phase prefix.
    pub fn message(&self) -> &str {
        match self {
            CError::Lex { msg, .. } | CError::Pp { msg, .. } | CError::Parse { msg, .. } => msg,
        }
    }
}

impl fmt::Display for CError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CError::Lex { msg, loc } => write!(f, "lex error at {loc}: {msg}"),
            CError::Pp { msg, loc } => write!(f, "preprocess error at {loc}: {msg}"),
            CError::Parse { msg, loc } => write!(f, "parse error at {loc}: {msg}"),
        }
    }
}

impl std::error::Error for CError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_accessors() {
        let e = CError::parse("expected `;`", Loc::BUILTIN);
        assert_eq!(e.message(), "expected `;`");
        assert_eq!(e.loc(), Loc::BUILTIN);
        assert!(format!("{e}").contains("parse error"));
        let e = CError::lex("bad char", Loc::BUILTIN);
        assert!(format!("{e}").contains("lex error"));
        let e = CError::pp("no such file", Loc::BUILTIN);
        assert!(format!("{e}").contains("preprocess error"));
    }
}
