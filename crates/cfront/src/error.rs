//! Frontend error types.

use crate::span::Loc;
use std::fmt;

/// Result alias used throughout the frontend.
pub type Result<T> = std::result::Result<T, CError>;

/// An error produced by the lexer, preprocessor, or parser.
#[derive(Debug, Clone, PartialEq)]
pub enum CError {
    /// Lexical error (bad literal, stray character, unterminated comment).
    Lex { msg: String, loc: Loc },
    /// Preprocessor error (bad directive, macro arity mismatch, missing
    /// include, `#error`).
    Pp { msg: String, loc: Loc },
    /// Parse error (unexpected token, malformed declaration).
    Parse { msg: String, loc: Loc },
    /// A file re-included itself while it was still being processed
    /// (`a.h` → `b.h` → `a.h`). Distinct from the depth bound: a cycle is
    /// diagnosed on the second entry, not after 64 levels of churn.
    IncludeCycle { msg: String, loc: Loc },
    /// A [`FrontendLimits`](crate::pp::FrontendLimits) budget was exceeded
    /// (macro fuel, token cap, include depth, parser depth, or the per-unit
    /// wall-clock deadline). Hostile or pathological input, not a bug.
    Budget { msg: String, loc: Loc },
}

impl CError {
    /// Constructs a lexical error.
    pub fn lex(msg: impl Into<String>, loc: Loc) -> Self {
        CError::Lex {
            msg: msg.into(),
            loc,
        }
    }

    /// Constructs a preprocessor error.
    pub fn pp(msg: impl Into<String>, loc: Loc) -> Self {
        CError::Pp {
            msg: msg.into(),
            loc,
        }
    }

    /// Constructs a parse error.
    pub fn parse(msg: impl Into<String>, loc: Loc) -> Self {
        CError::Parse {
            msg: msg.into(),
            loc,
        }
    }

    /// Constructs an include-cycle error.
    pub fn include_cycle(msg: impl Into<String>, loc: Loc) -> Self {
        CError::IncludeCycle {
            msg: msg.into(),
            loc,
        }
    }

    /// Constructs a budget-exceeded error.
    pub fn budget(msg: impl Into<String>, loc: Loc) -> Self {
        CError::Budget {
            msg: msg.into(),
            loc,
        }
    }

    /// The location the error points at.
    pub fn loc(&self) -> Loc {
        match self {
            CError::Lex { loc, .. }
            | CError::Pp { loc, .. }
            | CError::Parse { loc, .. }
            | CError::IncludeCycle { loc, .. }
            | CError::Budget { loc, .. } => *loc,
        }
    }

    /// The error message without the phase prefix.
    pub fn message(&self) -> &str {
        match self {
            CError::Lex { msg, .. }
            | CError::Pp { msg, .. }
            | CError::Parse { msg, .. }
            | CError::IncludeCycle { msg, .. }
            | CError::Budget { msg, .. } => msg,
        }
    }

    /// True for budget-exceeded errors (drives the
    /// `cla_front_budget_exceeded_total` counter and fuzz triage).
    pub fn is_budget(&self) -> bool {
        matches!(self, CError::Budget { .. })
    }
}

impl fmt::Display for CError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CError::Lex { msg, loc } => write!(f, "lex error at {loc}: {msg}"),
            CError::Pp { msg, loc } => write!(f, "preprocess error at {loc}: {msg}"),
            CError::Parse { msg, loc } => write!(f, "parse error at {loc}: {msg}"),
            CError::IncludeCycle { msg, loc } => write!(f, "include cycle at {loc}: {msg}"),
            CError::Budget { msg, loc } => write!(f, "frontend budget exceeded at {loc}: {msg}"),
        }
    }
}

impl std::error::Error for CError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_accessors() {
        let e = CError::parse("expected `;`", Loc::BUILTIN);
        assert_eq!(e.message(), "expected `;`");
        assert_eq!(e.loc(), Loc::BUILTIN);
        assert!(format!("{e}").contains("parse error"));
        let e = CError::lex("bad char", Loc::BUILTIN);
        assert!(format!("{e}").contains("lex error"));
        let e = CError::pp("no such file", Loc::BUILTIN);
        assert!(format!("{e}").contains("preprocess error"));
    }
}
