//! C type representation.
//!
//! Types are structural except for records (structs/unions) and enums, which
//! live in a per-translation-unit [`TypeTable`] and are referenced by id.
//! Record *tags* are the cross-translation-unit identity used by field-based
//! analysis: `struct S { short x; }` in two files denotes the same abstract
//! field object `S.x` (paper Section 3).

use crate::span::Loc;
use std::collections::HashMap;
use std::fmt;

/// Integer kinds (C89 plus `long long`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntKind {
    Char,
    Short,
    Int,
    Long,
    LongLong,
}

/// Floating kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FloatKind {
    Float,
    Double,
    LongDouble,
}

/// Identifier of a record (struct or union) in a [`TypeTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecordId(pub u32);

/// A C type.
#[derive(Debug, Clone, PartialEq)]
pub enum Type {
    Void,
    Int {
        kind: IntKind,
        signed: bool,
    },
    Float(FloatKind),
    Pointer(Box<Type>),
    Array(Box<Type>, Option<u64>),
    Function(Box<FuncType>),
    /// Struct or union; look up fields through the [`TypeTable`].
    Record(RecordId),
    /// Enum; behaves as `int`. The tag is kept for display.
    Enum(String),
}

/// A function type.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncType {
    pub ret: Type,
    pub params: Vec<Param>,
    pub variadic: bool,
    /// True for K&R-style definitions/declarations with no prototype.
    pub kr: bool,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    pub name: Option<String>,
    pub ty: Type,
    pub loc: Loc,
}

/// One field of a record.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    pub name: String,
    pub ty: Type,
    pub loc: Loc,
}

/// A struct or union definition (possibly incomplete).
#[derive(Debug, Clone, PartialEq)]
pub struct RecordDef {
    /// The record's tag. Anonymous records get a synthesized unique tag of
    /// the form `<anon#N>`; named tags are the cross-file identity used by
    /// field-based analysis.
    pub tag: String,
    pub is_union: bool,
    pub fields: Vec<Field>,
    /// False until the `{ ... }` body has been seen.
    pub complete: bool,
    pub loc: Loc,
}

/// Per-translation-unit registry of records.
#[derive(Debug, Default, Clone)]
pub struct TypeTable {
    records: Vec<RecordDef>,
    by_tag: HashMap<String, RecordId>,
    anon_count: u32,
}

impl TypeTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        TypeTable::default()
    }

    /// Looks up or creates the record with the given tag.
    pub fn record_by_tag(&mut self, tag: &str, is_union: bool, loc: Loc) -> RecordId {
        if let Some(&id) = self.by_tag.get(tag) {
            return id;
        }
        let id = RecordId(self.records.len() as u32);
        self.records.push(RecordDef {
            tag: tag.to_string(),
            is_union,
            fields: Vec::new(),
            complete: false,
            loc,
        });
        self.by_tag.insert(tag.to_string(), id);
        id
    }

    /// Creates a fresh anonymous record.
    pub fn anon_record(&mut self, is_union: bool, loc: Loc) -> RecordId {
        self.anon_count += 1;
        let tag = format!("<anon#{}>", self.anon_count);
        let id = RecordId(self.records.len() as u32);
        self.records.push(RecordDef {
            tag,
            is_union,
            fields: Vec::new(),
            complete: false,
            loc,
        });
        id
    }

    /// The definition for a record id.
    ///
    /// # Panics
    ///
    /// Panics when `id` was not produced by this table.
    pub fn record(&self, id: RecordId) -> &RecordDef {
        &self.records[id.0 as usize]
    }

    /// Mutable access to a record definition.
    pub fn record_mut(&mut self, id: RecordId) -> &mut RecordDef {
        &mut self.records[id.0 as usize]
    }

    /// Finds a field by name (searching nested anonymous members is not
    /// supported; anonymous struct/union members are uncommon in C89).
    pub fn field<'t>(&'t self, id: RecordId, name: &str) -> Option<&'t Field> {
        self.record(id).fields.iter().find(|f| f.name == name)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no record is registered.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over all records.
    pub fn iter(&self) -> impl Iterator<Item = (RecordId, &RecordDef)> {
        self.records
            .iter()
            .enumerate()
            .map(|(i, r)| (RecordId(i as u32), r))
    }

    /// Renders a type for diagnostics.
    pub fn display(&self, ty: &Type) -> String {
        match ty {
            Type::Void => "void".into(),
            Type::Int { kind, signed } => {
                let base = match kind {
                    IntKind::Char => "char",
                    IntKind::Short => "short",
                    IntKind::Int => "int",
                    IntKind::Long => "long",
                    IntKind::LongLong => "long long",
                };
                if *signed {
                    base.into()
                } else {
                    format!("unsigned {base}")
                }
            }
            Type::Float(FloatKind::Float) => "float".into(),
            Type::Float(FloatKind::Double) => "double".into(),
            Type::Float(FloatKind::LongDouble) => "long double".into(),
            Type::Pointer(inner) => format!("{} *", self.display(inner)),
            Type::Array(inner, Some(n)) => format!("{} [{n}]", self.display(inner)),
            Type::Array(inner, None) => format!("{} []", self.display(inner)),
            Type::Function(f) => {
                let params: Vec<String> = f.params.iter().map(|p| self.display(&p.ty)).collect();
                format!("{} ({})", self.display(&f.ret), params.join(", "))
            }
            Type::Record(id) => {
                let r = self.record(*id);
                format!("{} {}", if r.is_union { "union" } else { "struct" }, r.tag)
            }
            Type::Enum(tag) => format!("enum {tag}"),
        }
    }

    /// Size of a type in bytes under the reproduction's ILP32 model
    /// (the paper's 2001-era target). Unions take their largest member;
    /// structs get no padding (size is only used for `sizeof` constant
    /// folding, where exact ABI fidelity is unnecessary).
    pub fn size_of(&self, ty: &Type) -> Option<u64> {
        Some(match ty {
            Type::Void => 1,
            Type::Int { kind, .. } => match kind {
                IntKind::Char => 1,
                IntKind::Short => 2,
                IntKind::Int => 4,
                IntKind::Long => 4,
                IntKind::LongLong => 8,
            },
            Type::Float(FloatKind::Float) => 4,
            Type::Float(FloatKind::Double) => 8,
            Type::Float(FloatKind::LongDouble) => 12,
            Type::Pointer(_) => 4,
            Type::Array(inner, Some(n)) => self.size_of(inner)?.checked_mul(*n)?,
            Type::Array(_, None) => return None,
            Type::Function(_) => return None,
            Type::Record(id) => {
                let r = self.record(*id);
                if !r.complete {
                    return None;
                }
                let mut total: u64 = 0;
                for f in &r.fields {
                    let s = self.size_of(&f.ty)?;
                    if r.is_union {
                        total = total.max(s);
                    } else {
                        total = total.checked_add(s)?;
                    }
                }
                total.max(1)
            }
            Type::Enum(_) => 4,
        })
    }
}

impl Type {
    /// Convenience: `int`.
    pub fn int() -> Type {
        Type::Int {
            kind: IntKind::Int,
            signed: true,
        }
    }

    /// Convenience: `char`.
    pub fn char_() -> Type {
        Type::Int {
            kind: IntKind::Char,
            signed: true,
        }
    }

    /// Convenience: pointer to `self`.
    pub fn ptr_to(self) -> Type {
        Type::Pointer(Box::new(self))
    }

    /// True for pointer types.
    pub fn is_pointer(&self) -> bool {
        matches!(self, Type::Pointer(_))
    }

    /// True for types that *hold or decay to* pointers: pointers, arrays and
    /// functions. These are the objects the points-to analysis tracks.
    pub fn is_pointer_like(&self) -> bool {
        matches!(self, Type::Pointer(_) | Type::Array(..) | Type::Function(_))
    }

    /// True for arithmetic (integer/float/enum) types.
    pub fn is_arithmetic(&self) -> bool {
        matches!(self, Type::Int { .. } | Type::Float(_) | Type::Enum(_))
    }

    /// The pointee for pointers, the element for arrays, `None` otherwise.
    pub fn dereferenced(&self) -> Option<&Type> {
        match self {
            Type::Pointer(t) | Type::Array(t, _) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    /// Renders without a table (record ids appear numerically).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Record(id) => write!(f, "record#{}", id.0),
            other => write!(f, "{}", TypeTable::new_display_helper(other)),
        }
    }
}

impl TypeTable {
    fn new_display_helper(ty: &Type) -> String {
        // Display via an empty table only works for record-free types; record
        // types are rendered by the caller's arm above.
        let t = TypeTable::new();
        match ty {
            Type::Record(_) => unreachable!("handled by Display"),
            other => t.display(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_records() {
        let mut t = TypeTable::new();
        let s = t.record_by_tag("S", false, Loc::BUILTIN);
        let s2 = t.record_by_tag("S", false, Loc::BUILTIN);
        assert_eq!(s, s2);
        let u = t.record_by_tag("U", true, Loc::BUILTIN);
        assert_ne!(s, u);
        let a1 = t.anon_record(false, Loc::BUILTIN);
        let a2 = t.anon_record(false, Loc::BUILTIN);
        assert_ne!(a1, a2);
        assert_eq!(t.len(), 4);
        t.record_mut(s).fields.push(Field {
            name: "x".into(),
            ty: Type::int(),
            loc: Loc::BUILTIN,
        });
        t.record_mut(s).complete = true;
        assert!(t.field(s, "x").is_some());
        assert!(t.field(s, "y").is_none());
    }

    #[test]
    fn sizes() {
        let mut t = TypeTable::new();
        assert_eq!(t.size_of(&Type::int()), Some(4));
        assert_eq!(t.size_of(&Type::char_()), Some(1));
        assert_eq!(t.size_of(&Type::int().ptr_to()), Some(4));
        assert_eq!(
            t.size_of(&Type::Array(Box::new(Type::int()), Some(10))),
            Some(40)
        );
        assert_eq!(t.size_of(&Type::Array(Box::new(Type::int()), None)), None);
        let s = t.record_by_tag("S", false, Loc::BUILTIN);
        t.record_mut(s).fields.push(Field {
            name: "a".into(),
            ty: Type::int(),
            loc: Loc::BUILTIN,
        });
        t.record_mut(s).fields.push(Field {
            name: "b".into(),
            ty: Type::Int {
                kind: IntKind::Short,
                signed: true,
            },
            loc: Loc::BUILTIN,
        });
        assert_eq!(t.size_of(&Type::Record(s)), None); // incomplete
        t.record_mut(s).complete = true;
        assert_eq!(t.size_of(&Type::Record(s)), Some(6));
        let u = t.record_by_tag("U", true, Loc::BUILTIN);
        t.record_mut(u).fields = t.record(s).fields.clone();
        t.record_mut(u).complete = true;
        assert_eq!(t.size_of(&Type::Record(u)), Some(4));
    }

    #[test]
    fn predicates() {
        assert!(Type::int().ptr_to().is_pointer());
        assert!(!Type::int().is_pointer());
        assert!(Type::Array(Box::new(Type::int()), None).is_pointer_like());
        assert!(Type::int().is_arithmetic());
        assert!(Type::Enum("E".into()).is_arithmetic());
        assert_eq!(Type::int().ptr_to().dereferenced(), Some(&Type::int()));
        assert_eq!(Type::int().dereferenced(), None);
    }

    #[test]
    fn display() {
        let mut t = TypeTable::new();
        let s = t.record_by_tag("S", false, Loc::BUILTIN);
        assert_eq!(t.display(&Type::Record(s)), "struct S");
        assert_eq!(t.display(&Type::int().ptr_to()), "int *");
        assert_eq!(
            t.display(&Type::Int {
                kind: IntKind::Char,
                signed: false
            }),
            "unsigned char"
        );
        assert_eq!(format!("{}", Type::int()), "int");
    }
}
