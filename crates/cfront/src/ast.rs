//! Abstract syntax tree for C translation units.

use crate::span::Loc;
use crate::types::{FuncType, Type, TypeTable};
use std::collections::HashSet;

/// One parsed translation unit (a `.c` file after preprocessing).
#[derive(Debug)]
pub struct TranslationUnit {
    /// Path of the main source file.
    pub file: String,
    /// Top-level declarations and function definitions, in order.
    pub items: Vec<ExternalDecl>,
    /// Record (struct/union) definitions referenced by the AST.
    pub types: TypeTable,
    /// Names of enum constants seen in this unit; the lowering treats them
    /// as integer literals rather than objects.
    pub enum_constants: HashSet<String>,
}

/// A top-level item.
#[derive(Debug)]
pub enum ExternalDecl {
    Function(FunctionDef),
    Declaration(Declaration),
}

/// Storage class of a declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Storage {
    #[default]
    None,
    Extern,
    Static,
    Auto,
    Register,
}

/// A function definition (declaration with a body).
#[derive(Debug)]
pub struct FunctionDef {
    pub name: String,
    pub ty: FuncType,
    pub storage: Storage,
    pub body: Block,
    pub loc: Loc,
}

/// A declaration: specifiers plus a list of init-declarators.
#[derive(Debug)]
pub struct Declaration {
    pub storage: Storage,
    pub is_typedef: bool,
    pub items: Vec<InitDeclarator>,
    pub loc: Loc,
}

/// One declarator with its optional initializer.
#[derive(Debug)]
pub struct InitDeclarator {
    pub name: String,
    pub ty: Type,
    pub init: Option<Initializer>,
    pub loc: Loc,
}

/// An initializer.
#[derive(Debug)]
pub enum Initializer {
    Expr(Expr),
    /// `{ ... }` list; each element may carry a designator.
    List(Vec<(Designator, Initializer)>),
}

/// A C99 designator on a braced-initializer element.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Designator {
    /// Positional (no designator).
    #[default]
    None,
    /// `.field =`
    Field(String),
    /// `[index] =` (constant index, when it folded).
    Index(Option<u64>),
}

/// A brace-enclosed block.
#[derive(Debug)]
pub struct Block {
    pub items: Vec<BlockItem>,
    pub loc: Loc,
}

/// An element of a block.
#[derive(Debug)]
pub enum BlockItem {
    Decl(Declaration),
    Stmt(Stmt),
}

/// A statement.
#[derive(Debug)]
pub enum Stmt {
    /// Expression statement; `None` for the empty statement `;`.
    Expr(Option<Expr>),
    Block(Block),
    If {
        cond: Expr,
        then_branch: Box<Stmt>,
        else_branch: Option<Box<Stmt>>,
    },
    While {
        cond: Expr,
        body: Box<Stmt>,
    },
    DoWhile {
        body: Box<Stmt>,
        cond: Expr,
    },
    For {
        init: Option<ForInit>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Box<Stmt>,
    },
    Switch {
        cond: Expr,
        body: Box<Stmt>,
    },
    Case {
        value: Expr,
        body: Box<Stmt>,
    },
    Default {
        body: Box<Stmt>,
    },
    Return {
        value: Option<Expr>,
        loc: Loc,
    },
    Break,
    Continue,
    Goto(String),
    Label {
        name: String,
        body: Box<Stmt>,
    },
}

/// The first clause of a `for`.
#[derive(Debug)]
pub enum ForInit {
    Decl(Declaration),
    Expr(Expr),
}

/// An expression with its source location.
#[derive(Debug)]
pub struct Expr {
    pub kind: ExprKind,
    pub loc: Loc,
}

impl Expr {
    /// Creates an expression node.
    pub fn new(kind: ExprKind, loc: Loc) -> Self {
        Expr { kind, loc }
    }
}

/// Expression shapes.
#[derive(Debug)]
pub enum ExprKind {
    Ident(String),
    IntLit(u64),
    FloatLit(f64),
    CharLit(i64),
    StrLit(String),
    Unary(UnaryOp, Box<Expr>),
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// `lhs op= rhs`; `op` is `None` for plain `=`.
    Assign(Option<BinaryOp>, Box<Expr>, Box<Expr>),
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    Cast(Type, Box<Expr>),
    Call(Box<Expr>, Vec<Expr>),
    Index(Box<Expr>, Box<Expr>),
    Member {
        base: Box<Expr>,
        field: String,
        arrow: bool,
    },
    SizeofExpr(Box<Expr>),
    SizeofType(Type),
    Comma(Box<Expr>, Box<Expr>),
    PostIncDec(IncDec, Box<Expr>),
    /// `(T){ ... }` compound literal.
    CompoundLit(Type, Vec<(Designator, Initializer)>),
}

/// Prefix unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Deref,
    AddrOf,
    Neg,
    Pos,
    LogicalNot,
    BitNot,
    PreInc,
    PreDec,
}

/// `++` / `--` flavor for postfix forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncDec {
    Inc,
    Dec,
}

/// Binary operators (assignment and comma are separate nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    BitAnd,
    BitXor,
    BitOr,
    LogAnd,
    LogOr,
}

impl BinaryOp {
    /// The C spelling of the operator.
    pub fn as_str(self) -> &'static str {
        use BinaryOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Rem => "%",
            Shl => "<<",
            Shr => ">>",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            Eq => "==",
            Ne => "!=",
            BitAnd => "&",
            BitXor => "^",
            BitOr => "|",
            LogAnd => "&&",
            LogOr => "||",
        }
    }
}

impl std::fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_op_spelling() {
        assert_eq!(BinaryOp::Shl.as_str(), "<<");
        assert_eq!(format!("{}", BinaryOp::LogAnd), "&&");
    }

    #[test]
    fn expr_construction() {
        let e = Expr::new(ExprKind::IntLit(3), Loc::BUILTIN);
        assert!(matches!(e.kind, ExprKind::IntLit(3)));
        assert_eq!(e.loc, Loc::BUILTIN);
    }

    #[test]
    fn designator_default() {
        assert_eq!(Designator::default(), Designator::None);
    }
}
