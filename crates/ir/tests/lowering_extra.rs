//! Additional lowering coverage: constructs beyond the core test suite.

use cla_ir::{compile_source, AssignKind, CompiledUnit, LowerOptions, ObjKind};

fn compile(src: &str) -> CompiledUnit {
    compile_source(src, "t.c", &LowerOptions::default()).unwrap()
}

fn assigns(u: &CompiledUnit) -> Vec<String> {
    u.assigns
        .iter()
        .map(|a| {
            a.display(&u.objects, &u.files)
                .split(" @ ")
                .next()
                .unwrap()
                .to_string()
        })
        .collect()
}

fn has(u: &CompiledUnit, line: &str) -> bool {
    assigns(u).iter().any(|l| l == line)
}

#[test]
fn compound_literal() {
    let u = compile(
        "struct P { int *f; };
         int x;
         struct P g;
         void fn(void) { g = (struct P){ &x }; }",
    );
    // The literal's initializer hits the field object.
    assert!(has(&u, "P.f = &x [init]"), "{:?}", assigns(&u));
}

#[test]
fn nested_calls_chain_rets() {
    let u = compile(
        "int *inner(void);
         int *outer(int *v);
         int *r;
         void f(void) { r = outer(inner()); }",
    );
    let lines = assigns(&u);
    // The innermost op (the call-return) is the one retained for display.
    assert!(
        lines.contains(&"outer$1 = inner$ret [ret]".to_string()),
        "{lines:?}"
    );
    assert!(
        lines.contains(&"r = outer$ret [ret]".to_string()),
        "{lines:?}"
    );
}

#[test]
fn function_pointer_stored_in_struct_field() {
    let u = compile(
        "int cb(int);
         struct Ops { int (*handler)(int); } ops;
         void f(void) { ops.handler = cb; }",
    );
    assert!(has(&u, "Ops.handler = &cb"), "{:?}", assigns(&u));
}

#[test]
fn call_through_struct_field() {
    let u = compile(
        "int t;
         int *get(void) { return &t; }
         struct Ops { int *(*getter)(void); } ops;
         int *r;
         void f(void) { ops.getter = get; r = ops.getter(); }",
    );
    // The field object is marked as an indirect-call site.
    let fld = u.find_object("Ops.getter").unwrap();
    assert!(
        u.funsig(fld).map(|s| s.is_indirect).unwrap_or(false)
            || u.funsigs.iter().any(|s| s.is_indirect),
        "an indirect signature must exist"
    );
}

#[test]
fn array_of_structs_initializer() {
    let u = compile(
        "int a, b;
         struct E { int *p; };
         struct E table[2] = { { &a }, { &b } };",
    );
    let lines = assigns(&u);
    assert!(lines.contains(&"E.p = &a [init]".to_string()), "{lines:?}");
    assert!(lines.contains(&"E.p = &b [init]".to_string()), "{lines:?}");
}

#[test]
fn address_of_member() {
    let u = compile(
        "struct S { int v; } s;
         int *p;
         void f(void) { p = &s.v; }",
    );
    // Field-based: &s.v is the address of the field object.
    assert!(has(&u, "p = &S.v"), "{:?}", assigns(&u));
}

#[test]
fn varargs_positions() {
    let u = compile(
        "int f(int first, ...);
         int a, b, c;
         void g(void) { f(a, b, c); }",
    );
    let fobj = u.find_object("f").unwrap();
    let sig = u.funsig(fobj).unwrap();
    assert_eq!(sig.params.len(), 3);
    assert!(has(&u, "f$3 = c [arg]"), "{:?}", assigns(&u));
}

#[test]
fn string_into_char_array_ignored() {
    let u = compile("char buf[16] = \"hello\";");
    assert!(u.assigns.is_empty(), "{:?}", assigns(&u));
}

#[test]
fn heap_through_field() {
    let u = compile(
        "void *malloc(unsigned long);
         struct Node { struct Node *next; } *head;
         void f(void) { head->next = malloc(8); }",
    );
    let lines = assigns(&u);
    assert!(
        lines.iter().any(|l| l.starts_with("Node.next = &heap@")),
        "{lines:?}"
    );
}

#[test]
fn postincrement_on_member_is_silent() {
    let u = compile("struct C { int n; } c; void f(void) { c.n++; }");
    assert!(u.assigns.is_empty(), "{:?}", assigns(&u));
}

#[test]
fn local_static_objects() {
    let u = compile(
        "int *get(void) {
           static int cell;
           return &cell;
         }",
    );
    assert!(has(&u, "get$ret = &cell"), "{:?}", assigns(&u));
    let cell = u.find_object("cell").unwrap();
    assert!(!u.object(cell).is_global());
    assert_eq!(u.object(cell).kind, ObjKind::Var);
}

#[test]
fn extern_declaration_inside_function() {
    let u = compile(
        "int *p;
         void f(void) { extern int shared; p = &shared; }",
    );
    let shared = u.find_object("shared").unwrap();
    assert!(u.object(shared).is_global());
    assert!(has(&u, "p = &shared"), "{:?}", assigns(&u));
}

#[test]
fn return_of_conditional() {
    let u = compile(
        "int x, y;
         int *pick(int c) { return c ? &x : &y; }",
    );
    let lines = assigns(&u);
    assert!(
        lines.contains(&"pick$ret = &x [?:]".to_string()),
        "{lines:?}"
    );
    assert!(
        lines.contains(&"pick$ret = &y [?:]".to_string()),
        "{lines:?}"
    );
}

#[test]
fn chained_assignment_value() {
    let u = compile("int x; int *a, *b; void f(void) { a = b = &x; }");
    let lines = assigns(&u);
    assert!(lines.contains(&"b = &x".to_string()), "{lines:?}");
    // a receives b's value (the assignment expression's result).
    assert!(lines.contains(&"a = b".to_string()), "{lines:?}");
}

#[test]
fn temp_count_stays_modest() {
    // The paper: "considerable implementation effort is required to avoid
    // introducing too many temporary variables". A straightforward pointer
    // program should need almost none.
    let u = compile(
        "int x, y;
         int *p, *q, **pp;
         void f(void) {
           p = &x;
           q = p;
           pp = &q;
           *pp = &y;
           q = *pp;
         }",
    );
    let temps = u.objects.iter().filter(|o| o.kind == ObjKind::Temp).count();
    assert!(temps <= 1, "too many temps: {temps}");
}

#[test]
fn field_independent_union_member() {
    let u = compile_source(
        "union U { int *a; int *b; } u1;
         int x; int *out;
         void f(void) { u1.a = &x; out = u1.b; }",
        "t.c",
        &LowerOptions::default().field_independent(),
    )
    .unwrap();
    // Field-independent conflates the members: out sees x.
    let lines = assigns(&u);
    assert!(lines.contains(&"u1 = &x".to_string()), "{lines:?}");
    assert!(lines.contains(&"out = u1".to_string()), "{lines:?}");
}

#[test]
fn five_kinds_census_matches_dump() {
    let u = compile(
        "int x, y, *p, *q, **pp;
         void f(void) { x = y; p = &x; *pp = p; q = *pp; *pp = *pp; }",
    );
    let c = u.assign_counts();
    let dump = u.dump_assigns();
    assert_eq!(c.total(), dump.lines().count());
    assert_eq!(
        u.assigns
            .iter()
            .filter(|a| a.kind == AssignKind::StoreLoad)
            .count(),
        c.store_load
    );
}
