//! Operation strength classification (paper Table 1).
//!
//! The dependence analysis weighs a dependence chain by the operations the
//! value passed through: a direct copy or `+` preserves shape and size
//! (*strong*); `*` or `>>` is likely to change it (*weak*); `!` destroys it
//! entirely (*none* — no dependence edge is generated at all).

use cla_cfront::ast::{BinaryOp, UnaryOp};
use std::fmt;

/// How much of a value's "shape and size" an operation preserves for one of
/// its operands. Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpClass {
    /// No dependence: the operand cannot influence the result's range in a
    /// way that matters for type migration (`!`, `&&`, comparisons).
    None,
    /// The operand influences the result but the operation likely changes
    /// its range (`*`, `%`, shifts).
    Weak,
    /// The result has essentially the operand's shape and size
    /// (`+`, `-`, `|`, `&`, `^`, unary `+`/`-`, plain copies).
    Strong,
}

/// Strength recorded on an emitted primitive assignment. Assignments whose
/// operand class is [`OpClass::None`] are never emitted, so only two levels
/// remain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Strength {
    /// Range-changing operation on the path.
    Weak,
    /// Shape/size-preserving.
    #[default]
    Strong,
}

impl Strength {
    /// Combines strengths along a path: a single weak link makes the
    /// composite weak.
    pub fn and(self, other: Strength) -> Strength {
        self.min(other)
    }

    /// Conversion from an operand class; `None` has no strength.
    pub fn from_class(c: OpClass) -> Option<Strength> {
        match c {
            OpClass::None => None,
            OpClass::Weak => Some(Strength::Weak),
            OpClass::Strong => Some(Strength::Strong),
        }
    }
}

impl fmt::Display for Strength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strength::Strong => f.write_str("strong"),
            Strength::Weak => f.write_str("weak"),
        }
    }
}

/// Classifies a binary operator: `(class of operand 1, class of operand 2)`.
///
/// Paper Table 1, with two documented extensions: `/` is classified like `%`
/// (weak dividend, no dependence on the divisor), and comparisons are
/// `(None, None)` like the logical operators since their result is boolean.
pub fn classify_binary(op: BinaryOp) -> (OpClass, OpClass) {
    use BinaryOp::*;
    use OpClass::*;
    match op {
        Add | Sub | BitOr | BitAnd | BitXor => (Strong, Strong),
        Mul => (Weak, Weak),
        Div | Rem | Shl | Shr => (Weak, None),
        LogAnd | LogOr => (None, None),
        Lt | Gt | Le | Ge | Eq | Ne => (None, None),
    }
}

/// Classifies a prefix unary operator's single operand.
///
/// `~` is classified strong (bit-preserving, like `^`); the paper's table
/// lists only `+`, `-` and `!`.
pub fn classify_unary(op: UnaryOp) -> OpClass {
    use OpClass::*;
    match op {
        UnaryOp::Neg | UnaryOp::Pos => Strong,
        UnaryOp::BitNot => Strong,
        UnaryOp::LogicalNot => None,
        // ++/-- preserve shape (x+1); deref/addr-of are structural and never
        // reach this classifier.
        UnaryOp::PreInc | UnaryOp::PreDec => Strong,
        UnaryOp::Deref | UnaryOp::AddrOf => Strong,
    }
}

/// The operation a value passed through on its way into an assignment;
/// retained in the object file for dependence-chain rendering (paper §4:
/// "each would retain information about the `+` operation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum OpKind {
    /// Plain copy, no operation.
    Direct = 0,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    BitAnd,
    BitOr,
    BitXor,
    Neg,
    BitNot,
    Cast,
    /// Value selected by `?:`.
    Cond,
    /// Value passed as a call argument.
    Arg,
    /// Value returned from a call.
    RetVal,
    /// Value written by an initializer.
    Init,
}

impl OpKind {
    /// The display spelling used in dependence chains.
    pub fn as_str(self) -> &'static str {
        use OpKind::*;
        match self {
            Direct => "=",
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Rem => "%",
            Shl => "<<",
            Shr => ">>",
            BitAnd => "&",
            BitOr => "|",
            BitXor => "^",
            Neg => "neg",
            BitNot => "~",
            Cast => "cast",
            Cond => "?:",
            Arg => "arg",
            RetVal => "ret",
            Init => "init",
        }
    }

    /// Inverse of `as u8`, for the object-file reader.
    pub fn from_u8(v: u8) -> Option<OpKind> {
        use OpKind::*;
        Some(match v {
            0 => Direct,
            1 => Add,
            2 => Sub,
            3 => Mul,
            4 => Div,
            5 => Rem,
            6 => Shl,
            7 => Shr,
            8 => BitAnd,
            9 => BitOr,
            10 => BitXor,
            11 => Neg,
            12 => BitNot,
            13 => Cast,
            14 => Cond,
            15 => Arg,
            16 => RetVal,
            17 => Init,
            _ => return None,
        })
    }

    /// The op recorded for a binary operator.
    pub fn from_binary(op: BinaryOp) -> OpKind {
        use BinaryOp::*;
        match op {
            Add => OpKind::Add,
            Sub => OpKind::Sub,
            Mul => OpKind::Mul,
            Div => OpKind::Div,
            Rem => OpKind::Rem,
            Shl => OpKind::Shl,
            Shr => OpKind::Shr,
            BitAnd => OpKind::BitAnd,
            BitOr => OpKind::BitOr,
            BitXor => OpKind::BitXor,
            // These never produce assignments (class None); Direct is a safe
            // placeholder.
            LogAnd | LogOr | Lt | Gt | Le | Ge | Eq | Ne => OpKind::Direct,
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows() {
        use BinaryOp::*;
        use OpClass::*;
        // +, -, |, &, ^ : Strong / Strong
        for op in [Add, Sub, BitOr, BitAnd, BitXor] {
            assert_eq!(classify_binary(op), (Strong, Strong), "{op:?}");
        }
        // * : Weak / Weak
        assert_eq!(classify_binary(Mul), (Weak, Weak));
        // %, >>, << : Weak / None
        for op in [Rem, Shr, Shl] {
            assert_eq!(classify_binary(op), (Weak, None), "{op:?}");
        }
        // &&, || : None / None
        for op in [LogAnd, LogOr] {
            assert_eq!(classify_binary(op), (None, None), "{op:?}");
        }
        // unary +, - : Strong ; ! : None
        assert_eq!(classify_unary(UnaryOp::Pos), Strong);
        assert_eq!(classify_unary(UnaryOp::Neg), Strong);
        assert_eq!(classify_unary(UnaryOp::LogicalNot), None);
    }

    #[test]
    fn strength_combination() {
        assert_eq!(Strength::Strong.and(Strength::Strong), Strength::Strong);
        assert_eq!(Strength::Strong.and(Strength::Weak), Strength::Weak);
        assert_eq!(Strength::Weak.and(Strength::Strong), Strength::Weak);
        assert!(Strength::Strong > Strength::Weak);
    }

    #[test]
    fn strength_from_class() {
        assert_eq!(
            Strength::from_class(OpClass::Strong),
            Some(Strength::Strong)
        );
        assert_eq!(Strength::from_class(OpClass::Weak), Some(Strength::Weak));
        assert_eq!(Strength::from_class(OpClass::None), None);
    }

    #[test]
    fn opkind_roundtrip() {
        for v in 0..=17u8 {
            let k = OpKind::from_u8(v).unwrap();
            assert_eq!(k as u8, v);
        }
        assert_eq!(OpKind::from_u8(99), None);
        assert_eq!(OpKind::Add.as_str(), "+");
        assert_eq!(format!("{}", OpKind::Shr), ">>");
    }
}
