//! # cla-ir — the primitive-assignment intermediate representation
//!
//! CLA's *compile* phase: lowers C translation units to the five primitive
//! assignment forms of the paper (`x = y`, `x = &y`, `*x = y`, `x = *y`,
//! `*x = *y`) plus function signature records. The output, a
//! [`CompiledUnit`], is what the object-file database in `cla-cladb`
//! serializes and the solvers in `cla-core` consume.
//!
//! ```
//! use cla_cfront::parse_source;
//! use cla_ir::{lower_unit, LowerOptions};
//!
//! # fn main() -> Result<(), cla_cfront::CError> {
//! let tu = parse_source("int x, *p; void f(void) { p = &x; }", "a.c")?;
//! let sm = cla_cfront::SourceMap::new();
//! let unit = lower_unit(&tu, &sm, &LowerOptions::default());
//! assert_eq!(unit.assign_counts().addr, 1);
//! # Ok(())
//! # }
//! ```

mod assign;
mod loc;
mod lower;
mod object;
pub mod strength;

pub use assign::{AssignCounts, AssignKind, CompiledUnit, FunSig, PrimAssign};
pub use loc::{FileIdx, FileTable, SrcLoc};
pub use lower::{lower_unit, FieldModel, LowerOptions};
pub use object::{ObjId, ObjKind, ObjectInfo};
pub use strength::{OpKind, Strength};

use cla_cfront::{parse_file, FileProvider, PpOptions, Result};

/// Statistics from compiling one source file.
#[derive(Debug, Default, Clone, Copy)]
pub struct CompileStats {
    /// Bytes of source consumed (main file + headers).
    pub source_bytes: u64,
    /// Approximate preprocessed line count.
    pub preprocessed_lines: usize,
    /// Preprocessed token count.
    pub tokens: usize,
}

/// Convenience pipeline: preprocess + parse + lower one file.
///
/// # Errors
///
/// Propagates frontend errors.
pub fn compile_file(
    fs: &dyn FileProvider,
    path: &str,
    pp: &PpOptions,
    lower: &LowerOptions,
) -> Result<(CompiledUnit, CompileStats)> {
    let mut sp = cla_obs::global().span("front", "compile_file");
    sp.set("file", path);
    let parsed = parse_file(fs, path, pp)?;
    let gen_sp = cla_obs::global().span("front", "assign_gen");
    let unit = lower_unit(&parsed.tu, &parsed.sources, lower);
    drop(gen_sp);
    sp.set("objects", unit.objects.len());
    sp.set("assigns", unit.assigns.len());
    let stats = CompileStats {
        source_bytes: parsed.pp_stats.bytes_in,
        preprocessed_lines: parsed.pp_stats.lines_out,
        tokens: parsed.pp_stats.tokens_out,
    };
    Ok((unit, stats))
}

/// Compiles a single in-memory source string (for tests and examples).
///
/// # Errors
///
/// Propagates frontend errors.
pub fn compile_source(src: &str, name: &str, lower: &LowerOptions) -> Result<CompiledUnit> {
    let mut fs = cla_cfront::MemoryFs::new();
    fs.add(name, src);
    Ok(compile_file(&fs, name, &PpOptions::default(), lower)?.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> CompiledUnit {
        compile_source(src, "t.c", &LowerOptions::default()).unwrap()
    }

    fn compile_fi(src: &str) -> CompiledUnit {
        compile_source(src, "t.c", &LowerOptions::default().field_independent()).unwrap()
    }

    /// The textual assignments, stripped of locations, one per line.
    fn assigns(u: &CompiledUnit) -> Vec<String> {
        u.assigns
            .iter()
            .map(|a| {
                let line = a.display(&u.objects, &u.files);
                line.split(" @ ").next().unwrap().to_string()
            })
            .collect()
    }

    fn has(u: &CompiledUnit, line: &str) -> bool {
        assigns(u).iter().any(|l| l == line)
    }

    #[test]
    fn figure3_example() {
        // Paper Figure 3.
        let u = compile("int x, *y; int **z; void f(void) { z = &y; *z = &x; }");
        assert!(has(&u, "z = &y"), "{:?}", assigns(&u));
        // *z = &x needs a temp: t = &x; *z = t.
        assert!(has(&u, "tmp$1 = &x"), "{:?}", assigns(&u));
        assert!(has(&u, "*z = tmp$1"), "{:?}", assigns(&u));
        let c = u.assign_counts();
        assert_eq!(c.addr, 2);
        assert_eq!(c.store, 1);
    }

    #[test]
    fn five_primitive_forms() {
        let u = compile(
            "int x, y, *p, *q, **pp;
             void f(void) { x = y; p = &x; *pp = p; q = *pp; *pp = *pp; }",
        );
        let c = u.assign_counts();
        assert!(has(&u, "x = y"));
        assert!(has(&u, "p = &x"));
        assert!(has(&u, "*pp = p"));
        assert!(has(&u, "q = *pp"));
        assert!(has(&u, "*pp = *pp"));
        assert_eq!(c.copy, 1);
        assert_eq!(c.addr, 1);
        assert_eq!(c.store, 1);
        assert_eq!(c.load, 1);
        assert_eq!(c.store_load, 1);
    }

    #[test]
    fn arithmetic_splits_into_two_assignments() {
        // x = y + z gives x = y and x = z, both strong, both tagged `+`.
        let u = compile("int x, y, z; void f(void) { x = y + z; }");
        assert!(has(&u, "x = y [+]"), "{:?}", assigns(&u));
        assert!(has(&u, "x = z [+]"));
        for a in &u.assigns {
            assert_eq!(a.strength, Strength::Strong);
        }
    }

    #[test]
    fn weak_and_none_operands() {
        // x = y >> k : y is weak, k generates nothing.
        let u = compile("int x, y, k; void f(void) { x = y >> k; }");
        let lines = assigns(&u);
        assert_eq!(lines, vec!["x = y [>>]"]);
        assert_eq!(u.assigns[0].strength, Strength::Weak);

        // z1 = !y : ignored entirely (paper Section 2).
        let u = compile("int z1, y; void f(void) { z1 = !y; }");
        assert!(assigns(&u).is_empty());

        // Comparisons and logicals generate nothing.
        let u = compile("int a, b, c; void f(void) { a = b < c; a = b && c; }");
        assert!(assigns(&u).is_empty());
    }

    #[test]
    fn multiplication_is_weak_both_sides() {
        let u = compile("int x, y, z; void f(void) { x = y * z; }");
        assert_eq!(assigns(&u).len(), 2);
        for a in &u.assigns {
            assert_eq!(a.strength, Strength::Weak);
            assert_eq!(a.op, OpKind::Mul);
        }
    }

    #[test]
    fn compound_assignment() {
        let u = compile("int x, y; void f(void) { x += y; x <<= y; }");
        // x += y : x = y [+]; x <<= y : shift amount is class None -> nothing.
        assert_eq!(assigns(&u), vec!["x = y [+]"]);
    }

    #[test]
    fn nested_deref_introduces_temp() {
        let u = compile("int x, **pp; void f(void) { x = **pp; }");
        // t = *pp; x = *t.
        assert!(has(&u, "tmp$1 = *pp"), "{:?}", assigns(&u));
        assert!(has(&u, "x = *tmp$1"));
    }

    #[test]
    fn address_of_deref_cancels() {
        let u = compile("int *p, *q; void f(void) { p = &*q; }");
        assert_eq!(assigns(&u), vec!["p = q"]);
    }

    #[test]
    fn field_based_members() {
        // Paper Section 3's field-based example.
        let u = compile(
            "struct S { int *x; int *y; } A, B;
             int z;
             void main_(void) {
               int *p, *q, *r, *s;
               A.x = &z;
               p = A.x;
               q = A.y;
               r = B.x;
               s = B.y;
             }",
        );
        let lines = assigns(&u);
        assert!(lines.contains(&"S.x = &z".to_string()), "{lines:?}");
        assert!(lines.contains(&"p = S.x".to_string()));
        assert!(lines.contains(&"q = S.y".to_string()));
        assert!(lines.contains(&"r = S.x".to_string()));
        assert!(lines.contains(&"s = S.y".to_string()));
    }

    #[test]
    fn field_independent_members() {
        let u = compile_fi(
            "struct S { int *x; int *y; } A, B;
             int z;
             void main_(void) {
               int *p, *q;
               A.x = &z;
               p = A.x;
               q = A.y;
             }",
        );
        let lines = assigns(&u);
        assert!(lines.contains(&"A = &z".to_string()), "{lines:?}");
        assert!(lines.contains(&"p = A".to_string()));
        assert!(lines.contains(&"q = A".to_string()));
    }

    #[test]
    fn arrow_access_field_based() {
        let u = compile(
            "struct S { int *x; } *ps; int z;
             void f(void) { ps->x = &z; }",
        );
        assert!(has(&u, "S.x = &z"), "{:?}", assigns(&u));
    }

    #[test]
    fn arrow_access_field_independent() {
        let u = compile_fi(
            "struct S { int *x; } *ps; int z;
             void f(void) { ps->x = &z; }",
        );
        // *ps = &z via temp.
        assert!(has(&u, "tmp$1 = &z"), "{:?}", assigns(&u));
        assert!(has(&u, "*ps = tmp$1"));
    }

    #[test]
    fn arrays_are_index_independent() {
        let u = compile("int a[10], x, i; void f(void) { a[i] = x; x = a[2]; }");
        assert!(has(&u, "a = x"), "{:?}", assigns(&u));
        assert!(has(&u, "x = a"));
        // Pointer indexing is a deref.
        let u = compile("int *p, x, i; void f(void) { x = p[i]; }");
        assert!(has(&u, "x = *p"), "{:?}", assigns(&u));
    }

    #[test]
    fn array_decay() {
        let u = compile("int a[10], *p; void f(void) { p = a; }");
        assert!(has(&u, "p = &a"), "{:?}", assigns(&u));
        let u = compile("int a[10], *p; void f(void) { p = &a[3]; }");
        assert!(has(&u, "p = &a"), "{:?}", assigns(&u));
    }

    #[test]
    fn functions_get_standardized_params() {
        // Paper Section 4: int f(x, y) { ... return z; } gives
        // x = f1, y = f2, fret = z.
        let u = compile("int f(int x, int y) { int z; z = x; return z; }");
        let lines = assigns(&u);
        assert!(lines.contains(&"x = f$1".to_string()), "{lines:?}");
        assert!(lines.contains(&"y = f$2".to_string()));
        assert!(lines.contains(&"z = x".to_string()));
        assert!(lines.contains(&"f$ret = z".to_string()));
        let f = u.find_object("f").unwrap();
        let sig = u.funsig(f).unwrap();
        assert_eq!(sig.params.len(), 2);
        assert!(!sig.is_indirect);
    }

    #[test]
    fn direct_calls() {
        // w = f(e1, e2) gives f1 = e1, f2 = e2, w = fret.
        let u = compile(
            "int f(int a, int b);
             int w, e1, e2;
             void g(void) { w = f(e1, e2); }",
        );
        let lines = assigns(&u);
        assert!(lines.contains(&"f$1 = e1 [arg]".to_string()), "{lines:?}");
        assert!(lines.contains(&"f$2 = e2 [arg]".to_string()));
        assert!(lines.contains(&"w = f$ret [ret]".to_string()));
    }

    #[test]
    fn function_address_flows() {
        let u = compile("int f(void); int (*fp)(void); void g(void) { fp = f; fp = &f; }");
        let lines = assigns(&u);
        assert_eq!(
            lines.iter().filter(|l| *l == "fp = &f").count(),
            2,
            "{lines:?}"
        );
    }

    #[test]
    fn indirect_call_marks_function_pointer() {
        let u = compile(
            "int (*fp)(int); int x, w;
             void g(void) { w = (*fp)(x); }",
        );
        let fp = u.find_object("fp").unwrap();
        let sig = u.funsig(fp).expect("fp should have a signature");
        assert!(sig.is_indirect);
        assert_eq!(sig.params.len(), 1);
        let lines = assigns(&u);
        assert!(lines.contains(&"fp$1 = x [arg]".to_string()), "{lines:?}");
        assert!(lines.contains(&"w = fp$ret [ret]".to_string()));
    }

    #[test]
    fn indirect_call_without_star() {
        let u = compile("int (*fp)(int); int x; void g(void) { fp(x); }");
        let fp = u.find_object("fp").unwrap();
        assert!(u.funsig(fp).unwrap().is_indirect);
    }

    #[test]
    fn malloc_is_a_fresh_site() {
        let u = compile(
            "void *malloc(unsigned long);
             int *p, *q;
             void f(void) { p = malloc(4); q = malloc(8); }",
        );
        let lines = assigns(&u);
        assert!(
            lines.iter().any(|l| l.starts_with("p = &heap@t.c:")),
            "{lines:?}"
        );
        assert!(lines.iter().any(|l| l.starts_with("q = &heap@t.c:")));
        // Two distinct heap objects.
        let heaps: Vec<_> = u
            .objects
            .iter()
            .filter(|o| o.kind == ObjKind::Heap)
            .collect();
        assert_eq!(heaps.len(), 2);
    }

    #[test]
    fn strings_ignored_by_default() {
        let u = compile("char *s; void f(void) { s = \"hello\"; }");
        assert!(assigns(&u).is_empty());
        let opts = LowerOptions {
            model_strings: true,
            ..LowerOptions::default()
        };
        let u = compile_source("char *s; void f(void) { s = \"hello\"; }", "t.c", &opts).unwrap();
        assert_eq!(u.assigns.len(), 1);
        assert_eq!(u.assigns[0].kind, AssignKind::Addr);
    }

    #[test]
    fn initializers() {
        let u = compile("int x; int *p = &x;");
        assert!(has(&u, "p = &x [init]"), "{:?}", assigns(&u));

        // Function pointer tables.
        let u = compile(
            "int f(void), g(void);
             int (*tbl[2])(void) = { f, g };",
        );
        let lines = assigns(&u);
        assert!(lines.contains(&"tbl = &f [init]".to_string()), "{lines:?}");
        assert!(lines.contains(&"tbl = &g [init]".to_string()));

        // Struct initializers hit field objects (field-based).
        let u = compile("int a, b; struct P { int *x; int *y; } p = { &a, &b };");
        let lines = assigns(&u);
        assert!(lines.contains(&"P.x = &a [init]".to_string()), "{lines:?}");
        assert!(lines.contains(&"P.y = &b [init]".to_string()));

        // Designated initializers.
        let u = compile("int a; struct P { int *x; int *y; } p = { .y = &a };");
        assert!(has(&u, "P.y = &a [init]"), "{:?}", assigns(&u));
    }

    #[test]
    fn locals_shadow_globals() {
        let u = compile("int x, y; void f(void) { int x; x = y; }");
        // Two objects named x.
        assert_eq!(u.find_objects("x").count(), 2);
        // The assignment's dst is the local one (which has in_func set).
        let a = &u.assigns[0];
        assert!(u.object(a.dst).in_func.is_some());
    }

    #[test]
    fn static_objects_are_file_local() {
        let u = compile("static int s; int g;");
        let s = u.find_object("s").unwrap();
        let g = u.find_object("g").unwrap();
        assert!(!u.object(s).is_global());
        assert!(u.object(g).is_global());
    }

    #[test]
    fn static_function_params_not_linked() {
        let u = compile("static int f(int a) { return a; }");
        let p = u.find_object("f$1").unwrap();
        assert!(!u.object(p).is_global());
    }

    #[test]
    fn return_flows_to_ret_object() {
        let u = compile("int y; int f(void) { return y + 1; }");
        assert!(has(&u, "f$ret = y [+]"), "{:?}", assigns(&u));
    }

    #[test]
    fn conditional_joins_both_branches() {
        let u = compile("int x, a, b, c; void f(void) { x = c ? a : b; }");
        let lines = assigns(&u);
        assert!(lines.contains(&"x = a [?:]".to_string()), "{lines:?}");
        assert!(lines.contains(&"x = b [?:]".to_string()));
    }

    #[test]
    fn casts_recorded() {
        let u = compile("int x; long y; void f(void) { y = (long)x; }");
        assert_eq!(assigns(&u), vec!["y = x [cast]"]);
    }

    #[test]
    fn incdec_no_noise() {
        let u = compile("int i; void f(void) { i++; ++i; i--; }");
        assert!(assigns(&u).is_empty());
    }

    #[test]
    fn paper_figure1_dependence_assignments() {
        let u = compile(
            "short target;
             struct S { short x; short y; };
             short u, *v, w;
             struct S s, t;
             void f(void) {
               v = &w;
               u = target;
               *v = u;
               s.x = w;
             }",
        );
        let lines = assigns(&u);
        assert!(lines.contains(&"v = &w".to_string()), "{lines:?}");
        assert!(lines.contains(&"u = target".to_string()));
        assert!(lines.contains(&"*v = u".to_string()));
        assert!(lines.contains(&"S.x = w".to_string()));
    }

    #[test]
    fn variadic_call_grows_params() {
        let u = compile(
            "int printf(const char *fmt, ...);
             int a, b;
             void f(void) { printf(\"%d%d\", a, b); }",
        );
        let pf = u.find_object("printf").unwrap();
        let sig = u.funsig(pf).unwrap();
        assert_eq!(sig.params.len(), 3);
    }

    #[test]
    fn struct_copy_is_noop_field_based() {
        let u = compile("struct S { int a; } x, y; void f(void) { x = y; }");
        // Field-based: both sides are the same abstract object set; the
        // emitted copy x = y relates the (ignored) base objects.
        // We accept either zero assignments or a single harmless base copy.
        assert!(u.assigns.len() <= 1);
    }

    #[test]
    fn program_counts() {
        let u = compile("int x, *p; struct S { int f; } s; int main(void) { p = &x; return 0; }");
        assert!(u.program_variable_count() >= 4);
        let c = u.assign_counts();
        assert_eq!(c.addr, 1);
    }

    #[test]
    fn enum_constants_are_literals() {
        let u = compile("enum E { A, B }; int x; void f(void) { x = A; }");
        assert!(assigns(&u).is_empty());
    }

    #[test]
    fn pointer_arithmetic_keeps_pointer_flow() {
        let u = compile("int *p, *q, i; void f(void) { q = p + i; }");
        let lines = assigns(&u);
        assert!(lines.contains(&"q = p [+]".to_string()), "{lines:?}");
        assert!(lines.contains(&"q = i [+]".to_string()));
    }

    #[test]
    fn deref_of_pointer_arithmetic() {
        let u = compile("int *p, i, x; void f(void) { x = *(p + i); }");
        // t = p [+]; t = i [+]; x = *t
        let lines = assigns(&u);
        assert!(lines.contains(&"tmp$1 = p [+]".to_string()), "{lines:?}");
        assert!(lines.contains(&"x = *tmp$1".to_string()));
    }
}
