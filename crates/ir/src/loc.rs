//! Compact source locations for the IR.
//!
//! The frontend's [`cla_cfront::Loc`] indexes a per-parse `SourceMap`; the IR
//! re-anchors locations against a per-unit file-name table so compiled units
//! are self-contained (they must survive being written to an object file and
//! linked with other units).

use std::fmt;

/// Index into a [`FileTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileIdx(pub u32);

/// A source location: file index + 1-based line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SrcLoc {
    pub file: FileIdx,
    pub line: u32,
}

impl SrcLoc {
    /// Location for synthesized objects with no source counterpart.
    pub const NONE: SrcLoc = SrcLoc {
        file: FileIdx(u32::MAX),
        line: 0,
    };

    /// Creates a location.
    pub fn new(file: FileIdx, line: u32) -> Self {
        SrcLoc { file, line }
    }

    /// True for the sentinel "no location".
    pub fn is_none(&self) -> bool {
        self.file.0 == u32::MAX
    }
}

impl Default for SrcLoc {
    fn default() -> Self {
        SrcLoc::NONE
    }
}

/// Per-unit table of file names.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FileTable {
    names: Vec<String>,
}

impl FileTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FileTable::default()
    }

    /// Interns a file name, returning its index.
    pub fn intern(&mut self, name: &str) -> FileIdx {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return FileIdx(i as u32);
        }
        self.names.push(name.to_string());
        FileIdx((self.names.len() - 1) as u32)
    }

    /// The name at an index, or `"<none>"` for the sentinel.
    pub fn name(&self, idx: FileIdx) -> &str {
        self.names
            .get(idx.0 as usize)
            .map_or("<none>", |s| s.as_str())
    }

    /// Renders `loc` as `file:line` (the paper's `<eg1.c:3>` form).
    pub fn display(&self, loc: SrcLoc) -> String {
        if loc.is_none() {
            "<none>".to_string()
        } else {
            format!("{}:{}", self.name(loc.file), loc.line)
        }
    }

    /// All names, in index order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Rebuilds a table from a name list (used by the object-file reader).
    pub fn from_names(names: Vec<String>) -> Self {
        FileTable { names }
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

impl fmt::Display for SrcLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            write!(f, "<none>")
        } else {
            write!(f, "file#{}:{}", self.file.0, self.line)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups() {
        let mut t = FileTable::new();
        let a = t.intern("a.c");
        let b = t.intern("b.c");
        let a2 = t.intern("a.c");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(a), "a.c");
    }

    #[test]
    fn display() {
        let mut t = FileTable::new();
        let a = t.intern("eg1.c");
        assert_eq!(t.display(SrcLoc::new(a, 3)), "eg1.c:3");
        assert_eq!(t.display(SrcLoc::NONE), "<none>");
        assert!(SrcLoc::NONE.is_none());
        assert!(!SrcLoc::new(a, 1).is_none());
    }

    #[test]
    fn roundtrip_names() {
        let mut t = FileTable::new();
        t.intern("x.c");
        t.intern("y.h");
        let t2 = FileTable::from_names(t.names().to_vec());
        assert_eq!(t, t2);
    }
}
