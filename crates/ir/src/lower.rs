//! Lowering: C AST → primitive assignments (the compile phase of CLA).
//!
//! Complex expressions are decomposed into the five primitive forms by
//! introducing temporaries (sparingly — the paper notes "considerable
//! implementation effort is required to avoid introducing too many temporary
//! variables"). Structs are handled *field-based* (one object per
//! `Tag.field`, bases ignored) or *field-independent* (one object per
//! variable, fields ignored); arrays are index-independent; functions use
//! standardized parameter/return variables `f$1`, `f$ret`; indirect calls
//! attach a signature to the function-pointer object for analysis-time
//! linking.

use crate::assign::{AssignKind, CompiledUnit, FunSig, PrimAssign};
use crate::loc::SrcLoc;
use crate::object::{ObjId, ObjKind, ObjectInfo};
use crate::strength::{classify_binary, classify_unary, OpKind, Strength};
use cla_cfront::ast::{
    BinaryOp, Block, BlockItem, Declaration, Designator, Expr, ExprKind, ExternalDecl, ForInit,
    FunctionDef, Initializer, Stmt, Storage, TranslationUnit, UnaryOp,
};
use cla_cfront::span::{Loc, SourceMap};
use cla_cfront::types::{Type, TypeTable};
use std::collections::HashMap;

/// Struct model (paper Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FieldModel {
    /// One abstract object per `Tag.field`; the base is ignored. This is
    /// Andersen's treatment and the paper's default.
    #[default]
    FieldBased,
    /// The whole struct variable is one unstructured object; the field is
    /// ignored (the model of Shapiro/Horwitz, Fähndrich et al.).
    FieldIndependent,
}

/// Lowering configuration.
#[derive(Debug, Clone)]
pub struct LowerOptions {
    pub field_model: FieldModel,
    /// Model string literals as objects (default false: the paper's default
    /// setup "ignores constant strings").
    pub model_strings: bool,
    /// Functions treated as allocators; each static call site becomes a
    /// fresh heap object (the paper's default setup (a)).
    pub allocator_names: Vec<String>,
}

impl Default for LowerOptions {
    fn default() -> Self {
        LowerOptions {
            field_model: FieldModel::FieldBased,
            model_strings: false,
            allocator_names: [
                "malloc", "calloc", "realloc", "valloc", "memalign", "strdup",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        }
    }
}

impl LowerOptions {
    /// Field-independent variant of these options.
    pub fn field_independent(mut self) -> Self {
        self.field_model = FieldModel::FieldIndependent;
        self
    }
}

/// Lowers one parsed translation unit to primitive assignments.
pub fn lower_unit(tu: &TranslationUnit, sources: &SourceMap, opts: &LowerOptions) -> CompiledUnit {
    let mut lw = Lowerer {
        types: &tu.types,
        enum_constants: &tu.enum_constants,
        sources,
        opts,
        unit: CompiledUnit::new(tu.file.clone()),
        globals: HashMap::new(),
        global_types: HashMap::new(),
        scopes: Vec::new(),
        fields: HashMap::new(),
        funsig_ix: HashMap::new(),
        obj_types: HashMap::new(),
        temp_count: 0,
        cur_func: None,
        str_count: 0,
    };
    for item in &tu.items {
        match item {
            ExternalDecl::Declaration(d) => lw.lower_file_scope_decl(d),
            ExternalDecl::Function(f) => lw.lower_function(f),
        }
    }
    lw.unit
}

/// An lvalue place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Place {
    /// A named object.
    Obj(ObjId),
    /// `*obj`.
    Deref(ObjId),
    /// Not an assignable object (error recovery / unsupported construct).
    None,
}

/// Where a value comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RPlace {
    Obj(ObjId),
    Deref(ObjId),
    Addr(ObjId),
}

/// One source contributing to an rvalue, with the strength/op it passed
/// through.
#[derive(Debug, Clone, Copy)]
struct RSrc {
    place: RPlace,
    strength: Strength,
    op: OpKind,
}

impl RSrc {
    fn obj(id: ObjId) -> Self {
        RSrc {
            place: RPlace::Obj(id),
            strength: Strength::Strong,
            op: OpKind::Direct,
        }
    }

    fn addr(id: ObjId) -> Self {
        RSrc {
            place: RPlace::Addr(id),
            strength: Strength::Strong,
            op: OpKind::Direct,
        }
    }

    fn deref(id: ObjId) -> Self {
        RSrc {
            place: RPlace::Deref(id),
            strength: Strength::Strong,
            op: OpKind::Direct,
        }
    }

    /// Weakens this source through an operation of the given strength,
    /// recording the op if none is recorded yet.
    fn through(mut self, s: Strength, op: OpKind) -> Self {
        self.strength = self.strength.and(s);
        if self.op == OpKind::Direct {
            self.op = op;
        }
        self
    }
}

struct Lowerer<'a> {
    types: &'a TypeTable,
    enum_constants: &'a std::collections::HashSet<String>,
    sources: &'a SourceMap,
    opts: &'a LowerOptions,
    unit: CompiledUnit,
    /// File-scope name → object (variables and functions, any linkage).
    globals: HashMap<String, ObjId>,
    /// File-scope name → declared type.
    global_types: HashMap<String, Type>,
    /// Local scopes: name → (object, type).
    scopes: Vec<HashMap<String, (ObjId, Type)>>,
    /// (record tag, field name) → field object.
    fields: HashMap<(String, String), ObjId>,
    /// Object → index into `unit.funsigs`.
    funsig_ix: HashMap<ObjId, usize>,
    /// Types of objects created for expressions (for display).
    obj_types: HashMap<ObjId, Type>,
    temp_count: u32,
    cur_func: Option<ObjId>,
    str_count: u32,
}

impl<'a> Lowerer<'a> {
    // ----- locations ------------------------------------------------------

    fn srcloc(&mut self, loc: Loc) -> SrcLoc {
        if loc.file == cla_cfront::FileId::BUILTIN {
            return SrcLoc::NONE;
        }
        let name = self.sources.file_name(loc.file).to_string();
        SrcLoc::new(self.unit.files.intern(&name), loc.line)
    }

    // ----- object creation -------------------------------------------------

    fn ty_str(&self, ty: &Type) -> String {
        self.types.display(ty)
    }

    fn new_temp(&mut self, ty: &Type, loc: SrcLoc) -> ObjId {
        self.temp_count += 1;
        let name = format!("tmp${}", self.temp_count);
        let mut info = ObjectInfo::local(name, ObjKind::Temp, self.ty_str(ty), loc);
        info.in_func = self.cur_func;
        let id = self.unit.push_object(info);
        self.obj_types.insert(id, ty.clone());
        id
    }

    /// File-scope variable or function object (created on first sight).
    fn global_object(&mut self, name: &str, ty: &Type, storage: Storage, loc: Loc) -> ObjId {
        if let Some(&id) = self.globals.get(name) {
            // A later declaration may sharpen the type (e.g. tentative
            // definitions, or a prototype following an implicit call).
            self.global_types
                .entry(name.to_string())
                .or_insert_with(|| ty.clone());
            return id;
        }
        let loc = self.srcloc(loc);
        let kind = if matches!(ty, Type::Function(_)) {
            ObjKind::Func
        } else {
            ObjKind::Var
        };
        let info = if storage == Storage::Static {
            ObjectInfo::local(name, kind, self.ty_str(ty), loc)
        } else {
            ObjectInfo::global(name, kind, self.ty_str(ty), loc)
        };
        let id = self.unit.push_object(info);
        self.globals.insert(name.to_string(), id);
        self.global_types.insert(name.to_string(), ty.clone());
        self.obj_types.insert(id, ty.clone());
        id
    }

    /// Local variable object in the innermost scope.
    fn local_object(&mut self, name: &str, ty: &Type, loc: Loc) -> ObjId {
        let loc = self.srcloc(loc);
        let mut info = ObjectInfo::local(name, ObjKind::Var, self.ty_str(ty), loc);
        info.in_func = self.cur_func;
        let id = self.unit.push_object(info);
        self.obj_types.insert(id, ty.clone());
        self.scopes
            .last_mut()
            .expect("local_object outside any scope")
            .insert(name.to_string(), (id, ty.clone()));
        id
    }

    /// The field object for `(tag, field)` (field-based model). Fields of
    /// named tags link across units; anonymous tags stay file-local.
    fn field_object(&mut self, tag: &str, field: &str, ty: &Type, loc: Loc) -> ObjId {
        if let Some(&id) = self.fields.get(&(tag.to_string(), field.to_string())) {
            return id;
        }
        let loc = self.srcloc(loc);
        let name = format!("{tag}.{field}");
        let anonymous = tag.starts_with("<anon");
        let info = if anonymous {
            ObjectInfo::local(&name, ObjKind::Field, self.ty_str(ty), loc)
        } else {
            ObjectInfo::global(&name, ObjKind::Field, self.ty_str(ty), loc)
        };
        let id = self.unit.push_object(info);
        self.fields.insert((tag.to_string(), field.to_string()), id);
        self.obj_types.insert(id, ty.clone());
        id
    }

    /// Resolves an identifier to its object, creating an implicit global for
    /// undeclared names (C89 implicit declaration).
    fn resolve(&mut self, name: &str, loc: Loc) -> ObjId {
        for scope in self.scopes.iter().rev() {
            if let Some((id, _)) = scope.get(name) {
                return *id;
            }
        }
        if let Some(&id) = self.globals.get(name) {
            return id;
        }
        self.global_object(name, &Type::int(), Storage::None, loc)
    }

    fn type_of_name(&self, name: &str) -> Option<Type> {
        for scope in self.scopes.iter().rev() {
            if let Some((_, ty)) = scope.get(name) {
                return Some(ty.clone());
            }
        }
        self.global_types.get(name).cloned()
    }

    // ----- function signatures ---------------------------------------------

    /// The signature record for a function or function-pointer object,
    /// creating it (with `ret`) on first use.
    fn ensure_funsig(&mut self, obj: ObjId, is_indirect: bool) -> usize {
        if let Some(&ix) = self.funsig_ix.get(&obj) {
            return ix;
        }
        let base = self.unit.object(obj).name.clone();
        let linked = self.unit.object(obj).is_global() && !is_indirect;
        let ret_name = format!("{base}$ret");
        let mut info = if linked {
            ObjectInfo::global(&ret_name, ObjKind::Ret, "", SrcLoc::NONE)
        } else {
            ObjectInfo::local(&ret_name, ObjKind::Ret, "", SrcLoc::NONE)
        };
        info.in_func = Some(obj);
        let ret = self.unit.push_object(info);
        let ix = self.unit.funsigs.len();
        self.unit.funsigs.push(FunSig {
            obj,
            params: Vec::new(),
            ret,
            is_indirect,
        });
        self.funsig_ix.insert(obj, ix);
        ix
    }

    /// The `i`-th (0-based) standardized parameter object, created on demand.
    fn param_object(&mut self, sig_ix: usize, i: usize) -> ObjId {
        if let Some(&p) = self.unit.funsigs[sig_ix].params.get(i) {
            return p;
        }
        let obj = self.unit.funsigs[sig_ix].obj;
        let is_indirect = self.unit.funsigs[sig_ix].is_indirect;
        let base = self.unit.object(obj).name.clone();
        let linked = self.unit.object(obj).is_global() && !is_indirect;
        while self.unit.funsigs[sig_ix].params.len() <= i {
            let n = self.unit.funsigs[sig_ix].params.len() + 1;
            let name = format!("{base}${n}");
            let mut info = if linked {
                ObjectInfo::global(&name, ObjKind::Param, "", SrcLoc::NONE)
            } else {
                ObjectInfo::local(&name, ObjKind::Param, "", SrcLoc::NONE)
            };
            info.in_func = Some(obj);
            let id = self.unit.push_object(info);
            self.unit.funsigs[sig_ix].params.push(id);
        }
        self.unit.funsigs[sig_ix].params[i]
    }

    // ----- assignment emission ----------------------------------------------

    fn emit(
        &mut self,
        kind: AssignKind,
        dst: ObjId,
        src: ObjId,
        s: Strength,
        op: OpKind,
        loc: SrcLoc,
    ) {
        // Skip no-op self copies (e.g. from `x++`).
        if kind == AssignKind::Copy && dst == src {
            return;
        }
        self.unit.push_assign(PrimAssign {
            kind,
            dst,
            src,
            strength: s,
            op,
            loc,
        });
    }

    fn emit_assign(&mut self, dst: Place, src: RSrc, loc: SrcLoc) {
        let (s, op) = (src.strength, src.op);
        match (dst, src.place) {
            (Place::Obj(x), RPlace::Obj(y)) => self.emit(AssignKind::Copy, x, y, s, op, loc),
            (Place::Obj(x), RPlace::Deref(y)) => self.emit(AssignKind::Load, x, y, s, op, loc),
            (Place::Obj(x), RPlace::Addr(y)) => self.emit(AssignKind::Addr, x, y, s, op, loc),
            (Place::Deref(x), RPlace::Obj(y)) => self.emit(AssignKind::Store, x, y, s, op, loc),
            (Place::Deref(x), RPlace::Deref(y)) => {
                self.emit(AssignKind::StoreLoad, x, y, s, op, loc)
            }
            (Place::Deref(x), RPlace::Addr(y)) => {
                // `*x = &y` is not primitive: introduce a temporary.
                let yty = self.obj_types.get(&y).cloned().unwrap_or_else(Type::int);
                let t = self.new_temp(&yty.ptr_to(), loc);
                self.emit(
                    AssignKind::Addr,
                    t,
                    y,
                    Strength::Strong,
                    OpKind::Direct,
                    loc,
                );
                self.emit(AssignKind::Store, x, t, s, op, loc);
            }
            (Place::None, _) => {}
        }
    }

    fn emit_all(&mut self, dst: Place, srcs: &[RSrc], loc: SrcLoc) {
        for s in srcs {
            self.emit_assign(dst, *s, loc);
        }
    }

    /// Materializes an rvalue as a single object, introducing a temporary
    /// only when necessary.
    fn materialize(&mut self, srcs: &[RSrc], ty: &Type, loc: SrcLoc) -> ObjId {
        if let [one] = srcs {
            if let RPlace::Obj(id) = one.place {
                if one.op == OpKind::Direct && one.strength == Strength::Strong {
                    return id;
                }
            }
        }
        let t = self.new_temp(ty, loc);
        self.emit_all(Place::Obj(t), srcs, loc);
        t
    }

    // ----- type inference ---------------------------------------------------

    /// Best-effort static type of an expression; used to distinguish array
    /// indexing from pointer indexing, find struct tags for member access,
    /// and type temporaries. `None` means "unknown" and lowering falls back
    /// to pointer-like behaviour.
    fn type_of(&self, e: &Expr) -> Option<Type> {
        match &e.kind {
            ExprKind::Ident(n) => self.type_of_name(n),
            ExprKind::IntLit(_) | ExprKind::CharLit(_) => Some(Type::int()),
            ExprKind::FloatLit(_) => Some(Type::Float(cla_cfront::types::FloatKind::Double)),
            ExprKind::StrLit(s) => Some(Type::Array(
                Box::new(Type::char_()),
                Some(s.len() as u64 + 1),
            )),
            ExprKind::Unary(UnaryOp::Deref, inner) => self.type_of(inner)?.dereferenced().cloned(),
            ExprKind::Unary(UnaryOp::AddrOf, inner) => Some(self.type_of(inner)?.ptr_to()),
            ExprKind::Unary(_, inner) => self.type_of(inner),
            ExprKind::Binary(op, l, r) => {
                use BinaryOp::*;
                if matches!(op, Lt | Gt | Le | Ge | Eq | Ne | LogAnd | LogOr) {
                    return Some(Type::int());
                }
                let lt = self.type_of(l);
                if lt.as_ref().is_some_and(Type::is_pointer_like) {
                    return lt;
                }
                let rt = self.type_of(r);
                if rt.as_ref().is_some_and(Type::is_pointer_like) {
                    return rt;
                }
                lt.or(rt)
            }
            ExprKind::Assign(_, l, _) => self.type_of(l),
            ExprKind::Cond(_, t, f) => self.type_of(t).or_else(|| self.type_of(f)),
            ExprKind::Cast(ty, _) => Some(ty.clone()),
            ExprKind::Call(callee, _) => {
                let mut ty = self.type_of(callee)?;
                loop {
                    match ty {
                        Type::Function(f) => return Some(f.ret.clone()),
                        Type::Pointer(inner) => ty = *inner,
                        _ => return None,
                    }
                }
            }
            ExprKind::Index(base, _) => self.type_of(base)?.dereferenced().cloned(),
            ExprKind::Member { base, field, arrow } => {
                let mut bt = self.type_of(base)?;
                if *arrow {
                    bt = bt.dereferenced().cloned()?;
                }
                let Type::Record(id) = bt else { return None };
                Some(self.types.field(id, field)?.ty.clone())
            }
            ExprKind::SizeofExpr(_) | ExprKind::SizeofType(_) => Some(Type::int()),
            ExprKind::Comma(_, r) => self.type_of(r),
            ExprKind::PostIncDec(_, inner) => self.type_of(inner),
            ExprKind::CompoundLit(ty, _) => Some(ty.clone()),
        }
    }

    /// The record tag and field type a member access goes through.
    fn member_tag(&self, base: &Expr, field: &str, arrow: bool) -> Option<(String, Type)> {
        let mut bt = self.type_of(base)?;
        if arrow {
            bt = bt.dereferenced().cloned()?;
        }
        let Type::Record(id) = bt else { return None };
        let rec = self.types.record(id);
        let fty = self
            .types
            .field(id, field)
            .map(|f| f.ty.clone())
            .unwrap_or_else(Type::int);
        Some((rec.tag.clone(), fty))
    }

    // ----- lvalues ------------------------------------------------------------

    fn lower_lvalue(&mut self, e: &Expr) -> Place {
        match &e.kind {
            ExprKind::Ident(name) => {
                if self.enum_constants.contains(name) {
                    return Place::None;
                }
                Place::Obj(self.resolve(name, e.loc))
            }
            ExprKind::Unary(UnaryOp::Deref, inner) => {
                // `*a` where a is an array collapses to the array object
                // (index-independent model).
                if self
                    .type_of(inner)
                    .is_some_and(|t| matches!(t, Type::Array(..)))
                {
                    return self.lower_lvalue(inner);
                }
                let obj = self.rvalue_to_obj(inner);
                match obj {
                    Some(o) => Place::Deref(o),
                    None => Place::None,
                }
            }
            ExprKind::Index(base, idx) => {
                // Evaluate the index for side effects; its value is ignored
                // (index-independent arrays).
                self.lower_effects(idx);
                if self
                    .type_of(base)
                    .is_some_and(|t| matches!(t, Type::Array(..)))
                {
                    self.lower_lvalue(base)
                } else {
                    match self.rvalue_to_obj(base) {
                        Some(o) => Place::Deref(o),
                        None => Place::None,
                    }
                }
            }
            ExprKind::Member { base, field, arrow } => {
                self.lower_member(base, field, *arrow, e.loc)
            }
            ExprKind::Cast(_, inner) => self.lower_lvalue(inner),
            ExprKind::Comma(l, r) => {
                self.lower_effects(l);
                self.lower_lvalue(r)
            }
            _ => {
                // Not an lvalue (or unsupported as one); evaluate for effects.
                self.lower_effects(e);
                Place::None
            }
        }
    }

    /// Member access as a place, per the configured field model.
    fn lower_member(&mut self, base: &Expr, field: &str, arrow: bool, loc: Loc) -> Place {
        match self.opts.field_model {
            FieldModel::FieldBased => {
                // Evaluate the base for side effects only; the base object is
                // ignored (paper: "an assignment to x.f is viewed as an
                // assignment to f and the base object x is ignored").
                // The base is evaluated for side effects only; a plain
                // identifier base has none worth lowering.
                if arrow || !matches!(base.kind, ExprKind::Ident(_)) {
                    self.lower_effects(base);
                }
                // Unknown base type falls back to a per-name field pool so
                // same-named fields still unify.
                let (tag, fty) = self
                    .member_tag(base, field, arrow)
                    .unwrap_or_else(|| ("?".to_string(), Type::int()));
                Place::Obj(self.field_object(&tag, field, &fty, loc))
            }
            FieldModel::FieldIndependent => {
                if arrow {
                    match self.rvalue_to_obj(base) {
                        Some(o) => Place::Deref(o),
                        None => Place::None,
                    }
                } else {
                    self.lower_lvalue(base)
                }
            }
        }
    }

    // ----- rvalues ---------------------------------------------------------

    fn place_as_rvalue(&self, p: Place) -> Vec<RSrc> {
        match p {
            Place::Obj(o) => vec![RSrc::obj(o)],
            Place::Deref(o) => vec![RSrc::deref(o)],
            Place::None => vec![],
        }
    }

    fn rvalue_to_obj(&mut self, e: &Expr) -> Option<ObjId> {
        let srcs = self.lower_rvalue(e);
        if srcs.is_empty() {
            return None;
        }
        let ty = self.type_of(e).unwrap_or_else(Type::int);
        let loc = self.srcloc(e.loc);
        Some(self.materialize(&srcs, &ty, loc))
    }

    /// Evaluates an expression purely for its side effects.
    fn lower_effects(&mut self, e: &Expr) {
        let _ = self.lower_rvalue(e);
    }

    fn lower_rvalue(&mut self, e: &Expr) -> Vec<RSrc> {
        let loc = self.srcloc(e.loc);
        match &e.kind {
            ExprKind::Ident(name) => {
                if self.enum_constants.contains(name) {
                    return vec![];
                }
                let id = self.resolve(name, e.loc);
                // A function designator used as a value denotes its address.
                if self.unit.object(id).kind == ObjKind::Func {
                    return vec![RSrc::addr(id)];
                }
                // So does an array (array-to-pointer decay).
                if self
                    .obj_types
                    .get(&id)
                    .is_some_and(|t| matches!(t, Type::Array(..)))
                {
                    return vec![RSrc::addr(id)];
                }
                vec![RSrc::obj(id)]
            }
            ExprKind::IntLit(_) | ExprKind::FloatLit(_) | ExprKind::CharLit(_) => vec![],
            ExprKind::SizeofExpr(_) | ExprKind::SizeofType(_) => vec![],
            ExprKind::StrLit(s) => {
                if self.opts.model_strings {
                    self.str_count += 1;
                    let preview: String = s.chars().take(8).collect();
                    let mut info = ObjectInfo::local(
                        format!("str${}\"{preview}\"", self.str_count),
                        ObjKind::Str,
                        "char []",
                        loc,
                    );
                    info.in_func = self.cur_func;
                    let id = self.unit.push_object(info);
                    vec![RSrc::addr(id)]
                } else {
                    vec![]
                }
            }
            ExprKind::Unary(UnaryOp::Deref, _) | ExprKind::Index(..) | ExprKind::Member { .. } => {
                // Check for array collapse producing a decayed value: `a[i]`
                // where the element itself is an array decays to `&a`.
                let place = self.lower_lvalue(e);
                if let Place::Obj(o) = place {
                    if self
                        .type_of(e)
                        .is_some_and(|t| matches!(t, Type::Array(..)))
                        && self
                            .obj_types
                            .get(&o)
                            .is_some_and(|t| matches!(t, Type::Array(..)))
                    {
                        return vec![RSrc::addr(o)];
                    }
                }
                self.place_as_rvalue(place)
            }
            ExprKind::Unary(UnaryOp::AddrOf, inner) => {
                let place = self.lower_lvalue(inner);
                match place {
                    Place::Obj(o) => vec![RSrc::addr(o)],
                    Place::Deref(o) => vec![RSrc::obj(o)], // &*p == p
                    Place::None => vec![],
                }
            }
            ExprKind::Unary(op @ (UnaryOp::PreInc | UnaryOp::PreDec), inner) => {
                let _ = op;
                // ++x is x = x + 1: shape-preserving, no new sources.
                let place = self.lower_lvalue(inner);
                self.place_as_rvalue(place)
            }
            ExprKind::Unary(op, inner) => {
                let class = classify_unary(*op);
                let Some(s) = Strength::from_class(class) else {
                    self.lower_effects(inner);
                    return vec![];
                };
                let opk = match op {
                    UnaryOp::Neg => OpKind::Neg,
                    UnaryOp::BitNot => OpKind::BitNot,
                    _ => OpKind::Direct,
                };
                self.lower_rvalue(inner)
                    .into_iter()
                    .map(|r| r.through(s, opk))
                    .collect()
            }
            ExprKind::Binary(op, l, r) => {
                let (c1, c2) = classify_binary(*op);
                let opk = OpKind::from_binary(*op);
                let mut out = Vec::new();
                match Strength::from_class(c1) {
                    Some(s) => {
                        out.extend(self.lower_rvalue(l).into_iter().map(|x| x.through(s, opk)))
                    }
                    None => self.lower_effects(l),
                }
                match Strength::from_class(c2) {
                    Some(s) => {
                        out.extend(self.lower_rvalue(r).into_iter().map(|x| x.through(s, opk)))
                    }
                    None => self.lower_effects(r),
                }
                out
            }
            ExprKind::Assign(op, lhs, rhs) => {
                let place = self.lower_lvalue(lhs);
                let srcs = match op {
                    None => self.lower_rvalue(rhs),
                    Some(bop) => {
                        // x op= y behaves as x = x op y; the x = x part is a
                        // self-copy, so only y's contribution is emitted.
                        let (_, c2) = classify_binary(*bop);
                        let opk = OpKind::from_binary(*bop);
                        match Strength::from_class(c2) {
                            Some(s) => self
                                .lower_rvalue(rhs)
                                .into_iter()
                                .map(|x| x.through(s, opk))
                                .collect(),
                            None => {
                                self.lower_effects(rhs);
                                vec![]
                            }
                        }
                    }
                };
                self.emit_all(place, &srcs, loc);
                self.place_as_rvalue(place)
            }
            ExprKind::Cond(c, t, f) => {
                self.lower_effects(c);
                let mut out = self.lower_rvalue(t);
                out.extend(self.lower_rvalue(f));
                out.into_iter()
                    .map(|r| r.through(Strength::Strong, OpKind::Cond))
                    .collect()
            }
            ExprKind::Cast(_, inner) => self
                .lower_rvalue(inner)
                .into_iter()
                .map(|r| r.through(Strength::Strong, OpKind::Cast))
                .collect(),
            ExprKind::Call(callee, args) => self.lower_call(callee, args, e.loc),
            ExprKind::Comma(l, r) => {
                self.lower_effects(l);
                self.lower_rvalue(r)
            }
            ExprKind::PostIncDec(_, inner) => {
                let place = self.lower_lvalue(inner);
                self.place_as_rvalue(place)
            }
            ExprKind::CompoundLit(ty, inits) => {
                let t = self.new_temp(ty, loc);
                self.lower_braced_init(Place::Obj(t), ty, inits, e.loc);
                vec![RSrc::obj(t)]
            }
        }
    }

    // ----- calls -----------------------------------------------------------

    /// Identifies the call target: a direct function object, or an object
    /// holding a function pointer.
    fn callee_object(&mut self, callee: &Expr) -> Option<(ObjId, bool)> {
        match &callee.kind {
            // `(*f)(...)` and `f(...)` are the same call — but only strip the
            // `*` when the operand is itself the function (pointer); for
            // `(**fpp)()` the inner deref is a real load.
            ExprKind::Unary(UnaryOp::Deref, inner) => match self.type_of(inner) {
                Some(Type::Pointer(p)) if matches!(*p, Type::Function(_)) => {
                    self.callee_object(inner)
                }
                Some(Type::Function(_)) | None => self.callee_object(inner),
                _ => {
                    let obj = self.rvalue_to_obj(callee)?;
                    Some((obj, true))
                }
            },
            ExprKind::Ident(name) => {
                // Local variable holding a function pointer?
                for scope in self.scopes.iter().rev() {
                    if let Some((id, _)) = scope.get(name) {
                        return Some((*id, true));
                    }
                }
                if let Some(&id) = self.globals.get(name) {
                    let direct = self.unit.object(id).kind == ObjKind::Func;
                    return Some((id, !direct));
                }
                // Implicit function declaration.
                let fty = Type::Function(Box::new(cla_cfront::types::FuncType {
                    ret: Type::int(),
                    params: vec![],
                    variadic: false,
                    kr: true,
                }));
                Some((
                    self.global_object(name, &fty, Storage::None, callee.loc),
                    false,
                ))
            }
            _ => {
                let obj = self.rvalue_to_obj(callee)?;
                Some((obj, true))
            }
        }
    }

    fn lower_call(&mut self, callee: &Expr, args: &[Expr], cloc: Loc) -> Vec<RSrc> {
        let loc = self.srcloc(cloc);
        // Allocation sites: a fresh heap object per static occurrence.
        if let ExprKind::Ident(name) = &callee.kind {
            if self.opts.allocator_names.iter().any(|a| a == name)
                && self
                    .type_of_name(name)
                    .is_none_or(|t| matches!(t, Type::Function(_)))
            {
                for a in args {
                    self.lower_effects(a);
                }
                let file = self.unit.files.name(loc.file).to_string();
                let mut info = ObjectInfo::local(
                    format!("heap@{}:{}", file, loc.line),
                    ObjKind::Heap,
                    "<heap>",
                    loc,
                );
                info.in_func = self.cur_func;
                let id = self.unit.push_object(info);
                return vec![RSrc::addr(id)];
            }
        }
        let Some((fobj, indirect)) = self.callee_object(callee) else {
            for a in args {
                self.lower_effects(a);
            }
            return vec![];
        };
        let sig = self.ensure_funsig(fobj, indirect);
        for (i, a) in args.iter().enumerate() {
            let param = self.param_object(sig, i);
            let srcs: Vec<RSrc> = self
                .lower_rvalue(a)
                .into_iter()
                .map(|r| r.through(Strength::Strong, OpKind::Arg))
                .collect();
            self.emit_all(Place::Obj(param), &srcs, loc);
        }
        let ret = self.unit.funsigs[sig].ret;
        vec![RSrc {
            place: RPlace::Obj(ret),
            strength: Strength::Strong,
            op: OpKind::RetVal,
        }]
    }

    // ----- declarations & initializers --------------------------------------

    fn lower_file_scope_decl(&mut self, d: &Declaration) {
        if d.is_typedef {
            return;
        }
        for item in &d.items {
            let obj = self.global_object(&item.name, &item.ty, d.storage, item.loc);
            // A file-scope declarator defines the object unless it is a
            // function prototype or `extern` without an initializer
            // (tentative definitions `int x;` count as definitions).
            let is_proto = matches!(item.ty, Type::Function(_));
            if !is_proto && (d.storage != Storage::Extern || item.init.is_some()) {
                self.unit.objects[obj.index()].defined = true;
            }
            if let Some(init) = &item.init {
                self.lower_init(Place::Obj(obj), &item.ty, init, item.loc);
            }
        }
    }

    fn lower_local_decl(&mut self, d: &Declaration) {
        if d.is_typedef {
            return;
        }
        for item in &d.items {
            let obj = if d.storage == Storage::Extern {
                self.global_object(&item.name, &item.ty, Storage::None, item.loc)
            } else {
                // `static` locals are still file-local objects; the scope
                // entry makes the name resolve to them.
                self.local_object(&item.name, &item.ty, item.loc)
            };
            if let Some(init) = &item.init {
                self.lower_init(Place::Obj(obj), &item.ty, init, item.loc);
            }
        }
    }

    fn lower_init(&mut self, place: Place, ty: &Type, init: &Initializer, loc: Loc) {
        match init {
            Initializer::Expr(e) => {
                // Char-array = string literal: nothing flows (strings are
                // ignored by default; with strings modeled, the literal is
                // an object whose address flows only into pointers).
                if matches!(ty, Type::Array(..)) && matches!(e.kind, ExprKind::StrLit(_)) {
                    return;
                }
                let sloc = self.srcloc(loc);
                let srcs: Vec<RSrc> = self
                    .lower_rvalue(e)
                    .into_iter()
                    .map(|r| r.through(Strength::Strong, OpKind::Init))
                    .collect();
                self.emit_all(place, &srcs, sloc);
            }
            Initializer::List(items) => self.lower_braced_init(place, ty, items, loc),
        }
    }

    fn lower_braced_init(
        &mut self,
        place: Place,
        ty: &Type,
        items: &[(Designator, Initializer)],
        loc: Loc,
    ) {
        match ty {
            Type::Array(elem, _) => {
                // Index-independent: every element initializes the same
                // abstract object.
                for (_, init) in items {
                    self.lower_init(place, elem, init, loc);
                }
            }
            Type::Record(id) => {
                let rec = self.types.record(*id).clone();
                let mut cursor = 0usize;
                for (desig, init) in items {
                    let field = match desig {
                        Designator::Field(f) => {
                            cursor = rec
                                .fields
                                .iter()
                                .position(|x| &x.name == f)
                                .map_or(cursor, |p| p);
                            rec.fields.iter().find(|x| &x.name == f)
                        }
                        Designator::Index(_) | Designator::None => rec.fields.get(cursor),
                    };
                    let Some(field) = field else { continue };
                    let fplace = match self.opts.field_model {
                        FieldModel::FieldBased => {
                            Place::Obj(self.field_object(&rec.tag, &field.name, &field.ty, loc))
                        }
                        FieldModel::FieldIndependent => place,
                    };
                    self.lower_init(fplace, &field.ty.clone(), init, loc);
                    cursor += 1;
                }
            }
            // Scalar with redundant braces: `int x = {1};`
            _ => {
                if let Some((_, init)) = items.first() {
                    self.lower_init(place, ty, init, loc);
                }
            }
        }
    }

    // ----- functions ---------------------------------------------------------

    fn lower_function(&mut self, f: &FunctionDef) {
        let fty = Type::Function(Box::new(f.ty.clone()));
        let fobj = self.global_object(&f.name, &fty, f.storage, f.loc);
        self.unit.objects[fobj.index()].defined = true;
        let sig = self.ensure_funsig(fobj, false);
        self.cur_func = Some(fobj);
        self.scopes.push(HashMap::new());
        // Parameters: local objects initialized from the standardized
        // parameter variables (paper: `x = f1, y = f2`).
        let loc = self.srcloc(f.loc);
        for (i, p) in f.ty.params.iter().enumerate() {
            let Some(name) = &p.name else { continue };
            let pobj = self.param_object(sig, i);
            let lobj = self.local_object(name, &p.ty, p.loc);
            self.emit(
                AssignKind::Copy,
                lobj,
                pobj,
                Strength::Strong,
                OpKind::Direct,
                loc,
            );
        }
        let ret = self.unit.funsigs[sig].ret;
        self.lower_block(&f.body, ret);
        self.scopes.pop();
        self.cur_func = None;
    }

    fn lower_block(&mut self, b: &Block, ret: ObjId) {
        self.scopes.push(HashMap::new());
        for item in &b.items {
            match item {
                BlockItem::Decl(d) => self.lower_local_decl(d),
                BlockItem::Stmt(s) => self.lower_stmt(s, ret),
            }
        }
        self.scopes.pop();
    }

    fn lower_stmt(&mut self, s: &Stmt, ret: ObjId) {
        match s {
            Stmt::Expr(None) | Stmt::Break | Stmt::Continue | Stmt::Goto(_) => {}
            Stmt::Expr(Some(e)) => self.lower_effects(e),
            Stmt::Block(b) => self.lower_block(b, ret),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.lower_effects(cond);
                self.lower_stmt(then_branch, ret);
                if let Some(e) = else_branch {
                    self.lower_stmt(e, ret);
                }
            }
            Stmt::While { cond, body } | Stmt::DoWhile { body, cond } => {
                self.lower_effects(cond);
                self.lower_stmt(body, ret);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                match init {
                    Some(ForInit::Decl(d)) => self.lower_local_decl(d),
                    Some(ForInit::Expr(e)) => self.lower_effects(e),
                    None => {}
                }
                if let Some(c) = cond {
                    self.lower_effects(c);
                }
                if let Some(st) = step {
                    self.lower_effects(st);
                }
                self.lower_stmt(body, ret);
                self.scopes.pop();
            }
            Stmt::Switch { cond, body } => {
                self.lower_effects(cond);
                self.lower_stmt(body, ret);
            }
            Stmt::Case { value: _, body } | Stmt::Default { body } | Stmt::Label { body, .. } => {
                self.lower_stmt(body, ret)
            }
            Stmt::Return { value, loc } => {
                if let Some(e) = value {
                    let sloc = self.srcloc(*loc);
                    let srcs = self.lower_rvalue(e);
                    self.emit_all(Place::Obj(ret), &srcs, sloc);
                }
            }
        }
    }
}
