//! Analysis objects: the nodes of the points-to and dependence graphs.
//!
//! An *object* is anything that can hold or receive a value: a variable, a
//! struct field (in the field-based model a field is one object shared by
//! every instance), a function, a standardized parameter/return variable, a
//! compiler temporary, a heap-allocation site, or a string literal.

use crate::loc::SrcLoc;
use std::fmt;

/// Identifier of an object local to one [`CompiledUnit`](crate::CompiledUnit)
/// (or, after linking, to the linked program database).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u32);

impl ObjId {
    /// The index as a usize, for vector addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// What kind of object this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ObjKind {
    /// An ordinary variable (global, static, or local).
    Var = 0,
    /// A struct/union field object `Tag.field` (field-based model).
    Field,
    /// A function. Its "address-of" is what flows into function pointers.
    Func,
    /// Standardized parameter `f$N` of a function or function pointer.
    Param,
    /// Standardized return variable `f$ret`.
    Ret,
    /// Compiler-introduced temporary.
    Temp,
    /// A heap allocation site (`malloc` et al.), one object per static site.
    Heap,
    /// A string literal object (only when the analysis models strings).
    Str,
}

impl ObjKind {
    /// Inverse of `as u8`, for the object-file reader.
    pub fn from_u8(v: u8) -> Option<ObjKind> {
        use ObjKind::*;
        Some(match v {
            0 => Var,
            1 => Field,
            2 => Func,
            3 => Param,
            4 => Ret,
            5 => Temp,
            6 => Heap,
            7 => Str,
            _ => return None,
        })
    }

    /// True for the kinds the paper counts as "program variables" in
    /// Table 2/3 (not temporaries or synthetic sites).
    pub fn is_program_object(self) -> bool {
        matches!(self, ObjKind::Var | ObjKind::Field | ObjKind::Func)
    }
}

/// Metadata of one object.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectInfo {
    /// Display name: `x`, `S.x`, `f`, `f$1`, `f$ret`, `tmp$3`, `heap@a.c:12`.
    pub name: String,
    /// When `Some`, the object has external linkage and the linker unifies
    /// it with same-named objects from other units. `None` objects are
    /// file-local (statics, locals, temps, anonymous-struct fields).
    pub link_name: Option<String>,
    pub kind: ObjKind,
    /// Rendered C type, for dependence-chain display (`short`, `int *`).
    pub ty: String,
    pub loc: SrcLoc,
    /// The enclosing function object for locals/params/temps (paper §4:
    /// "information for each local variable that identifies the function in
    /// which it is defined").
    pub in_func: Option<ObjId>,
    /// True when some unit *defines* this symbol (a function with a body, a
    /// file-scope variable that is not `extern`-without-initializer). An
    /// `extern` declaration or implicit function reference leaves it false;
    /// the linker ORs the flag across units, so after linking a global with
    /// `defined == false` is referenced but defined nowhere — the symbols a
    /// partial analysis must treat as potentially living in a quarantined
    /// (or simply absent) unit.
    pub defined: bool,
}

impl ObjectInfo {
    /// A file-local object with no enclosing function.
    pub fn local(
        name: impl Into<String>,
        kind: ObjKind,
        ty: impl Into<String>,
        loc: SrcLoc,
    ) -> Self {
        ObjectInfo {
            name: name.into(),
            link_name: None,
            kind,
            ty: ty.into(),
            loc,
            in_func: None,
            defined: false,
        }
    }

    /// A globally linked object (link name = display name).
    pub fn global(
        name: impl Into<String>,
        kind: ObjKind,
        ty: impl Into<String>,
        loc: SrcLoc,
    ) -> Self {
        let name = name.into();
        ObjectInfo {
            link_name: Some(name.clone()),
            name,
            kind,
            ty: ty.into(),
            loc,
            in_func: None,
            defined: false,
        }
    }

    /// True when the linker should unify this object by name.
    pub fn is_global(&self) -> bool {
        self.link_name.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_roundtrip() {
        for v in 0..=7u8 {
            assert_eq!(ObjKind::from_u8(v).unwrap() as u8, v);
        }
        assert_eq!(ObjKind::from_u8(42), None);
    }

    #[test]
    fn program_object_classification() {
        assert!(ObjKind::Var.is_program_object());
        assert!(ObjKind::Field.is_program_object());
        assert!(ObjKind::Func.is_program_object());
        assert!(!ObjKind::Temp.is_program_object());
        assert!(!ObjKind::Heap.is_program_object());
        assert!(!ObjKind::Param.is_program_object());
    }

    #[test]
    fn constructors() {
        let o = ObjectInfo::global("x", ObjKind::Var, "int", SrcLoc::NONE);
        assert!(o.is_global());
        assert_eq!(o.link_name.as_deref(), Some("x"));
        let t = ObjectInfo::local("tmp$1", ObjKind::Temp, "int *", SrcLoc::NONE);
        assert!(!t.is_global());
        assert_eq!(format!("{}", ObjId(3)), "o3");
        assert_eq!(ObjId(3).index(), 3);
    }
}
