//! Primitive assignments — the paper's intermediate language.
//!
//! Every C construct is compiled down to the five assignment forms of
//! Table 2 (`x = y`, `x = &y`, `*x = y`, `x = *y`, `*x = *y`) plus function
//! signature records used to wire calls and indirect calls.

use crate::loc::{FileTable, SrcLoc};
use crate::object::{ObjId, ObjectInfo};
use crate::strength::{OpKind, Strength};
use std::fmt;

/// The five primitive assignment forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AssignKind {
    /// `x = y`
    Copy = 0,
    /// `x = &y`
    Addr,
    /// `*x = y`
    Store,
    /// `x = *y`
    Load,
    /// `*x = *y`
    StoreLoad,
}

impl AssignKind {
    /// Inverse of `as u8`, for the object-file reader.
    pub fn from_u8(v: u8) -> Option<AssignKind> {
        use AssignKind::*;
        Some(match v {
            0 => Copy,
            1 => Addr,
            2 => Store,
            3 => Load,
            4 => StoreLoad,
            _ => return None,
        })
    }

    /// True for the forms the solver treats as *complex* (involving `*`);
    /// `Copy` and `Addr` are represented directly in the constraint graph.
    pub fn is_complex(self) -> bool {
        matches!(
            self,
            AssignKind::Store | AssignKind::Load | AssignKind::StoreLoad
        )
    }
}

impl fmt::Display for AssignKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AssignKind::Copy => "x = y",
            AssignKind::Addr => "x = &y",
            AssignKind::Store => "*x = y",
            AssignKind::Load => "x = *y",
            AssignKind::StoreLoad => "*x = *y",
        };
        f.write_str(s)
    }
}

/// One primitive assignment `dst (op)= src` of the given form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrimAssign {
    pub kind: AssignKind,
    /// The `x` side.
    pub dst: ObjId,
    /// The `y` side.
    pub src: ObjId,
    /// Dependence strength of this edge (Table 1).
    pub strength: Strength,
    /// The operation the value passed through (`+`, `>>`, `arg`, ...).
    pub op: OpKind,
    pub loc: SrcLoc,
}

impl PrimAssign {
    /// Renders the assignment for dumps and dependence chains.
    pub fn display(&self, objs: &[ObjectInfo], files: &FileTable) -> String {
        let d = &objs[self.dst.index()].name;
        let s = &objs[self.src.index()].name;
        let text = match self.kind {
            AssignKind::Copy => format!("{d} = {s}"),
            AssignKind::Addr => format!("{d} = &{s}"),
            AssignKind::Store => format!("*{d} = {s}"),
            AssignKind::Load => format!("{d} = *{s}"),
            AssignKind::StoreLoad => format!("*{d} = *{s}"),
        };
        let op = if self.op == OpKind::Direct {
            String::new()
        } else {
            format!(" [{}]", self.op)
        };
        format!("{text}{op} @ {}", files.display(self.loc))
    }
}

/// Parameter/return record for a function or function-pointer object
/// (paper §4: "an object file entry that records the argument and return
/// variables").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunSig {
    /// The function object (kind [`Func`](crate::ObjKind::Func)) or the
    /// function-pointer object this signature is attached to.
    pub obj: ObjId,
    /// Standardized parameter objects `f$1`, `f$2`, ... in order.
    pub params: Vec<ObjId>,
    /// Standardized return object `f$ret`.
    pub ret: ObjId,
    /// True when `obj` is a function *pointer* used at an indirect call
    /// site, rather than a function definition/declaration.
    pub is_indirect: bool,
}

/// Counts of the five assignment forms (Table 2's last five columns).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AssignCounts {
    pub copy: usize,
    pub addr: usize,
    pub store: usize,
    pub store_load: usize,
    pub load: usize,
}

impl AssignCounts {
    /// Total number of primitive assignments.
    pub fn total(&self) -> usize {
        self.copy + self.addr + self.store + self.store_load + self.load
    }

    /// Tallies one assignment.
    pub fn add(&mut self, kind: AssignKind) {
        match kind {
            AssignKind::Copy => self.copy += 1,
            AssignKind::Addr => self.addr += 1,
            AssignKind::Store => self.store += 1,
            AssignKind::Load => self.load += 1,
            AssignKind::StoreLoad => self.store_load += 1,
        }
    }

    /// Tallies a whole assignment list.
    pub fn from_assigns(assigns: &[PrimAssign]) -> Self {
        let mut c = AssignCounts::default();
        for a in assigns {
            c.add(a.kind);
        }
        c
    }
}

/// The output of the compile phase for one translation unit, and (after
/// linking) the representation of a whole program database.
#[derive(Debug, Default, Clone)]
pub struct CompiledUnit {
    /// The main source file.
    pub file: String,
    /// File-name table for all locations in this unit.
    pub files: FileTable,
    /// All objects; [`ObjId`] indexes here.
    pub objects: Vec<ObjectInfo>,
    /// All primitive assignments.
    pub assigns: Vec<PrimAssign>,
    /// Function and function-pointer signatures.
    pub funsigs: Vec<FunSig>,
}

impl CompiledUnit {
    /// Creates an empty unit for `file`.
    pub fn new(file: impl Into<String>) -> Self {
        CompiledUnit {
            file: file.into(),
            ..Default::default()
        }
    }

    /// Adds an object, returning its id.
    pub fn push_object(&mut self, info: ObjectInfo) -> ObjId {
        let id = ObjId(self.objects.len() as u32);
        self.objects.push(info);
        id
    }

    /// Metadata of an object.
    ///
    /// # Panics
    ///
    /// Panics when `id` does not belong to this unit.
    pub fn object(&self, id: ObjId) -> &ObjectInfo {
        &self.objects[id.index()]
    }

    /// Adds a primitive assignment.
    pub fn push_assign(&mut self, a: PrimAssign) {
        self.assigns.push(a);
    }

    /// Counts of the five assignment forms.
    pub fn assign_counts(&self) -> AssignCounts {
        AssignCounts::from_assigns(&self.assigns)
    }

    /// Number of objects the paper counts as "program variables"
    /// (variables, fields, functions — not temps or heap sites).
    pub fn program_variable_count(&self) -> usize {
        self.objects
            .iter()
            .filter(|o| o.kind.is_program_object())
            .count()
    }

    /// Finds an object by display name (first match). Intended for tests and
    /// small examples, not hot paths.
    pub fn find_object(&self, name: &str) -> Option<ObjId> {
        self.objects
            .iter()
            .position(|o| o.name == name)
            .map(|i| ObjId(i as u32))
    }

    /// All objects whose display name is `name`.
    pub fn find_objects<'a>(&'a self, name: &'a str) -> impl Iterator<Item = ObjId> + 'a {
        self.objects
            .iter()
            .enumerate()
            .filter(move |(_, o)| o.name == name)
            .map(|(i, _)| ObjId(i as u32))
    }

    /// The signature attached to `obj`, if any.
    pub fn funsig(&self, obj: ObjId) -> Option<&FunSig> {
        self.funsigs.iter().find(|s| s.obj == obj)
    }

    /// Renders every assignment, one per line (for dumps and tests).
    pub fn dump_assigns(&self) -> String {
        let mut out = String::new();
        for a in &self.assigns {
            out.push_str(&a.display(&self.objects, &self.files));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjKind;

    fn unit_with(names: &[&str]) -> (CompiledUnit, Vec<ObjId>) {
        let mut u = CompiledUnit::new("t.c");
        let ids = names
            .iter()
            .map(|n| u.push_object(ObjectInfo::global(*n, ObjKind::Var, "int", SrcLoc::NONE)))
            .collect();
        (u, ids)
    }

    #[test]
    fn assign_kind_roundtrip() {
        for v in 0..=4u8 {
            assert_eq!(AssignKind::from_u8(v).unwrap() as u8, v);
        }
        assert_eq!(AssignKind::from_u8(5), None);
        assert!(AssignKind::Store.is_complex());
        assert!(AssignKind::Load.is_complex());
        assert!(AssignKind::StoreLoad.is_complex());
        assert!(!AssignKind::Copy.is_complex());
        assert!(!AssignKind::Addr.is_complex());
    }

    #[test]
    fn counts() {
        let (mut u, ids) = unit_with(&["a", "b"]);
        for kind in [
            AssignKind::Copy,
            AssignKind::Copy,
            AssignKind::Addr,
            AssignKind::Store,
            AssignKind::Load,
            AssignKind::StoreLoad,
        ] {
            u.push_assign(PrimAssign {
                kind,
                dst: ids[0],
                src: ids[1],
                strength: Strength::Strong,
                op: OpKind::Direct,
                loc: SrcLoc::NONE,
            });
        }
        let c = u.assign_counts();
        assert_eq!(c.copy, 2);
        assert_eq!(c.addr, 1);
        assert_eq!(c.store, 1);
        assert_eq!(c.load, 1);
        assert_eq!(c.store_load, 1);
        assert_eq!(c.total(), 6);
    }

    #[test]
    fn display_assign() {
        let (mut u, ids) = unit_with(&["x", "y"]);
        let f = u.files.intern("a.c");
        let a = PrimAssign {
            kind: AssignKind::Load,
            dst: ids[0],
            src: ids[1],
            strength: Strength::Weak,
            op: OpKind::Shr,
            loc: SrcLoc::new(f, 7),
        };
        assert_eq!(a.display(&u.objects, &u.files), "x = *y [>>] @ a.c:7");
        assert_eq!(format!("{}", AssignKind::StoreLoad), "*x = *y");
    }

    #[test]
    fn lookups() {
        let (mut u, ids) = unit_with(&["x", "y"]);
        assert_eq!(u.find_object("y"), Some(ids[1]));
        assert_eq!(u.find_object("z"), None);
        assert_eq!(u.program_variable_count(), 2);
        u.funsigs.push(FunSig {
            obj: ids[0],
            params: vec![ids[1]],
            ret: ids[1],
            is_indirect: false,
        });
        assert!(u.funsig(ids[0]).is_some());
        assert!(u.funsig(ids[1]).is_none());
    }
}
