//! `cla-prof` — in-process profiling for the CLA pipeline, std-only.
//!
//! Three pieces, all built on the `cla-obs` span machinery:
//!
//! - **Sampling profiler** ([`Profiler`]): a timer thread wakes every
//!   `interval` (default 1 ms), snapshots every thread's stack of active
//!   span names via [`cla_obs::spanstack`], and charges the wall time since
//!   the previous tick to each observed stack. No signal handlers and no
//!   frame-pointer walking: the obs spans *are* the frames, which makes the
//!   profile exactly as deep as the instrumentation and safe on any
//!   platform. Results render as collapsed stacks
//!   (`flamegraph.pl`/speedscope-compatible) and as a per-span self/total
//!   table. Because each tick is weighted by the real elapsed time rather
//!   than a nominal interval, per-span totals track the obs span durations
//!   to within sampling error.
//! - **Counting allocator** (feature `count-alloc`, off by default): a
//!   `#[global_allocator]` wrapper around the system allocator that charges
//!   every allocation to the innermost active span, giving per-phase
//!   cumulative bytes, allocation counts, and observed peak live heap
//!   alongside the OS-level `peak_rss_bytes`. See [`alloc_snapshot`].
//! - **Bench history** ([`history`]): append-only `BENCH_history.jsonl`
//!   records (timestamp, git rev, phase seconds, peak RSS) shared by
//!   `million_bench` and `cla-tool bench-diff`.
//!
//! This is a *wall-clock* profiler: a thread blocked in I/O with a span
//! open accumulates time just like a spinning one. That is the right model
//! for attributing the paper's end-to-end seconds (compile/link/solve),
//! where "waiting on the reorder window" is as real a cost as hashing.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cla_obs::spanstack;
use cla_obs::{ArgValue, Phase, TraceEvent};

mod counting;
pub mod history;

pub use counting::{alloc_snapshot, init, AllocSnapshot, SpanAlloc};

/// Default sampling interval: 1 ms ≈ 1000 samples/s, enough for ±1% on a
/// one-second phase while keeping the sampler thread invisible in its own
/// profile.
pub const DEFAULT_INTERVAL: Duration = Duration::from_millis(1);

/// Aggregated weight for one distinct span path.
struct PathCount {
    ns: u64,
    samples: u64,
}

struct Shared {
    stop: AtomicBool,
    interval: Duration,
    /// Path of interned span ids (outermost first) → accumulated weight.
    counts: Mutex<HashMap<Vec<u32>, PathCount>>,
}

/// A running sampling profiler. Create with [`Profiler::start`]; harvest
/// with [`Profiler::dump`] (keeps sampling) or [`Profiler::stop`].
pub struct Profiler {
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
    started: Instant,
}

impl Profiler {
    /// Start sampling every `interval`. Raises the span-stack refcount so
    /// spans begin recording their per-thread stacks; spans already open
    /// when this is called are invisible until they are re-entered.
    pub fn start(interval: Duration) -> Self {
        let interval = interval.max(Duration::from_micros(50));
        spanstack::enable();
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            interval,
            counts: Mutex::new(HashMap::new()),
        });
        let worker = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("cla-prof-sampler".to_string())
            .spawn(move || sampler_loop(&worker))
            .expect("spawn profiler sampler thread");
        if cla_obs::global().tracing() {
            cla_obs::global().instant(
                "prof",
                "prof.start",
                vec![("interval_us", ArgValue::U64(interval.as_micros() as u64))],
            );
        }
        Self {
            shared,
            thread: Some(thread),
            started: Instant::now(),
        }
    }

    /// Start with the default 1 ms interval.
    pub fn start_default() -> Self {
        Self::start(DEFAULT_INTERVAL)
    }

    /// Snapshot the profile so far without stopping the sampler.
    pub fn dump(&self) -> Profile {
        let counts = self.shared.counts.lock().expect("profiler counts poisoned");
        Profile::from_counts(&counts, self.started.elapsed(), self.shared.interval)
    }

    /// Stop sampling and return the final profile. Drops the span-stack
    /// refcount taken by [`start`](Profiler::start).
    pub fn stop(mut self) -> Profile {
        self.halt();
        let counts = self.shared.counts.lock().expect("profiler counts poisoned");
        Profile::from_counts(&counts, self.started.elapsed(), self.shared.interval)
    }

    fn halt(&mut self) {
        if let Some(t) = self.thread.take() {
            self.shared.stop.store(true, Ordering::SeqCst);
            let _ = t.join();
            spanstack::disable();
        }
    }
}

impl Drop for Profiler {
    fn drop(&mut self) {
        self.halt();
    }
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("interval", &self.shared.interval)
            .finish_non_exhaustive()
    }
}

fn sampler_loop(shared: &Shared) {
    let obs = cla_obs::global();
    let mut stacks: Vec<(u64, Vec<u32>)> = Vec::new();
    let mut scratch: Vec<u32> = Vec::new();
    let mut last = Instant::now();
    while !shared.stop.load(Ordering::Relaxed) {
        std::thread::sleep(shared.interval);
        let now = Instant::now();
        let dt = now.duration_since(last).as_nanos() as u64;
        last = now;
        spanstack::sample_stacks(&mut stacks, &mut scratch);
        if stacks.is_empty() {
            continue;
        }
        let tracing = obs.tracing();
        let mut counts = shared.counts.lock().expect("profiler counts poisoned");
        for (tid, path) in &stacks {
            let entry = counts
                .entry(path.clone())
                .or_insert(PathCount { ns: 0, samples: 0 });
            entry.ns += dt;
            entry.samples += 1;
            if tracing {
                obs.emit_event(&TraceEvent {
                    name: "prof.sample".to_string(),
                    cat: "prof",
                    ph: Phase::Sample,
                    ts_us: obs.now_us(),
                    pid: std::process::id(),
                    tid: *tid,
                    args: vec![
                        ("stack", ArgValue::Str(join_path(path))),
                        ("weight_us", ArgValue::U64(dt / 1_000)),
                    ],
                });
            }
        }
    }
}

fn join_path(ids: &[u32]) -> String {
    let mut s = String::new();
    for (i, &id) in ids.iter().enumerate() {
        if i > 0 {
            s.push(';');
        }
        s.push_str(spanstack::name_of(id));
    }
    s
}

/// One distinct span path with its sampled weight.
#[derive(Debug, Clone)]
pub struct PathStat {
    /// Span names, outermost first.
    pub names: Vec<&'static str>,
    /// Sampled wall time charged to this exact path, in nanoseconds.
    pub ns: u64,
    /// Number of samples that observed this path.
    pub samples: u64,
}

/// Per-span roll-up across all paths.
#[derive(Debug, Clone)]
pub struct SpanRow {
    /// Span name.
    pub name: &'static str,
    /// Time sampled with this span innermost (its own work).
    pub self_ns: u64,
    /// Time sampled with this span anywhere on the stack (self + children).
    pub total_ns: u64,
    /// Samples with this span anywhere on the stack.
    pub samples: u64,
}

/// A harvested profile: distinct span paths and their sampled weights.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Wall time the profiler ran for.
    pub wall: Duration,
    /// Sampling interval in force.
    pub interval: Duration,
    /// Total `(tick, thread)` attributions taken.
    pub samples: u64,
    /// Distinct paths, heaviest first.
    pub paths: Vec<PathStat>,
}

impl Profile {
    fn from_counts(
        counts: &HashMap<Vec<u32>, PathCount>,
        wall: Duration,
        interval: Duration,
    ) -> Self {
        let mut paths: Vec<PathStat> = counts
            .iter()
            .map(|(ids, c)| PathStat {
                names: ids.iter().map(|&id| spanstack::name_of(id)).collect(),
                ns: c.ns,
                samples: c.samples,
            })
            .collect();
        paths.sort_by(|a, b| b.ns.cmp(&a.ns).then_with(|| a.names.cmp(&b.names)));
        let samples = paths.iter().map(|p| p.samples).sum();
        Self {
            wall,
            interval,
            samples,
            paths,
        }
    }

    /// Render in collapsed-stack form: one `outer;inner weight` line per
    /// distinct path, weight in microseconds — the input format of
    /// `flamegraph.pl` and speedscope. Lines are sorted alphabetically so
    /// identical runs produce byte-identical files.
    pub fn collapsed(&self) -> String {
        let mut lines: Vec<String> = self
            .paths
            .iter()
            .filter(|p| p.ns >= 1_000)
            .map(|p| format!("{} {}", p.names.join(";"), p.ns / 1_000))
            .collect();
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// Roll paths up into one row per span name, heaviest total first.
    pub fn rows(&self) -> Vec<SpanRow> {
        let mut by_name: HashMap<&'static str, SpanRow> = HashMap::new();
        for p in &self.paths {
            if let Some(&leaf) = p.names.last() {
                let row = by_name.entry(leaf).or_insert(SpanRow {
                    name: leaf,
                    self_ns: 0,
                    total_ns: 0,
                    samples: 0,
                });
                row.self_ns += p.ns;
            }
            // A name can legitimately appear once per path; guard against
            // recursive spans double-counting the total.
            let mut seen: Vec<&str> = Vec::with_capacity(p.names.len());
            for &name in &p.names {
                if seen.contains(&name) {
                    continue;
                }
                seen.push(name);
                let row = by_name.entry(name).or_insert(SpanRow {
                    name,
                    self_ns: 0,
                    total_ns: 0,
                    samples: 0,
                });
                row.total_ns += p.ns;
                row.samples += p.samples;
            }
        }
        let mut rows: Vec<SpanRow> = by_name.into_values().collect();
        rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then_with(|| a.name.cmp(b.name)));
        rows
    }

    /// Sampled total (self + children) for one span name.
    pub fn total_of(&self, name: &str) -> Duration {
        Duration::from_nanos(
            self.rows()
                .iter()
                .find(|r| r.name == name)
                .map_or(0, |r| r.total_ns),
        )
    }

    /// Human-readable self/total table, heaviest first.
    pub fn render_table(&self) -> String {
        let rows = self.rows();
        let busiest: u64 = rows.iter().map(|r| r.total_ns).max().unwrap_or(0);
        let mut out = String::new();
        out.push_str(&format!(
            "profile: {} samples over {:.2}s at {:?} intervals\n",
            self.samples,
            self.wall.as_secs_f64(),
            self.interval
        ));
        out.push_str("   total      self   share  samples  span\n");
        for r in &rows {
            let share = if busiest == 0 {
                0.0
            } else {
                r.total_ns as f64 / busiest as f64 * 100.0
            };
            out.push_str(&format!(
                "{:>8.3}s {:>8.3}s {:>6.1}% {:>8}  {}\n",
                r.total_ns as f64 / 1e9,
                r.self_ns as f64 / 1e9,
                share,
                r.samples,
                r.name
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The span-stack registry, interner, and enable refcount are process
    // globals shared with cla-obs, so everything that profiles lives in one
    // test body.
    #[test]
    fn samples_attribute_to_the_running_span() {
        let obs = cla_obs::global();
        let prof = Profiler::start(Duration::from_micros(200));

        // Two spans with a known 3:1 duration ratio, plus a nested child.
        {
            let _long = obs.span("test", "prof_long");
            let child = obs.span("test", "prof_child");
            std::thread::sleep(Duration::from_millis(60));
            drop(child);
            std::thread::sleep(Duration::from_millis(90));
        }
        {
            let _short = obs.span("test", "prof_short");
            std::thread::sleep(Duration::from_millis(50));
        }

        let mid = prof.dump();
        assert!(mid.samples > 0, "dump while running sees samples");

        let profile = prof.stop();
        // The counting allocator holds its own permanent refcount, so the
        // "stop releases the stacks" claim only holds without it.
        #[cfg(not(feature = "count-alloc"))]
        assert!(!spanstack::enabled(), "stop released the stack refcount");

        let long = profile.total_of("prof_long").as_secs_f64();
        let short = profile.total_of("prof_short").as_secs_f64();
        let child = profile.total_of("prof_child").as_secs_f64();
        // Generous CI-safe tolerances around 150ms / 50ms / 60ms.
        assert!(
            (0.10..=0.25).contains(&long),
            "prof_long sampled {long:.3}s, expected ~0.15s"
        );
        assert!(
            (0.025..=0.10).contains(&short),
            "prof_short sampled {short:.3}s, expected ~0.05s"
        );
        assert!(
            long > short,
            "longer span must out-sample the shorter one ({long:.3} vs {short:.3})"
        );
        assert!(
            child > 0.0 && child < long,
            "child is sampled and bounded by its parent"
        );

        // The nested period shows up as a two-deep collapsed path, and the
        // child's time is self-time of the leaf, child-time of the parent.
        let collapsed = profile.collapsed();
        assert!(
            collapsed.contains("prof_long;prof_child "),
            "collapsed output has the nested path:\n{collapsed}"
        );
        let rows = profile.rows();
        let long_row = rows.iter().find(|r| r.name == "prof_long").unwrap();
        assert!(long_row.total_ns > long_row.self_ns);
        for line in collapsed.lines() {
            let (_, weight) = line.rsplit_once(' ').expect("collapsed line shape");
            let _: u64 = weight.parse().expect("integer weight");
        }

        // Table renders every row.
        let table = profile.render_table();
        assert!(table.contains("prof_long") && table.contains("samples"));

        // Restarting after a stop works (refcount, not a one-shot latch).
        let again = Profiler::start(Duration::from_millis(1));
        let sp = obs.span("test", "prof_again");
        std::thread::sleep(Duration::from_millis(10));
        drop(sp);
        let p2 = again.stop();
        assert!(p2.total_of("prof_again") > Duration::ZERO);
    }
}
