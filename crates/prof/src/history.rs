//! Append-only bench history: one JSON object per line in
//! `BENCH_history.jsonl`, written by `examples/million_bench.rs` after
//! every run and by `cla-tool bench-diff --history`. Append-only means the
//! perf trajectory of the repo is a `git log` of this file plus whatever CI
//! appended since — `bench-diff` turns the last committed entry into a
//! regression gate.

use std::io::Write as _;
use std::path::Path;

/// One history record. Phase entries are `(name, seconds)` pairs taken
/// from the bench JSON (`compile_secs`, `link_secs`, ...).
#[derive(Debug, Clone, Default)]
pub struct HistoryEntry {
    /// Seconds since the Unix epoch when the run finished.
    pub timestamp_secs: u64,
    /// Git revision of the tree that ran (short hash, `GITHUB_SHA`, or
    /// `unknown`).
    pub git_rev: String,
    /// What ran: a bench name (`million`) or `bench-diff`.
    pub label: String,
    /// Phase wall times in seconds.
    pub phases: Vec<(String, f64)>,
    /// Peak RSS of the run in bytes (0 when unavailable).
    pub peak_rss_bytes: u64,
}

impl HistoryEntry {
    /// Render as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::from("{\"ts\":");
        s.push_str(&self.timestamp_secs.to_string());
        s.push_str(",\"rev\":\"");
        cla_obs::escape_json(&self.git_rev, &mut s);
        s.push_str("\",\"label\":\"");
        cla_obs::escape_json(&self.label, &mut s);
        s.push_str("\",\"phases\":{");
        for (i, (name, secs)) in self.phases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            cla_obs::escape_json(name, &mut s);
            s.push_str("\":");
            if secs.is_finite() {
                s.push_str(&format!("{secs:.3}"));
            } else {
                s.push('0');
            }
        }
        s.push_str("},\"peak_rss_bytes\":");
        s.push_str(&self.peak_rss_bytes.to_string());
        s.push('}');
        s
    }
}

/// Append `entry` to the JSONL file at `path`, creating parent directories
/// and the file as needed.
pub fn append(path: &Path, entry: &HistoryEntry) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{}", entry.to_jsonl())
}

/// Seconds since the Unix epoch.
pub fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs())
}

/// Best-effort git revision of the working tree: `GITHUB_SHA` when set
/// (CI), otherwise `git rev-parse --short HEAD`, otherwise `unknown`.
pub fn git_rev() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha.chars().take(12).collect();
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_render_and_append_as_jsonl() {
        let entry = HistoryEntry {
            timestamp_secs: 1_750_000_000,
            git_rev: "abc123".to_string(),
            label: "million".to_string(),
            phases: vec![
                ("compile_secs".to_string(), 7.254),
                ("link_secs".to_string(), 1.8),
            ],
            peak_rss_bytes: 382_000_000,
        };
        let line = entry.to_jsonl();
        assert_eq!(
            line,
            "{\"ts\":1750000000,\"rev\":\"abc123\",\"label\":\"million\",\
             \"phases\":{\"compile_secs\":7.254,\"link_secs\":1.800},\
             \"peak_rss_bytes\":382000000}"
        );

        let dir = std::env::temp_dir().join(format!("cla-prof-hist-{}", std::process::id()));
        let path = dir.join("BENCH_history.jsonl");
        let _ = std::fs::remove_dir_all(&dir);
        append(&path, &entry).unwrap();
        append(&path, &entry).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "append-only, one line per run");
        assert!(text.lines().all(|l| l == line));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn git_rev_is_always_nonempty() {
        assert!(!git_rev().is_empty());
    }
}
