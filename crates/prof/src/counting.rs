//! Feature-gated counting global allocator.
//!
//! With `--features count-alloc`, this module installs a
//! `#[global_allocator]` wrapper around [`std::alloc::System`] that charges
//! every allocation to the innermost active obs span on the calling thread
//! (via [`cla_obs::spanstack::current_span_id`], which is allocation-free
//! and safe to call from inside the allocator). Each span accumulates
//! cumulative bytes and allocation counts, plus the highest *global* live
//! heap observed while it was innermost — the attribution rule that makes
//! "peak heap during link" a well-defined number even though the bytes may
//! have been allocated earlier.
//!
//! Without the feature every entry point compiles to a stub that reports
//! `enabled: false`, so callers (serve `stats`, `--profile` output) never
//! need their own `cfg` gates.

/// Allocation totals for one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanAlloc {
    /// Span name (`(no span)` collects allocations outside any span).
    pub span: &'static str,
    /// Cumulative bytes allocated while this span was innermost.
    pub bytes: u64,
    /// Number of allocations charged to this span.
    pub allocs: u64,
    /// Highest process-wide live heap observed while this span was
    /// innermost, in bytes.
    pub peak_live_bytes: u64,
}

/// Point-in-time view of the counting allocator.
#[derive(Debug, Clone, Default)]
pub struct AllocSnapshot {
    /// Whether the crate was built with `count-alloc`. All other fields
    /// are zero/empty when false.
    pub enabled: bool,
    /// Cumulative bytes allocated process-wide.
    pub total_bytes: u64,
    /// Cumulative allocation count process-wide.
    pub total_allocs: u64,
    /// Live heap right now, in bytes.
    pub live_bytes: u64,
    /// Highest live heap ever observed, in bytes.
    pub peak_live_bytes: u64,
    /// Per-span accounting, heaviest cumulative bytes first. Spans with no
    /// charged allocations are omitted.
    pub by_span: Vec<SpanAlloc>,
}

/// Make span attribution active for allocation accounting even when no
/// sampler is running. A no-op without `count-alloc`; call once early in
/// `main` (idempotent).
pub fn init() {
    #[cfg(feature = "count-alloc")]
    {
        static ONCE: std::sync::Once = std::sync::Once::new();
        // Raise the span-stack refcount permanently: the allocator reads
        // the current thread's innermost span on every allocation.
        ONCE.call_once(cla_obs::spanstack::enable);
    }
}

/// Snapshot the allocator state. Cheap (a few hundred relaxed loads).
pub fn alloc_snapshot() -> AllocSnapshot {
    #[cfg(feature = "count-alloc")]
    {
        enabled::snapshot()
    }
    #[cfg(not(feature = "count-alloc"))]
    {
        AllocSnapshot::default()
    }
}

#[cfg(feature = "count-alloc")]
mod enabled {
    use super::{AllocSnapshot, SpanAlloc};
    use cla_obs::spanstack;
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Per-span slots, indexed by interned span id. The CLA span namespace
    /// is a few dozen static names; ids at or past the table edge fall into
    /// slot 0 (`(no span)`).
    const SLOTS: usize = 512;

    struct Slot {
        bytes: AtomicU64,
        allocs: AtomicU64,
        peak_live: AtomicU64,
    }

    static TABLE: [Slot; SLOTS] = [const {
        Slot {
            bytes: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
            peak_live: AtomicU64::new(0),
        }
    }; SLOTS];

    static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);
    static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
    static LIVE: AtomicU64 = AtomicU64::new(0);
    static PEAK_LIVE: AtomicU64 = AtomicU64::new(0);

    /// The wrapper itself. Every accounting step is a relaxed atomic op;
    /// nothing here allocates, so reentrancy is impossible.
    pub struct CountingAlloc;

    #[inline]
    fn charge(size: u64) {
        TOTAL_BYTES.fetch_add(size, Ordering::Relaxed);
        TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
        let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
        PEAK_LIVE.fetch_max(live, Ordering::Relaxed);
        let id = spanstack::current_span_id() as usize;
        let slot = &TABLE[if id < SLOTS { id } else { 0 }];
        slot.bytes.fetch_add(size, Ordering::Relaxed);
        slot.allocs.fetch_add(1, Ordering::Relaxed);
        slot.peak_live.fetch_max(live, Ordering::Relaxed);
    }

    #[inline]
    fn release(size: u64) {
        LIVE.fetch_sub(size, Ordering::Relaxed);
    }

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                charge(layout.size() as u64);
            }
            p
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc_zeroed(layout);
            if !p.is_null() {
                charge(layout.size() as u64);
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            release(layout.size() as u64);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = System.realloc(ptr, layout, new_size);
            if !p.is_null() {
                // Count a grow as a fresh charge for the delta; a shrink
                // only lowers the live figure.
                release(layout.size() as u64);
                charge(new_size as u64);
            }
            p
        }
    }

    #[global_allocator]
    static COUNTING: CountingAlloc = CountingAlloc;

    pub fn snapshot() -> AllocSnapshot {
        let mut by_span: Vec<SpanAlloc> = TABLE
            .iter()
            .enumerate()
            .filter(|(_, s)| s.allocs.load(Ordering::Relaxed) > 0)
            .map(|(id, s)| SpanAlloc {
                span: spanstack::name_of(id as u32),
                bytes: s.bytes.load(Ordering::Relaxed),
                allocs: s.allocs.load(Ordering::Relaxed),
                peak_live_bytes: s.peak_live.load(Ordering::Relaxed),
            })
            .collect();
        by_span.sort_by(|a, b| b.bytes.cmp(&a.bytes).then_with(|| a.span.cmp(b.span)));
        AllocSnapshot {
            enabled: true,
            total_bytes: TOTAL_BYTES.load(Ordering::Relaxed),
            total_allocs: TOTAL_ALLOCS.load(Ordering::Relaxed),
            live_bytes: LIVE.load(Ordering::Relaxed),
            peak_live_bytes: PEAK_LIVE.load(Ordering::Relaxed),
            by_span,
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn allocations_are_charged_to_the_active_span() {
            super::super::init();
            let before = snapshot();
            assert!(before.enabled && before.total_allocs > 0);
            let grown;
            {
                let _sp = cla_obs::global().span("test", "alloc_probe");
                let v: Vec<u8> = vec![7; 1 << 20];
                grown = v.len() as u64;
                let after = snapshot();
                assert!(after.total_bytes >= before.total_bytes + grown);
                assert!(after.live_bytes > 0);
                assert!(after.peak_live_bytes >= after.live_bytes);
                let probe = after
                    .by_span
                    .iter()
                    .find(|s| s.span == "alloc_probe")
                    .expect("span-attributed slot");
                assert!(probe.bytes >= grown);
                assert!(probe.allocs >= 1);
                assert!(probe.peak_live_bytes >= grown);
            }
            let released = snapshot();
            assert!(released.total_bytes >= before.total_bytes + grown);
        }
    }
}
