//! The Unix-socket front end: newline-delimited JSON requests in, one JSON
//! object out per request.
//!
//! Protocol (one object per line; see README for a transcript):
//!
//! | request | reply |
//! |---|---|
//! | `{"cmd":"points-to","var":V}` | `{"ok":true,"var":V,"resolved":N,"targets":[{"id":I,"name":S},…],"cached":B,"us":N,"epoch":N,"partial":B}` |
//! | `{"cmd":"alias","a":A,"b":B}` | `{"ok":true,"a":A,"b":B,"alias":B,"cached":B,"us":N,"epoch":N,"partial":B}` |
//! | `{"cmd":"depend","target":T,"non-targets":[S,…]}` | `{"ok":true,"target":T,"dependents":[{"name":S,"weak_links":N,"length":N},…],"cached":B,"us":N,"epoch":N,"partial":B}` |
//! | `{"cmd":"stats"}` | `{"ok":true,"stats":{…}}` |
//! | `{"cmd":"metrics"}` | `{"ok":true,"metrics":"…"}` — Prometheus text exposition of every registered counter/histogram |
//! | `{"cmd":"reload","force":B}` | `{"ok":true,"recompiled":[S,…],"invalidated":N,"epoch":N,"relinked":B,"quarantined":[S,…]}` |
//! | `{"cmd":"health"}` | `{"ok":true,"health":"ok"\|"partial"\|"degraded"\|"loading","epoch":N,"snapshot_loaded":B,"quarantined":N[,"last_error":S]}` |
//! | `{"cmd":"profile","action":"start"[,"interval_us":N]}` | `{"ok":true,"profiling":true,"interval_us":N}` — live sampling profiler |
//! | `{"cmd":"profile","action":"dump"\|"stop"}` | `{"ok":true,"profiling":B,"wall_us":N,"samples":N,"collapsed":S,"spans":[{"span":S,"total_us":N,"self_us":N,"samples":N},…]}` |
//! | `{"cmd":"shutdown"}` | `{"ok":true,"stats":{…}}`, then the server stops accepting |
//!
//! Every client gets its own thread; they all share one [`Session`]. Query
//! replies carry the session `epoch` of the immutable snapshot that
//! answered them, so clients racing a `reload` can tell which world an
//! answer came from.
//!
//! Two [`ServeOptions`] limits protect the worker threads: an idle client
//! is disconnected after `read_timeout` with an `{"ok":false,"error":"idle
//! timeout"}` reply, and a request line longer than `max_request_bytes`
//! gets `{"ok":false,"error":"request too large…"}` and a prompt close
//! instead of buffering without bound. After a shutdown request, every
//! other client's next request is answered with `{"ok":false,
//! "error":"shutting down"}` and its connection is closed, so
//! [`ServerHandle::stop`]/[`ServerHandle::join`] never stall behind a
//! chatty client.
//!
//! Fault tolerance (DESIGN.md §10): invalid UTF-8 or unparseable JSON gets
//! a typed `{"ok":false,"error":"malformed request…"}` reply and the
//! connection stays open; a panic escaping a query handler is caught per
//! connection (the client gets `"internal error: query panicked"` and is
//! disconnected, every other client is unaffected); and ahead of each
//! request the server gives a degraded session the chance to retry its
//! failed reload, so recovery is automatic once the underlying file is
//! fixed.

use crate::json::{obj, parse, Value};
use crate::session::{Session, SessionStats};
use cla_cfront::FileProvider;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Limits protecting server worker threads from slow or abusive clients.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// How long a connection may sit idle between requests before it is
    /// disconnected (`None` disables the timeout). Default: 5 minutes.
    pub read_timeout: Option<Duration>,
    /// Maximum size of one request line in bytes; longer requests are
    /// rejected with a structured error and the connection is closed.
    /// Default: 1 MiB.
    pub max_request_bytes: usize,
    /// Queries at or above this latency (µs) enter the session's slow-query
    /// log. `None` keeps the session's current threshold.
    pub slow_query_threshold_us: Option<u64>,
    /// Enables wire commands used only by the test suite (`__test_panic`).
    /// Never enable in production; the default is off.
    pub enable_test_commands: bool,
    /// Compile pool cap for building sessions from sources (0 = one thread
    /// per CPU, 1 = serial). The server itself never compiles — this rides
    /// along so one options struct configures a whole `serve` deployment —
    /// and the linked database is byte-identical at any setting (see
    /// [`Session::from_files_jobs`]).
    pub jobs: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            read_timeout: Some(Duration::from_secs(300)),
            max_request_bytes: 1 << 20,
            slow_query_threshold_us: None,
            enable_test_commands: false,
            jobs: 1,
        }
    }
}

/// A running server bound to a Unix socket.
pub struct ServerHandle {
    path: PathBuf,
    accept: Option<JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
    session: Arc<Session>,
}

/// Binds `socket` and serves `session` on it until shutdown, with the
/// default [`ServeOptions`]. A stale socket file at the path is replaced.
/// `fs` backs the `reload` command; pass `None` to disable reloading over
/// the wire.
pub fn serve(
    session: Arc<Session>,
    fs: Option<Arc<dyn FileProvider + Send + Sync>>,
    socket: &Path,
) -> std::io::Result<ServerHandle> {
    serve_with(session, fs, socket, ServeOptions::default())
}

/// [`serve`] with explicit client limits.
pub fn serve_with(
    session: Arc<Session>,
    fs: Option<Arc<dyn FileProvider + Send + Sync>>,
    socket: &Path,
    opts: ServeOptions,
) -> std::io::Result<ServerHandle> {
    if let Some(us) = opts.slow_query_threshold_us {
        session.set_slow_query_threshold_us(us);
    }
    let _ = std::fs::remove_file(socket);
    let listener = UnixListener::bind(socket)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let accept = {
        let session = Arc::clone(&session);
        let shutdown = Arc::clone(&shutdown);
        let path = socket.to_path_buf();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if shutdown.load(SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let session = Arc::clone(&session);
                let fs = fs.clone();
                let shutdown = Arc::clone(&shutdown);
                let path = path.clone();
                let opts = opts.clone();
                std::thread::spawn(move || {
                    serve_client(&session, fs.as_deref(), stream, &shutdown, &path, &opts);
                });
            }
        })
    };
    Ok(ServerHandle {
        path: socket.to_path_buf(),
        accept: Some(accept),
        shutdown,
        session,
    })
}

impl ServerHandle {
    /// The socket path the server is listening on.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The shared session (for in-process inspection alongside the socket).
    pub fn session(&self) -> &Arc<Session> {
        &self.session
    }

    /// True once a shutdown request was seen (or `stop` was called).
    pub fn is_shut_down(&self) -> bool {
        self.shutdown.load(SeqCst)
    }

    /// Stops accepting, waits for the accept loop, removes the socket file,
    /// and returns the final stats snapshot.
    pub fn stop(mut self) -> SessionStats {
        self.shutdown.store(true, SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = UnixStream::connect(&self.path);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.path);
        self.session.stats()
    }

    /// Waits for the server to be shut down by a client (`shutdown` command)
    /// and returns the final stats snapshot.
    pub fn join(mut self) -> SessionStats {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.path);
        self.session.stats()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, SeqCst);
        let _ = UnixStream::connect(&self.path);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

/// One bounded read attempt: a complete request line, or a reason to stop.
pub(crate) enum Request {
    /// Raw bytes of one line — UTF-8 validation happens at the protocol
    /// layer so an invalid sequence gets a typed reply, not a lossy parse.
    Line(Vec<u8>),
    /// Clean EOF (or EOF mid-line; a lineless tail is not a request).
    Eof,
    /// The line exceeded the request-size cap before a newline arrived.
    TooLarge,
    /// No bytes arrived within the read timeout.
    TimedOut,
}

/// Reads one `\n`-terminated line without ever buffering more than `max`
/// bytes — the defense against a client streaming an endless line.
/// Generic over the buffered transport so the Unix-socket server and the
/// TCP hub share one bounded reader.
pub(crate) fn read_request<R: BufRead>(reader: &mut R, max: usize) -> Request {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let (used, done) = {
            let chunk = match reader.fill_buf() {
                Ok(chunk) => chunk,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Request::TimedOut
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Request::Eof,
            };
            if chunk.is_empty() {
                return Request::Eof;
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    line.extend_from_slice(&chunk[..pos]);
                    (pos + 1, true)
                }
                None => {
                    line.extend_from_slice(chunk);
                    (chunk.len(), false)
                }
            }
        };
        reader.consume(used);
        if line.len() > max {
            return Request::TooLarge;
        }
        if done {
            return Request::Line(line);
        }
    }
}

/// Serves one already-accepted connection: reads newline-delimited
/// requests, enforces every [`ServeOptions`] limit (bounded request size,
/// idle timeout, shutdown refusal, UTF-8 validation), catches panics
/// escaping the dispatcher, and writes one JSON reply per request —
/// requests pipeline naturally, replies return in request order.
///
/// This loop is transport agnostic: the Unix-socket server and the TCP hub
/// both run their connections through it, so every front end inherits the
/// same DoS hardening. The caller must arm the transport's read timeout
/// (`set_read_timeout`) so an idle read surfaces as `WouldBlock`/`TimedOut`
/// rather than blocking forever.
///
/// `before_request` runs ahead of each dispatched request (the servers use
/// it for degraded-session recovery). `dispatch` answers one request line;
/// a panic inside it is caught and counted, the client gets a structured
/// error, and only this connection dies. `on_shutdown` runs when a
/// dispatched request flips the shutdown flag (used to unblock the accept
/// loop with a throwaway connection).
pub fn serve_connection<R: BufRead, W: Write>(
    reader: &mut R,
    writer: &mut W,
    shutdown: &AtomicBool,
    opts: &ServeOptions,
    mut before_request: impl FnMut(),
    mut dispatch: impl FnMut(&str) -> Value,
    mut on_shutdown: impl FnMut(),
) {
    let send = |writer: &mut W, reply: &Value| -> bool {
        let mut text = reply.encode();
        text.push('\n');
        writer.write_all(text.as_bytes()).is_ok()
    };
    loop {
        let raw = match read_request(reader, opts.max_request_bytes) {
            Request::Line(raw) => raw,
            Request::Eof => break,
            Request::TooLarge => {
                // Reject and close: draining the rest of an unbounded line
                // would keep the thread busy on the attacker's behalf.
                let cap = opts.max_request_bytes;
                let _ = send(
                    writer,
                    &err_reply(&format!("request too large (cap {cap} bytes)")),
                );
                break;
            }
            Request::TimedOut => {
                let _ = send(writer, &err_reply("idle timeout"));
                break;
            }
        };
        // Malformed bytes are a client mistake, not an attack on the
        // worker: reply with a typed error and keep the connection usable.
        let line = match String::from_utf8(raw) {
            Ok(line) => line,
            Err(_) => {
                if !send(writer, &err_reply("malformed request: invalid utf-8")) {
                    break;
                }
                continue;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        if shutdown.load(SeqCst) {
            // Another client shut the server down: refuse and disconnect so
            // stop()/join() never wait behind this connection.
            let _ = send(writer, &err_reply("shutting down"));
            break;
        }
        before_request();
        // One poisoned query must kill this connection, not the server:
        // every other client keeps its thread and the accept loop survives.
        let reply = catch_unwind(AssertUnwindSafe(|| dispatch(&line)));
        match reply {
            Ok(reply) => {
                if !send(writer, &reply) {
                    break;
                }
            }
            Err(_) => {
                cla_obs::global()
                    .counter("cla_serve_query_panics_total")
                    .inc();
                let _ = send(writer, &err_reply("internal error: query panicked"));
                break;
            }
        }
        if shutdown.load(SeqCst) {
            // This request shut the server down: let the caller unblock
            // its accept loop.
            on_shutdown();
            break;
        }
    }
}

fn serve_client(
    session: &Session,
    fs: Option<&(dyn FileProvider + Send + Sync)>,
    stream: UnixStream,
    shutdown: &AtomicBool,
    path: &Path,
    opts: &ServeOptions,
) {
    let _ = stream.set_read_timeout(opts.read_timeout);
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    serve_connection(
        &mut reader,
        &mut writer,
        shutdown,
        opts,
        // A degraded session retries its reload here, piggybacked on
        // incoming traffic: recovery is automatic once the fault is fixed,
        // with no background thread to manage.
        || {
            session.maybe_recover(fs.map(|f| f as &dyn FileProvider));
        },
        |line| handle_request(session, fs, line, shutdown, opts),
        || {
            let _ = UnixStream::connect(path);
        },
    );
}

fn err_reply(msg: &str) -> Value {
    obj([("ok", false.into()), ("error", msg.into())])
}

/// Refreshes the `cla_serve_latency_p{50,90,99}_us` gauges from the
/// session's latency ring so the Prometheus exposition carries the same
/// percentiles the `stats` command reports. Histogram buckets alone force
/// the scraper to interpolate; the exact nearest-rank numbers are what the
/// hub's p99 gate and dashboards want.
pub fn publish_latency_percentiles(session: &Session) {
    let stats = session.stats();
    let obs = cla_obs::global();
    for (name, v) in [
        ("cla_serve_latency_p50_us", stats.p50_micros),
        ("cla_serve_latency_p90_us", stats.p90_micros),
        ("cla_serve_latency_p99_us", stats.p99_micros),
    ] {
        obs.gauge(name).set(v);
    }
}

/// The wire form of a harvested profile: per-span totals plus the
/// collapsed-stack text a client can feed straight to `flamegraph.pl`.
fn profile_reply(p: &cla_prof::Profile, stopped: bool) -> Value {
    obj([
        ("ok", true.into()),
        ("profiling", (!stopped).into()),
        ("wall_us", (p.wall.as_micros() as u64).into()),
        ("samples", p.samples.into()),
        ("collapsed", p.collapsed().into()),
        (
            "spans",
            Value::Arr(
                p.rows()
                    .iter()
                    .map(|r| {
                        obj([
                            ("span", r.name.into()),
                            ("total_us", (r.total_ns / 1_000).into()),
                            ("self_us", (r.self_ns / 1_000).into()),
                            ("samples", r.samples.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Dispatches one request line against `session` and returns the reply.
/// This is the whole wire protocol minus transport concerns: the
/// Unix-socket server calls it per line, and the TCP hub routes
/// session-scoped commands here after resolving the `session` field
/// (unknown request fields are ignored, so the hub can pass lines
/// through verbatim). A `shutdown` command stores into `shutdown`; the
/// caller decides what that means for its accept loop.
pub fn handle_request(
    session: &Session,
    fs: Option<&(dyn FileProvider + Send + Sync)>,
    line: &str,
    shutdown: &AtomicBool,
    opts: &ServeOptions,
) -> Value {
    let req = match parse(line) {
        Ok(v) => v,
        Err(e) => return err_reply(&format!("malformed request: {e}")),
    };
    let Some(cmd) = req.get("cmd").and_then(Value::as_str) else {
        return err_reply("missing \"cmd\"");
    };
    match cmd {
        "points-to" => {
            let Some(var) = req.get("var").and_then(Value::as_str) else {
                return err_reply("points-to needs \"var\"");
            };
            match session.points_to(var) {
                Ok(a) => obj([
                    ("ok", true.into()),
                    ("var", a.var.as_str().into()),
                    ("resolved", a.resolved.into()),
                    (
                        "targets",
                        Value::Arr(
                            a.targets
                                .iter()
                                .map(|t| {
                                    obj([
                                        ("id", u64::from(t.id).into()),
                                        ("name", t.name.as_str().into()),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    ("cached", a.cached.into()),
                    ("us", a.micros.into()),
                    ("epoch", a.epoch.into()),
                    ("partial", a.partial.into()),
                ]),
                Err(e) => err_reply(&e.to_string()),
            }
        }
        "alias" => {
            let (Some(a), Some(b)) = (
                req.get("a").and_then(Value::as_str),
                req.get("b").and_then(Value::as_str),
            ) else {
                return err_reply("alias needs \"a\" and \"b\"");
            };
            match session.alias(a, b) {
                Ok(ans) => obj([
                    ("ok", true.into()),
                    ("a", ans.a.as_str().into()),
                    ("b", ans.b.as_str().into()),
                    ("alias", ans.alias.into()),
                    ("cached", ans.cached.into()),
                    ("us", ans.micros.into()),
                    ("epoch", ans.epoch.into()),
                    ("partial", ans.partial.into()),
                ]),
                Err(e) => err_reply(&e.to_string()),
            }
        }
        "depend" => {
            let Some(target) = req.get("target").and_then(Value::as_str) else {
                return err_reply("depend needs \"target\"");
            };
            let non_targets: Vec<String> = req
                .get("non-targets")
                .and_then(Value::as_arr)
                .map(|items| {
                    items
                        .iter()
                        .filter_map(Value::as_str)
                        .map(str::to_string)
                        .collect()
                })
                .unwrap_or_default();
            match session.depend(target, &non_targets) {
                Ok(a) => obj([
                    ("ok", true.into()),
                    ("target", a.target.as_str().into()),
                    (
                        "dependents",
                        Value::Arr(
                            a.dependents
                                .iter()
                                .map(|d| {
                                    obj([
                                        ("name", d.name.as_str().into()),
                                        ("weak_links", u64::from(d.weak_links).into()),
                                        ("length", u64::from(d.length).into()),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    ("cached", a.cached.into()),
                    ("us", a.micros.into()),
                    ("epoch", a.epoch.into()),
                    ("partial", a.partial.into()),
                ]),
                Err(e) => err_reply(&e.to_string()),
            }
        }
        "stats" => obj([("ok", true.into()), ("stats", session.stats().to_json())]),
        "health" => {
            let health = session.health();
            let mut pairs = vec![
                ("ok", Value::from(true)),
                ("health", health.as_str().into()),
                ("epoch", session.snapshot().1.into()),
                ("snapshot_loaded", session.snapshot_loaded().into()),
                ("quarantined", (session.quarantined().len() as u64).into()),
            ];
            if let Some(e) = session.last_reload_error() {
                pairs.push(("last_error", e.into()));
            }
            obj(pairs)
        }
        "metrics" => {
            publish_latency_percentiles(session);
            obj([
                ("ok", true.into()),
                ("metrics", cla_obs::global().prometheus_text().into()),
            ])
        }
        "reload" => {
            let force = req.get("force").and_then(Value::as_bool).unwrap_or(false);
            match session.reload(fs.map(|f| f as &dyn FileProvider), force) {
                Ok(r) => obj([
                    ("ok", true.into()),
                    (
                        "recompiled",
                        Value::Arr(r.recompiled.iter().map(|f| f.as_str().into()).collect()),
                    ),
                    ("invalidated", r.invalidated_results.into()),
                    ("epoch", r.epoch.into()),
                    ("relinked", r.relinked.into()),
                    (
                        "quarantined",
                        Value::Arr(r.quarantined.iter().map(|f| f.as_str().into()).collect()),
                    ),
                ]),
                Err(e) => err_reply(&e.to_string()),
            }
        }
        "profile" => {
            let Some(action) = req.get("action").and_then(Value::as_str) else {
                return err_reply("profile needs \"action\" (start|stop|dump)");
            };
            match action {
                "start" => {
                    let interval_us = req
                        .get("interval_us")
                        .and_then(Value::as_u64)
                        .unwrap_or(cla_prof::DEFAULT_INTERVAL.as_micros() as u64);
                    match session.profile_start(std::time::Duration::from_micros(interval_us)) {
                        Ok(()) => obj([
                            ("ok", true.into()),
                            ("profiling", true.into()),
                            ("interval_us", interval_us.into()),
                        ]),
                        Err(e) => err_reply(&e),
                    }
                }
                "dump" | "stop" => {
                    let profile = if action == "dump" {
                        session.profile_dump()
                    } else {
                        session.profile_stop()
                    };
                    match profile {
                        Some(p) => profile_reply(&p, action == "stop"),
                        None => err_reply("no profiler running"),
                    }
                }
                other => err_reply(&format!("unknown profile action: {other}")),
            }
        }
        "shutdown" => {
            shutdown.store(true, SeqCst);
            obj([("ok", true.into()), ("stats", session.stats().to_json())])
        }
        // Deliberate panic for exercising the per-connection catch_unwind
        // from a real client; only honored when the test gate is on.
        "__test_panic" if opts.enable_test_commands => {
            panic!("test-injected query panic");
        }
        other => err_reply(&format!("unknown cmd: {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cla_cfront::{MemoryFs, PpOptions};
    use cla_core::SolveOptions;
    use cla_ir::LowerOptions;
    use std::sync::atomic::AtomicU32;

    static SOCKET_SEQ: AtomicU32 = AtomicU32::new(0);

    fn temp_socket() -> PathBuf {
        let n = SOCKET_SEQ.fetch_add(1, SeqCst);
        std::env::temp_dir().join(format!("cla-serve-test-{}-{n}.sock", std::process::id()))
    }

    fn sample_fs() -> MemoryFs {
        let mut fs = MemoryFs::new();
        fs.add(
            "a.c",
            "int x, y; int *p, **pp; void fa(void) { p = &x; pp = &p; }",
        );
        fs.add("b.c", "extern int **pp; int *q; void fb(void) { q = *pp; }");
        fs
    }

    fn sample_server(fs: &MemoryFs) -> ServerHandle {
        let session = Session::from_files(
            fs,
            &["a.c", "b.c"],
            &PpOptions::default(),
            &LowerOptions::default(),
            SolveOptions::default(),
        )
        .unwrap();
        serve(
            Arc::new(session),
            Some(Arc::new(fs.clone())),
            &temp_socket(),
        )
        .unwrap()
    }

    fn ask(stream: &mut UnixStream, req: &str) -> Value {
        stream.write_all(req.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        parse(line.trim()).unwrap_or_else(|e| panic!("bad reply {line:?}: {e}"))
    }

    #[test]
    fn socket_roundtrip() {
        let fs = sample_fs();
        let server = sample_server(&fs);
        let mut c = UnixStream::connect(server.path()).unwrap();
        let v = ask(&mut c, r#"{"cmd":"points-to","var":"q"}"#);
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        let names: Vec<&str> = v
            .get("targets")
            .and_then(Value::as_arr)
            .unwrap()
            .iter()
            .filter_map(|t| t.get("name").and_then(Value::as_str))
            .collect();
        assert_eq!(names, vec!["x"]);
        // Errors are replies, not disconnects.
        let v = ask(&mut c, r#"{"cmd":"points-to","var":"nope"}"#);
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        let v = ask(&mut c, "not json");
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        let v = ask(&mut c, r#"{"cmd":"alias","a":"p","b":"pp"}"#);
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        let v = ask(&mut c, r#"{"cmd":"stats"}"#);
        assert!(v.get("stats").and_then(|s| s.get("queries")).is_some());
        let stats = server.stop();
        assert!(stats.queries >= 2);
    }

    #[test]
    fn shutdown_over_socket() {
        let fs = sample_fs();
        let server = sample_server(&fs);
        let path = server.path().to_path_buf();
        let mut c = UnixStream::connect(&path).unwrap();
        let _ = ask(&mut c, r#"{"cmd":"points-to","var":"q"}"#);
        let v = ask(&mut c, r#"{"cmd":"shutdown"}"#);
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert!(
            v.get("stats").is_some(),
            "shutdown reply carries final stats"
        );
        let stats = server.join();
        assert!(stats.queries >= 1);
        assert!(!path.exists(), "socket file removed on shutdown");
    }

    fn sample_session(fs: &MemoryFs) -> Arc<Session> {
        Arc::new(
            Session::from_files(
                fs,
                &["a.c", "b.c"],
                &PpOptions::default(),
                &LowerOptions::default(),
                SolveOptions::default(),
            )
            .unwrap(),
        )
    }

    /// Reads to EOF; returns every line the server sent before closing.
    fn drain(stream: &mut UnixStream) -> Vec<String> {
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut lines = Vec::new();
        let mut line = String::new();
        while reader.read_line(&mut line).unwrap_or(0) > 0 {
            lines.push(line.trim().to_string());
            line.clear();
        }
        lines
    }

    #[test]
    fn oversized_request_is_rejected_and_connection_closed() {
        let fs = sample_fs();
        let server = serve_with(
            sample_session(&fs),
            None,
            &temp_socket(),
            ServeOptions {
                max_request_bytes: 1024,
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let mut c = UnixStream::connect(server.path()).unwrap();
        // A 64 KiB line with no newline until the end: far over the cap.
        let mut giant = vec![b'{'; 64 * 1024];
        giant.push(b'\n');
        c.write_all(&giant).unwrap();
        let lines = drain(&mut c);
        assert_eq!(lines.len(), 1, "one error reply, then close: {lines:?}");
        let v = parse(&lines[0]).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert!(
            v.get("error")
                .and_then(Value::as_str)
                .unwrap()
                .contains("request too large"),
            "{lines:?}"
        );
        // A normal-sized request on a fresh connection still works.
        let mut c2 = UnixStream::connect(server.path()).unwrap();
        let v = ask(&mut c2, r#"{"cmd":"points-to","var":"q"}"#);
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        server.stop();
    }

    #[test]
    fn idle_client_is_disconnected_after_timeout() {
        let fs = sample_fs();
        let server = serve_with(
            sample_session(&fs),
            None,
            &temp_socket(),
            ServeOptions {
                read_timeout: Some(std::time::Duration::from_millis(100)),
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let mut c = UnixStream::connect(server.path()).unwrap();
        // Send nothing. The server must reply with a structured timeout
        // error and close, rather than pinning a worker thread forever.
        let t0 = std::time::Instant::now();
        let lines = drain(&mut c);
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(10),
            "disconnect was not prompt"
        );
        assert_eq!(lines.len(), 1, "{lines:?}");
        let v = parse(&lines[0]).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("error").and_then(Value::as_str), Some("idle timeout"));
        server.stop();
    }

    #[test]
    fn post_shutdown_requests_are_refused_promptly() {
        let fs = sample_fs();
        let server = sample_server(&fs);
        let mut a = UnixStream::connect(server.path()).unwrap();
        let v = ask(&mut a, r#"{"cmd":"points-to","var":"q"}"#);
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        let mut b = UnixStream::connect(server.path()).unwrap();
        let v = ask(&mut b, r#"{"cmd":"shutdown"}"#);
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        // Client a is still connected and chatty: its next request gets a
        // structured refusal and the connection closes.
        a.write_all(b"{\"cmd\":\"points-to\",\"var\":\"q\"}\n")
            .unwrap();
        let lines = drain(&mut a);
        assert_eq!(lines.len(), 1, "{lines:?}");
        let v = parse(&lines[0]).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(
            v.get("error").and_then(Value::as_str),
            Some("shutting down")
        );
        server.join();
    }

    #[test]
    fn profile_wire_command_survives_concurrent_queries() {
        let fs = sample_fs();
        let server = sample_server(&fs);
        let mut c = UnixStream::connect(server.path()).unwrap();
        // dump/stop without a running profiler: structured error.
        let v = ask(&mut c, r#"{"cmd":"profile","action":"dump"}"#);
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        // Start, fast interval so a short run still collects samples.
        let v = ask(
            &mut c,
            r#"{"cmd":"profile","action":"start","interval_us":200}"#,
        );
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v:?}");
        assert_eq!(v.get("profiling").and_then(Value::as_bool), Some(true));
        // Double start is refused while one is running.
        let v = ask(&mut c, r#"{"cmd":"profile","action":"start"}"#);
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        // Hammer the server from several clients while the profiler runs.
        let path = server.path().to_path_buf();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let path = path.clone();
                std::thread::spawn(move || {
                    let mut s = UnixStream::connect(&path).unwrap();
                    for _ in 0..25 {
                        let v = ask(&mut s, r#"{"cmd":"points-to","var":"q"}"#);
                        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
                    }
                })
            })
            .collect();
        // A mid-run dump leaves the profiler running.
        let v = ask(&mut c, r#"{"cmd":"profile","action":"dump"}"#);
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v:?}");
        assert_eq!(v.get("profiling").and_then(Value::as_bool), Some(true));
        assert!(v.get("collapsed").and_then(Value::as_str).is_some());
        for w in workers {
            w.join().unwrap();
        }
        let v = ask(&mut c, r#"{"cmd":"profile","action":"stop"}"#);
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v:?}");
        assert_eq!(v.get("profiling").and_then(Value::as_bool), Some(false));
        assert!(v.get("wall_us").and_then(Value::as_u64).unwrap_or(0) > 0);
        assert!(v.get("spans").and_then(Value::as_arr).is_some());
        // Stopped: a second stop errors, and a fresh start works (balanced
        // enable/disable on the span stacks).
        let v = ask(&mut c, r#"{"cmd":"profile","action":"stop"}"#);
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        let v = ask(&mut c, r#"{"cmd":"profile","action":"start"}"#);
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        let v = ask(&mut c, r#"{"cmd":"profile","action":"stop"}"#);
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        // Stats now report allocation accounting fields (zeroed unless the
        // count-alloc feature is on) alongside the slow-log gauge.
        let v = ask(&mut c, r#"{"cmd":"stats"}"#);
        let stats = v.get("stats").unwrap();
        assert!(stats
            .get("alloc_enabled")
            .and_then(Value::as_bool)
            .is_some());
        assert!(stats.get("alloc_by_span").and_then(Value::as_arr).is_some());
        server.stop();
    }

    #[test]
    fn reload_without_sources_is_an_error() {
        let fs = sample_fs();
        let session = Session::from_files(
            &fs,
            &["a.c", "b.c"],
            &PpOptions::default(),
            &LowerOptions::default(),
            SolveOptions::default(),
        )
        .unwrap();
        // Server started without a file provider: reload refused.
        let server = serve(Arc::new(session), None, &temp_socket()).unwrap();
        let mut c = UnixStream::connect(server.path()).unwrap();
        let v = ask(&mut c, r#"{"cmd":"reload"}"#);
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        server.stop();
    }
}
