//! The in-process query session: a solved program sealed into an immutable
//! snapshot, an epoch-tagged result cache in front of it, and incremental
//! reload.
//!
//! A [`Session`] is the server's engine and is directly usable as a library:
//!
//! * the linked [`Database`] and the solved, sealed graph
//!   ([`cla_core::SealedGraph`]) are loaded once and shared; queries run
//!   concurrently under a read lock against plain immutable data — no
//!   query ever takes a solver mutex, so N clients scale to N cores;
//! * repeated queries are answered from a bounded LRU of finished results
//!   without touching the snapshot at all;
//! * [`Session::reload`] recompiles only changed sources, relinks through
//!   [`LinkSet`], solves and seals a new snapshot *off to the side*, then
//!   swaps it in under the write lock, bumps the session epoch, and
//!   discards every cached result. In-flight queries finish against the
//!   old snapshot; every answer carries the epoch it was computed at.

use crate::json::{obj, Value};
use cla_cfront::{CError, FileProvider, PpOptions};
use cla_cladb::{fnv64, write_object, Database, DbError, LinkSet};
use cla_core::pipeline::{panic_message, Provenance, QuarantineReason, Quarantined, SnapshotHook};
use cla_core::{SealedGraph, SolveOptions, SolveStats, Warm};
use cla_depend::{DependOptions, DependenceAnalysis};
use cla_ir::{compile_file, LowerOptions, ObjId};
use cla_obs::{nearest_rank, Counter, Gauge, Histogram, LATENCY_BUCKETS_US};
use cla_snap::SnapshotStore;
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// How many finished query results the session retains.
const RESULT_CACHE_CAP: usize = 1024;

/// How many recent latency samples feed the p50/p90/p99 figures.
const LATENCY_WINDOW: usize = 4096;

/// How many slow queries the log retains (oldest dropped first).
const SLOW_LOG_CAP: usize = 128;

/// Default slow-query threshold: queries at or above this latency are
/// logged. Override with [`Session::set_slow_query_threshold_us`].
pub const DEFAULT_SLOW_THRESHOLD_US: u64 = 10_000;

/// How many per-span allocation rows the stats wire form carries (the
/// heaviest spans by cumulative bytes; the full table stays in-process).
const ALLOC_SPANS_IN_STATS: usize = 8;

/// Errors a query or reload can produce.
#[derive(Debug)]
pub enum SessionError {
    /// No object in the program has this name.
    UnknownVariable(String),
    /// `reload` on a session with no reload inputs (opened via
    /// [`Session::from_database`]).
    NoSources,
    /// `reload` needs to re-read source files but no file provider was
    /// passed.
    NoProvider,
    /// A source file disappeared between loads.
    MissingFile(String),
    /// Recompilation of a changed source failed.
    Compile(CError),
    /// The object file failed to read, open, or verify.
    Db(DbError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::UnknownVariable(n) => write!(f, "unknown variable: {n}"),
            SessionError::NoSources => {
                write!(
                    f,
                    "session was opened from a database; reload needs sources"
                )
            }
            SessionError::NoProvider => write!(f, "reload is not available (no file provider)"),
            SessionError::MissingFile(p) => write!(f, "source file missing: {p}"),
            SessionError::Compile(e) => write!(f, "recompile failed: {e}"),
            SessionError::Db(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// The serving condition reported by the `health` wire command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Serving from an up-to-date snapshot.
    Ok,
    /// Serving, but one or more source units are quarantined (a lenient
    /// session compiled past them): answers describe the surviving subset.
    Partial,
    /// A reload failed; queries are answered from the last good snapshot
    /// while retries back off.
    Degraded,
    /// A reload is swapping state right now.
    Loading,
}

impl Health {
    /// The wire string (`ok | partial | degraded | loading`).
    pub fn as_str(self) -> &'static str {
        match self {
            Health::Ok => "ok",
            Health::Partial => "partial",
            Health::Degraded => "degraded",
            Health::Loading => "loading",
        }
    }
}

/// One points-to target.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Target {
    pub id: u32,
    pub name: String,
}

/// Answer to a points-to query.
#[derive(Debug, Clone)]
pub struct PointsToAnswer {
    pub var: String,
    /// Number of program objects matching the queried name (statics in
    /// different files can share one).
    pub resolved: usize,
    /// Union of the matched objects' points-to sets, sorted by id.
    pub targets: Arc<Vec<Target>>,
    pub cached: bool,
    pub micros: u64,
    /// The session epoch whose snapshot answered this query.
    pub epoch: u64,
    /// True when the answering snapshot has quarantined units: the answer
    /// covers the surviving subset only (DESIGN.md §14).
    pub partial: bool,
}

/// Answer to an alias query.
#[derive(Debug, Clone)]
pub struct AliasAnswer {
    pub a: String,
    pub b: String,
    pub alias: bool,
    pub cached: bool,
    pub micros: u64,
    /// The session epoch whose snapshot answered this query.
    pub epoch: u64,
    /// True when the answering snapshot has quarantined units.
    pub partial: bool,
}

/// One forward dependent of a queried target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependentLine {
    pub name: String,
    pub weak_links: u32,
    pub length: u32,
}

/// Answer to a forward-dependence query.
#[derive(Debug, Clone)]
pub struct DependAnswer {
    pub target: String,
    pub dependents: Arc<Vec<DependentLine>>,
    pub cached: bool,
    pub micros: u64,
    /// The session epoch whose snapshot answered this query.
    pub epoch: u64,
    /// True when the answering snapshot has quarantined units.
    pub partial: bool,
}

/// Outcome of a reload.
#[derive(Debug, Clone)]
pub struct ReloadReport {
    /// Sources whose text changed and were recompiled.
    pub recompiled: Vec<String>,
    /// Cached query results discarded by the swap.
    pub invalidated_results: usize,
    /// The session epoch after the reload (unchanged if nothing changed).
    pub epoch: u64,
    /// Whether the database was relinked and the solver re-run.
    pub relinked: bool,
    /// Files still quarantined after this reload (lenient sessions retry
    /// every quarantined file on each reload; survivors stay listed).
    pub quarantined: Vec<String>,
}

/// One entry of the slow-query log.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// Which command was slow (`points-to`, `alias`, `depend`).
    pub cmd: &'static str,
    /// The query argument(s), for reproducing it.
    pub detail: String,
    /// Observed latency in microseconds.
    pub micros: u64,
    /// Session epoch the query ran at.
    pub epoch: u64,
}

/// A point-in-time view of the session's instrumentation.
#[derive(Debug, Clone)]
pub struct SessionStats {
    /// Queries answered (points-to + alias + depend), including cache hits.
    pub queries: u64,
    /// Per-command request counts (each command counted separately).
    pub cmd_points_to: u64,
    pub cmd_alias: u64,
    pub cmd_depend: u64,
    /// Stats snapshots taken (this call included).
    pub cmd_stats: u64,
    /// Reload requests attempted, whether or not anything changed.
    pub cmd_reload: u64,
    /// Queries answered from the session's result cache.
    pub result_cache_hits: u64,
    pub result_cache_misses: u64,
    /// Reloads that actually swapped the database.
    pub reloads: u64,
    /// Reload attempts that failed (the state was left untouched).
    pub reload_failures: u64,
    /// Whether the session is currently serving from a last-good snapshot
    /// after a failed reload.
    pub degraded: bool,
    /// Whether the serving snapshot has quarantined units (lenient
    /// sessions): answers cover the surviving subset only.
    pub partial: bool,
    /// Units in the current quarantine ledger.
    pub quarantined: u64,
    /// Process-wide `cla_front_quarantined_total` counter: units
    /// quarantined by any lenient build or `analyze` in this process.
    pub front_quarantined_total: u64,
    /// Process-wide `cla_front_budget_exceeded_total` counter: quarantines
    /// caused by a [`cla_cfront::FrontendLimits`] budget.
    pub front_budget_exceeded_total: u64,
    /// The error that put the session into degraded mode, if any.
    pub last_error: Option<String>,
    /// Current session epoch (bumped by every swap).
    pub epoch: u64,
    /// Median query latency over the recent window, in microseconds
    /// (nearest-rank).
    pub p50_micros: u64,
    /// 90th-percentile query latency over the recent window.
    pub p90_micros: u64,
    /// 99th-percentile query latency over the recent window.
    pub p99_micros: u64,
    /// Queries at or above the slow threshold since the session started.
    pub slow_queries: u64,
    /// Latency samples currently in the window (≤ [`latency_capacity`](Self::latency_capacity)).
    pub latency_samples: usize,
    /// Fixed capacity of the latency window; the buffer never grows past
    /// this, so a long-running server's memory stays flat.
    pub latency_capacity: usize,
    /// Counters of the sealed solver snapshot, including complex
    /// assignments in core, graph nodes, and `getLvals` cache hits (frozen
    /// at seal time).
    pub solver: SolveStats,
    /// Whether the currently served graph was loaded from a persisted
    /// snapshot instead of being solved (cold starts and reloads both).
    pub snapshot_loaded: bool,
    /// Snapshot loads / saves / provenance-or-decode mismatches since this
    /// session attached its snapshot store (all 0 without one).
    pub snapshot_loads: u64,
    pub snapshot_saves: u64,
    pub snapshot_mismatches: u64,
    /// Human-readable provenance of the snapshot on disk, if one exists
    /// (`None` when the session has no snapshot store).
    pub snapshot_provenance: Option<String>,
    /// Peak resident set size of this process in bytes (`VmHWM`; 0 where
    /// the platform doesn't expose it). Covers the whole process lifetime,
    /// so it bounds the compile-link-solve that built this session.
    pub peak_rss_bytes: u64,
    /// Per-span heap attribution from the counting allocator
    /// (`--features count-alloc`; `enabled: false` and all zeros without
    /// it).
    pub alloc: cla_prof::AllocSnapshot,
}

impl SessionStats {
    /// Result-cache hit rate in [0, 1]; 0 when nothing was asked yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.result_cache_hits + self.result_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.result_cache_hits as f64 / total as f64
        }
    }

    /// The stats line as a JSON object (the wire form).
    pub fn to_json(&self) -> Value {
        obj([
            ("queries", self.queries.into()),
            ("cmd_points_to", self.cmd_points_to.into()),
            ("cmd_alias", self.cmd_alias.into()),
            ("cmd_depend", self.cmd_depend.into()),
            ("cmd_stats", self.cmd_stats.into()),
            ("cmd_reload", self.cmd_reload.into()),
            ("result_cache_hits", self.result_cache_hits.into()),
            ("result_cache_misses", self.result_cache_misses.into()),
            (
                "hit_rate",
                ((self.hit_rate() * 1000.0).round() / 1000.0).into(),
            ),
            ("reloads", self.reloads.into()),
            ("reload_failures", self.reload_failures.into()),
            ("degraded", self.degraded.into()),
            ("partial", self.partial.into()),
            ("quarantined", self.quarantined.into()),
            (
                "front_quarantined_total",
                self.front_quarantined_total.into(),
            ),
            (
                "front_budget_exceeded_total",
                self.front_budget_exceeded_total.into(),
            ),
            (
                "last_error",
                match &self.last_error {
                    Some(e) => e.as_str().into(),
                    None => Value::Null,
                },
            ),
            ("epoch", self.epoch.into()),
            ("p50_us", self.p50_micros.into()),
            ("p90_us", self.p90_micros.into()),
            ("p99_us", self.p99_micros.into()),
            ("slow_queries", self.slow_queries.into()),
            ("lat_samples", self.latency_samples.into()),
            ("lat_capacity", self.latency_capacity.into()),
            ("solver_getlvals_calls", self.solver.getlvals_calls.into()),
            ("solver_cache_hits", self.solver.cache_hits.into()),
            ("complex_in_core", self.solver.complex_in_core.into()),
            ("graph_nodes", self.solver.nodes.into()),
            ("approx_bytes", self.solver.approx_bytes.into()),
            ("snapshot_loaded", self.snapshot_loaded.into()),
            ("snapshot_loads", self.snapshot_loads.into()),
            ("snapshot_saves", self.snapshot_saves.into()),
            ("snapshot_mismatches", self.snapshot_mismatches.into()),
            (
                "snapshot_provenance",
                match &self.snapshot_provenance {
                    Some(p) => p.as_str().into(),
                    None => Value::Null,
                },
            ),
            ("peak_rss_bytes", self.peak_rss_bytes.into()),
            ("alloc_enabled", self.alloc.enabled.into()),
            ("alloc_total_bytes", self.alloc.total_bytes.into()),
            ("alloc_total_allocs", self.alloc.total_allocs.into()),
            ("alloc_live_bytes", self.alloc.live_bytes.into()),
            ("alloc_peak_live_bytes", self.alloc.peak_live_bytes.into()),
            (
                "alloc_by_span",
                Value::Arr(
                    self.alloc
                        .by_span
                        .iter()
                        .take(ALLOC_SPANS_IN_STATS)
                        .map(|s| {
                            obj([
                                ("span", s.span.into()),
                                ("bytes", s.bytes.into()),
                                ("allocs", s.allocs.into()),
                                ("peak_live_bytes", s.peak_live_bytes.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct QueryKey {
    kind: u8,
    a: String,
    b: String,
}

enum CachedAnswer {
    Pts {
        resolved: usize,
        targets: Arc<Vec<Target>>,
    },
    Alias(bool),
    Depend(Arc<Vec<DependentLine>>),
}

struct CacheEntry {
    val: CachedAnswer,
    last_used: AtomicU64,
}

/// Everything derived from one linked program; swapped wholesale on reload.
///
/// The sealed snapshot is immutable and `Sync`: queries read it directly
/// under the session's read lock with no further locking, and the
/// dependence analysis traverses it in place (no materialized `PointsTo`).
struct Loaded {
    db: Database,
    sealed: Arc<SealedGraph>,
    results: RwLock<HashMap<QueryKey, CacheEntry>>,
    /// Units that failed to compile and were skipped (lenient sessions
    /// only; always empty for strict ones). Swapped with the state, so the
    /// ledger always describes the snapshot answering queries.
    quarantined: Vec<Quarantined>,
}

/// A fixed-capacity, lock-free ring of recent latency samples.
///
/// `record` overwrites the oldest slot; the buffer never grows, so the
/// p50/p99 figures always describe the most recent window and a server that
/// has answered 100 million queries holds exactly as many samples as one
/// that answered 4096.
struct LatencyRing {
    slots: Box<[AtomicU64]>,
    /// Total samples ever recorded; `% slots.len()` is the write cursor.
    written: AtomicU64,
}

impl LatencyRing {
    fn new(capacity: usize) -> LatencyRing {
        LatencyRing {
            slots: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            written: AtomicU64::new(0),
        }
    }

    fn record(&self, micros: u64) {
        let at = self.written.fetch_add(1, Relaxed) as usize % self.slots.len();
        self.slots[at].store(micros, Relaxed);
    }

    /// The currently populated window (unordered).
    fn snapshot(&self) -> Vec<u64> {
        let filled = (self.written.load(Relaxed) as usize).min(self.slots.len());
        self.slots[..filled]
            .iter()
            .map(|s| s.load(Relaxed))
            .collect()
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }
}

/// Compilation inputs retained for incremental reload.
struct Sources {
    files: Vec<String>,
    /// Hash of each file's current text, for change detection.
    hashes: HashMap<String, u64>,
    units: LinkSet,
    pp: PpOptions,
    lower: LowerOptions,
    program: String,
    /// Quarantine-and-continue: a failing unit is skipped (empty unit, a
    /// ledger entry) instead of failing the build or the reload.
    lenient: bool,
}

/// What a `reload` re-reads, fixed at session construction.
enum ReloadInputs {
    /// No reload (opened straight from in-memory bytes).
    None,
    /// C sources: recompile changed files, relink, re-solve.
    /// Boxed: `Sources` dwarfs the other variants.
    Files(Box<Sources>),
    /// A linked `.clao` on disk: re-read, re-open, re-solve.
    Object { path: PathBuf, hash: u64 },
}

/// Book-keeping while the session serves from a last-good snapshot.
struct Degraded {
    /// The most recent reload error, verbatim.
    last_error: String,
    /// Consecutive failed reload attempts.
    failures: u32,
    /// When the first of the consecutive failures happened.
    since: Instant,
    /// Earliest time [`Session::maybe_recover`] will try again
    /// (exponential backoff, capped).
    next_retry: Instant,
}

/// A resident analysis session. All methods take `&self`; the session is
/// `Sync` and designed to be shared (`Arc<Session>`) across server workers.
/// The query path is lock-free for readers apart from the state `RwLock`
/// (held shared) and the result cache's own `RwLock`.
pub struct Session {
    state: RwLock<Loaded>,
    sources: Mutex<ReloadInputs>,
    solve_opts: SolveOptions,
    /// Degraded-mode book-keeping; `None` while healthy.
    degraded: Mutex<Option<Degraded>>,
    reload_in_progress: AtomicBool,
    backoff_base_ms: AtomicU64,
    backoff_cap_ms: AtomicU64,
    reload_failures: AtomicU64,
    ctr_reload_fail: Counter,
    ctr_degraded_seconds: Counter,
    epoch: AtomicU64,
    tick: AtomicU64,
    queries: AtomicU64,
    cmd_points_to: AtomicU64,
    cmd_alias: AtomicU64,
    cmd_depend: AtomicU64,
    cmd_stats: AtomicU64,
    cmd_reload: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    reloads: AtomicU64,
    latencies: LatencyRing,
    slow_threshold_us: AtomicU64,
    slow_count: AtomicU64,
    slow_log: Mutex<VecDeque<SlowQuery>>,
    /// Depth of the slow-query log, exported through the Prometheus
    /// exposition (`cla_serve_slow_log_depth`).
    gauge_slow_log_depth: Gauge,
    /// The sampling profiler while a wire `profile start` is live.
    profiler: Mutex<Option<cla_prof::Profiler>>,
    /// Per-command latency histograms, shared with the global metric
    /// registry (`cla_serve_latency_us{cmd=...}`); handles cached here so
    /// the query path never takes the registry lock.
    hist_points_to: Histogram,
    hist_alias: Histogram,
    hist_depend: Histogram,
    /// Snapshot persistence, when the session was opened with a snapshot
    /// directory: cold starts load from it, successful reloads save to it.
    snap_store: Option<SnapshotStore>,
    /// Whether the graph serving the current epoch came from the snapshot
    /// store rather than a solver run.
    snapshot_loaded: AtomicBool,
}

/// Which query command an operation was, for per-command accounting.
#[derive(Debug, Clone, Copy)]
enum Cmd {
    PointsTo,
    Alias,
    Depend,
}

impl Cmd {
    fn name(self) -> &'static str {
        match self {
            Cmd::PointsTo => "points-to",
            Cmd::Alias => "alias",
            Cmd::Depend => "depend",
        }
    }
}

fn hash_text(text: &str) -> u64 {
    // FNV-1a: stable across runs (unlike the std hasher's random keys).
    fnv64(text.as_bytes())
}

/// Bumps the global frontend-quarantine counters (the same ones the
/// pipeline's `analyze` bumps), so the `metrics` exposition covers both
/// batch runs and lenient sessions.
fn note_quarantine(reason: &QuarantineReason) {
    let obs = cla_obs::global();
    obs.counter("cla_front_quarantined_total").inc();
    if reason.is_budget() {
        obs.counter("cla_front_budget_exceeded_total").inc();
    }
}

/// One compiled slot: the source text hash plus the unit, or the reason it
/// was quarantined instead.
type CompiledSlot = (u64, Result<cla_ir::CompiledUnit, QuarantineReason>);

/// Compiles one file for the session, optionally quarantine-and-continue:
/// when `lenient`, a typed frontend error or a panic becomes an `Err` item
/// (the caller substitutes an empty unit) instead of failing the build.
fn compile_one(
    fs: &dyn FileProvider,
    f: &str,
    pp: &PpOptions,
    lower: &LowerOptions,
    lenient: bool,
) -> Result<CompiledSlot, SessionError> {
    let text = fs
        .read(f)
        .ok_or_else(|| SessionError::MissingFile(f.to_string()))?;
    let hash = hash_text(&text);
    if !lenient {
        let (unit, _) = compile_file(fs, f, pp, lower).map_err(SessionError::Compile)?;
        return Ok((hash, Ok(unit)));
    }
    let unit = match catch_unwind(AssertUnwindSafe(|| compile_file(fs, f, pp, lower))) {
        Ok(Ok((unit, _))) => Ok(unit),
        Ok(Err(e)) => Err(QuarantineReason::Error(e)),
        Err(payload) => Err(QuarantineReason::Panic(panic_message(payload))),
    };
    Ok((hash, unit))
}

/// Compiles `files` with up to `jobs` worker threads (0 = one per CPU),
/// returning `(text hash, unit-or-quarantine)` per file in input order.
/// Errors report the earliest failing file, exactly as a serial loop would.
fn compile_pool(
    fs: &dyn FileProvider,
    files: &[&str],
    pp: &PpOptions,
    lower: &LowerOptions,
    jobs: usize,
    lenient: bool,
) -> Result<Vec<CompiledSlot>, SessionError> {
    let one = |f: &str| compile_one(fs, f, pp, lower, lenient);
    let jobs = if jobs == 0 {
        std::thread::available_parallelism().map_or(4, usize::from)
    } else {
        jobs
    }
    .min(files.len().max(1));
    if jobs <= 1 {
        return files.iter().map(|f| one(f)).collect();
    }
    type Compiled = Result<CompiledSlot, SessionError>;
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<Compiled>> = Vec::new();
    slots.resize_with(files.len(), || None);
    let slots = Mutex::new(&mut slots);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Relaxed);
                if i >= files.len() {
                    return;
                }
                let r = one(files[i]);
                slots.lock().unwrap()[i] = Some(r);
            });
        }
    });
    slots
        .into_inner()
        .unwrap()
        .drain(..)
        .map(|slot| slot.expect("every index was claimed by a worker"))
        .collect()
}

/// Reads, opens, and fully verifies a `.clao` file; returns the database
/// plus the file-content hash used for reload change detection.
fn open_object_path(path: &Path) -> Result<(Database, u64), SessionError> {
    let bytes = std::fs::read(path)
        .map_err(|e| SessionError::Db(DbError::Io(format!("{}: {e}", path.display()))))?;
    let hash = fnv64(&bytes);
    let db = Database::open(bytes).map_err(SessionError::Db)?;
    // Verify every block now: the solver demand-loads blocks mid-solve and
    // treats the database as already validated, so corruption must be
    // caught here, where it can become a typed error instead of a panic.
    db.verify_all().map_err(SessionError::Db)?;
    Ok((db, hash))
}

fn load(db: Database, opts: SolveOptions) -> Loaded {
    // Covers the solve (with its per-pass spans) and the seal.
    let _sp = cla_obs::global().span("serve", "serve.load");
    let sealed = Arc::new(Warm::from_database(&db, opts).seal());
    Loaded {
        db,
        sealed,
        results: RwLock::new(HashMap::new()),
        quarantined: Vec::new(),
    }
}

/// Provenance scheme for serve-side snapshots. The sealed graph is a pure
/// function of the linked object bytes and the solver options, so one
/// `(tag, object-bytes hash)` input identifies it exactly: any source edit
/// that changes the linked program changes the hash and forces a re-solve,
/// while an edit with no semantic effect (whitespace, comments) keeps the
/// snapshot valid — and correct. The fixed `options_fp` namespaces these
/// provenances away from the pipeline's preprocessed-closure scheme.
pub fn object_provenance(tag: &str, object_hash: u64, solver: SolveOptions) -> Provenance {
    Provenance {
        inputs: vec![(tag.to_string(), object_hash)],
        options_fp: fnv64(b"cla-serve/object/v1"),
        solver,
    }
}

/// Opens the snapshot store for `dir` when a directory was requested.
/// An unopenable store is a hard error: the caller explicitly asked for
/// persistence, so silently serving without it would be a trap.
fn open_store(dir: Option<&Path>) -> Result<Option<SnapshotStore>, SessionError> {
    dir.map(|d| {
        SnapshotStore::open(d)
            .map_err(|e| SessionError::Db(DbError::Io(format!("{}: {e}", d.display()))))
    })
    .transpose()
}

/// [`load`], short-circuited through a snapshot store when one is attached:
/// a provenance match skips the solve entirely; a miss solves and then
/// persists the fresh graph so the *next* start (or a crashed-and-restarted
/// server) comes back warm. Returns whether the graph came from the store.
fn load_or_snapshot(
    db: Database,
    opts: SolveOptions,
    store: Option<&SnapshotStore>,
    prov: &Provenance,
) -> (Loaded, bool) {
    let Some(store) = store else {
        return (load(db, opts), false);
    };
    if let Some(sealed) = store.load(prov) {
        return (
            Loaded {
                db,
                sealed: Arc::new(sealed),
                results: RwLock::new(HashMap::new()),
                quarantined: Vec::new(),
            },
            true,
        );
    }
    let loaded = load(db, opts);
    let names: Vec<String> = loaded.db.objects().iter().map(|o| o.name.clone()).collect();
    store.save(prov, &loaded.sealed, &names);
    (loaded, false)
}

impl Session {
    /// Opens a session over an already linked program database.
    /// [`Session::reload`] is unavailable (there are no sources to watch).
    pub fn from_database(db: Database, opts: SolveOptions) -> Session {
        Session::build(load(db, opts), opts)
    }

    /// Assembles a session around an already loaded state (solved or
    /// restored from a snapshot).
    fn build(loaded: Loaded, opts: SolveOptions) -> Session {
        let obs = cla_obs::global();
        let hist = |cmd: &str| {
            obs.histogram_with("cla_serve_latency_us", &[("cmd", cmd)], LATENCY_BUCKETS_US)
        };
        Session {
            state: RwLock::new(loaded),
            sources: Mutex::new(ReloadInputs::None),
            solve_opts: opts,
            degraded: Mutex::new(None),
            reload_in_progress: AtomicBool::new(false),
            backoff_base_ms: AtomicU64::new(1_000),
            backoff_cap_ms: AtomicU64::new(60_000),
            reload_failures: AtomicU64::new(0),
            ctr_reload_fail: obs.counter("cla_serve_reload_fail_total"),
            ctr_degraded_seconds: obs.counter("cla_serve_degraded_seconds_total"),
            epoch: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            cmd_points_to: AtomicU64::new(0),
            cmd_alias: AtomicU64::new(0),
            cmd_depend: AtomicU64::new(0),
            cmd_stats: AtomicU64::new(0),
            cmd_reload: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            latencies: LatencyRing::new(LATENCY_WINDOW),
            slow_threshold_us: AtomicU64::new(DEFAULT_SLOW_THRESHOLD_US),
            slow_count: AtomicU64::new(0),
            slow_log: Mutex::new(VecDeque::new()),
            gauge_slow_log_depth: obs.gauge("cla_serve_slow_log_depth"),
            profiler: Mutex::new(None),
            hist_points_to: hist("points-to"),
            hist_alias: hist("alias"),
            hist_depend: hist("depend"),
            snap_store: None,
            snapshot_loaded: AtomicBool::new(false),
        }
    }

    /// Compiles and links `files` from `fs`, solves, and opens a session
    /// that can [`reload`](Session::reload) them incrementally.
    pub fn from_files(
        fs: &dyn FileProvider,
        files: &[&str],
        pp: &PpOptions,
        lower: &LowerOptions,
        opts: SolveOptions,
    ) -> Result<Session, SessionError> {
        Session::from_files_with(fs, files, pp, lower, opts, None)
    }

    /// [`Session::from_files`] with an optional snapshot directory: when
    /// the directory holds a snapshot whose provenance matches the freshly
    /// linked program, the solver is skipped and the session starts warm;
    /// otherwise it solves cold and persists a snapshot for next time.
    /// Every successful reload refreshes the snapshot, so even a server
    /// that crashes right after a reload restarts warm.
    pub fn from_files_with(
        fs: &dyn FileProvider,
        files: &[&str],
        pp: &PpOptions,
        lower: &LowerOptions,
        opts: SolveOptions,
        snapshot_dir: Option<&Path>,
    ) -> Result<Session, SessionError> {
        Session::from_files_jobs(fs, files, pp, lower, opts, snapshot_dir, 1)
    }

    /// [`Session::from_files_with`] with a compile pool: up to `jobs`
    /// threads compile sources concurrently (0 = one per CPU, 1 = serial).
    /// Units enter the link set in input order regardless of completion
    /// order, so the linked database is byte-identical to a serial build.
    /// Reloads recompile only changed files and stay serial.
    pub fn from_files_jobs(
        fs: &dyn FileProvider,
        files: &[&str],
        pp: &PpOptions,
        lower: &LowerOptions,
        opts: SolveOptions,
        snapshot_dir: Option<&Path>,
        jobs: usize,
    ) -> Result<Session, SessionError> {
        Session::from_files_impl(fs, files, pp, lower, opts, snapshot_dir, jobs, false)
    }

    /// [`Session::from_files_jobs`] in quarantine-and-continue mode: a
    /// source that fails to compile (typed error, panic, or budget overrun)
    /// is skipped — an empty unit keeps its slot in the link order, the
    /// failure lands in the [`Session::quarantined`] ledger, queries answer
    /// over the surviving subset with `partial: true`, and every
    /// [`Session::reload`] retries the quarantined files (DESIGN.md §14).
    pub fn from_files_lenient(
        fs: &dyn FileProvider,
        files: &[&str],
        pp: &PpOptions,
        lower: &LowerOptions,
        opts: SolveOptions,
        snapshot_dir: Option<&Path>,
        jobs: usize,
    ) -> Result<Session, SessionError> {
        Session::from_files_impl(fs, files, pp, lower, opts, snapshot_dir, jobs, true)
    }

    #[allow(clippy::too_many_arguments)]
    fn from_files_impl(
        fs: &dyn FileProvider,
        files: &[&str],
        pp: &PpOptions,
        lower: &LowerOptions,
        opts: SolveOptions,
        snapshot_dir: Option<&Path>,
        jobs: usize,
        lenient: bool,
    ) -> Result<Session, SessionError> {
        let store = open_store(snapshot_dir)?;
        let mut units = LinkSet::new();
        let mut hashes = HashMap::new();
        let mut ledger = Vec::new();
        for (f, (hash, unit)) in files
            .iter()
            .zip(compile_pool(fs, files, pp, lower, jobs, lenient)?)
        {
            hashes.insert(f.to_string(), hash);
            match unit {
                Ok(unit) => {
                    units.upsert(*f, unit);
                }
                Err(reason) => {
                    note_quarantine(&reason);
                    ledger.push(Quarantined {
                        file: f.to_string(),
                        reason,
                    });
                    units.upsert(*f, cla_ir::CompiledUnit::new(*f));
                }
            }
        }
        let (program, _) = units.link("a.out");
        let bytes = write_object(&program);
        let prov = object_provenance("a.out", fnv64(&bytes), opts);
        let db = Database::open(bytes).map_err(SessionError::Db)?;
        let (mut loaded, from_snap) = load_or_snapshot(db, opts, store.as_ref(), &prov);
        loaded.quarantined = ledger;
        let mut session = Session::build(loaded, opts);
        session.snap_store = store;
        session.snapshot_loaded = AtomicBool::new(from_snap);
        *session.sources.lock().unwrap() = ReloadInputs::Files(Box::new(Sources {
            files: files.iter().map(|f| f.to_string()).collect(),
            hashes,
            units,
            pp: pp.clone(),
            lower: lower.clone(),
            program: "a.out".to_string(),
            lenient,
        }));
        Ok(session)
    }

    /// Opens a session over a linked `.clao` object file on disk.
    /// [`Session::reload`] re-reads the file, so the session can pick up a
    /// rewritten database — and survive a corrupt one in degraded mode.
    ///
    /// The whole file (every demand-loaded block included) is verified up
    /// front: a session must never discover corruption mid-query.
    pub fn from_object_path(path: &Path, opts: SolveOptions) -> Result<Session, SessionError> {
        Session::from_object_path_with(path, opts, None)
    }

    /// [`Session::from_object_path`] with an optional snapshot directory
    /// (see [`Session::from_files_with`] for the cold/warm behavior).
    pub fn from_object_path_with(
        path: &Path,
        opts: SolveOptions,
        snapshot_dir: Option<&Path>,
    ) -> Result<Session, SessionError> {
        let store = open_store(snapshot_dir)?;
        let (db, hash) = open_object_path(path)?;
        let prov = object_provenance(&path.display().to_string(), hash, opts);
        let (loaded, from_snap) = load_or_snapshot(db, opts, store.as_ref(), &prov);
        let mut session = Session::build(loaded, opts);
        session.snap_store = store;
        session.snapshot_loaded = AtomicBool::new(from_snap);
        *session.sources.lock().unwrap() = ReloadInputs::Object {
            path: path.to_path_buf(),
            hash,
        };
        Ok(session)
    }

    // ----- queries ----------------------------------------------------------

    /// The points-to set of the named variable (union over all objects with
    /// that name).
    pub fn points_to(&self, var: &str) -> Result<PointsToAnswer, SessionError> {
        let t0 = Instant::now();
        let key = QueryKey {
            kind: 0,
            a: var.to_string(),
            b: String::new(),
        };
        let st = self.state.read().unwrap();
        // The epoch is bumped while the write lock is held, so reading it
        // under the read lock pins it to the snapshot answering the query.
        let epoch = self.epoch.load(Relaxed);
        let partial = !st.quarantined.is_empty();
        if let Some(CachedAnswer::Pts { resolved, targets }) = self.cache_get(&st, &key) {
            return Ok(PointsToAnswer {
                var: var.to_string(),
                resolved,
                targets,
                cached: true,
                micros: self.done(t0, true, Cmd::PointsTo, var),
                epoch,
                partial,
            });
        }
        let ids = st.db.targets(var);
        if ids.is_empty() {
            return Err(SessionError::UnknownVariable(var.to_string()));
        }
        let mut set: Vec<u32> = Vec::new();
        for &id in ids {
            set.extend(st.sealed.points_to(id).iter().map(|o| o.0));
        }
        set.sort_unstable();
        set.dedup();
        let targets: Arc<Vec<Target>> = Arc::new(
            set.into_iter()
                .map(|id| Target {
                    id,
                    name: st.db.object(ObjId(id)).name.clone(),
                })
                .collect(),
        );
        let resolved = ids.len();
        self.cache_put(
            &st,
            key,
            CachedAnswer::Pts {
                resolved,
                targets: Arc::clone(&targets),
            },
        );
        Ok(PointsToAnswer {
            var: var.to_string(),
            resolved,
            targets,
            cached: false,
            micros: self.done(t0, false, Cmd::PointsTo, var),
            epoch,
            partial,
        })
    }

    /// Whether `*a` and `*b` may name the same object (any pairing of the
    /// objects resolving to the two names).
    pub fn alias(&self, a: &str, b: &str) -> Result<AliasAnswer, SessionError> {
        let t0 = Instant::now();
        // Alias is symmetric: canonicalize the key.
        let (ka, kb) = if a <= b { (a, b) } else { (b, a) };
        let key = QueryKey {
            kind: 1,
            a: ka.to_string(),
            b: kb.to_string(),
        };
        let st = self.state.read().unwrap();
        let epoch = self.epoch.load(Relaxed);
        let partial = !st.quarantined.is_empty();
        if let Some(CachedAnswer::Alias(alias)) = self.cache_get(&st, &key) {
            return Ok(AliasAnswer {
                a: a.to_string(),
                b: b.to_string(),
                alias,
                cached: true,
                micros: self.done(t0, true, Cmd::Alias, &format!("{a},{b}")),
                epoch,
                partial,
            });
        }
        let ids_a = st.db.targets(a);
        if ids_a.is_empty() {
            return Err(SessionError::UnknownVariable(a.to_string()));
        }
        let ids_b = st.db.targets(b);
        if ids_b.is_empty() {
            return Err(SessionError::UnknownVariable(b.to_string()));
        }
        let alias = ids_a
            .iter()
            .any(|&oa| ids_b.iter().any(|&ob| st.sealed.may_alias(oa, ob)));
        self.cache_put(&st, key, CachedAnswer::Alias(alias));
        Ok(AliasAnswer {
            a: a.to_string(),
            b: b.to_string(),
            alias,
            cached: false,
            micros: self.done(t0, false, Cmd::Alias, &format!("{a},{b}")),
            epoch,
            partial,
        })
    }

    /// Forward dependence: everything whose value can be influenced by the
    /// named target (paper §2's type-migration query).
    pub fn depend(
        &self,
        target: &str,
        non_targets: &[String],
    ) -> Result<DependAnswer, SessionError> {
        let t0 = Instant::now();
        let key = QueryKey {
            kind: 2,
            a: target.to_string(),
            b: non_targets.join("\u{1f}"),
        };
        let st = self.state.read().unwrap();
        let epoch = self.epoch.load(Relaxed);
        let partial = !st.quarantined.is_empty();
        if let Some(CachedAnswer::Depend(dependents)) = self.cache_get(&st, &key) {
            return Ok(DependAnswer {
                target: target.to_string(),
                dependents,
                cached: true,
                micros: self.done(t0, true, Cmd::Depend, target),
                epoch,
                partial,
            });
        }
        // The dependence walk reads the sealed snapshot directly; no
        // materialized PointsTo and no solver lock, so concurrent depend
        // queries run in parallel.
        let da = DependenceAnalysis::new(&st.db, st.sealed.as_ref());
        let opts = DependOptions {
            non_targets: non_targets.to_vec(),
        };
        let report = da
            .analyze(target, &opts)
            .ok_or_else(|| SessionError::UnknownVariable(target.to_string()))?;
        let dependents: Arc<Vec<DependentLine>> = Arc::new(
            report
                .dependents()
                .iter()
                .map(|d| DependentLine {
                    name: st.db.object(d.obj).name.clone(),
                    weak_links: d.cost.weak_links,
                    length: d.cost.length,
                })
                .collect(),
        );
        self.cache_put(&st, key, CachedAnswer::Depend(Arc::clone(&dependents)));
        Ok(DependAnswer {
            target: target.to_string(),
            dependents,
            cached: false,
            micros: self.done(t0, false, Cmd::Depend, target),
            epoch,
            partial,
        })
    }

    /// All variable names with a non-empty points-to set (for transcript
    /// tooling and tests).
    pub fn pointer_variables(&self) -> Vec<String> {
        let st = self.state.read().unwrap();
        let mut names: Vec<String> = (0..st.db.objects().len())
            .map(|i| ObjId(i as u32))
            .filter(|&o| !st.sealed.points_to(o).is_empty())
            .map(|o| st.db.object(o).name.clone())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// The immutable snapshot currently answering queries, and its epoch.
    /// The `Arc` keeps the snapshot alive across a concurrent reload, so
    /// callers can run long read-only analyses without blocking the swap.
    pub fn snapshot(&self) -> (Arc<SealedGraph>, u64) {
        let st = self.state.read().unwrap();
        (Arc::clone(&st.sealed), self.epoch.load(Relaxed))
    }

    /// Seeds the session epoch. A freshly built session starts at 0;
    /// a multiplexing front end that evicts and rebuilds sessions (the
    /// hub) seeds the replacement past the last epoch its tenant served,
    /// so `(session name, epoch)` stays monotonic — and uniquely
    /// identifies one graph — across evict/rehydrate cycles. Call before
    /// publishing the session to clients; later reloads bump from here.
    pub fn set_epoch(&self, epoch: u64) {
        self.epoch.store(epoch, Relaxed);
    }

    // ----- reload -----------------------------------------------------------

    /// Recompiles sources whose text changed (all of them when `force`),
    /// relinks, re-solves, and swaps the resident state. Cached results are
    /// discarded and the epoch is bumped; in-flight queries finish against
    /// the old state. No-op (and no invalidation) when nothing changed.
    ///
    /// For a session opened with [`Session::from_object_path`] the `.clao`
    /// file is re-read instead (no provider needed — pass `None`).
    ///
    /// A failed reload never touches the resident state: queries keep
    /// answering from the last good snapshot, the session reports
    /// [`Health::Degraded`], and [`Session::maybe_recover`] retries with
    /// capped exponential backoff. While degraded, a reload always attempts
    /// the rebuild even if nothing appears changed — the previous attempt
    /// may have failed *after* updating its change-detection hashes.
    pub fn reload(
        &self,
        fs: Option<&dyn FileProvider>,
        force: bool,
    ) -> Result<ReloadReport, SessionError> {
        self.cmd_reload.fetch_add(1, Relaxed);
        let mut sp = cla_obs::global().span("serve", "serve.reload");
        let mut inputs = self.sources.lock().unwrap();
        let force = force || self.degraded.lock().unwrap().is_some();
        self.reload_in_progress.store(true, Relaxed);
        let result = self.reload_inner(&mut inputs, fs, force, &mut sp);
        self.reload_in_progress.store(false, Relaxed);
        match &result {
            Ok(_) => self.clear_degraded(),
            // Usage errors don't mean the data went bad; only real rebuild
            // failures enter degraded mode.
            Err(SessionError::NoSources | SessionError::NoProvider) => {}
            Err(e) => self.note_reload_failure(&e.to_string()),
        }
        result
    }

    fn reload_inner(
        &self,
        inputs: &mut ReloadInputs,
        fs: Option<&dyn FileProvider>,
        force: bool,
        sp: &mut cla_obs::Span<'_>,
    ) -> Result<ReloadReport, SessionError> {
        let (fresh, from_snap, recompiled) = match inputs {
            ReloadInputs::None => return Err(SessionError::NoSources),
            ReloadInputs::Files(sources) => {
                let fs = fs.ok_or(SessionError::NoProvider)?;
                // A lenient session retries every quarantined file on each
                // reload, even when its text did not change — the fault may
                // have been environmental (a header restored, a deadline).
                let retry: HashSet<String> = self
                    .state
                    .read()
                    .unwrap()
                    .quarantined
                    .iter()
                    .map(|q| q.file.clone())
                    .collect();
                let mut recompiled = Vec::new();
                let mut ledger = Vec::new();
                for f in sources.files.clone() {
                    let text = fs
                        .read(&f)
                        .ok_or_else(|| SessionError::MissingFile(f.clone()))?;
                    let h = hash_text(&text);
                    if !force && sources.hashes.get(&f) == Some(&h) && !retry.contains(&f) {
                        continue;
                    }
                    let (_, unit) =
                        compile_one(fs, &f, &sources.pp, &sources.lower, sources.lenient)?;
                    match unit {
                        Ok(unit) => {
                            sources.units.upsert(f.clone(), unit);
                            recompiled.push(f.clone());
                        }
                        Err(reason) => {
                            note_quarantine(&reason);
                            sources
                                .units
                                .upsert(f.clone(), cla_ir::CompiledUnit::new(&f));
                            ledger.push(Quarantined {
                                file: f.clone(),
                                reason,
                            });
                        }
                    }
                    sources.hashes.insert(f, h);
                }
                // No text changed and no quarantined file recovered: the
                // linked program would be byte-identical, so keep the state
                // (and the result cache) as is.
                let still_failing: HashSet<&str> = ledger.iter().map(|q| q.file.as_str()).collect();
                let unchanged = recompiled.is_empty()
                    && still_failing.len() == retry.len()
                    && retry.iter().all(|f| still_failing.contains(f.as_str()));
                if unchanged {
                    sp.set("relinked", false);
                    return Ok(ReloadReport {
                        recompiled,
                        invalidated_results: 0,
                        epoch: self.epoch.load(Relaxed),
                        relinked: false,
                        quarantined: ledger.into_iter().map(|q| q.file).collect(),
                    });
                }
                let (program, _) = sources.units.link(&sources.program);
                let bytes = write_object(&program);
                let prov = object_provenance(&sources.program, fnv64(&bytes), self.solve_opts);
                let db = Database::open(bytes).map_err(SessionError::Db)?;
                let (mut loaded, from_snap) =
                    load_or_snapshot(db, self.solve_opts, self.snap_store.as_ref(), &prov);
                loaded.quarantined = ledger;
                (loaded, from_snap, recompiled)
            }
            ReloadInputs::Object { path, hash } => {
                let (db, new_hash) = open_object_path(path)?;
                if !force && new_hash == *hash {
                    sp.set("relinked", false);
                    return Ok(ReloadReport {
                        recompiled: Vec::new(),
                        invalidated_results: 0,
                        epoch: self.epoch.load(Relaxed),
                        relinked: false,
                        quarantined: Vec::new(),
                    });
                }
                *hash = new_hash;
                let prov =
                    object_provenance(&path.display().to_string(), new_hash, self.solve_opts);
                let (loaded, from_snap) =
                    load_or_snapshot(db, self.solve_opts, self.snap_store.as_ref(), &prov);
                (loaded, from_snap, vec![path.display().to_string()])
            }
        };

        let mut st = self.state.write().unwrap();
        let invalidated = st.results.read().unwrap().len();
        *st = fresh;
        let quarantined: Vec<String> = st.quarantined.iter().map(|q| q.file.clone()).collect();
        self.snapshot_loaded.store(from_snap, Relaxed);
        let epoch = self.epoch.fetch_add(1, Relaxed) + 1;
        self.reloads.fetch_add(1, Relaxed);
        sp.set("relinked", true);
        sp.set("recompiled", recompiled.len());
        sp.set("invalidated", invalidated);
        sp.set("quarantined", quarantined.len());
        sp.set("epoch", epoch);
        Ok(ReloadReport {
            recompiled,
            invalidated_results: invalidated,
            epoch,
            relinked: true,
            quarantined,
        })
    }

    /// Health as seen by the `health` wire command. A session with
    /// quarantined units reports [`Health::Partial`]: it serves, but the
    /// answers cover only the units that compiled.
    pub fn health(&self) -> Health {
        if self.reload_in_progress.load(Relaxed) {
            Health::Loading
        } else if self.degraded.lock().unwrap().is_some() {
            Health::Degraded
        } else if !self.state.read().unwrap().quarantined.is_empty() {
            Health::Partial
        } else {
            Health::Ok
        }
    }

    /// The quarantine ledger of the snapshot currently answering queries
    /// (empty for strict sessions).
    pub fn quarantined(&self) -> Vec<Quarantined> {
        self.state.read().unwrap().quarantined.clone()
    }

    /// The last reload error while degraded (`None` when healthy).
    pub fn last_reload_error(&self) -> Option<String> {
        self.degraded
            .lock()
            .unwrap()
            .as_ref()
            .map(|d| d.last_error.clone())
    }

    /// If the session is degraded and the backoff window has elapsed,
    /// attempt a recovery reload. Returns `true` when the session became
    /// healthy. The server calls this ahead of each request, so recovery
    /// needs no background thread and happens at the first query after the
    /// underlying fault is fixed.
    pub fn maybe_recover(&self, fs: Option<&dyn FileProvider>) -> bool {
        {
            let slot = self.degraded.lock().unwrap();
            match slot.as_ref() {
                Some(d) if Instant::now() >= d.next_retry => {}
                _ => return false,
            }
        }
        if self.reload_in_progress.load(Relaxed) {
            return false;
        }
        self.reload(fs, true).is_ok()
    }

    /// Overrides the retry backoff (default: 1 s base, 60 s cap). Mostly
    /// for tests, which can't wait out real backoff windows.
    pub fn set_reload_backoff(&self, base: Duration, cap: Duration) {
        self.backoff_base_ms.store(base.as_millis() as u64, Relaxed);
        self.backoff_cap_ms.store(cap.as_millis() as u64, Relaxed);
    }

    fn note_reload_failure(&self, msg: &str) {
        self.reload_failures.fetch_add(1, Relaxed);
        self.ctr_reload_fail.inc();
        let now = Instant::now();
        let mut slot = self.degraded.lock().unwrap();
        let (failures, since) = match slot.as_ref() {
            Some(d) => (d.failures.saturating_add(1), d.since),
            None => (1, now),
        };
        let base = self.backoff_base_ms.load(Relaxed);
        let cap = self.backoff_cap_ms.load(Relaxed);
        let delay = base
            .saturating_mul(1u64 << u64::from((failures - 1).min(16)))
            .min(cap);
        *slot = Some(Degraded {
            last_error: msg.to_string(),
            failures,
            since,
            next_retry: now + Duration::from_millis(delay),
        });
    }

    fn clear_degraded(&self) {
        let mut slot = self.degraded.lock().unwrap();
        if let Some(d) = slot.take() {
            self.ctr_degraded_seconds.add(d.since.elapsed().as_secs());
        }
    }

    // ----- stats ------------------------------------------------------------

    /// Snapshot of the session's counters and latency percentiles. The
    /// latency window is a fixed-size ring, so this copies at most
    /// [`LATENCY_WINDOW`] samples no matter how long the session has run.
    pub fn stats(&self) -> SessionStats {
        self.cmd_stats.fetch_add(1, Relaxed);
        let (solver, quarantined) = {
            let st = self.state.read().unwrap();
            (st.sealed.stats(), st.quarantined.len() as u64)
        };
        let mut lat = self.latencies.snapshot();
        lat.sort_unstable();
        // One guarded read for both fields: a guard held inside the struct
        // literal would still be live when a second `lock()` ran.
        let (degraded, last_error) = {
            let d = self.degraded.lock().unwrap();
            (d.is_some(), d.as_ref().map(|d| d.last_error.clone()))
        };
        let (snap_loads, snap_saves, snap_mismatches) = self
            .snap_store
            .as_ref()
            .map_or((0, 0, 0), SnapshotStore::counters);
        let snap_prov = self.snap_store.as_ref().map(|s| {
            s.stored_provenance().map_or_else(
                || "none".to_string(),
                |p| {
                    format!(
                        "{} input(s), inputs_hash={:016x}, cache={}, cycle_elim={}",
                        p.inputs.len(),
                        fnv64(format!("{:?}", p.inputs).as_bytes()),
                        p.solver.cache,
                        p.solver.cycle_elim,
                    )
                },
            )
        });
        SessionStats {
            queries: self.queries.load(Relaxed),
            cmd_points_to: self.cmd_points_to.load(Relaxed),
            cmd_alias: self.cmd_alias.load(Relaxed),
            cmd_depend: self.cmd_depend.load(Relaxed),
            cmd_stats: self.cmd_stats.load(Relaxed),
            cmd_reload: self.cmd_reload.load(Relaxed),
            result_cache_hits: self.hits.load(Relaxed),
            result_cache_misses: self.misses.load(Relaxed),
            reloads: self.reloads.load(Relaxed),
            reload_failures: self.reload_failures.load(Relaxed),
            degraded,
            partial: quarantined > 0,
            quarantined,
            front_quarantined_total: cla_obs::global()
                .counter("cla_front_quarantined_total")
                .get(),
            front_budget_exceeded_total: cla_obs::global()
                .counter("cla_front_budget_exceeded_total")
                .get(),
            last_error,
            epoch: self.epoch.load(Relaxed),
            p50_micros: nearest_rank(&lat, 0.50),
            p90_micros: nearest_rank(&lat, 0.90),
            p99_micros: nearest_rank(&lat, 0.99),
            slow_queries: self.slow_count.load(Relaxed),
            latency_samples: lat.len(),
            latency_capacity: self.latencies.capacity(),
            solver,
            snapshot_loaded: self.snapshot_loaded.load(Relaxed),
            snapshot_loads: snap_loads,
            snapshot_saves: snap_saves,
            snapshot_mismatches: snap_mismatches,
            snapshot_provenance: snap_prov,
            peak_rss_bytes: cla_obs::peak_rss_bytes(),
            alloc: cla_prof::alloc_snapshot(),
        }
    }

    /// Whether the graph serving the current epoch came from the snapshot
    /// store (false when no store is attached or the last load solved).
    pub fn snapshot_loaded(&self) -> bool {
        self.snapshot_loaded.load(Relaxed)
    }

    // ----- internals --------------------------------------------------------

    fn cache_get(&self, st: &Loaded, key: &QueryKey) -> Option<CachedAnswer> {
        let map = st.results.read().unwrap();
        let entry = map.get(key)?;
        entry
            .last_used
            .store(self.tick.fetch_add(1, Relaxed), Relaxed);
        Some(match &entry.val {
            CachedAnswer::Pts { resolved, targets } => CachedAnswer::Pts {
                resolved: *resolved,
                targets: Arc::clone(targets),
            },
            CachedAnswer::Alias(b) => CachedAnswer::Alias(*b),
            CachedAnswer::Depend(d) => CachedAnswer::Depend(Arc::clone(d)),
        })
    }

    fn cache_put(&self, st: &Loaded, key: QueryKey, val: CachedAnswer) {
        let mut map = st.results.write().unwrap();
        if map.len() >= RESULT_CACHE_CAP && !map.contains_key(&key) {
            // Evict the least recently used entry (linear scan: the cap is
            // small and eviction is rare compared to lookups).
            if let Some(lru) = map
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Relaxed))
                .map(|(k, _)| k.clone())
            {
                map.remove(&lru);
            }
        }
        map.insert(
            key,
            CacheEntry {
                val,
                last_used: AtomicU64::new(self.tick.fetch_add(1, Relaxed)),
            },
        );
    }

    /// Records one finished query; returns its latency in microseconds.
    fn done(&self, t0: Instant, hit: bool, cmd: Cmd, detail: &str) -> u64 {
        let micros = t0.elapsed().as_micros() as u64;
        self.queries.fetch_add(1, Relaxed);
        if hit {
            self.hits.fetch_add(1, Relaxed);
        } else {
            self.misses.fetch_add(1, Relaxed);
        }
        self.latencies.record(micros);
        let (counter, hist) = match cmd {
            Cmd::PointsTo => (&self.cmd_points_to, &self.hist_points_to),
            Cmd::Alias => (&self.cmd_alias, &self.hist_alias),
            Cmd::Depend => (&self.cmd_depend, &self.hist_depend),
        };
        counter.fetch_add(1, Relaxed);
        hist.observe(micros);
        if micros >= self.slow_threshold_us.load(Relaxed) {
            self.slow_count.fetch_add(1, Relaxed);
            let obs = cla_obs::global();
            obs.counter("cla_serve_slow_queries_total").inc();
            obs.instant(
                "serve",
                "slow_query",
                vec![
                    ("cmd", cmd.name().into()),
                    ("detail", detail.into()),
                    ("us", micros.into()),
                ],
            );
            let mut log = self.slow_log.lock().unwrap();
            if log.len() == SLOW_LOG_CAP {
                log.pop_front();
            }
            log.push_back(SlowQuery {
                cmd: cmd.name(),
                detail: detail.to_string(),
                micros,
                epoch: self.epoch.load(Relaxed),
            });
            self.gauge_slow_log_depth.set(log.len() as u64);
        }
        micros
    }

    /// Queries at or above this latency (µs) enter the slow-query log.
    pub fn set_slow_query_threshold_us(&self, micros: u64) {
        self.slow_threshold_us.store(micros, Relaxed);
    }

    /// The most recent slow queries, oldest first. The log is bounded (128
    /// entries); older entries are dropped.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.slow_log.lock().unwrap().iter().cloned().collect()
    }

    // ----- live profiling ---------------------------------------------------

    /// Start the in-process sampling profiler (the wire `profile start`).
    /// Errors if one is already running — stop it first; two samplers
    /// would double-count.
    pub fn profile_start(&self, interval: Duration) -> Result<(), String> {
        let mut slot = self.profiler.lock().unwrap();
        if slot.is_some() {
            return Err("profiler already running".to_string());
        }
        *slot = Some(cla_prof::Profiler::start(interval));
        Ok(())
    }

    /// Snapshot the running profiler without stopping it (`profile dump`).
    /// `None` when no profiler is running.
    pub fn profile_dump(&self) -> Option<cla_prof::Profile> {
        self.profiler.lock().unwrap().as_ref().map(|p| p.dump())
    }

    /// Stop the profiler and return its final profile (`profile stop`).
    /// `None` when no profiler was running.
    pub fn profile_stop(&self) -> Option<cla_prof::Profile> {
        self.profiler
            .lock()
            .unwrap()
            .take()
            .map(cla_prof::Profiler::stop)
    }

    /// Whether a wire-started profiler is currently sampling.
    pub fn profiling(&self) -> bool {
        self.profiler.lock().unwrap().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cla_cfront::MemoryFs;

    fn memfs(files: &[(&str, &str)]) -> MemoryFs {
        let mut fs = MemoryFs::new();
        for (p, c) in files {
            fs.add(*p, *c);
        }
        fs
    }

    fn sample_session() -> (Session, MemoryFs) {
        let fs = memfs(&[
            (
                "a.c",
                "int x, y; int *p, **pp; void fa(void) { p = &x; pp = &p; }",
            ),
            (
                "b.c",
                "extern int *p; extern int **pp; int *q; void fb(void) { q = *pp; }",
            ),
        ]);
        let s = Session::from_files(
            &fs,
            &["a.c", "b.c"],
            &PpOptions::default(),
            &LowerOptions::default(),
            SolveOptions::default(),
        )
        .unwrap();
        (s, fs)
    }

    #[test]
    fn points_to_and_cache() {
        let (s, _) = sample_session();
        let first = s.points_to("q").unwrap();
        assert!(!first.cached);
        let names: Vec<&str> = first.targets.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["x"]);
        let second = s.points_to("q").unwrap();
        assert!(second.cached);
        assert_eq!(second.targets, first.targets);
        let st = s.stats();
        assert_eq!(st.result_cache_hits, 1);
        assert_eq!(st.result_cache_misses, 1);
        assert!(st.hit_rate() > 0.4 && st.hit_rate() < 0.6);
    }

    #[test]
    fn alias_queries() {
        let (s, _) = sample_session();
        assert!(s.alias("p", "q").unwrap().alias);
        // Symmetric query hits the canonicalized cache entry.
        assert!(s.alias("q", "p").unwrap().cached);
        assert!(!s.alias("pp", "q").unwrap().alias);
        assert!(s.points_to("nope").is_err());
        assert!(s.alias("p", "nope").is_err());
    }

    #[test]
    fn depend_queries() {
        let fs = memfs(&[("m.c", "int t; int a, b; void f(void) { a = t; b = a; }")]);
        let s = Session::from_files(
            &fs,
            &["m.c"],
            &PpOptions::default(),
            &LowerOptions::default(),
            SolveOptions::default(),
        )
        .unwrap();
        let ans = s.depend("t", &[]).unwrap();
        let names: Vec<&str> = ans.dependents.iter().map(|d| d.name.as_str()).collect();
        assert!(names.contains(&"a") && names.contains(&"b"), "{names:?}");
        let pruned = s.depend("t", &["a".to_string()]).unwrap();
        assert!(
            !pruned.cached,
            "different non-targets must not share a cache entry"
        );
        assert!(!pruned.dependents.iter().any(|d| d.name == "a"));
        assert!(s.depend("t", &[]).unwrap().cached);
    }

    #[test]
    fn reload_swaps_answers_and_invalidates() {
        let (s, mut fs) = sample_session();
        assert_eq!(
            s.points_to("q")
                .unwrap()
                .targets
                .iter()
                .map(|t| t.name.clone())
                .collect::<Vec<_>>(),
            vec!["x"]
        );
        // Nothing changed: no-op, cache kept.
        let r = s.reload(Some(&fs), false).unwrap();
        assert!(!r.relinked);
        assert!(s.points_to("q").unwrap().cached);

        // Redirect p to y in a.c only.
        fs.add(
            "a.c",
            "int x, y; int *p, **pp; void fa(void) { p = &y; pp = &p; }",
        );
        let r = s.reload(Some(&fs), false).unwrap();
        assert!(r.relinked);
        assert_eq!(r.recompiled, vec!["a.c".to_string()]);
        assert!(r.invalidated_results >= 1);
        let after = s.points_to("q").unwrap();
        assert!(!after.cached, "stale answer survived the reload");
        assert_eq!(
            after
                .targets
                .iter()
                .map(|t| t.name.clone())
                .collect::<Vec<_>>(),
            vec!["y"]
        );
        assert_eq!(s.stats().reloads, 1);
        assert_eq!(s.stats().epoch, 1);
    }

    #[test]
    fn reload_needs_sources() {
        let fs = memfs(&[("a.c", "int x; int *p; void f(void) { p = &x; }")]);
        let (unit, _) =
            compile_file(&fs, "a.c", &PpOptions::default(), &LowerOptions::default()).unwrap();
        let db = Database::open(write_object(&unit)).unwrap();
        let s = Session::from_database(db, SolveOptions::default());
        assert!(matches!(
            s.reload(Some(&fs), false),
            Err(SessionError::NoSources)
        ));
        assert_eq!(
            s.points_to("p")
                .unwrap()
                .targets
                .iter()
                .map(|t| t.name.clone())
                .collect::<Vec<_>>(),
            vec!["x"]
        );
    }

    #[test]
    fn concurrent_queries_agree() {
        let (s, _) = sample_session();
        let expected = s.points_to("q").unwrap().targets;
        let s = Arc::new(s);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let s = Arc::clone(&s);
                let expected = Arc::clone(&expected);
                scope.spawn(move || {
                    for _ in 0..50 {
                        let got = s.points_to("q").unwrap();
                        assert_eq!(got.targets, expected);
                        assert!(s.alias("p", "q").unwrap().alias);
                    }
                });
            }
        });
        let st = s.stats();
        assert!(st.result_cache_hits > 0);
        assert!(st.queries >= 800);
        assert!(st.p50_micros <= st.p99_micros);
    }

    #[test]
    fn latency_buffer_stays_bounded() {
        let (s, _) = sample_session();
        // 100k queries: far past the window. Memory must stay flat — the
        // ring holds exactly LATENCY_WINDOW samples and stats never copies
        // more than that.
        for _ in 0..100_000 {
            let _ = s.points_to("q").unwrap();
        }
        let st = s.stats();
        assert_eq!(st.queries, 100_000);
        assert_eq!(st.latency_capacity, LATENCY_WINDOW);
        assert_eq!(
            st.latency_samples, LATENCY_WINDOW,
            "window must be full, not growing"
        );
        assert!(st.p50_micros <= st.p99_micros);
    }

    #[test]
    fn answers_carry_their_epoch() {
        let (s, mut fs) = sample_session();
        assert_eq!(s.points_to("q").unwrap().epoch, 0);
        assert_eq!(s.alias("p", "q").unwrap().epoch, 0);
        fs.add(
            "a.c",
            "int x, y; int *p, **pp; void fa(void) { p = &y; pp = &p; }",
        );
        s.reload(Some(&fs), false).unwrap();
        assert_eq!(s.points_to("q").unwrap().epoch, 1);
        assert_eq!(s.alias("p", "q").unwrap().epoch, 1);
        let (snap, epoch) = s.snapshot();
        assert_eq!(epoch, 1);
        assert!(snap.object_count() > 0);
    }

    #[test]
    fn lenient_session_serves_partial_and_reload_recovers() {
        let mut fs = memfs(&[
            (
                "a.c",
                "int x, y; int *p, **pp; void fa(void) { p = &x; pp = &p; }",
            ),
            ("b.c", "int broken = ;"),
        ]);
        let s = Session::from_files_lenient(
            &fs,
            &["a.c", "b.c"],
            &PpOptions::default(),
            &LowerOptions::default(),
            SolveOptions::default(),
            None,
            1,
        )
        .unwrap();
        assert_eq!(s.health(), Health::Partial);
        let ledger = s.quarantined();
        assert_eq!(ledger.len(), 1);
        assert_eq!(ledger[0].file, "b.c");
        // The surviving unit answers, flagged partial.
        let a = s.points_to("p").unwrap();
        assert!(a.partial);
        assert_eq!(
            a.targets
                .iter()
                .map(|t| t.name.as_str())
                .collect::<Vec<_>>(),
            vec!["x"]
        );
        let st = s.stats();
        assert!(st.partial);
        assert_eq!(st.quarantined, 1);
        assert!(st.front_quarantined_total >= 1);

        // Reload with b.c unchanged: the quarantined file is retried, still
        // fails, and nothing is relinked (ledger stable).
        let r = s.reload(Some(&fs), false).unwrap();
        assert!(!r.relinked);
        assert_eq!(r.quarantined, vec!["b.c".to_string()]);
        assert_eq!(s.health(), Health::Partial);

        // Fix b.c: the retry recovers it, the ledger empties, answers stop
        // being partial.
        fs.add("b.c", "extern int *p; int *q; void fb(void) { q = p; }");
        let r = s.reload(Some(&fs), false).unwrap();
        assert!(r.relinked);
        assert!(r.quarantined.is_empty());
        assert!(r.recompiled.contains(&"b.c".to_string()));
        assert_eq!(s.health(), Health::Ok);
        let a = s.points_to("q").unwrap();
        assert!(!a.partial);
        assert_eq!(
            a.targets
                .iter()
                .map(|t| t.name.as_str())
                .collect::<Vec<_>>(),
            vec!["x"]
        );
    }

    #[test]
    fn strict_session_still_fails_fast() {
        let fs = memfs(&[("a.c", "int x;"), ("b.c", "int broken = ;")]);
        let r = Session::from_files(
            &fs,
            &["a.c", "b.c"],
            &PpOptions::default(),
            &LowerOptions::default(),
            SolveOptions::default(),
        );
        assert!(matches!(r, Err(SessionError::Compile(_))));
    }

    #[test]
    fn stats_json_line() {
        let (s, _) = sample_session();
        let _ = s.points_to("q").unwrap();
        let line = s.stats().to_json().encode();
        let v = crate::json::parse(&line).unwrap();
        assert_eq!(v.get("queries").and_then(Value::as_u64), Some(1));
        assert!(v.get("complex_in_core").is_some());
        assert!(v.get("p99_us").is_some());
    }
}
