//! # cla-serve — a long-running analysis server
//!
//! The paper's pipeline is batch: compile, link, analyze, print, exit. This
//! crate keeps the expensive part — the solved pre-transitive graph —
//! resident, and answers points-to, alias, and dependence queries against
//! it repeatedly: in process through [`Session`], or over a Unix socket
//! speaking newline-delimited JSON through [`Server`].

pub mod json;

mod client;
mod server;
mod session;

pub use client::{Client, ClientError, Endpoint};
pub use server::{
    handle_request, publish_latency_percentiles, serve, serve_connection, serve_with, ServeOptions,
    ServerHandle,
};
pub use session::{
    object_provenance, AliasAnswer, DependAnswer, DependentLine, Health, PointsToAnswer,
    ReloadReport, Session, SessionError, SessionStats, SlowQuery, Target,
    DEFAULT_SLOW_THRESHOLD_US,
};
