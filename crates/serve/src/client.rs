//! Client-side transport for the wire protocol: one connection to a
//! Unix-socket server (`cla-tool serve`) or a TCP hub (`cla-tool hub`),
//! speaking newline-delimited JSON.
//!
//! `cla-tool query`, the stress harnesses, and the hub benchmark all go
//! through [`Client`], so every consumer gets the same typed errors — in
//! particular a connection refusal is [`ClientError::Refused`], not a
//! panic — and the same pipelining primitives ([`Client::send`] many
//! requests, then [`Client::recv`] the replies in order).

use crate::json::{parse, Value};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

/// Where a server lives: a Unix socket path, or a TCP `host:port`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-socket server (`cla-tool serve`).
    Unix(PathBuf),
    /// A TCP hub (`cla-tool hub`), addressed as `host:port`.
    Tcp(String),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// A typed client-side failure. `Refused` is its own variant because it is
/// the error every operator hits first (server not started, wrong port)
/// and callers want to print a hint, not a backtrace.
#[derive(Debug)]
pub enum ClientError {
    /// Nothing is listening at the endpoint (connection refused, or the
    /// socket path does not exist).
    Refused { endpoint: String },
    /// Any other transport failure.
    Io {
        endpoint: String,
        source: std::io::Error,
    },
    /// The server closed the connection before sending a reply.
    Closed { endpoint: String },
    /// The server sent bytes that do not parse as a JSON reply.
    Protocol { endpoint: String, detail: String },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Refused { endpoint } => {
                write!(
                    f,
                    "connection refused at {endpoint} (is the server running?)"
                )
            }
            ClientError::Io { endpoint, source } => write!(f, "i/o error at {endpoint}: {source}"),
            ClientError::Closed { endpoint } => {
                write!(f, "server at {endpoint} closed the connection")
            }
            ClientError::Protocol { endpoint, detail } => {
                write!(f, "bad reply from {endpoint}: {detail}")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The two stream types behind one `Read`/`Write` face.
enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// One connection to a server, with a buffered read half.
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
    endpoint: String,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("endpoint", &self.endpoint)
            .finish_non_exhaustive()
    }
}

impl Client {
    /// Connects to `endpoint`. A refusal (nothing listening, missing
    /// socket file) becomes [`ClientError::Refused`].
    pub fn connect(endpoint: &Endpoint) -> Result<Client, ClientError> {
        let name = endpoint.to_string();
        let classify = |e: std::io::Error| {
            if matches!(
                e.kind(),
                std::io::ErrorKind::ConnectionRefused
                    | std::io::ErrorKind::NotFound
                    | std::io::ErrorKind::AddrNotAvailable
            ) {
                ClientError::Refused {
                    endpoint: name.clone(),
                }
            } else {
                ClientError::Io {
                    endpoint: name.clone(),
                    source: e,
                }
            }
        };
        let (reader, writer) = match endpoint {
            Endpoint::Unix(path) => {
                let s = UnixStream::connect(path).map_err(classify)?;
                let r = s.try_clone().map_err(classify)?;
                (Stream::Unix(r), Stream::Unix(s))
            }
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr.as_str()).map_err(classify)?;
                let r = s.try_clone().map_err(classify)?;
                (Stream::Tcp(r), Stream::Tcp(s))
            }
        };
        Ok(Client {
            reader: BufReader::new(reader),
            writer,
            endpoint: name,
        })
    }

    /// The endpoint this client is connected to, for error messages.
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// Writes one request without waiting for the reply. Pair with
    /// [`Client::recv`]; the server answers pipelined requests in order.
    pub fn send(&mut self, req: &Value) -> Result<(), ClientError> {
        let mut text = req.encode();
        text.push('\n');
        self.writer
            .write_all(text.as_bytes())
            .map_err(|e| ClientError::Io {
                endpoint: self.endpoint.clone(),
                source: e,
            })
    }

    /// Reads one reply line and parses it.
    pub fn recv(&mut self) -> Result<Value, ClientError> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| ClientError::Io {
                endpoint: self.endpoint.clone(),
                source: e,
            })?;
        if n == 0 {
            return Err(ClientError::Closed {
                endpoint: self.endpoint.clone(),
            });
        }
        parse(line.trim()).map_err(|e| ClientError::Protocol {
            endpoint: self.endpoint.clone(),
            detail: format!("{e} in {line:?}"),
        })
    }

    /// One request/reply round trip.
    pub fn request(&mut self, req: &Value) -> Result<Value, ClientError> {
        self.send(req)?;
        self.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refused_is_typed_not_a_panic() {
        let missing = Endpoint::Unix(std::env::temp_dir().join("cla-client-no-such.sock"));
        match Client::connect(&missing) {
            Err(ClientError::Refused { endpoint }) => assert!(endpoint.contains("unix:")),
            other => panic!("expected Refused, got {other:?}"),
        }
        // A TCP port with nothing listening. Port 1 is privileged and
        // closed in any test environment.
        match Client::connect(&Endpoint::Tcp("127.0.0.1:1".into())) {
            Err(ClientError::Refused { .. }) | Err(ClientError::Io { .. }) => {}
            other => panic!("expected a typed error, got {other:?}"),
        }
    }
}
