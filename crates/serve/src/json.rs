//! A minimal JSON reader/writer for the wire protocol.
//!
//! The server speaks newline-delimited JSON objects whose values are only
//! strings, numbers, booleans, arrays, and flat objects — no external
//! serialization crate is needed (or available in the offline build), so
//! this module implements exactly the subset the protocol uses, plus full
//! string escaping so arbitrary identifiers round-trip.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All numbers are kept as f64 (the protocol only uses integers small
    /// enough to be exact).
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// BTreeMap keeps encoding deterministic for tests and transcripts.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()?.get(key)
    }

    /// Serializes to compact JSON.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Value::Str(s) => encode_str(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.encode_into(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_str(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Num(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Num(n as f64)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Arr(items.into_iter().map(Into::into).collect())
    }
}

/// Builds an object value from key/value pairs.
///
/// ```
/// use cla_serve::json::{obj, Value};
/// let v = obj([("ok", Value::Bool(true)), ("n", 3u64.into())]);
/// assert_eq!(v.encode(), r#"{"n":3,"ok":true}"#);
/// ```
pub fn obj<I: IntoIterator<Item = (&'static str, Value)>>(pairs: I) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn encode_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub msg: String,
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("short \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are outside the protocol's
                            // alphabet; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_protocol_shapes() {
        for src in [
            r#"{"cmd":"points-to","var":"p"}"#,
            r#"{"ok":true,"set":["x","y"],"us":12}"#,
            r#"{"nested":{"a":[1,2,3],"b":null},"f":false}"#,
            r#"[]"#,
            r#"{}"#,
            r#""just a string""#,
            r#"-17"#,
        ] {
            let v = parse(src).unwrap();
            assert_eq!(parse(&v.encode()).unwrap(), v, "through {src}");
        }
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Value::Str("a\"b\\c\nd\te\u{1}f→".to_string());
        let enc = v.encode();
        assert_eq!(parse(&enc).unwrap(), v);
        // Parsing standard escapes produced elsewhere also works.
        assert_eq!(parse(r#""A\n\/""#).unwrap(), Value::Str("A\n/".to_string()));
    }

    #[test]
    fn errors_have_positions() {
        for bad in ["{", "[1,", r#"{"a"}"#, "tru", "1 2", r#""unterminated"#] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
        let e = parse("[1, @]").unwrap_err();
        assert!(e.at >= 4, "position {e:?}");
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"cmd":"alias","n":5,"flag":true,"set":["a"]}"#).unwrap();
        assert_eq!(v.get("cmd").and_then(Value::as_str), Some("alias"));
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(5));
        assert_eq!(v.get("flag").and_then(Value::as_bool), Some(true));
        assert_eq!(
            v.get("set").and_then(Value::as_arr).map(<[Value]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn obj_builder_is_deterministic() {
        let a = obj([("b", 1u64.into()), ("a", 2u64.into())]);
        assert_eq!(a.encode(), r#"{"a":2,"b":1}"#);
    }
}
