//! # cla-hub — multi-tenant networked serving
//!
//! One `cla-serve` [`Session`](cla_serve::Session) answers queries for one
//! codebase over one Unix socket. This crate is the production shape the
//! paper implies — the CLA database as a *server-side* artifact shared by
//! many consumers: a TCP front end multiplexing many named sessions, each
//! an independent codebase/snapshot pair, behind a size-capped LRU of
//! resident sealed graphs.
//!
//! ## Wire protocol
//!
//! Newline-delimited JSON, the same dialect as `cla-serve` plus a
//! `session` field. Requests pipeline: a client may write many lines and
//! read the replies back in order. Session-scoped commands (`points-to`,
//! `alias`, `depend`, `stats`, `health`, `reload`, `profile`) are routed
//! to the named tenant and answered by [`cla_serve::handle_request`]
//! verbatim, with `"session"` echoed into the reply. On top of those:
//!
//! | request | reply |
//! |---|---|
//! | `{"cmd":"open","session":S,"files":[P,…][,"include":[D,…]][,"lenient":B][,"snapshot_dir":D][,"jobs":N]}` | `{"ok":true,"session":S,"epoch":N,"snapshot_loaded":B}` |
//! | `{"cmd":"open","session":S,"object":P[,"snapshot_dir":D]}` | same |
//! | `{"cmd":"close","session":S}` | `{"ok":true,"session":S,"closed":true}` |
//! | `{"cmd":"sessions"}` | `{"ok":true,"capacity":N,"resident":N,"sessions":[{"session":S,"state":"resident"\|"evicted"\|"rebuilding","epoch":N,…},…]}` |
//! | `{"cmd":"metrics"}` | `{"ok":true,"metrics":"…"}` — global exposition with per-tenant series |
//! | `{"cmd":"shutdown"}` | `{"ok":true,"sessions":N}`, then the hub stops accepting |
//!
//! ## Residency, fairness, and isolation
//!
//! - **LRU + rehydration** ([`Hub`]): at most `capacity` sessions keep
//!   their sealed graph in memory. A request for an evicted tenant
//!   rebuilds it on demand; with a snapshot directory attached, the
//!   `.clasnap` provenance check turns that rebuild into a ~ms warm start
//!   instead of a re-solve. Eviction just drops the resident `Arc` — the
//!   snapshot on disk was refreshed at build/reload time, and in-flight
//!   queries keep the old graph alive until they finish.
//! - **Per-epoch identity**: a session's `epoch` stays monotonic across
//!   evict/rehydrate cycles ([`cla_serve::Session::set_epoch`]), so
//!   `(session, epoch)` names exactly one graph — the property the
//!   stress-test oracle checks answers against.
//! - **Admission**: each tenant admits at most `max_inflight` concurrent
//!   requests; past that the hub answers a typed `session busy` error
//!   immediately instead of queueing without bound.
//! - **Rebuild queue**: rebuilds and rehydrations across all tenants
//!   share `rebuild_slots` permits, so a stampede of cold tenants (or one
//!   tenant's expensive recompile) cannot occupy every worker thread
//!   while resident tenants keep answering.
//! - **DoS limits**: every TCP connection runs through
//!   [`cla_serve::serve_connection`], inheriting the same idle-timeout and
//!   request-size hardening as the Unix-socket server.

mod registry;
mod server;

pub use registry::{
    Hub, HubError, HubOptions, SessionInfo, SessionSource, SessionSpec, TenantCounters,
};
pub use server::{dispatch, hub_serve, HubHandle};
